#!/usr/bin/env python3
"""Lint docs/SCENARIOS.md against the scenario parser's schema.

Runs `abp_cli --print-schema-fields` (the authoritative field list, generated
from the same key tables the parser validates against) and verifies that every
reported field path appears in backticks somewhere in docs/SCENARIOS.md.
Fails listing the missing paths, so the schema reference cannot silently
drift from what the loader accepts.

Usage: tools/check_scenario_docs.py [path/to/abp_cli]
       (default: build/abp_cli, run from the repo root)
"""

import re
import subprocess
import sys
from pathlib import Path


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    cli = Path(sys.argv[1]) if len(sys.argv) > 1 else repo / "build" / "abp_cli"
    doc = repo / "docs" / "SCENARIOS.md"

    if not cli.exists():
        print(f"check_scenario_docs: abp_cli not found at {cli} (build first)",
              file=sys.stderr)
        return 2
    if not doc.exists():
        print(f"check_scenario_docs: {doc} not found", file=sys.stderr)
        return 2

    proc = subprocess.run([str(cli), "--print-schema-fields"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"check_scenario_docs: {cli} --print-schema-fields failed:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 2
    paths = [line.strip() for line in proc.stdout.splitlines() if line.strip()]
    if len(paths) < 50:
        print(f"check_scenario_docs: only {len(paths)} schema paths reported — "
              "that cannot be right", file=sys.stderr)
        return 2

    # Every inline code span in the doc. Fenced ``` blocks are removed first:
    # their triple backticks would otherwise mispair the inline-span regex for
    # the rest of the file. A path may appear standalone
    # (`demand.segments[].duration_s`) or inside a larger span; substring
    # match within code spans keeps prose mentions honest.
    text = doc.read_text(encoding="utf-8")
    text = re.sub(r"^```.*?^```$", "", text, flags=re.MULTILINE | re.DOTALL)
    spans = re.findall(r"`([^`\n]+)`", text)
    blob = "\n".join(spans)

    missing = [p for p in paths if p not in blob]
    if missing:
        print(f"docs/SCENARIOS.md is missing {len(missing)} of {len(paths)} "
              "schema field paths (each must appear in backticks):",
              file=sys.stderr)
        for p in missing:
            print(f"  {p}", file=sys.stderr)
        return 1

    print(f"docs/SCENARIOS.md covers all {len(paths)} schema field paths.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
