// Quickstart: run the paper's UTIL-BP controller on the 3x3 grid for ten
// simulated minutes of Pattern I traffic and print the headline metrics.
//
// The smallest end-to-end use of the programmatic API: describe → watch →
// run → report. Expected output: one summary block (completed/entered
// counts, average queuing and travel times, and the watched road's peak
// queue) — a few lines, deterministic for the fixed seed. For the
// file-driven equivalent of step 1, see docs/SCENARIOS.md and
// `abp_cli --scenario`.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
#include <cstdio>

#include "src/scenario/scenario.hpp"

int main() {
  using namespace abp;

  // 1. Describe the experiment: the paper's defaults (3x3 grid, W=120,
  //    mu=1 veh/s, amber 4 s, alpha=-1, beta=-2) with Pattern I demand.
  scenario::ScenarioConfig cfg = scenario::paper_scenario(
      traffic::PatternKind::I, core::ControllerType::UtilBp);
  cfg.duration_s = 600.0;  // ten minutes is plenty for a smoke run
  cfg.seed = 7;

  // 2. Watch the queue on the road entering the top-right junction from the
  //    East (the road Fig. 5 of the paper plots).
  cfg.watches.push_back({.row = 0, .col = 2, .side = net::Side::East, .name = "east@J(0,2)"});

  // 3. Run. This builds the network, demand and one controller per junction,
  //    then steps the microscopic simulator.
  const stats::RunResult result = scenario::run_scenario(cfg);

  // 4. Report.
  std::printf("UTIL-BP on Pattern I, %.0f s simulated\n", result.duration_s);
  std::printf("  vehicles generated : %zu\n", result.metrics.generated);
  std::printf("  vehicles entered   : %zu\n", result.metrics.entered);
  std::printf("  vehicles completed : %zu\n", result.metrics.completed);
  std::printf("  still in network   : %zu\n", result.metrics.in_network_at_end);
  std::printf("  avg queuing time   : %.2f s\n", result.metrics.average_queuing_time_s());
  std::printf("  avg travel time    : %.2f s\n", result.metrics.average_travel_time_s());

  const stats::PhaseTrace& trace = result.phase_traces[2];  // J(0,2): id 2 in row-major order
  std::printf("  top-right junction : %d phase transitions, %.1f%% amber time\n",
              trace.transition_count(), 100.0 * trace.amber_fraction());
  std::printf("  east-approach queue: mean %.1f, max %.0f vehicles\n",
              result.road_series[0].mean(), result.road_series[0].max());
  return 0;
}
