// Custom network: build a non-grid topology by hand with the net:: API — an
// arterial corridor of three junctions where the middle one is a T-junction
// (no southern arm) — validate it, and control it with UTIL-BP.
//
// Demonstrates the parts of the public API that GridBuilder hides: placing
// intersections, wiring directed roads with compass sides, per-road
// capacities, and what the standard phase plan does for incomplete
// junctions. (Scenario files cover grid topologies only; hand-built
// networks like this one are what the programmatic API is for.)
//
// Expected output: the validated topology summary (3 junctions, road count)
// followed by one metrics line for a short UTIL-BP run on the corridor.
//
//   ./build/custom_network
#include <cstdio>

#include "src/core/factory.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/network.hpp"
#include "src/net/validation.hpp"
#include "src/traffic/demand.hpp"

int main() {
  using namespace abp;

  // --- 1. Topology: A -- B -- C along an east-west arterial. ---
  net::Network network;
  const IntersectionId a = network.add_intersection("A");
  const IntersectionId b = network.add_intersection("B");
  const IntersectionId c = network.add_intersection("C");

  auto road = [&](IntersectionId from, net::Side dep, IntersectionId to, net::Side arr,
                  double length, int capacity, const char* name) {
    net::Road r;
    r.from = from;
    r.to = to;
    r.departure_side = dep;
    r.arrival_side = arr;
    r.length_m = length;
    r.capacity = capacity;
    r.speed_limit_mps = 13.9;
    r.name = name;
    return network.add_road(r);
  };
  const IntersectionId none;  // network boundary

  // Arterial roads (generous capacity), both directions.
  road(a, net::Side::East, b, net::Side::West, 400.0, 90, "A->B");
  road(b, net::Side::West, a, net::Side::East, 400.0, 90, "B->A");
  road(b, net::Side::East, c, net::Side::West, 300.0, 70, "B->C");
  road(c, net::Side::West, b, net::Side::East, 300.0, 70, "C->B");
  // Boundary arms: full four-way junctions at A and C...
  for (auto [junction, side] : {std::pair{a, net::Side::North}, {a, net::Side::South},
                                {a, net::Side::West}, {c, net::Side::North},
                                {c, net::Side::South}, {c, net::Side::East}}) {
    road(none, net::Side::North, junction, side, 250.0, 60, "entry");
    road(junction, side, none, net::Side::North, 250.0, 60, "exit");
  }
  // ...but B is a T-junction: a northern arm only (no road to the south).
  road(none, net::Side::North, b, net::Side::North, 200.0, 40, "entry-B-north");
  road(b, net::Side::North, none, net::Side::North, 200.0, 40, "exit-B-north");

  network.finalize(net::Handedness::LeftHand, /*default_service_rate=*/1.0);
  net::validate_or_throw(network);

  std::printf("Corridor network: %zu junctions, %zu roads, %zu movements\n",
              network.intersections().size(), network.roads().size(),
              network.links().size());
  for (const net::Intersection& node : network.intersections()) {
    std::printf("  %s: %zu movements, %d control phases", node.name.c_str(),
                node.links.size(), node.num_control_phases());
    for (std::size_t p = 1; p < node.phases.size(); ++p) {
      std::printf("  [%s: %zu links]", node.phases[p].name.c_str(),
                  node.phases[p].links.size());
    }
    std::printf("\n");
  }

  // --- 2. Demand and control. ---
  traffic::DemandConfig demand_cfg;
  demand_cfg.pattern = traffic::PatternKind::II;  // uniform 6 s inter-arrival
  traffic::DemandGenerator demand(network, demand_cfg, 42);

  core::ControllerSpec spec;
  spec.type = core::ControllerType::UtilBp;
  microsim::MicroSim sim(network, microsim::MicroSimConfig{},
                         core::make_controllers(spec, network), demand, 43);
  const stats::RunResult r = sim.finish(1800.0);

  std::printf("\nUTIL-BP on the corridor, 30 min of uniform traffic:\n");
  std::printf("  entered %zu, completed %zu, avg queuing %.2f s, avg travel %.2f s\n",
              r.metrics.entered, r.metrics.completed, r.metrics.average_queuing_time_s(),
              r.metrics.average_travel_time_s());
  for (std::size_t i = 0; i < r.phase_traces.size(); ++i) {
    std::printf("  %s: %d phase transitions, %.1f%% amber time\n",
                network.intersections()[i].name.c_str(),
                r.phase_traces[i].transition_count(),
                100.0 * r.phase_traces[i].amber_fraction());
  }
  return 0;
}
