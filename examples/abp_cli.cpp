// abp_cli: command-line experiment runner over the library's public API.
//
// Runs one scenario and prints the metrics; optionally dumps the queue
// series and the phase trace of a chosen junction as CSV for plotting.
// With --replications N it runs N seed-replications (seeds seed..seed+N-1)
// through the experiment runner and prints the per-seed results plus the
// mean with a Student-t 95% confidence interval.
//
// Usage:
//   abp_cli [--pattern I|II|III|IV|mixed] [--controller util|cap|orig|fixed]
//           [--duration SECONDS] [--period SECONDS] [--seed N]
//           [--simulator micro|queue] [--rows N] [--cols N]
//           [--mixed-lanes] [--threads N] [--replications N] [--jobs N]
//           [--allow-oversubscribe] [--csv PREFIX]
//
// Two parallelism axes, which multiply (see docs/PERFORMANCE.md,
// "Run-level vs tick-level parallelism"):
//   --threads N  tick-level: the selected simulator's road-partitioned
//                parallel sweep (the micro-sim's Krauss lane sweep, the
//                queue-sim's service sweep). Worth it for one big run.
//   --jobs N     run-level: concurrent replications in --replications mode.
//                Worth it for many independent runs.
// Metrics are bit-identical at every --threads and every --jobs value. Each
// of the N concurrent runs uses --threads sweep workers, so the CLI rejects
// jobs x threads > hardware_concurrency unless --allow-oversubscribe is
// passed (oversubscribing only adds contention).
//
// Examples:
//   abp_cli --pattern I --controller util
//   abp_cli --pattern mixed --controller cap --period 20 --csv out/run1
//   abp_cli --pattern II --replications 10 --jobs 4
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "src/scenario/scenario.hpp"
#include "src/util/csv.hpp"

namespace {

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "abp_cli: %s\n", message);
  std::fprintf(stderr,
               "usage: abp_cli [--pattern I|II|III|IV|mixed] "
               "[--controller util|cap|orig|fixed]\n"
               "               [--duration S] [--period S] [--seed N] "
               "[--simulator micro|queue]\n"
               "               [--rows N] [--cols N] [--mixed-lanes] [--threads N]\n"
               "               [--replications N] [--jobs N] [--allow-oversubscribe]\n"
               "               [--csv PREFIX]\n");
  std::exit(2);
}

abp::traffic::PatternKind parse_pattern(const std::string& s) {
  using abp::traffic::PatternKind;
  if (s == "I") return PatternKind::I;
  if (s == "II") return PatternKind::II;
  if (s == "III") return PatternKind::III;
  if (s == "IV") return PatternKind::IV;
  if (s == "mixed") return PatternKind::Mixed;
  usage_error("unknown pattern");
}

abp::core::ControllerType parse_controller(const std::string& s) {
  using abp::core::ControllerType;
  if (s == "util") return ControllerType::UtilBp;
  if (s == "cap") return ControllerType::CapBp;
  if (s == "orig") return ControllerType::OriginalBp;
  if (s == "fixed") return ControllerType::FixedTime;
  usage_error("unknown controller");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abp;

  traffic::PatternKind pattern = traffic::PatternKind::II;
  core::ControllerType controller = core::ControllerType::UtilBp;
  double duration = -1.0;
  double period = 16.0;
  std::uint64_t seed = 42;
  scenario::SimulatorKind simulator = scenario::SimulatorKind::Micro;
  int rows = 3, cols = 3;
  int threads = 1;
  int replications = 1;
  int jobs = 1;
  bool allow_oversubscribe = false;
  bool mixed_lanes = false;
  std::string csv_prefix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--pattern") {
      pattern = parse_pattern(value());
    } else if (arg == "--controller") {
      controller = parse_controller(value());
    } else if (arg == "--duration") {
      duration = std::atof(value().c_str());
    } else if (arg == "--period") {
      period = std::atof(value().c_str());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (arg == "--simulator") {
      const std::string v = value();
      if (v == "micro") {
        simulator = scenario::SimulatorKind::Micro;
      } else if (v == "queue") {
        simulator = scenario::SimulatorKind::Queue;
      } else {
        usage_error("unknown simulator");
      }
    } else if (arg == "--rows") {
      rows = std::atoi(value().c_str());
    } else if (arg == "--cols") {
      cols = std::atoi(value().c_str());
    } else if (arg == "--threads") {
      threads = std::atoi(value().c_str());
    } else if (arg == "--replications") {
      replications = std::atoi(value().c_str());
    } else if (arg == "--jobs") {
      jobs = std::atoi(value().c_str());
    } else if (arg == "--allow-oversubscribe") {
      allow_oversubscribe = true;
    } else if (arg == "--mixed-lanes") {
      mixed_lanes = true;
    } else if (arg == "--csv") {
      csv_prefix = value();
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help requested");
    } else {
      usage_error(("unknown argument " + arg).c_str());
    }
  }

  if (threads < 1 || threads > 256) usage_error("--threads must be in [1, 256]");
  if (replications < 1) usage_error("--replications must be >= 1");
  if (jobs < 1 || jobs > 256) usage_error("--jobs must be in [1, 256]");
  if (jobs > 1 && replications == 1) {
    usage_error("--jobs only applies to --replications batches");
  }
  // The two axes multiply: each of the concurrent runs spins up `threads`
  // sweep workers. At most min(jobs, replications) runs are ever in flight,
  // so judge that; reject silent oversubscription here with a friendlier
  // message than the experiment runner's exception.
  const int concurrent_runs = jobs < replications ? jobs : replications;
  const unsigned hc = std::thread::hardware_concurrency();
  if (!allow_oversubscribe && concurrent_runs > 1 && hc > 0 &&
      static_cast<long long>(concurrent_runs) * threads > static_cast<long long>(hc)) {
    std::fprintf(stderr,
                 "abp_cli: %d concurrent runs (min of --jobs %d and --replications %d) "
                 "x --threads %d = %d workers oversubscribes this machine's %u hardware "
                 "threads;\nlower --jobs or --threads, or pass --allow-oversubscribe "
                 "(results are bit-identical either way, only slower)\n",
                 concurrent_runs, jobs, replications, threads, concurrent_runs * threads,
                 hc);
    return 2;
  }

  scenario::ScenarioConfig cfg = scenario::paper_scenario(pattern, controller, period);
  cfg.grid.rows = rows;
  cfg.grid.cols = cols;
  cfg.seed = seed;
  cfg.simulator = simulator;
  cfg.micro.dedicated_turn_lanes = !mixed_lanes;
  cfg.micro.threads = threads;
  cfg.queue.threads = threads;
  if (duration > 0.0) cfg.duration_s = duration;

  if (replications > 1) {
    // Batch mode: per-seed replication fleet through the experiment runner.
    const scenario::ReplicationSummary s =
        scenario::run_replications(cfg, replications, jobs, allow_oversubscribe);
    std::printf(
        "pattern=%s controller=%s simulator=%s grid=%dx%d duration=%.0fs "
        "replications=%d jobs=%d\n",
        traffic::pattern_name(pattern).c_str(),
        core::controller_type_name(controller).c_str(),
        simulator == scenario::SimulatorKind::Micro ? "micro" : "queue", rows, cols,
        cfg.duration_s, replications, jobs);
    for (std::size_t i = 0; i < s.avg_queuing_times_s.size(); ++i) {
      std::printf("seed=%llu avg_queuing_s=%.2f\n",
                  static_cast<unsigned long long>(seed + i), s.avg_queuing_times_s[i]);
    }
    std::printf("mean_s=%.2f stddev_s=%.2f ci95_halfwidth_s=%.2f (Student-t, df=%d)\n",
                s.mean_s, s.stddev_s, s.ci95_halfwidth_s, replications - 1);
    if (!csv_prefix.empty()) {
      std::ofstream out(csv_prefix + "_replications.csv");
      CsvWriter w(out);
      w.row({"seed", "avg_queuing_s"});
      for (std::size_t i = 0; i < s.avg_queuing_times_s.size(); ++i) {
        w.typed_row(static_cast<unsigned long long>(seed + i), s.avg_queuing_times_s[i]);
      }
      std::printf("csv written: %s_replications.csv\n", csv_prefix.c_str());
    }
    return 0;
  }

  // Watch the north approach of the top-right junction (Fig. 5's setup uses
  // the east approach; north is present in every grid size). Single-run
  // mode only: the replication summary never reads the series, so batch
  // runs skip the per-tick sampling and storage.
  cfg.watches.push_back({.row = 0, .col = cols - 1, .side = net::Side::North, .name = "watch"});

  const stats::RunResult r = scenario::run_scenario(cfg);

  std::printf("pattern=%s controller=%s simulator=%s grid=%dx%d duration=%.0fs seed=%llu\n",
              traffic::pattern_name(pattern).c_str(),
              core::controller_type_name(controller).c_str(),
              simulator == scenario::SimulatorKind::Micro ? "micro" : "queue", rows, cols,
              r.duration_s, static_cast<unsigned long long>(seed));
  std::printf("generated=%zu entered=%zu completed=%zu in_network_at_end=%zu\n",
              r.metrics.generated, r.metrics.entered, r.metrics.completed,
              r.metrics.in_network_at_end);
  std::printf("avg_queuing_s=%.2f avg_travel_s=%.2f p50_queuing_s=%.2f p95_queuing_s=%.2f\n",
              r.metrics.average_queuing_time_s(), r.metrics.average_travel_time_s(),
              r.metrics.queuing_time_s.quantile(0.5), r.metrics.queuing_time_s.quantile(0.95));

  if (!csv_prefix.empty()) {
    {
      std::ofstream out(csv_prefix + "_queue.csv");
      CsvWriter w(out);
      w.row({"time_s", "queued_vehicles"});
      const auto& series = r.road_series.front();
      for (std::size_t i = 0; i < series.size(); ++i) {
        w.typed_row(series.times()[i], series.values()[i]);
      }
    }
    {
      std::ofstream out(csv_prefix + "_phases.csv");
      CsvWriter w(out);
      w.row({"time_s", "phase"});
      for (const auto& s : r.phase_traces[static_cast<std::size_t>(cols - 1)].samples()) {
        w.typed_row(s.time, s.phase);
      }
    }
    std::printf("csv written: %s_queue.csv, %s_phases.csv\n", csv_prefix.c_str(),
                csv_prefix.c_str());
  }
  return 0;
}
