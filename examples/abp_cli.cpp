// abp_cli: command-line experiment runner over the library's public API.
//
// Runs one scenario and prints the metrics; optionally dumps the queue
// series and the phase trace of a chosen junction as CSV for plotting.
// With --replications N it runs N seed-replications (seeds seed..seed+N-1)
// through the experiment runner and prints the per-seed results plus the
// mean with a Student-t 95% confidence interval.
//
// Usage:
//   abp_cli [--scenario FILE] [--dump-scenario] [--print-schema-fields]
//           [--pattern I|II|III|IV|mixed] [--controller util|cap|orig|fixed]
//           [--duration SECONDS] [--period SECONDS] [--seed N]
//           [--simulator micro|queue] [--rows N] [--cols N]
//           [--mixed-lanes] [--threads N] [--shards N] [--replications N]
//           [--jobs N] [--allow-oversubscribe] [--csv PREFIX]
//           [--incident T] [--fault-capacity R,C,SIDE,START,END,FACTOR]
//           [--fault-sensor R,C,KIND,START,END[,BIAS[,MAG]]]
//           [--fault-controller R,C,FAIL[,RECOVER]]
//           [--guard throw|record|abort] [--guard-interval S]
//           [--detect] [--detect-adapt]
//           [--tick-budget N] [--retries N]
//           [--calibrate] [--surrogate-sweep] [--profile FILE] [--report FILE]
//           [--sweep-controllers LIST] [--sweep-patterns LIST]
//           [--sweep-periods LIST] [--spot-best-k N] [--spot-fraction F]
//           [--spot-replications N] [--trust-threshold X]
//
// Declarative scenarios (docs/SCENARIOS.md): --scenario FILE loads a JSON
// scenario — one of the scenarios/ library files or your own — as the base
// configuration; explicit flags then override individual fields, with
// --pattern also clearing a file's time-varying segment schedule (one demand
// description wins, never a mix of both). The repeatable --fault-* flags
// append to the file's fault schedule. --dump-scenario prints the merged
// configuration back as a canonical scenario file instead of running (pipe
// to a file to snapshot a flag combination as a reusable scenario);
// --print-schema-fields lists every schema field path, one per line (the
// docs lint, tools/check_scenario_docs.py, consumes this).
//
// Three parallelism axes, which multiply (see docs/PERFORMANCE.md,
// "Run-level vs tick-level parallelism", and docs/SHARDING.md):
//   --threads N  tick-level: the selected simulator's road-partitioned
//                parallel sweep (the micro-sim's Krauss lane sweep, the
//                queue-sim's service sweep). Worth it for one big run.
//   --shards N   process-level: split the grid into N row bands, one forked
//                worker process per band exchanging boundary traffic per
//                tick. Worth it for metro-scale grids where one process's
//                memory system is the wall.
//   --jobs N     run-level: concurrent replications in --replications mode.
//                Worth it for many independent runs.
// Metrics are bit-identical at every --threads, --shards, and --jobs value.
// Each of the N concurrent runs uses --threads x --shards workers, so the
// CLI rejects combinations that oversubscribe hardware_concurrency unless
// --allow-oversubscribe is passed (oversubscribing only adds contention).
//
// Fault injection (docs/ROBUSTNESS.md): the repeatable --fault-* flags add
// timed incidents to the run's FaultSchedule; --incident T is a canned
// mixed incident (capacity drop + sensor dropout + controller failover)
// starting at T, used by the CI smoke step. --guard enables the runtime
// invariant guard; --detect enables the online changepoint detector over the
// junctions' sensor streams (docs/CHANGEPOINT.md), reporting regime-shift
// events, and --detect-adapt additionally lets detections re-tune the
// controllers; --tick-budget and --retries configure the experiment
// runner's per-run deadline and retry policy in --replications mode, where
// per-seed statuses (ok / timeout / error) are reported and the summary is
// computed over the runs that completed.
//
// Surrogate pipeline (docs/PERFORMANCE.md, "Surrogate throughput"):
// --calibrate fits the queue backend to the micro backend for the merged
// base configuration and prints the CalibrationProfile JSON to stdout (pipe
// to a file; --replications sets the paired replications per candidate).
// --surrogate-sweep runs the controller x pattern x period grid given by the
// comma-separated --sweep-* lists on the calibrated queue backend, micro
// spot-checks the frontier (--spot-best-k plus a --spot-fraction stratified
// sample, --spot-replications micro seeds each), and prints per-metric
// surrogate error bars; --profile FILE supplies a saved profile (otherwise
// the sweep calibrates first), --report FILE also writes the full report
// JSON, and exit status 4 means some spot-checked config exceeded
// --trust-threshold relative error.
//
// Examples:
//   abp_cli --pattern I --controller util
//   abp_cli --pattern mixed --controller cap --period 20 --csv out/run1
//   abp_cli --pattern II --replications 10 --jobs 4
//   abp_cli --pattern II --duration 900 --incident 300 --guard record
//   abp_cli --scenario scenarios/rush_hour_ramp.json
//   abp_cli --scenario scenarios/baseline_3x3.json --controller fixed --dump-scenario
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/scenario/scenario_io.hpp"
#include "src/stats/student_t.hpp"
#include "src/surrogate/calibration_profile.hpp"
#include "src/surrogate/calibrator.hpp"
#include "src/surrogate/sweep.hpp"
#include "src/util/accumulator.hpp"
#include "src/util/csv.hpp"

namespace {

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "abp_cli: %s\n", message);
  std::fprintf(stderr,
               "usage: abp_cli [--scenario FILE] [--dump-scenario] "
               "[--print-schema-fields]\n"
               "               [--pattern I|II|III|IV|mixed] "
               "[--controller util|cap|orig|fixed]\n"
               "               [--duration S] [--period S] [--seed N] "
               "[--simulator micro|queue]\n"
               "               [--rows N] [--cols N] [--mixed-lanes] [--threads N]\n"
               "               [--shards N] [--replications N] [--jobs N]\n"
               "               [--allow-oversubscribe]\n"
               "               [--csv PREFIX]\n"
               "               [--incident T] "
               "[--fault-capacity R,C,SIDE,START,END,FACTOR]\n"
               "               [--fault-sensor R,C,KIND,START,END[,BIAS[,MAG]]]\n"
               "               [--fault-controller R,C,FAIL[,RECOVER]]\n"
               "               [--guard throw|record|abort] [--guard-interval S]\n"
               "               [--detect] [--detect-adapt]\n"
               "               [--tick-budget N] [--retries N]\n"
               "               [--calibrate] [--surrogate-sweep] [--profile FILE]\n"
               "               [--report FILE] [--sweep-controllers LIST]\n"
               "               [--sweep-patterns LIST] [--sweep-periods LIST]\n"
               "               [--spot-best-k N] [--spot-fraction F]\n"
               "               [--spot-replications N] [--trust-threshold X]\n");
  std::exit(2);
}

abp::traffic::PatternKind parse_pattern(const std::string& s) {
  using abp::traffic::PatternKind;
  if (s == "I") return PatternKind::I;
  if (s == "II") return PatternKind::II;
  if (s == "III") return PatternKind::III;
  if (s == "IV") return PatternKind::IV;
  if (s == "mixed") return PatternKind::Mixed;
  usage_error("unknown pattern");
}

abp::core::ControllerType parse_controller(const std::string& s) {
  using abp::core::ControllerType;
  if (s == "util") return ControllerType::UtilBp;
  if (s == "cap") return ControllerType::CapBp;
  if (s == "orig") return ControllerType::OriginalBp;
  if (s == "fixed") return ControllerType::FixedTime;
  usage_error("unknown controller");
}

abp::net::Side parse_side(const std::string& s) {
  using abp::net::Side;
  if (s == "north" || s == "N") return Side::North;
  if (s == "east" || s == "E") return Side::East;
  if (s == "south" || s == "S") return Side::South;
  if (s == "west" || s == "W") return Side::West;
  usage_error("unknown side (use north|east|south|west)");
}

abp::core::SensorFaultKind parse_sensor_kind(const std::string& s) {
  using abp::core::SensorFaultKind;
  if (s == "dropout") return SensorFaultKind::Dropout;
  if (s == "stuck") return SensorFaultKind::StuckAt;
  if (s == "noise") return SensorFaultKind::Noise;
  usage_error("unknown sensor fault kind (use dropout|stuck|noise)");
}

abp::scenario::GuardPolicy parse_guard_policy(const std::string& s) {
  using abp::scenario::GuardPolicy;
  if (s == "throw") return GuardPolicy::Throw;
  if (s == "record") return GuardPolicy::Record;
  if (s == "abort") return GuardPolicy::Abort;
  usage_error("unknown guard policy (use throw|record|abort)");
}

std::vector<std::string> split_fields(const std::string& s) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(s.substr(start));
      return fields;
    }
    fields.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

// --- Strict numeric parsing -------------------------------------------------
// std::atoi/atof silently return 0 on garbage, so "--threads abc" used to run
// (and then fail the range check with a misleading message) and "--seed 1x"
// quietly dropped the "x". Every numeric flag instead goes through these:
// the whole token must parse, and it must fit the target type, or the run
// exits with a usage error naming the flag.

[[noreturn]] void bad_number(const char* flag, const std::string& s) {
  usage_error((std::string(flag) + ": invalid number \"" + s + "\"").c_str());
}

long long parse_i64(const std::string& s, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) bad_number(flag, s);
  return v;
}

int parse_int(const std::string& s, const char* flag) {
  const long long v = parse_i64(s, flag);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    bad_number(flag, s);
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(const std::string& s, const char* flag) {
  if (s.empty() || s[0] == '-') bad_number(flag, s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) bad_number(flag, s);
  return v;
}

double parse_double(const std::string& s, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) bad_number(flag, s);
  return v;
}

// A time that may be infinite: a number, or the literal "inf".
double parse_time(const std::string& s, const char* flag) {
  if (s == "inf") return std::numeric_limits<double>::infinity();
  return parse_double(s, flag);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abp;

  traffic::PatternKind pattern = traffic::PatternKind::II;
  core::ControllerType controller = core::ControllerType::UtilBp;
  double duration = -1.0;
  double period = 16.0;
  std::uint64_t seed = 42;
  scenario::SimulatorKind simulator = scenario::SimulatorKind::Micro;
  int rows = 3, cols = 3;
  int threads = 1;
  int shards = 1;
  // Which base-config fields were explicitly set on the command line. With
  // --scenario the file is the base and only explicit flags override it;
  // without, the paper defaults are the base and the distinction is invisible.
  bool pattern_set = false, controller_set = false, period_set = false;
  bool seed_set = false, simulator_set = false;
  bool rows_set = false, cols_set = false, threads_set = false, shards_set = false;
  bool guard_set = false, guard_interval_set = false;
  std::string scenario_file;
  bool dump_scenario_flag = false;
  bool print_schema_fields = false;
  int replications = 1;
  int jobs = 1;
  long long tick_budget = 0;
  int retries = 0;
  bool allow_oversubscribe = false;
  bool mixed_lanes = false;
  double incident_at = -1.0;
  bool detect_set = false;
  bool detect_adapt = false;
  scenario::FaultSchedule faults;
  scenario::GuardConfig guard;
  std::string csv_prefix;
  bool calibrate_mode = false;
  bool sweep_mode = false;
  std::string profile_file;
  std::string report_file;
  // Sweep axes as the raw comma-separated flag values; parsed after the flag
  // loop so error messages can name the flag.
  std::string sweep_controllers = "util,cap,orig,fixed";
  std::string sweep_patterns = "I,II,III,IV";
  std::string sweep_periods = "12,16,20";
  surrogate::SweepOptions sweep_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_file = value();
    } else if (arg == "--dump-scenario") {
      dump_scenario_flag = true;
    } else if (arg == "--print-schema-fields") {
      print_schema_fields = true;
    } else if (arg == "--pattern") {
      pattern = parse_pattern(value());
      pattern_set = true;
    } else if (arg == "--controller") {
      controller = parse_controller(value());
      controller_set = true;
    } else if (arg == "--duration") {
      duration = parse_double(value(), "--duration");
    } else if (arg == "--period") {
      period = parse_double(value(), "--period");
      period_set = true;
    } else if (arg == "--seed") {
      seed = parse_u64(value(), "--seed");
      seed_set = true;
    } else if (arg == "--simulator") {
      const std::string v = value();
      if (v == "micro") {
        simulator = scenario::SimulatorKind::Micro;
      } else if (v == "queue") {
        simulator = scenario::SimulatorKind::Queue;
      } else {
        usage_error("unknown simulator");
      }
      simulator_set = true;
    } else if (arg == "--rows") {
      rows = parse_int(value(), "--rows");
      rows_set = true;
    } else if (arg == "--cols") {
      cols = parse_int(value(), "--cols");
      cols_set = true;
    } else if (arg == "--threads") {
      threads = parse_int(value(), "--threads");
      threads_set = true;
    } else if (arg == "--shards") {
      shards = parse_int(value(), "--shards");
      shards_set = true;
    } else if (arg == "--replications") {
      replications = parse_int(value(), "--replications");
    } else if (arg == "--jobs") {
      jobs = parse_int(value(), "--jobs");
    } else if (arg == "--tick-budget") {
      tick_budget = parse_i64(value(), "--tick-budget");
    } else if (arg == "--retries") {
      retries = parse_int(value(), "--retries");
    } else if (arg == "--allow-oversubscribe") {
      allow_oversubscribe = true;
    } else if (arg == "--mixed-lanes") {
      mixed_lanes = true;
    } else if (arg == "--incident") {
      incident_at = parse_double(value(), "--incident");
    } else if (arg == "--fault-capacity") {
      const std::vector<std::string> f = split_fields(value());
      if (f.size() != 6) usage_error("--fault-capacity needs R,C,SIDE,START,END,FACTOR");
      scenario::CapacityFault fault;
      fault.road = {parse_int(f[0], "--fault-capacity row"),
                    parse_int(f[1], "--fault-capacity col"), parse_side(f[2])};
      fault.start_s = parse_time(f[3], "--fault-capacity start");
      fault.end_s = parse_time(f[4], "--fault-capacity end");
      fault.capacity_factor = parse_double(f[5], "--fault-capacity factor");
      faults.capacity.push_back(fault);
    } else if (arg == "--fault-sensor") {
      const std::vector<std::string> f = split_fields(value());
      if (f.size() < 5 || f.size() > 7) {
        usage_error("--fault-sensor needs R,C,KIND,START,END[,BIAS[,MAG]]");
      }
      scenario::SensorFault fault;
      fault.node = {parse_int(f[0], "--fault-sensor row"),
                    parse_int(f[1], "--fault-sensor col")};
      fault.kind = parse_sensor_kind(f[2]);
      fault.start_s = parse_time(f[3], "--fault-sensor start");
      fault.end_s = parse_time(f[4], "--fault-sensor end");
      if (f.size() > 5) fault.bias = parse_int(f[5], "--fault-sensor bias");
      if (f.size() > 6) {
        fault.noise_magnitude = parse_int(f[6], "--fault-sensor magnitude");
      }
      faults.sensors.push_back(fault);
    } else if (arg == "--fault-controller") {
      const std::vector<std::string> f = split_fields(value());
      if (f.size() < 3 || f.size() > 4) {
        usage_error("--fault-controller needs R,C,FAIL[,RECOVER]");
      }
      scenario::ControllerFault fault;
      fault.node = {parse_int(f[0], "--fault-controller row"),
                    parse_int(f[1], "--fault-controller col")};
      fault.fail_s = parse_time(f[2], "--fault-controller fail");
      if (f.size() > 3) fault.recover_s = parse_time(f[3], "--fault-controller recover");
      faults.controllers.push_back(fault);
    } else if (arg == "--guard") {
      guard.enabled = true;
      guard.policy = parse_guard_policy(value());
      guard_set = true;
    } else if (arg == "--guard-interval") {
      guard.interval_s = parse_double(value(), "--guard-interval");
      guard_interval_set = true;
    } else if (arg == "--detect") {
      detect_set = true;
    } else if (arg == "--detect-adapt") {
      detect_set = true;
      detect_adapt = true;
    } else if (arg == "--csv") {
      csv_prefix = value();
    } else if (arg == "--calibrate") {
      calibrate_mode = true;
    } else if (arg == "--surrogate-sweep") {
      sweep_mode = true;
    } else if (arg == "--profile") {
      profile_file = value();
    } else if (arg == "--report") {
      report_file = value();
    } else if (arg == "--sweep-controllers") {
      sweep_controllers = value();
    } else if (arg == "--sweep-patterns") {
      sweep_patterns = value();
    } else if (arg == "--sweep-periods") {
      sweep_periods = value();
    } else if (arg == "--spot-best-k") {
      sweep_options.best_k = parse_int(value(), "--spot-best-k");
    } else if (arg == "--spot-fraction") {
      sweep_options.sample_fraction = parse_double(value(), "--spot-fraction");
    } else if (arg == "--spot-replications") {
      sweep_options.spot_replications = parse_int(value(), "--spot-replications");
    } else if (arg == "--trust-threshold") {
      sweep_options.trust_threshold = parse_double(value(), "--trust-threshold");
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help requested");
    } else {
      usage_error(("unknown argument " + arg).c_str());
    }
  }

  if (print_schema_fields) {
    for (const std::string& path : scenario::schema_field_paths()) {
      std::printf("%s\n", path.c_str());
    }
    return 0;
  }

  if (threads < 1 || threads > 256) usage_error("--threads must be in [1, 256]");
  if (shards < 1 || shards > 256) usage_error("--shards must be in [1, 256]");
  if (replications < 1) usage_error("--replications must be >= 1");
  if (jobs < 1 || jobs > 256) usage_error("--jobs must be in [1, 256]");
  if (jobs > 1 && replications == 1 && !calibrate_mode && !sweep_mode) {
    usage_error("--jobs only applies to --replications batches or surrogate modes");
  }
  if (sweep_options.best_k < 0) usage_error("--spot-best-k must be >= 0");
  if (sweep_options.sample_fraction < 0.0) {
    usage_error("--spot-fraction must be >= 0");
  }
  if (sweep_options.spot_replications < 1) {
    usage_error("--spot-replications must be >= 1");
  }
  if (!(sweep_options.trust_threshold > 0.0)) {
    usage_error("--trust-threshold must be > 0");
  }
  if (!profile_file.empty() && !(calibrate_mode || sweep_mode)) {
    usage_error("--profile only applies to --surrogate-sweep (or --calibrate)");
  }
  if (!report_file.empty() && !sweep_mode) {
    usage_error("--report only applies to --surrogate-sweep");
  }
  if (tick_budget < 0) usage_error("--tick-budget must be >= 0");
  if (retries < 0) usage_error("--retries must be >= 0");
  if ((tick_budget > 0 || retries > 0) && replications == 1) {
    usage_error("--tick-budget/--retries only apply to --replications batches");
  }

  // Base configuration: the scenario file when given, the paper setup
  // otherwise. Explicit flags then override field by field, so
  // `--scenario X --seed 7` is X's run at a different seed, nothing more.
  scenario::ScenarioConfig cfg;
  if (!scenario_file.empty()) {
    try {
      cfg = scenario::load_scenario_file(scenario_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "abp_cli: %s: %s\n", scenario_file.c_str(), e.what());
      return 1;
    }
  } else {
    cfg = scenario::paper_scenario(pattern, controller, period);
  }
  if (pattern_set) {
    cfg.demand.pattern = pattern;
    // One demand description wins: an explicit pattern replaces a scenario
    // file's time-varying segment schedule rather than silently coexisting.
    cfg.demand.schedule = traffic::DemandSchedule{};
  }
  if (controller_set) cfg.controller.type = controller;
  if (period_set) cfg.controller.fixed_slot.period_s = period;
  if (seed_set) cfg.seed = seed;
  if (simulator_set) cfg.simulator = simulator;
  if (rows_set) cfg.grid.rows = rows;
  if (cols_set) cfg.grid.cols = cols;
  if (mixed_lanes) cfg.micro.dedicated_turn_lanes = false;
  if (threads_set) {
    cfg.micro.threads = threads;
    cfg.queue.threads = threads;
  }
  if (shards_set) cfg.shard.count = shards;
  if (allow_oversubscribe) cfg.shard.allow_oversubscribe = true;
  if (duration > 0.0) cfg.duration_s = duration;
  if (guard_set) {
    cfg.guard.enabled = true;
    cfg.guard.policy = guard.policy;
  }
  if (guard_interval_set) cfg.guard.interval_s = guard.interval_s;
  if (detect_set) cfg.detector.enabled = true;
  if (detect_adapt) cfg.detector.adapt = true;

  if (incident_at >= 0.0) {
    // Canned mixed incident starting at T, sized so every piece fires on any
    // grid: a lane closure to 30% capacity on the top-right junction's north
    // approach with restoration, dead detectors at the top-left junction, and
    // a controller outage with recovery at the center junction.
    const double t0 = incident_at;
    faults.capacity.push_back(
        {{0, cfg.grid.cols - 1, net::Side::North}, t0, t0 + 300.0, 0.3});
    faults.sensors.push_back(
        {{0, 0}, t0, t0 + 120.0, core::SensorFaultKind::Dropout, 0, 0});
    faults.controllers.push_back(
        {{cfg.grid.rows / 2, cfg.grid.cols / 2}, t0, t0 + 180.0});
  }
  // CLI faults append to (never replace) whatever the scenario file declares.
  cfg.faults.capacity.insert(cfg.faults.capacity.end(), faults.capacity.begin(),
                             faults.capacity.end());
  cfg.faults.sensors.insert(cfg.faults.sensors.end(), faults.sensors.begin(),
                            faults.sensors.end());
  cfg.faults.controllers.insert(cfg.faults.controllers.end(),
                                faults.controllers.begin(), faults.controllers.end());

  if (dump_scenario_flag) {
    try {
      std::fputs(scenario::dump_scenario(cfg).c_str(), stdout);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "abp_cli: error: %s\n", e.what());
      return 1;
    }
  }

  if (calibrate_mode || sweep_mode) {
    try {
      surrogate::CalibrationProfile profile;
      if (!profile_file.empty()) {
        profile = surrogate::load_profile_file(profile_file);
      } else {
        surrogate::CalibrationOptions copt;
        copt.jobs = jobs;
        copt.allow_oversubscribe = allow_oversubscribe;
        if (replications > 1) copt.replications = replications;
        profile = surrogate::calibrate(cfg, copt);
        std::fprintf(stderr,
                     "abp_cli: calibrated profile=%s service_scale=%.4f "
                     "transit_scale=%.4f capacity_scale=%.4f objective=%.6f "
                     "evaluations=%d\n",
                     profile.name.c_str(), profile.service_scale,
                     profile.transit_scale, profile.capacity_scale,
                     profile.objective, profile.evaluations);
      }
      if (calibrate_mode && !sweep_mode) {
        std::fputs(surrogate::dump_profile(profile).c_str(), stdout);
        return 0;
      }

      surrogate::SweepAxes axes;
      for (const std::string& c : split_fields(sweep_controllers)) {
        axes.controllers.push_back(parse_controller(c));
      }
      for (const std::string& p : split_fields(sweep_patterns)) {
        axes.patterns.push_back(parse_pattern(p));
      }
      for (const std::string& p : split_fields(sweep_periods)) {
        axes.periods_s.push_back(parse_double(p, "--sweep-periods"));
      }
      sweep_options.jobs = jobs;
      sweep_options.allow_oversubscribe = allow_oversubscribe;

      const surrogate::SweepReport report =
          surrogate::surrogate_sweep(cfg, profile, axes, sweep_options);
      std::printf("sweep points=%zu spot_checks=%d flagged=%d jobs=%d profile=%s\n",
                  report.rows.size(), report.spot_checks, report.flagged, jobs,
                  report.profile.name.c_str());
      for (const surrogate::MetricErrorBar& bar : report.error_bars) {
        std::printf(
            "error_bar metric=%s samples=%d mean_rel_err=%.4f ci95_halfwidth=%.4f "
            "max_rel_err=%.4f\n",
            bar.metric.c_str(), bar.samples, bar.mean_relative_error,
            bar.ci95_halfwidth, bar.max_relative_error);
      }
      // The frontier the sweep exists to find: best-ranked configs first.
      std::vector<const surrogate::SweepRow*> by_rank(report.rows.size());
      for (const surrogate::SweepRow& row : report.rows) {
        by_rank[static_cast<std::size_t>(row.rank)] = &row;
      }
      const std::size_t shown = by_rank.size() < 10 ? by_rank.size() : 10;
      for (std::size_t r = 0; r < shown; ++r) {
        const surrogate::SweepRow& row = *by_rank[r];
        std::printf(
            "rank=%zu controller=%s pattern=%s period_s=%.0f avg_queuing_s=%.2f%s\n", r,
            core::controller_type_name(row.point.controller).c_str(),
            traffic::pattern_name(row.point.pattern).c_str(), row.point.period_s,
            row.surrogate[0],
            row.spot_checked ? (row.spot.trusted ? " spot=ok" : " spot=FLAGGED") : "");
      }
      if (!report_file.empty()) {
        std::ofstream out(report_file, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "abp_cli: cannot write %s\n", report_file.c_str());
          return 1;
        }
        out << surrogate::dump_report(report);
        std::printf("report written: %s\n", report_file.c_str());
      }
      return report.flagged > 0 ? 4 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "abp_cli: error: %s\n", e.what());
      return 1;
    }
  }

  // The two axes multiply: each of the concurrent runs spins up the selected
  // backend's tick-level sweep workers. At most min(jobs, replications) runs
  // are ever in flight, so judge that; reject silent oversubscription here
  // with a friendlier message than the experiment runner's exception.
  const int tick = scenario::tick_threads(cfg);
  const int concurrent_runs = jobs < replications ? jobs : replications;
  const unsigned hc = std::thread::hardware_concurrency();
  if (!allow_oversubscribe && concurrent_runs > 1 && hc > 0 &&
      static_cast<long long>(concurrent_runs) * tick > static_cast<long long>(hc)) {
    std::fprintf(stderr,
                 "abp_cli: %d concurrent runs (min of --jobs %d and --replications %d) "
                 "x %d tick threads = %d workers oversubscribes this machine's %u "
                 "hardware threads;\nlower --jobs or --threads, or pass "
                 "--allow-oversubscribe (results are bit-identical either way, only "
                 "slower)\n",
                 concurrent_runs, jobs, replications, tick, concurrent_runs * tick, hc);
    return 2;
  }

  try {
    if (replications > 1) {
      // Batch mode: per-seed replication fleet through the experiment runner,
      // with per-run statuses — a failing or deadline-hitting seed never
      // takes its siblings' results down with it.
      exp::ExperimentRunner runner({.jobs = jobs,
                                    .allow_oversubscribe = allow_oversubscribe,
                                    .tick_budget = tick_budget,
                                    .retries = retries});
      const std::vector<exp::RunStatus> statuses =
          runner.run_statuses(exp::replication_configs(cfg, replications));
      std::printf(
          "pattern=%s controller=%s simulator=%s grid=%dx%d duration=%.0fs "
          "replications=%d jobs=%d\n",
          traffic::pattern_name(cfg.demand.pattern).c_str(),
          core::controller_type_name(cfg.controller.type).c_str(),
          cfg.simulator == scenario::SimulatorKind::Micro ? "micro" : "queue",
          cfg.grid.rows, cfg.grid.cols, cfg.duration_s, replications, jobs);

      Accumulator acc;
      std::size_t errors = 0;
      std::size_t guard_violations = 0;
      std::size_t detections_total = 0;
      for (std::size_t i = 0; i < statuses.size(); ++i) {
        const exp::RunStatus& s = statuses[i];
        const unsigned long long run_seed = static_cast<unsigned long long>(cfg.seed + i);
        switch (s.outcome) {
          case exp::RunStatus::Outcome::Ok:
            std::printf("seed=%llu avg_queuing_s=%.2f\n", run_seed,
                        s.result.metrics.average_queuing_time_s());
            acc.add(s.result.metrics.average_queuing_time_s());
            guard_violations += s.result.guard.violations.size();
            detections_total += s.result.detections.events.size();
            break;
          case exp::RunStatus::Outcome::Timeout:
            // Partial result: valid up to the truncated horizon, excluded
            // from the summary (mixing horizons would skew the mean).
            std::printf("seed=%llu status=timeout t=%.0fs avg_queuing_s=%.2f (partial)\n",
                        run_seed, s.result.duration_s,
                        s.result.metrics.average_queuing_time_s());
            guard_violations += s.result.guard.violations.size();
            break;
          case exp::RunStatus::Outcome::Error:
            std::printf("seed=%llu status=error attempts=%d error=%s\n", run_seed,
                        s.attempts, s.error.c_str());
            errors += 1;
            break;
        }
      }
      const int ok_count = static_cast<int>(acc.count());
      if (ok_count > 0) {
        const double ci =
            ok_count > 1 ? stats::student_t_quantile(0.975, ok_count - 1) * acc.stddev() /
                               std::sqrt(static_cast<double>(ok_count))
                         : 0.0;
        std::printf(
            "ok=%d/%d mean_s=%.2f stddev_s=%.2f ci95_halfwidth_s=%.2f (Student-t, "
            "df=%d)\n",
            ok_count, replications, acc.mean(), acc.stddev(), ci, ok_count - 1);
      } else {
        std::printf("ok=0/%d (no completed runs to summarize)\n", replications);
      }
      if (cfg.guard.enabled) {
        std::printf("guard_violations=%zu\n", guard_violations);
      }
      if (cfg.detector.enabled) {
        std::printf("detections_total=%zu\n", detections_total);
      }
      if (!csv_prefix.empty()) {
        std::ofstream out(csv_prefix + "_replications.csv");
        CsvWriter w(out);
        w.row({"seed", "status", "avg_queuing_s"});
        for (std::size_t i = 0; i < statuses.size(); ++i) {
          const exp::RunStatus& s = statuses[i];
          const char* status_name = s.outcome == exp::RunStatus::Outcome::Ok ? "ok"
                                    : s.outcome == exp::RunStatus::Outcome::Timeout
                                        ? "timeout"
                                        : "error";
          w.typed_row(static_cast<unsigned long long>(cfg.seed + i), status_name,
                      s.ok() || s.outcome == exp::RunStatus::Outcome::Timeout
                          ? s.result.metrics.average_queuing_time_s()
                          : 0.0);
        }
        std::printf("csv written: %s_replications.csv\n", csv_prefix.c_str());
      }
      if (errors > 0) return 1;
      if (cfg.guard.enabled && guard_violations > 0) return 3;
      return 0;
    }

    // Watch the north approach of the top-right junction (Fig. 5's setup uses
    // the east approach; north is present in every grid size) unless the
    // scenario file already declares watches. Single-run mode only: the
    // replication summary never reads the series, so batch runs skip the
    // per-tick sampling and storage.
    if (cfg.watches.empty()) {
      cfg.watches.push_back({.row = 0,
                             .col = cfg.grid.cols - 1,
                             .side = net::Side::North,
                             .name = "watch"});
    }

    const stats::RunResult r = scenario::run_scenario(cfg);

    std::printf(
        "pattern=%s controller=%s simulator=%s grid=%dx%d duration=%.0fs seed=%llu\n",
        traffic::pattern_name(cfg.demand.pattern).c_str(),
        core::controller_type_name(cfg.controller.type).c_str(),
        cfg.simulator == scenario::SimulatorKind::Micro ? "micro" : "queue",
        cfg.grid.rows, cfg.grid.cols, r.duration_s,
        static_cast<unsigned long long>(cfg.seed));
    std::printf("generated=%zu entered=%zu completed=%zu in_network_at_end=%zu\n",
                r.metrics.generated, r.metrics.entered, r.metrics.completed,
                r.metrics.in_network_at_end);
    std::printf(
        "avg_queuing_s=%.2f avg_travel_s=%.2f p50_queuing_s=%.2f p95_queuing_s=%.2f\n",
        r.metrics.average_queuing_time_s(), r.metrics.average_travel_time_s(),
        r.metrics.queuing_time_s.quantile(0.5), r.metrics.queuing_time_s.quantile(0.95));
    if (cfg.guard.enabled) {
      std::printf("guard_checks=%zu guard_violations=%zu\n", r.guard.checks,
                  r.guard.violations.size());
      for (std::size_t i = 0; i < r.guard.violations.size() && i < 3; ++i) {
        std::printf("guard: %s\n", r.guard.violations[i].message.c_str());
      }
    }
    if (cfg.detector.enabled) {
      std::printf("detections=%zu detector_samples=%zu\n", r.detections.events.size(),
                  r.detections.samples);
      for (std::size_t i = 0; i < r.detections.events.size() && i < 8; ++i) {
        const stats::DetectionEvent& e = r.detections.events[i];
        std::string links;
        for (std::size_t j = 0; j < e.links.size(); ++j) {
          if (j > 0) links += ",";
          links += std::to_string(e.links[j]);
        }
        std::printf("detect: t=%.0fs junction=(%d,%d) shift=%s stat=%.1f links=%s\n",
                    e.time_s, e.row, e.col, e.direction > 0 ? "up" : "down",
                    e.statistic, links.c_str());
      }
    }

    if (!csv_prefix.empty()) {
      {
        std::ofstream out(csv_prefix + "_queue.csv");
        CsvWriter w(out);
        w.row({"time_s", "queued_vehicles"});
        const auto& series = r.road_series.front();
        for (std::size_t i = 0; i < series.size(); ++i) {
          w.typed_row(series.times()[i], series.values()[i]);
        }
      }
      {
        std::ofstream out(csv_prefix + "_phases.csv");
        CsvWriter w(out);
        w.row({"time_s", "phase"});
        for (const auto& s :
             r.phase_traces[static_cast<std::size_t>(cfg.grid.cols - 1)].samples()) {
          w.typed_row(s.time, s.phase);
        }
      }
      std::printf("csv written: %s_queue.csv, %s_phases.csv\n", csv_prefix.c_str(),
                  csv_prefix.c_str());
    }
    if (cfg.guard.enabled && !r.guard.violations.empty()) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abp_cli: error: %s\n", e.what());
    return 1;
  }
}
