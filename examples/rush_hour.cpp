// Rush hour: load the scenarios/rush_hour_ramp.json library scenario — a
// 90-minute piecewise demand timeline (calm uniform traffic, doubled uniform
// traffic, then a Pattern-I surge) — and watch how UTIL-BP's
// utilization-aware rules behave as congestion builds: the varying-length
// phases shorten, the amber share rises, and under heavy load the full-road
// rule (gain beta) stops feeding saturated central roads.
//
// The demand timeline lives in the scenario file, not in this program
// (docs/SCENARIOS.md describes the format); the code shows both ways to run
// it: the continuous run straight from the config, and per-level isolation
// runs built from the file's schedule segments.
//
// Expected output: a summary line for the continuous 90-minute run, a
// three-row table of per-level metrics (avg queuing roughly 15 s calm /
// 40 s busy / 200+ s surge), an ASCII chart of the central junction's north
// approach queue per level, and a phase table showing the amber share
// rising with load.
//
//   ./build/rush_hour
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/scenario/scenario.hpp"
#include "src/scenario/scenario_io.hpp"
#include "src/traffic/patterns.hpp"
#include "src/util/ascii_chart.hpp"

int main() {
  using namespace abp;

  // The library scenario is the single source of truth for the timeline.
  const scenario::ScenarioConfig base =
      scenario::load_scenario_file(std::string(ABP_SCENARIO_DIR) + "/rush_hour_ramp.json");
  const std::vector<traffic::ScheduleSegment>& timeline =
      base.demand.schedule.segments();

  // Continuous run: ONE simulation over the whole piecewise schedule, so
  // queues carry over between load levels — the realistic rush-hour picture.
  {
    const stats::RunResult r = scenario::run_scenario(base);
    std::printf(
        "Continuous %.0f-min timeline (queues carry over between levels):\n"
        "  avg queuing %.2f s | completed %zu | peak in-network %.0f vehicles\n\n",
        base.duration_s / 60.0, r.metrics.average_queuing_time_s(),
        r.metrics.completed, r.in_network_series.max());
  }

  // Per-level isolation runs: each schedule segment as its own fresh-network
  // run, so the levels can be compared without carry-over effects.
  std::printf("Per-level runs (fresh network each, %.0f min):\n\n",
              timeline.front().duration_s / 60.0);
  const char markers[] = {'.', 'o', '#', '+', 'x'};
  std::vector<ChartSeries> series;
  std::vector<stats::RunResult> results;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const traffic::ScheduleSegment& seg = timeline[i];
    scenario::ScenarioConfig level = base;
    level.demand.schedule = traffic::DemandSchedule{};
    level.demand.pattern = seg.pattern;
    level.demand.interarrival_scale =
        base.demand.interarrival_scale * seg.interarrival_scale;
    level.duration_s = seg.duration_s;
    labels.push_back(traffic::pattern_name(seg.pattern) + " x" +
                     std::to_string(seg.interarrival_scale).substr(0, 4));
    level.watches.assign(
        {{.row = 1, .col = 1, .side = net::Side::North, .name = labels.back()}});

    results.push_back(scenario::run_scenario(level));
    const stats::RunResult& r = results.back();
    std::printf("%-22s avg queuing %7.2f s | completed %5zu | still inside %4zu\n",
                labels.back().c_str(), r.metrics.average_queuing_time_s(),
                r.metrics.completed, r.metrics.in_network_at_end);

    ChartSeries s{.name = labels.back(), .marker = markers[i % sizeof markers]};
    s.x = r.road_series[0].times();
    s.y = r.road_series[0].values();
    series.push_back(std::move(s));
  }

  ChartOptions opt;
  opt.title = "\nQueue on the north approach of the central junction J(1,1)";
  opt.x_label = "Time [s]";
  opt.y_label = "Queued vehicles";
  opt.height = 14;
  std::cout << render_chart(series, opt);

  // Phase behaviour at the central junction: adaptive phases shorten and the
  // amber share grows as the load rises.
  std::printf("\n%-22s %12s %18s\n", "load level", "ambers", "amber time share");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const stats::PhaseTrace& trace = results[i].phase_traces[4];  // J(1,1)
    std::printf("%-22s %12d %17.1f%%\n", labels[i].c_str(), trace.transition_count(),
                100.0 * trace.amber_fraction());
  }
  return 0;
}
