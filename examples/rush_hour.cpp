// Rush hour: run the 3x3 grid at three escalating demand levels and watch
// how UTIL-BP's utilization-aware rules behave as congestion builds — the
// varying-length phases shorten, amber share rises, and under heavy load the
// full-road rule (gain beta) stops feeding saturated central roads.
//
//   ./build/examples/rush_hour
#include <cstdio>
#include <iostream>

#include "src/core/factory.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/net/validation.hpp"
#include "src/traffic/demand.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

struct Segment {
  const char* label;
  abp::traffic::DemandConfig demand;
  char marker;
};

}  // namespace

int main() {
  using namespace abp;

  net::GridConfig grid_cfg;  // the paper's 3x3, W=120, mu=1
  const net::Network network = net::build_grid(grid_cfg);
  net::validate_or_throw(network);

  // Three 30-minute load levels: calm uniform traffic, doubled uniform
  // traffic, and a surge at twice the Pattern-I (adjacent-heavy) rates.
  traffic::DemandConfig calm;
  calm.pattern = traffic::PatternKind::II;
  traffic::DemandConfig busy = calm;
  busy.interarrival_scale = 0.5;
  traffic::DemandConfig surge;
  surge.pattern = traffic::PatternKind::I;
  surge.interarrival_scale = 0.5;

  const Segment segments[] = {
      {"calm  (Pattern II)", calm, '.'},
      {"busy  (2x Pattern II)", busy, 'o'},
      {"surge (2x Pattern I)", surge, '#'},
  };

  // The same timeline can run as ONE simulation with a piecewise demand
  // schedule — queues then carry over between load levels, which is the
  // realistic rush-hour picture; the per-level runs below isolate each level
  // with a fresh network instead.
  traffic::DemandConfig scheduled;
  scheduled.schedule = traffic::DemandSchedule({
      {.duration_s = 1800.0, .pattern = traffic::PatternKind::II, .interarrival_scale = 1.0},
      {.duration_s = 1800.0, .pattern = traffic::PatternKind::II, .interarrival_scale = 0.5},
      {.duration_s = 1800.0, .pattern = traffic::PatternKind::I, .interarrival_scale = 0.5},
  });
  {
    traffic::DemandGenerator demand(network, scheduled, 7);
    core::ControllerSpec spec;
    spec.type = core::ControllerType::UtilBp;
    microsim::MicroSim sim(network, microsim::MicroSimConfig{},
                           core::make_controllers(spec, network), demand, 11);
    const stats::RunResult r = sim.finish(3.0 * 1800.0);
    std::printf(
        "Continuous 90-min timeline (queues carry over between levels):\n"
        "  avg queuing %.2f s | completed %zu | peak in-network %.0f vehicles\n\n",
        r.metrics.average_queuing_time_s(), r.metrics.completed, r.in_network_series.max());
  }

  std::printf("Per-level runs (fresh network each, 30 min):\n\n");
  std::vector<ChartSeries> series;
  std::vector<stats::RunResult> results;
  for (const Segment& segment : segments) {
    traffic::DemandGenerator demand(network, segment.demand, 7);
    core::ControllerSpec spec;
    spec.type = core::ControllerType::UtilBp;
    microsim::MicroSim sim(network, microsim::MicroSimConfig{},
                           core::make_controllers(spec, network), demand, 11);
    const auto center = network.at_grid(1, 1);
    sim.watch_road(network.intersection(*center).incoming_on(net::Side::North),
                   segment.label);
    results.push_back(sim.finish(1800.0));
    const stats::RunResult& r = results.back();

    std::printf("%-22s avg queuing %7.2f s | completed %5zu | still inside %4zu\n",
                segment.label, r.metrics.average_queuing_time_s(), r.metrics.completed,
                r.metrics.in_network_at_end);

    ChartSeries s{.name = segment.label, .marker = segment.marker};
    s.x = r.road_series[0].times();
    s.y = r.road_series[0].values();
    series.push_back(std::move(s));
  }

  ChartOptions opt;
  opt.title = "\nQueue on the north approach of the central junction J(1,1)";
  opt.x_label = "Time [s]";
  opt.y_label = "Queued vehicles";
  opt.height = 14;
  std::cout << render_chart(series, opt);

  // Phase behaviour at the central junction: adaptive phases shorten and the
  // amber share grows as the load rises.
  std::printf("\n%-22s %12s %18s\n", "load level", "ambers", "amber time share");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const stats::PhaseTrace& trace = results[i].phase_traces[4];  // J(1,1)
    std::printf("%-22s %12d %17.1f%%\n", segments[i].label, trace.transition_count(),
                100.0 * trace.amber_fraction());
  }
  return 0;
}
