// Head-to-head comparison of the four controllers on the paper's 3x3 grid.
//
// Runs one hour of the selected pattern under UTIL-BP, CAP-BP, the original
// back-pressure policy and a fixed-time controller, and prints a table of
// network-wide metrics — the Table-III style comparison, with UTIL-BP
// expected to post the lowest average queuing time on every pattern.
// Expected output: a four-row table (one per controller) of completed
// counts, average queuing/travel times and tail quantiles. Usage:
//   ./build/grid_comparison [pattern] [duration_s]
// where pattern is one of I, II, III, IV, mixed (default I).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

namespace {

abp::traffic::PatternKind parse_pattern(const std::string& name) {
  using abp::traffic::PatternKind;
  if (name == "I") return PatternKind::I;
  if (name == "II") return PatternKind::II;
  if (name == "III") return PatternKind::III;
  if (name == "IV") return PatternKind::IV;
  if (name == "mixed" || name == "Mixed") return PatternKind::Mixed;
  std::fprintf(stderr, "unknown pattern '%s' (use I, II, III, IV, mixed)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abp;

  const traffic::PatternKind pattern =
      argc > 1 ? parse_pattern(argv[1]) : traffic::PatternKind::I;
  const double duration =
      argc > 2 ? std::atof(argv[2]) : traffic::paper_duration_s(pattern);

  const core::ControllerType policies[] = {
      core::ControllerType::UtilBp,
      core::ControllerType::CapBp,
      core::ControllerType::OriginalBp,
      core::ControllerType::FixedTime,
  };

  stats::TextTable table({"Policy", "Avg queuing [s]", "Avg travel [s]", "Completed",
                          "In network", "Ambers @J(0,2)"});
  for (core::ControllerType type : policies) {
    scenario::ScenarioConfig cfg = scenario::paper_scenario(pattern, type);
    cfg.duration_s = duration;
    cfg.seed = 2020;
    const stats::RunResult r = scenario::run_scenario(cfg);
    table.add_row({core::controller_type_name(type),
                   stats::TextTable::num(r.metrics.average_queuing_time_s()),
                   stats::TextTable::num(r.metrics.average_travel_time_s()),
                   std::to_string(r.metrics.completed),
                   std::to_string(r.metrics.in_network_at_end),
                   std::to_string(r.phase_traces[2].transition_count())});
  }

  std::printf("Pattern %s, %.0f s simulated, 3x3 grid (paper defaults)\n",
              traffic::pattern_name(pattern).c_str(), duration);
  table.print(std::cout);
  return 0;
}
