// A8: online changepoint detection — delay, false alarms, recovered delay.
//
// Three library workloads probe the detector (docs/CHANGEPOINT.md): the
// incident closures (micro), the stadium surge (queue backend), and the
// stationary baseline, which must stay alarm-free. Each runs monitor-only
// to measure pure detection quality, then the two shifted workloads run
// again with adaptation closing the loop, against the monitor-only run as
// the oblivious reference (the monitor is passive, so its metrics ARE the
// detector-free metrics — tests/changepoint_test.cpp pins that).
//
// Durations are NOT scaled by ABP_FAST: the fault onsets and detector
// warmup are absolute scenario times, and a shortened run would end before
// the regime shift it is supposed to detect.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/scenario/scenario_io.hpp"
#include "src/stats/report.hpp"
#include "src/stats/run_result.hpp"

namespace {

struct Workload {
  std::string file;
  // First regime shift of the scenario, in simulated seconds; < 0 for the
  // stationary baseline (every event is a false alarm).
  double onset_s;
  bool try_adaptation;
};

std::string format_s(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace abp;
  bench::print_header("A8: changepoint detection delay, false alarms, recovered delay");

  const Workload workloads[] = {
      {"incident_lane_closure.json", 300.0, true},
      {"event_surge.json", 2700.0, true},
      {"baseline_3x3.json", -1.0, false},
  };

  // Row-major batch: monitor-only runs first, then the adaptive runs.
  std::vector<scenario::ScenarioConfig> configs;
  std::vector<std::size_t> adaptive_of(std::size(workloads), 0);
  for (const Workload& w : workloads) {
    scenario::ScenarioConfig cfg = scenario::load_scenario_file(
        (std::filesystem::path(ABP_SCENARIO_DIR) / w.file).string());
    cfg.detector.enabled = true;
    cfg.detector.adapt = false;
    configs.push_back(cfg);
  }
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    if (!workloads[i].try_adaptation) continue;
    scenario::ScenarioConfig cfg = configs[i];
    cfg.detector.adapt = true;
    adaptive_of[i] = configs.size();
    configs.push_back(cfg);
  }

  const int jobs = exp::max_safe_jobs();
  std::cout << "[exp] " << configs.size() << " runs, jobs=" << jobs << "\n";
  exp::ExperimentRunner runner({.jobs = jobs});
  const std::vector<stats::RunResult> results = runner.run(configs);

  stats::TextTable detection({"Workload", "Onset [s]", "First event [s]", "Delay [s]",
                              "False alarms", "Events"});
  std::ofstream csv = bench::open_csv("changepoint_detection");
  csv << "workload,onset_s,first_event_s,delay_s,false_alarms,events\n";
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    const Workload& w = workloads[i];
    const stats::DetectionReport& d = results[i].detections;
    // Events before the onset (all of them, on the stationary baseline) are
    // false alarms; the first event at or after the onset sets the delay.
    std::size_t false_alarms = 0;
    double first_true = -1.0;
    for (const stats::DetectionEvent& e : d.events) {
      if (w.onset_s < 0.0 || e.time_s < w.onset_s) {
        ++false_alarms;
      } else if (first_true < 0.0) {
        first_true = e.time_s;
      }
    }
    const bool detected = first_true >= 0.0;
    const double delay = detected ? first_true - w.onset_s : -1.0;
    detection.add_row({w.file,
                       w.onset_s < 0.0 ? "-" : format_s(w.onset_s),
                       detected ? format_s(first_true) : "-",
                       detected ? format_s(delay) : "-",
                       std::to_string(false_alarms),
                       std::to_string(d.events.size())});
    csv << w.file << ',' << w.onset_s << ',' << first_true << ',' << delay << ','
        << false_alarms << ',' << d.events.size() << '\n';
  }
  detection.print(std::cout);

  stats::TextTable recovery({"Workload", "Oblivious avg queuing [s]",
                             "Adaptive avg queuing [s]", "Recovered [s]", "Events"});
  std::ofstream rcsv = bench::open_csv("changepoint_recovery");
  rcsv << "workload,oblivious_avg_queuing_s,adaptive_avg_queuing_s,recovered_s,events\n";
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    if (!workloads[i].try_adaptation) continue;
    const double oblivious = results[i].metrics.average_queuing_time_s();
    const stats::RunResult& adaptive = results[adaptive_of[i]];
    const double adapted = adaptive.metrics.average_queuing_time_s();
    recovery.add_row({workloads[i].file, format_s(oblivious), format_s(adapted),
                      format_s(oblivious - adapted),
                      std::to_string(adaptive.detections.events.size())});
    rcsv << workloads[i].file << ',' << oblivious << ',' << adapted << ','
         << oblivious - adapted << ',' << adaptive.detections.events.size() << '\n';
  }
  recovery.print(std::cout);
  std::cout << "Recovered > 0 = the incident-tuned re-tune helps; the sustained\n"
               "surge is the documented counter-case (docs/CHANGEPOINT.md).\n";
  return 0;
}
