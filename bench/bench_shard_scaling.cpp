// Shard-scaling bench: vehicle-steps per wall-clock second on metro-scale
// square grids (16x16, 32x32, 64x64) at shard counts {1, 2, 4}, for both
// simulators, through the unified sim::Simulator interface — so the 1-shard
// rows run the monolithic backend and the K-shard rows run the forked
// multi-process coordinator (docs/SHARDING.md), exactly as `abp_cli
// --shards` would. The K-shard results are bit-identical to the 1-shard
// ones (pinned by tests/shard_invariance_test.cpp), so every row pair is a
// pure throughput comparison.
//
// Schema mirrors BENCH_hotpath.json (docs/PERFORMANCE.md) plus a "shards"
// field per row. The horizon shrinks with grid area like bench_hotpath's
// metro rows do — throughput in vehicle-steps/s is horizon-independent once
// the grid is loaded — and ABP_FAST=1 scales it down a further 10x for
// smoke runs. The JSON path defaults to BENCH_shard.json in the working
// directory and is overridable as argv[1]; CI gates the 4-shard speedup on
// >=32x32 grids with bench/compare_shard.py (multi-core runners only — a
// single-vCPU box records the contention cost instead of refusing to run).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"

namespace abp::bench {
namespace {

struct Row {
  int grid = 0;
  std::string sim;
  int shards = 1;
  double sim_seconds = 0.0;
  long long vehicle_steps = 0;  // sum over ticks of vehicles in the network
  std::size_t completed = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double vehicle_steps_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(vehicle_steps) / wall_seconds : 0.0;
  }
  [[nodiscard]] double ns_per_vehicle_step() const {
    return vehicle_steps > 0 ? wall_seconds * 1e9 / static_cast<double>(vehicle_steps)
                             : 0.0;
  }
};

Row run_one(scenario::SimulatorKind kind, const char* name, int n, int shards,
            double duration_s, std::uint64_t seed) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = n;
  cfg.grid.cols = n;
  cfg.simulator = kind;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  cfg.shard.count = shards;
  // Like bench_hotpath's thread rows: measure whatever the host gives — a
  // small box records the oversubscription cost instead of refusing to run.
  cfg.shard.allow_oversubscribe = true;
  const double dt_s =
      kind == scenario::SimulatorKind::Micro ? cfg.micro.dt_s : cfg.queue.step_s;

  Row row;
  row.grid = n;
  row.sim = name;
  row.shards = shards;
  row.sim_seconds = duration_s;
  const double ticks_per_second = 1.0 / dt_s;
  stats::RunResult result;
  row.wall_seconds = timed_seconds([&] {
    const std::unique_ptr<sim::Simulator> sim = sim::make_simulator(cfg);
    // Sample occupancy once per simulated second (a K-query round trip on the
    // sharded path) — the same estimator bench_hotpath uses, so the two
    // benches' vehicle-steps columns are directly comparable.
    for (double t = 1.0; t <= duration_s; t += 1.0) {
      sim->run_until(t);
      row.vehicle_steps +=
          static_cast<long long>(sim->vehicles_in_network() * ticks_per_second);
    }
    result = sim->finish(duration_s);
  });
  row.completed = result.metrics.completed;
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"shard_scaling\",\n"
      << "  \"compiler\": \"" << kCompiler << "\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"grid\": \"" << r.grid << "x" << r.grid << "\", \"sim\": \"" << r.sim
        << "\", \"shards\": " << r.shards << ", \"sim_seconds\": " << r.sim_seconds
        << ", \"vehicle_steps\": " << r.vehicle_steps
        << ", \"completed\": " << r.completed << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"vehicle_steps_per_sec\": " << r.vehicle_steps_per_sec()
        << ", \"ns_per_vehicle_step\": " << r.ns_per_vehicle_step() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] " << path << "\n";
}

}  // namespace
}  // namespace abp::bench

int main(int argc, char** argv) {
  using namespace abp;
  using namespace abp::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_shard.json";
  const std::uint64_t seed = 2020;
  const int shard_counts[] = {1, 2, 4};
  // Horizon shrinks with grid area (the 64x64 carries 16x the vehicles of
  // the 16x16), keeping every row's wall time in the same ballpark.
  struct Grid {
    int n;
    double horizon_scale;
  };
  const Grid grids[] = {{16, 0.125}, {32, 0.0625}, {64, 0.03125}};

  print_header("Shard scaling (vehicle-steps per wall-clock second)");
  std::printf("compiler: %s, hardware threads: %u\n", kCompiler,
              std::thread::hardware_concurrency());
  std::printf("%-7s %-7s %7s %14s %12s %10s %16s %14s\n", "grid", "sim", "shards",
              "vehicle-steps", "completed", "wall [s]", "veh-steps/s", "ns/veh-step");

  std::vector<Row> rows;
  std::ofstream csv = open_csv("shard_scaling");
  csv << "grid,sim,shards,sim_seconds,vehicle_steps,completed,wall_seconds,"
         "vehicle_steps_per_sec,ns_per_vehicle_step\n";
  auto emit = [&](Row row) {
    std::printf("%dx%-4d %-7s %7d %14lld %12zu %10.2f %16.0f %14.2f\n", row.grid,
                row.grid, row.sim.c_str(), row.shards, row.vehicle_steps, row.completed,
                row.wall_seconds, row.vehicle_steps_per_sec(), row.ns_per_vehicle_step());
    std::fflush(stdout);
    csv << row.grid << "x" << row.grid << "," << row.sim << "," << row.shards << ","
        << row.sim_seconds << "," << row.vehicle_steps << "," << row.completed << ","
        << row.wall_seconds << "," << row.vehicle_steps_per_sec() << ","
        << row.ns_per_vehicle_step() << "\n";
    rows.push_back(std::move(row));
  };
  for (const Grid& g : grids) {
    const double duration_s = 7200.0 * g.horizon_scale * duration_scale();
    for (int shards : shard_counts) {
      emit(run_one(scenario::SimulatorKind::Queue, "queue", g.n, shards, duration_s, seed));
    }
    for (int shards : shard_counts) {
      emit(run_one(scenario::SimulatorKind::Micro, "micro", g.n, shards, duration_s, seed));
    }
  }
  write_json(json_path, rows);
  return 0;
}
