// A5: stability frontier (Section IV, Q1).
//
// The paper concedes UTIL-BP forfeits the *maximum-stability guarantee* of
// idealized back-pressure (transition phases, finite capacities, flow on
// negative pressure differences). This bench measures what is kept in
// practice: sweep the demand intensity and report whether the in-network
// vehicle count stays bounded (stable) or grows through the run (unstable),
// for UTIL-BP, CAP-BP and fixed-time control.
//
// Shape to expect: every policy is stable at low intensity and saturates at
// high intensity; the adaptive policy sustains at least as much demand as
// the fixed-length one before its backlog diverges.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

namespace {

struct Outcome {
  double backlog_growth = 0.0;  // last-decile mean / first-decile mean
  double final_in_network = 0.0;
  double avg_queuing = 0.0;
};

Outcome measure(abp::core::ControllerType type, double intensity, double duration) {
  using namespace abp;
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, type, 16.0);
  cfg.duration_s = duration;
  cfg.seed = 2020;
  // intensity 1.0 = Table II Pattern II rates; higher = proportionally more
  // vehicles (interarrival_scale is its reciprocal).
  cfg.demand.interarrival_scale = 1.0 / intensity;
  const stats::RunResult r = scenario::run_scenario(cfg);

  const auto& v = r.in_network_series.values();
  Outcome out;
  if (v.size() >= 20) {
    const std::size_t decile = v.size() / 10;
    double head = 0.0, tail = 0.0;
    for (std::size_t i = 0; i < decile; ++i) {
      head += v[i];
      tail += v[v.size() - 1 - i];
    }
    out.backlog_growth = tail / std::max(head, 1.0);
    out.final_in_network = v.back();
  }
  out.avg_queuing = r.metrics.average_queuing_time_s();
  return out;
}

}  // namespace

int main() {
  using namespace abp;
  bench::print_header("A5: stability frontier — demand intensity sweep (Pattern II base)");

  const double duration = 3600.0 * bench::duration_scale();
  const core::ControllerType policies[] = {core::ControllerType::UtilBp,
                                           core::ControllerType::CapBp,
                                           core::ControllerType::FixedTime};

  stats::TextTable table({"Intensity (x Pattern II)", "Policy", "Backlog growth (x)",
                          "In network at end", "Avg queuing [s]", "Verdict"});
  auto csv = bench::open_csv("stability_frontier");
  CsvWriter w(csv);
  w.row({"intensity", "policy", "backlog_growth", "final_in_network", "avg_queuing_s",
         "stable"});

  for (double intensity : {0.5, 0.8, 1.0, 1.2, 1.5, 2.0}) {
    for (core::ControllerType type : policies) {
      const Outcome o = measure(type, intensity, duration);
      // Bounded backlog: the last decile is not a multiple of the first.
      const bool stable = o.backlog_growth < 2.0;
      table.add_row({stats::TextTable::num(intensity, 1),
                     core::controller_type_name(type),
                     stats::TextTable::num(o.backlog_growth, 2),
                     stats::TextTable::num(o.final_in_network, 0),
                     stats::TextTable::num(o.avg_queuing),
                     stable ? "stable" : "UNSTABLE"});
      w.typed_row(intensity, core::controller_type_name(type), o.backlog_growth,
                  o.final_in_network, o.avg_queuing, stable ? 1 : 0);
    }
  }
  table.print(std::cout);
  return 0;
}
