// A7: statistical confidence for the headline comparison.
//
// The paper reports single simulation runs. This bench replicates the
// Pattern I and Pattern II comparisons across independent seeds and reports
// mean +- 95% CI (Student-t, df = 4) of the average queuing time, so the
// UTIL-BP < CAP-BP ordering is established beyond seed luck. Each
// replication fleet runs through exp::ExperimentRunner with jobs sized to
// the machine; per-seed results are bit-identical at every jobs count.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

int main() {
  using namespace abp;
  bench::print_header("A7: seed-replication confidence (5 seeds, 1 h each)");

  const double duration = 3600.0 * bench::duration_scale();
  constexpr int kReplications = 5;
  const int jobs = exp::max_safe_jobs();
  std::cout << "[exp] " << kReplications << " seeds per cell, jobs=" << jobs << "\n";

  stats::TextTable table({"Pattern", "Policy", "Avg queuing mean [s]", "Stddev [s]",
                          "95% CI half-width [s]"});
  auto csv = bench::open_csv("confidence");
  CsvWriter w(csv);
  w.row({"pattern", "policy", "mean_s", "stddev_s", "ci95_halfwidth_s"});

  for (traffic::PatternKind pattern : {traffic::PatternKind::I, traffic::PatternKind::II}) {
    double means[2];
    double cis[2];
    int idx = 0;
    for (core::ControllerType type :
         {core::ControllerType::UtilBp, core::ControllerType::CapBp}) {
      scenario::ScenarioConfig cfg = scenario::paper_scenario(pattern, type, 16.0);
      cfg.duration_s = duration;
      cfg.seed = 1000;
      const scenario::ReplicationSummary s =
          scenario::run_replications(cfg, kReplications, jobs);
      means[idx] = s.mean_s;
      cis[idx] = s.ci95_halfwidth_s;
      ++idx;
      table.add_row({traffic::pattern_name(pattern), core::controller_type_name(type),
                     stats::TextTable::num(s.mean_s), stats::TextTable::num(s.stddev_s),
                     stats::TextTable::num(s.ci95_halfwidth_s)});
      w.typed_row(traffic::pattern_name(pattern), core::controller_type_name(type), s.mean_s,
                  s.stddev_s, s.ci95_halfwidth_s);
    }
    const bool separated = means[0] + cis[0] < means[1] - cis[1];
    std::cout << "Pattern " << traffic::pattern_name(pattern)
              << ": UTIL-BP vs CAP-BP(16) intervals "
              << (separated ? "do not overlap — ordering significant"
                            : "overlap — ordering not resolved at 5 seeds")
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
