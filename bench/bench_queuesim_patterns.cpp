// A4: model-level cross-check — re-runs the Table III comparison on the
// Section-II queueing-network simulator instead of the microscopic one.
//
// The orderings (UTIL-BP < best CAP-BP, pattern-dependent optimum) must
// survive the change of substrate; absolute values differ because the
// queueing model has no car-following dynamics.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

int main() {
  using namespace abp;
  bench::print_header("A4: Table III orderings on the queueing-network model");

  constexpr std::uint64_t kSeed = 2020;
  const traffic::PatternKind patterns[] = {
      traffic::PatternKind::I, traffic::PatternKind::II, traffic::PatternKind::III,
      traffic::PatternKind::IV};

  std::vector<double> periods;
  for (double p = 10.0; p <= 40.0; p += 2.0) periods.push_back(p);

  stats::TextTable table({"Pattern", "CAP-BP best period [s]", "CAP-BP avg queuing [s]",
                          "UTIL-BP avg queuing [s]", "Improvement [%]"});
  auto csv = bench::open_csv("queuesim_patterns");
  CsvWriter w(csv);
  w.row({"pattern", "capbp_best_period_s", "capbp_avg_queuing_s", "utilbp_avg_queuing_s",
         "improvement_pct"});

  for (traffic::PatternKind pattern : patterns) {
    const double duration = traffic::paper_duration_s(pattern) * bench::duration_scale();

    double best_cap = 1e18;
    double best_period = 0.0;
    for (double period : periods) {
      scenario::ScenarioConfig cfg =
          scenario::paper_scenario(pattern, core::ControllerType::CapBp, period);
      cfg.simulator = scenario::SimulatorKind::Queue;
      cfg.duration_s = duration;
      cfg.seed = kSeed;
      const double q = scenario::run_scenario(cfg).metrics.average_queuing_time_s();
      if (q < best_cap) {
        best_cap = q;
        best_period = period;
      }
    }

    scenario::ScenarioConfig util_cfg =
        scenario::paper_scenario(pattern, core::ControllerType::UtilBp);
    util_cfg.simulator = scenario::SimulatorKind::Queue;
    util_cfg.duration_s = duration;
    util_cfg.seed = kSeed;
    const double util_q = scenario::run_scenario(util_cfg).metrics.average_queuing_time_s();

    const double improvement = 100.0 * (best_cap - util_q) / best_cap;
    table.add_row({traffic::pattern_name(pattern), stats::TextTable::num(best_period, 0),
                   stats::TextTable::num(best_cap), stats::TextTable::num(util_q),
                   stats::TextTable::num(improvement, 1)});
    w.typed_row(traffic::pattern_name(pattern), best_period, best_cap, util_q, improvement);
  }
  table.print(std::cout);
  return 0;
}
