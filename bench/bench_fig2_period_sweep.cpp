// F2: reproduces Fig. 2 — average queuing time vs CAP-BP control period on
// the 4 h mixed traffic pattern, with the UTIL-BP result as the reference
// line that no period choice reaches.
//
// Paper shape to match: a U-shaped (convex) CAP-BP curve over the period
// axis (10-80 s) whose minimum still lies above the UTIL-BP horizontal line.
//
// The whole sweep — the UTIL-BP reference plus every CAP-BP period — is one
// config batch through exp::ExperimentRunner, sized to the machine with
// max_safe_jobs(); results are bit-identical to the old serial loop at every
// jobs count (the runner's invariance test pins this).
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"
#include "src/util/ascii_chart.hpp"

int main() {
  using namespace abp;
  bench::print_header(
      "Fig. 2: performance comparison for the mixed traffic pattern (4 h)");

  const double duration =
      traffic::paper_duration_s(traffic::PatternKind::Mixed) * bench::duration_scale();
  constexpr std::uint64_t kSeed = 2020;

  std::vector<double> periods;
  for (double p = 10.0; p <= 40.0; p += 2.0) periods.push_back(p);
  for (double p = 45.0; p <= 80.0; p += 5.0) periods.push_back(p);

  // Batch: configs[0] is the period-free UTIL-BP reference, configs[1 + i]
  // is CAP-BP at periods[i].
  std::vector<scenario::ScenarioConfig> configs;
  {
    scenario::ScenarioConfig util_cfg =
        scenario::paper_scenario(traffic::PatternKind::Mixed, core::ControllerType::UtilBp);
    util_cfg.duration_s = duration;
    util_cfg.seed = kSeed;
    configs.push_back(util_cfg);
  }
  for (double period : periods) {
    scenario::ScenarioConfig cfg = scenario::paper_scenario(
        traffic::PatternKind::Mixed, core::ControllerType::CapBp, period);
    cfg.duration_s = duration;
    cfg.seed = kSeed;
    configs.push_back(cfg);
  }

  const int jobs = exp::max_safe_jobs();
  std::cout << "[exp] " << configs.size() << " runs, jobs=" << jobs << "\n";
  exp::ExperimentRunner runner({.jobs = jobs});
  const std::vector<stats::RunResult> results = runner.run(configs);
  const double util_queuing = results[0].metrics.average_queuing_time_s();

  stats::TextTable table({"Period [s]", "CAP-BP avg queuing [s]", "UTIL-BP avg queuing [s]"});
  ChartSeries cap_series{.name = "CAP-BP (capacity-aware, fixed-length)", .marker = 'o'};
  ChartSeries util_series{.name = "UTIL-BP (proposed, adaptive)", .marker = '-'};

  auto csv = bench::open_csv("fig2_period_sweep");
  CsvWriter w(csv);
  w.row({"period_s", "capbp_avg_queuing_s", "utilbp_avg_queuing_s"});

  double best_cap = 1e18;
  double best_period = 0.0;
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const double period = periods[i];
    const double q = results[1 + i].metrics.average_queuing_time_s();
    if (q < best_cap) {
      best_cap = q;
      best_period = period;
    }
    table.add_row({stats::TextTable::num(period, 0), stats::TextTable::num(q),
                   stats::TextTable::num(util_queuing)});
    cap_series.x.push_back(period);
    cap_series.y.push_back(q);
    util_series.x.push_back(period);
    util_series.y.push_back(util_queuing);
    w.typed_row(period, q, util_queuing);
  }

  table.print(std::cout);
  ChartOptions opt;
  opt.title = "Fig. 2 — avg queuing time vs control period (mixed pattern)";
  opt.x_label = "Period [s]";
  opt.y_label = "Avg. queuing time [s]";
  std::cout << render_chart({cap_series, util_series}, opt);

  std::cout << "\nBest CAP-BP: " << best_cap << " s at period " << best_period
            << " s; UTIL-BP: " << util_queuing << " s ("
            << stats::TextTable::num(100.0 * (best_cap - util_queuing) / best_cap, 1)
            << "% better than the best fixed period)\n";
  return 0;
}
