// F2: reproduces Fig. 2 — average queuing time vs CAP-BP control period on
// the 4 h mixed traffic pattern, with the UTIL-BP result as the reference
// line that no period choice reaches.
//
// Paper shape to match: a U-shaped (convex) CAP-BP curve over the period
// axis (10-80 s) whose minimum still lies above the UTIL-BP horizontal line.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"
#include "src/util/ascii_chart.hpp"

int main() {
  using namespace abp;
  bench::print_header(
      "Fig. 2: performance comparison for the mixed traffic pattern (4 h)");

  const double duration =
      traffic::paper_duration_s(traffic::PatternKind::Mixed) * bench::duration_scale();
  constexpr std::uint64_t kSeed = 2020;

  // UTIL-BP reference (period-free).
  scenario::ScenarioConfig util_cfg =
      scenario::paper_scenario(traffic::PatternKind::Mixed, core::ControllerType::UtilBp);
  util_cfg.duration_s = duration;
  util_cfg.seed = kSeed;
  const double util_queuing =
      scenario::run_scenario(util_cfg).metrics.average_queuing_time_s();

  std::vector<double> periods;
  for (double p = 10.0; p <= 40.0; p += 2.0) periods.push_back(p);
  for (double p = 45.0; p <= 80.0; p += 5.0) periods.push_back(p);

  stats::TextTable table({"Period [s]", "CAP-BP avg queuing [s]", "UTIL-BP avg queuing [s]"});
  ChartSeries cap_series{.name = "CAP-BP (capacity-aware, fixed-length)", .marker = 'o'};
  ChartSeries util_series{.name = "UTIL-BP (proposed, adaptive)", .marker = '-'};

  auto csv = bench::open_csv("fig2_period_sweep");
  CsvWriter w(csv);
  w.row({"period_s", "capbp_avg_queuing_s", "utilbp_avg_queuing_s"});

  double best_cap = 1e18;
  double best_period = 0.0;
  for (double period : periods) {
    scenario::ScenarioConfig cfg = scenario::paper_scenario(
        traffic::PatternKind::Mixed, core::ControllerType::CapBp, period);
    cfg.duration_s = duration;
    cfg.seed = kSeed;
    const double q = scenario::run_scenario(cfg).metrics.average_queuing_time_s();
    if (q < best_cap) {
      best_cap = q;
      best_period = period;
    }
    table.add_row({stats::TextTable::num(period, 0), stats::TextTable::num(q),
                   stats::TextTable::num(util_queuing)});
    cap_series.x.push_back(period);
    cap_series.y.push_back(q);
    util_series.x.push_back(period);
    util_series.y.push_back(util_queuing);
    w.typed_row(period, q, util_queuing);
  }

  table.print(std::cout);
  ChartOptions opt;
  opt.title = "Fig. 2 — avg queuing time vs control period (mixed pattern)";
  opt.x_label = "Period [s]";
  opt.y_label = "Avg. queuing time [s]";
  std::cout << render_chart({cap_series, util_series}, opt);

  std::cout << "\nBest CAP-BP: " << best_cap << " s at period " << best_period
            << " s; UTIL-BP: " << util_queuing << " s ("
            << stats::TextTable::num(100.0 * (best_cap - util_queuing) / best_cap, 1)
            << "% better than the best fixed period)\n";
  return 0;
}
