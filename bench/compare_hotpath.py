#!/usr/bin/env python3
"""Perf-regression gate for the hot-path throughput bench.

Compares a fresh BENCH_hotpath.json against the checked-in baseline and fails
(exit 1) if any matching row's vehicle_steps_per_sec dropped by more than the
threshold (default 30%, loose enough for shared CI runners; override with
--threshold or the ABP_PERF_GATE_THRESHOLD env var, as a fraction).

Rows are matched by (grid, sim, threads). Rows present on only one side are
reported but never fail the gate, so adding a bench configuration does not
require updating the baseline in the same commit. Rows whose wall time is
below --min-wall on either side are skipped too: a smoke run finishes the
small grids in single-digit milliseconds, where scheduler noise swamps any
real signal (the regression gate's teeth are the larger grids). Speedups are reported too —
if a row improves by more than the threshold, the gate suggests re-capturing
the baseline so the bar ratchets upward.

Thread-scaling rows only mean something on a machine with that many cores:
on a single-vCPU box the threads=4 rows time-slice one core and read as
"slowdowns" when they are pure scheduling artifacts. The gate prints each
report's recorded hardware_concurrency and marks any row whose thread count
exceeds the current machine's cores as record-only — printed, never failed.

A report whose rows lack the required keys (grid, sim, vehicle_steps_per_sec)
is a malformed input, not a perf verdict: the gate names the file, row index
and missing keys and exits 2 so CI distinguishes "bench output broke" from
"perf regressed".

Usage: compare_hotpath.py BASELINE.json CURRENT.json [--threshold 0.30]
"""

import argparse
import json
import os
import sys


class MalformedReport(Exception):
    """A bench JSON row is missing required keys (named in the message)."""


REQUIRED_KEYS = ("grid", "sim", "vehicle_steps_per_sec")


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for i, row in enumerate(doc.get("rows", [])):
        missing = [k for k in REQUIRED_KEYS if k not in row]
        if missing:
            raise MalformedReport(
                f"{path}: rows[{i}] is missing {', '.join(missing)} "
                f"(has: {', '.join(sorted(row)) or 'nothing'}); "
                f"re-run bench_hotpath_throughput to regenerate the report"
            )
        key = (row["grid"], row["sim"], int(row.get("threads", 1)))
        rows[key] = (
            float(row["vehicle_steps_per_sec"]),
            float(row.get("wall_seconds", 0.0)),
            float(row.get("sim_seconds", 0.0)),
        )
    return doc, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("ABP_PERF_GATE_THRESHOLD", "0.30")),
        help="maximum tolerated fractional drop in vehicle_steps_per_sec",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=float(os.environ.get("ABP_PERF_GATE_MIN_WALL", "0.05")),
        help="skip rows measured over less wall time (seconds) than this",
    )
    args = parser.parse_args()

    try:
        base_doc, base = load_rows(args.baseline)
        cur_doc, cur = load_rows(args.current)
    except MalformedReport as e:
        print(f"ERROR: malformed bench report: {e}", file=sys.stderr)
        return 2

    base_cores = int(base_doc.get("hardware_concurrency", 0))
    cur_cores = int(cur_doc.get("hardware_concurrency", 0))
    print(
        f"perf gate: baseline compiler={base_doc.get('compiler', '?')!r} "
        f"cores={base_cores or '?'}; "
        f"current compiler={cur_doc.get('compiler', '?')!r} "
        f"cores={cur_cores or '?'}; "
        f"threshold={args.threshold:.0%}"
    )

    regressions = []
    improvements = []
    fmt = "{:>6} {:>6} {:>8} {:>14} {:>14} {:>8}  {}"
    print(fmt.format("grid", "sim", "threads", "baseline", "current", "ratio", ""))
    for key in sorted(base):
        grid, sim, threads = key
        base_rate, base_wall, base_sim_s = base[key]
        if key not in cur:
            print(fmt.format(grid, sim, threads, f"{base_rate:.3g}", "-", "-", "missing (skipped)"))
            continue
        cur_rate, cur_wall, cur_sim_s = cur[key]
        if min(base_wall, cur_wall) < args.min_wall:
            print(fmt.format(grid, sim, threads, f"{base_rate:.3g}", f"{cur_rate:.3g}", "-",
                             f"too short to gate (<{args.min_wall}s wall)"))
            continue
        if cur_cores and threads > cur_cores:
            # Oversubscribed thread-scaling row: the number is a scheduling
            # artifact on this machine, not a perf verdict either way.
            ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
            print(fmt.format(grid, sim, threads, f"{base_rate:.3g}", f"{cur_rate:.3g}",
                             f"{ratio:.2f}",
                             f"record-only ({threads} threads > {cur_cores} cores)"))
            continue
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        note = ""
        # Throughput is horizon-independent once the grid is loaded (the
        # big-grid rows run shortened horizons by design), but a silent
        # horizon change between captures deserves a visible flag alongside
        # the verdict.
        if min(base_sim_s, cur_sim_s) > 0 and (
            max(base_sim_s, cur_sim_s) > 2.0 * min(base_sim_s, cur_sim_s)
        ):
            note = f"[horizon {base_sim_s:.0f}s vs {cur_sim_s:.0f}s] "
        if ratio < 1.0 - args.threshold:
            note += "REGRESSION"
            regressions.append(key)
        elif ratio > 1.0 + args.threshold:
            note += "improved (consider re-capturing the baseline)"
            improvements.append(key)
        print(fmt.format(grid, sim, threads, f"{base_rate:.3g}", f"{cur_rate:.3g}", f"{ratio:.2f}", note))
    for key in sorted(set(cur) - set(base)):
        grid, sim, threads = key
        cur_rate, cur_wall, _ = cur[key]
        # Same skip rules as matched rows: a new row that is also too short to
        # measure says so, so nobody mistakes it for a gateable number.
        note = "new row (not gated)"
        if cur_wall < args.min_wall:
            note += f"; too short to gate (<{args.min_wall}s wall)"
        print(fmt.format(grid, sim, threads, "-", f"{cur_rate:.3g}", "-", note))

    if regressions:
        print(
            f"FAIL: {len(regressions)} row(s) dropped >"
            f"{args.threshold:.0%} vs {args.baseline}: "
            + ", ".join(f"{g}/{s}/t{t}" for g, s, t in regressions)
        )
        return 1
    print(f"OK: no row dropped more than {args.threshold:.0%} ({len(improvements)} improved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
