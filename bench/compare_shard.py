#!/usr/bin/env python3
"""Speedup gate for the shard-scaling bench.

Reads a BENCH_shard.json produced by bench_shard_scaling and checks that the
4-shard rows on the large grids (>= --min-grid, default 32) reach at least
--speedup (default 1.5x) the matching 1-shard row's vehicle_steps_per_sec.

The gate only has teeth on a multi-core machine: sharding buys nothing on a
single vCPU (the workers time-slice one core and pay the boundary-exchange
cost on top), so when the report's recorded hardware_concurrency is below
--min-cores (default 4) the script prints the speedup table and exits 0 with
a "recorded, not gated" note. That keeps single-vCPU dev boxes honest — the
rows are captured and visible — while CI's multi-core runners enforce the
scaling claim. Rows measured over less than --min-wall seconds of wall time
are never gated (scheduler noise swamps the signal on smoke runs).

A report whose rows lack the required keys is a malformed input, not a perf
verdict: exit 2, like bench/compare_hotpath.py.

Usage: compare_shard.py BENCH_shard.json [--speedup 1.5] [--min-grid 32]
"""

import argparse
import json
import os
import sys

REQUIRED_KEYS = ("grid", "sim", "shards", "vehicle_steps_per_sec")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument(
        "--speedup",
        type=float,
        default=float(os.environ.get("ABP_SHARD_GATE_SPEEDUP", "1.5")),
        help="minimum required 4-shard / 1-shard throughput ratio",
    )
    parser.add_argument(
        "--min-grid",
        type=int,
        default=32,
        help="gate only square grids with at least this many rows",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="record-only (never fail) when the report's machine has fewer cores",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=float(os.environ.get("ABP_PERF_GATE_MIN_WALL", "0.05")),
        help="skip rows measured over less wall time (seconds) than this",
    )
    args = parser.parse_args()

    with open(args.report) as f:
        doc = json.load(f)
    rows = {}
    for i, row in enumerate(doc.get("rows", [])):
        missing = [k for k in REQUIRED_KEYS if k not in row]
        if missing:
            print(
                f"ERROR: malformed bench report: {args.report}: rows[{i}] is "
                f"missing {', '.join(missing)}; re-run bench_shard_scaling",
                file=sys.stderr,
            )
            return 2
        key = (row["grid"], row["sim"], int(row["shards"]))
        rows[key] = (
            float(row["vehicle_steps_per_sec"]),
            float(row.get("wall_seconds", 0.0)),
        )

    cores = int(doc.get("hardware_concurrency", 0))
    gating = cores >= args.min_cores
    print(
        f"shard gate: compiler={doc.get('compiler', '?')!r} cores={cores} "
        f"required speedup={args.speedup:.2f}x at 4 shards on >= "
        f"{args.min_grid}x{args.min_grid} grids"
        + ("" if gating else f" — RECORDED ONLY (needs >= {args.min_cores} cores to gate)")
    )

    failures = []
    fmt = "{:>7} {:>6} {:>14} {:>14} {:>8}  {}"
    print(fmt.format("grid", "sim", "1-shard", "4-shard", "speedup", ""))
    for (grid, sim, shards) in sorted(rows):
        if shards != 4:
            continue
        base_key = (grid, sim, 1)
        rate4, wall4 = rows[(grid, sim, 4)]
        if base_key not in rows:
            print(fmt.format(grid, sim, "-", f"{rate4:.3g}", "-", "no 1-shard row (skipped)"))
            continue
        rate1, wall1 = rows[base_key]
        speedup = rate4 / rate1 if rate1 > 0 else float("inf")
        n = int(grid.split("x")[0])
        note = ""
        if n < args.min_grid:
            note = "small grid (not gated)"
        elif min(wall1, wall4) < args.min_wall:
            note = f"too short to gate (<{args.min_wall}s wall)"
        elif cores and cores < shards:
            note = f"record-only ({shards} shards > {cores} cores)"
        elif not gating:
            note = "recorded, not gated"
        elif speedup < args.speedup:
            note = "FAIL"
            failures.append((grid, sim))
        print(fmt.format(grid, sim, f"{rate1:.3g}", f"{rate4:.3g}", f"{speedup:.2f}x", note))

    if failures:
        print(
            f"FAIL: {len(failures)} grid(s) below {args.speedup:.2f}x at 4 shards: "
            + ", ".join(f"{g}/{s}" for g, s in failures)
        )
        return 1
    print("OK" if gating else "OK (recorded only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
