// T3: reproduces Table III — for every traffic pattern, the best-possible
// CAP-BP result (control period swept per pattern, as the paper did) against
// the period-free UTIL-BP result.
//
// Paper shape to match: UTIL-BP below best CAP-BP on every row, roughly 13%
// better on average, and a pattern-dependent optimal CAP-BP period.
//
// All five patterns' sweeps — 5 x (20 CAP-BP periods + 1 UTIL-BP reference)
// = 105 independent runs — execute as one exp::ExperimentRunner batch sized
// to the machine with max_safe_jobs(); results are bit-identical to the old
// serial loops at every jobs count.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

namespace {

// Identifies what configs[i] of the global batch measures.
struct Cell {
  abp::traffic::PatternKind pattern;
  double period = 0.0;  // 0 = the pattern's UTIL-BP reference run
};

}  // namespace

int main() {
  using namespace abp;
  bench::print_header("Table III: comparison results for all the traffic patterns");

  constexpr std::uint64_t kSeed = 2020;
  const traffic::PatternKind patterns[] = {
      traffic::PatternKind::I, traffic::PatternKind::II, traffic::PatternKind::III,
      traffic::PatternKind::IV, traffic::PatternKind::Mixed};

  std::vector<double> periods;
  for (double p = 10.0; p <= 40.0; p += 2.0) periods.push_back(p);
  for (double p = 45.0; p <= 60.0; p += 5.0) periods.push_back(p);

  std::vector<Cell> cells;
  std::vector<scenario::ScenarioConfig> configs;
  for (traffic::PatternKind pattern : patterns) {
    const double duration = traffic::paper_duration_s(pattern) * bench::duration_scale();
    for (double period : periods) {
      scenario::ScenarioConfig cfg =
          scenario::paper_scenario(pattern, core::ControllerType::CapBp, period);
      cfg.duration_s = duration;
      cfg.seed = kSeed;
      cells.push_back({pattern, period});
      configs.push_back(cfg);
    }
    scenario::ScenarioConfig util_cfg =
        scenario::paper_scenario(pattern, core::ControllerType::UtilBp);
    util_cfg.duration_s = duration;
    util_cfg.seed = kSeed;
    cells.push_back({pattern, 0.0});
    configs.push_back(util_cfg);
  }

  const int jobs = exp::max_safe_jobs();
  std::cout << "[exp] " << configs.size() << " runs, jobs=" << jobs << "\n";
  exp::ExperimentRunner runner({.jobs = jobs});
  const std::vector<stats::RunResult> results = runner.run(configs);

  stats::TextTable table({"Pattern", "CAP-BP best period [s]", "CAP-BP avg queuing [s]",
                          "UTIL-BP avg queuing [s]", "Improvement [%]"});
  auto csv = bench::open_csv("table3_patterns");
  CsvWriter w(csv);
  w.row({"pattern", "capbp_best_period_s", "capbp_avg_queuing_s", "utilbp_avg_queuing_s",
         "improvement_pct"});

  double improvement_sum = 0.0;
  int rows = 0;
  for (traffic::PatternKind pattern : patterns) {
    double best_cap = 1e18;
    double best_period = 0.0;
    double util_q = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].pattern != pattern) continue;
      const double q = results[i].metrics.average_queuing_time_s();
      if (cells[i].period == 0.0) {
        util_q = q;
      } else if (q < best_cap) {
        best_cap = q;
        best_period = cells[i].period;
      }
    }

    const double improvement = 100.0 * (best_cap - util_q) / best_cap;
    improvement_sum += improvement;
    ++rows;
    table.add_row({traffic::pattern_name(pattern), stats::TextTable::num(best_period, 0),
                   stats::TextTable::num(best_cap), stats::TextTable::num(util_q),
                   stats::TextTable::num(improvement, 1)});
    w.typed_row(traffic::pattern_name(pattern), best_period, best_cap, util_q, improvement);
  }

  table.print(std::cout);
  std::cout << "\nAverage improvement of UTIL-BP over best-period CAP-BP: "
            << stats::TextTable::num(improvement_sum / rows, 1)
            << "% (paper reports ~13% on its testbed)\n";
  return 0;
}
