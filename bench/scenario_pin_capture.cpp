// scenario_pin_capture: regenerates the scenario library's golden pins.
//
// Runs every scenario file named on the command line at its declared
// duration (threads as declared, i.e. 1 for the library files) and prints
// the pin document consumed by tests/scenario_library_test.cpp to stdout:
//
//   scenario_pin_capture scenarios/*.json > scenarios/golden_pins.json
//
// Doubles are recorded as C99 hex-float strings ("%a"), so a pin is exact to
// the bit — the golden test compares with == after strtod, no tolerance.
// Regenerate pins only when a change is *supposed* to alter trajectories
// (physics, controller logic, RNG layout) and say so in the commit; an
// unexpected diff here is the determinism alarm going off.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/scenario/scenario.hpp"
#include "src/scenario/scenario_io.hpp"
#include "src/stats/run_result.hpp"
#include "src/util/json.hpp"

namespace {

abp::json::Value hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return abp::json::Value::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: scenario_pin_capture SCENARIO.json...\n");
    return 2;
  }
  using namespace abp;
  json::Value pins = json::Value::object();
  for (int i = 1; i < argc; ++i) {
    try {
      const scenario::ScenarioConfig cfg = scenario::load_scenario_file(argv[i]);
      if (cfg.name.empty()) {
        std::fprintf(stderr, "scenario_pin_capture: %s: scenario has no name\n",
                     argv[i]);
        return 1;
      }
      const stats::RunResult r = scenario::run_scenario(cfg);
      json::Value pin = json::Value::object();
      pin.set("simulator", json::Value::string(
                               cfg.simulator == scenario::SimulatorKind::Micro
                                   ? "micro"
                                   : "queue"));
      pin.set("duration_s", json::Value::number(cfg.duration_s));
      pin.set("generated", json::Value::number(
                               static_cast<std::uint64_t>(r.metrics.generated)));
      pin.set("entered",
              json::Value::number(static_cast<std::uint64_t>(r.metrics.entered)));
      pin.set("completed",
              json::Value::number(static_cast<std::uint64_t>(r.metrics.completed)));
      pin.set("in_network_at_end",
              json::Value::number(
                  static_cast<std::uint64_t>(r.metrics.in_network_at_end)));
      pin.set("avg_queuing_s_hex", hex_double(r.metrics.average_queuing_time_s()));
      pin.set("avg_travel_s_hex", hex_double(r.metrics.average_travel_time_s()));
      pin.set("guard_violations",
              json::Value::number(
                  static_cast<std::uint64_t>(r.guard.violations.size())));
      pins.set(cfg.name, std::move(pin));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "scenario_pin_capture: %s: %s\n", argv[i], e.what());
      return 1;
    }
  }
  std::fputs(json::dump(pins).c_str(), stdout);
  return 0;
}
