// Hot-path throughput bench: vehicle-steps per wall-clock second on square
// grids from 1x1 to 8x8, for both simulators, over a 2-hour simulated run.
// Each simulator runs once serial and once on a 4-way thread pool, so the
// JSON exposes the parallel-sweep scaling next to the serial baseline.
//
// A "vehicle-step" is one vehicle being inside the network for one simulator
// tick — the unit of useful work a simulator performs. Reporting throughput
// in vehicle-steps/s (rather than plain steps/s) makes runs with different
// traffic loads comparable and exposes any per-tick cost that scales with
// *history* instead of *active state*: such a cost makes vehicle-steps/s
// decay over long runs even at constant occupancy.
//
// Output: a human-readable table on stdout, a CSV mirror under
// ./bench_results/, and a JSON report (docs/PERFORMANCE.md explains the
// schema) whose header records the compiler and the machine's hardware
// concurrency so numbers from different builds are attributable. The JSON
// path defaults to BENCH_hotpath.json in the working directory and is
// overridable as argv[1] — CI writes to a scratch path and diffs it against
// the checked-in bench/baseline_hotpath.json (bench/compare_hotpath.py).
// ABP_FAST=1 scales the simulated horizon down 10x for smoke runs.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/factory.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"
#include "src/traffic/demand.hpp"

namespace abp::bench {
namespace {

struct Row {
  int grid = 0;
  std::string sim;
  int threads = 1;
  double sim_seconds = 0.0;
  long long vehicle_steps = 0;   // sum over ticks of vehicles in the network
  std::size_t completed = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double vehicle_steps_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(vehicle_steps) / wall_seconds : 0.0;
  }
  // Pure derived inverse of vehicle_steps_per_sec, in ns: the serial-floor
  // unit the lane-kernel work tracks (see docs/PERFORMANCE.md and
  // bench_krauss_kernel), reported per row so the trajectory is readable
  // straight off BENCH_hotpath.json.
  [[nodiscard]] double ns_per_vehicle_step() const {
    return vehicle_steps > 0 ? wall_seconds * 1e9 / static_cast<double>(vehicle_steps)
                             : 0.0;
  }
};

// Samples vehicles_in_network() once per simulated second and scales by the
// ticks per second, so the bench harness itself stays O(1) per sim-second
// regardless of how the simulator implements the query.
template <typename Sim>
Row drive(Sim& sim, const char* name, int grid, int threads, double duration_s, double dt_s) {
  Row row;
  row.grid = grid;
  row.sim = name;
  row.threads = threads;
  row.sim_seconds = duration_s;
  const double ticks_per_second = 1.0 / dt_s;
  stats::RunResult result;
  row.wall_seconds = timed_seconds([&] {
    for (double t = 1.0; t <= duration_s; t += 1.0) {
      sim.run_until(t);
      row.vehicle_steps +=
          static_cast<long long>(sim.vehicles_in_network() * ticks_per_second);
    }
    result = sim.finish(duration_s);
  });
  row.completed = result.metrics.completed;
  return row;
}

Row run_micro(const net::Network& net, double duration_s, std::uint64_t seed, int grid,
              int threads) {
  core::ControllerSpec spec;  // UTIL-BP defaults
  traffic::DemandGenerator demand(net, traffic::DemandConfig{}, seed);
  microsim::MicroSimConfig config;
  config.threads = threads;
  microsim::MicroSim sim(net, config, core::make_controllers(spec, net), demand,
                         seed + 0x5157u);
  return drive(sim, "micro", grid, threads, duration_s, config.dt_s);
}

Row run_queue(const net::Network& net, double duration_s, std::uint64_t seed, int grid,
              int threads) {
  core::ControllerSpec spec;
  traffic::DemandGenerator demand(net, traffic::DemandConfig{}, seed);
  queuesim::QueueSimConfig config;
  config.threads = threads;
  queuesim::QueueSim sim(net, config, core::make_controllers(spec, net), demand);
  return drive(sim, "queue", grid, threads, duration_s, config.step_s);
}

// Batch-throughput row: a replication fleet through the experiment runner
// (run-level parallelism; each run stays tick-serial). The `threads` column
// carries the runner's jobs count. Vehicle-steps are reconstructed from each
// run's in_network_series — occupancy sampled every sample_interval_s,
// scaled by the ticks per sample — since the runner drives runs internally;
// that estimator is deterministic, so these rows gate the runner's overhead
// and scaling in compare_hotpath.py like any other row.
Row run_batch(scenario::SimulatorKind kind, const char* name, int jobs,
              double duration_s, std::uint64_t seed) {
  constexpr int kReplications = 8;
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = 4;
  cfg.grid.cols = 4;
  cfg.simulator = kind;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  const bool micro = kind == scenario::SimulatorKind::Micro;
  const double dt_s = micro ? cfg.micro.dt_s : cfg.queue.step_s;
  const double sample_s = micro ? cfg.micro.sample_interval_s : cfg.queue.sample_interval_s;

  Row row;
  row.grid = 4;
  row.sim = name;
  row.threads = jobs;
  row.sim_seconds = duration_s * kReplications;
  // allow_oversubscribe: like the tick-level `threads` rows, batch rows
  // measure whatever the host gives them — on a small box the jobs=4 row
  // records the oversubscription cost instead of refusing to run.
  exp::ExperimentRunner runner({.jobs = jobs, .allow_oversubscribe = true});
  std::vector<stats::RunResult> results;
  row.wall_seconds = timed_seconds(
      [&] { results = runner.run(exp::replication_configs(cfg, kReplications)); });
  for (const stats::RunResult& r : results) {
    row.completed += r.metrics.completed;
    double occupancy_samples = 0.0;
    for (double v : r.in_network_series.values()) occupancy_samples += v;
    row.vehicle_steps += static_cast<long long>(occupancy_samples * sample_s / dt_s);
  }
  return row;
}

// Fault-machinery rows, driven through the unified sim::Simulator interface
// (the only layer that executes fault schedules). The *-nofault rows carry an
// empty schedule and gate the zero-cost-when-empty claim: make_simulator's
// adapter takes the plain pass-through path, so these rows must stay within
// compare_hotpath.py's perf gate against the direct-construction rows'
// history. The *-incident rows run the full incident repertoire — a capacity
// drop with restoration, a sensor dropout and a controller outage, timed as
// fractions of the horizon so ABP_FAST smoke runs still fire every event.
Row run_unified(scenario::SimulatorKind kind, const char* name, double duration_s,
                std::uint64_t seed, bool with_faults) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = 4;
  cfg.grid.cols = 4;
  cfg.simulator = kind;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  if (with_faults) {
    cfg.faults.capacity.push_back(
        {{0, 0, net::Side::North}, 0.2 * duration_s, 0.5 * duration_s, 0.3});
    cfg.faults.sensors.push_back({{0, 1}, 0.1 * duration_s, 0.4 * duration_s,
                                  core::SensorFaultKind::Dropout, 0, 0});
    cfg.faults.controllers.push_back({{2, 2}, 0.3 * duration_s, 0.6 * duration_s});
  }
  const double dt_s = kind == scenario::SimulatorKind::Micro ? cfg.micro.dt_s
                                                             : cfg.queue.step_s;
  const std::unique_ptr<sim::Simulator> sim = sim::make_simulator(cfg);
  return drive(*sim, name, 4, 1, duration_s, dt_s);
}

void write_json(const std::string& path, const std::vector<Row>& rows, double duration_s) {
  std::ofstream out(path);
  // The header's sim_seconds is the per-run horizon; batch rows cover
  // several replications of it, so each row also records its own total.
  out << "{\n  \"bench\": \"hotpath_throughput\",\n"
      << "  \"compiler\": \"" << kCompiler << "\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"sim_seconds\": " << duration_s << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"grid\": \"" << r.grid << "x" << r.grid << "\", \"sim\": \"" << r.sim
        << "\", \"threads\": " << r.threads << ", \"sim_seconds\": " << r.sim_seconds
        << ", \"vehicle_steps\": " << r.vehicle_steps
        << ", \"completed\": " << r.completed << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"vehicle_steps_per_sec\": " << r.vehicle_steps_per_sec()
        << ", \"ns_per_vehicle_step\": " << r.ns_per_vehicle_step() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] " << path << "\n";
}

}  // namespace
}  // namespace abp::bench

int main(int argc, char** argv) {
  using namespace abp;
  using namespace abp::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  const double duration_s = 7200.0 * duration_scale();  // the paper's 2-hour horizon
  const std::uint64_t seed = 2020;
  const int grids[] = {1, 2, 3, 4, 6, 8};
  const int sim_threads[] = {1, 4};

  print_header("Hot-path throughput (vehicle-steps per wall-clock second)");
  std::printf("compiler: %s, hardware threads: %u\n", kCompiler,
              std::thread::hardware_concurrency());
  std::printf("%-6s %-11s %8s %14s %12s %10s %16s %14s\n", "grid", "sim", "threads",
              "vehicle-steps", "completed", "wall [s]", "veh-steps/s", "ns/veh-step");

  std::vector<Row> rows;
  std::ofstream csv = open_csv("hotpath_throughput");
  csv << "grid,sim,threads,sim_seconds,vehicle_steps,completed,wall_seconds,"
         "vehicle_steps_per_sec,ns_per_vehicle_step\n";
  auto emit = [&](Row row) {
    std::printf("%dx%-4d %-11s %8d %14lld %12zu %10.2f %16.0f %14.2f\n", row.grid,
                row.grid, row.sim.c_str(), row.threads, row.vehicle_steps, row.completed,
                row.wall_seconds, row.vehicle_steps_per_sec(), row.ns_per_vehicle_step());
    std::fflush(stdout);
    csv << row.grid << "x" << row.grid << "," << row.sim << "," << row.threads << ","
        << row.sim_seconds << "," << row.vehicle_steps << "," << row.completed << ","
        << row.wall_seconds << "," << row.vehicle_steps_per_sec() << ","
        << row.ns_per_vehicle_step() << "\n";
    rows.push_back(std::move(row));
  };
  for (int n : grids) {
    net::GridConfig grid_cfg;
    grid_cfg.rows = n;
    grid_cfg.cols = n;
    const net::Network net = net::build_grid(grid_cfg);
    for (int threads : sim_threads) {
      emit(run_queue(net, duration_s, seed, n, threads));
    }
    for (int threads : sim_threads) {
      emit(run_micro(net, duration_s, seed, n, threads));
    }
  }
  // Metro-scale rows (shard-payoff baseline, same schema): 16x16 and 32x32
  // carry 4x / 16x the vehicles of the 8x8, so they run a proportionally
  // shorter horizon to keep the bench's wall time bounded. Throughput in
  // vehicle-steps/s is horizon-independent once the grid is loaded, and each
  // row records its own sim_seconds, so compare_hotpath.py gates them like
  // any other row.
  struct BigGrid {
    int n;
    double horizon_scale;
  };
  const BigGrid big_grids[] = {{16, 0.125}, {32, 0.0625}};
  for (const BigGrid& bg : big_grids) {
    net::GridConfig grid_cfg;
    grid_cfg.rows = bg.n;
    grid_cfg.cols = bg.n;
    const net::Network net = net::build_grid(grid_cfg);
    const double big_duration_s = duration_s * bg.horizon_scale;
    for (int threads : sim_threads) {
      emit(run_queue(net, big_duration_s, seed, bg.n, threads));
    }
    for (int threads : sim_threads) {
      emit(run_micro(net, big_duration_s, seed, bg.n, threads));
    }
  }
  // Run-level parallelism rows: 8-replication fleets on the 4x4 grid through
  // the ExperimentRunner (threads column = runner jobs).
  for (int jobs : sim_threads) {
    emit(run_batch(scenario::SimulatorKind::Queue, "queue-batch", jobs, duration_s, seed));
  }
  for (int jobs : sim_threads) {
    emit(run_batch(scenario::SimulatorKind::Micro, "micro-batch", jobs, duration_s, seed));
  }
  // Fault-machinery rows on the 4x4 grid (see run_unified): empty-schedule
  // pass-through vs the full incident repertoire.
  emit(run_unified(scenario::SimulatorKind::Queue, "queue-nofault", duration_s, seed, false));
  emit(run_unified(scenario::SimulatorKind::Queue, "queue-incident", duration_s, seed, true));
  emit(run_unified(scenario::SimulatorKind::Micro, "micro-nofault", duration_s, seed, false));
  emit(run_unified(scenario::SimulatorKind::Micro, "micro-incident", duration_s, seed, true));
  write_json(json_path, rows, duration_s);
  return 0;
}
