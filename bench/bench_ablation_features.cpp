// A2: ablation — which of UTIL-BP's ingredients buy the improvement?
//
// DESIGN.md calls out three design choices; each maps to a controller knob:
//   (a) hysteresis threshold g* (Eq. 12)        -> GStarPolicy::WStarMu vs Zero
//   (b) full/empty sentinels alpha/beta (Eq. 8) -> paper values vs near-zero
//   (c) fixed-length slots vs mini-slot control -> UTIL-BP vs CAP-BP/ORIG-BP
// The bench also reports the fixed-time baseline as the floor.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/core/pressure_presets.hpp"
#include "src/stats/report.hpp"

namespace {

struct Variant {
  std::string label;
  abp::scenario::ScenarioConfig cfg;
};

}  // namespace

int main() {
  using namespace abp;
  bench::print_header("Ablation A2: UTIL-BP design features (Pattern I, 1 h)");

  const double duration = 3600.0 * bench::duration_scale();
  constexpr std::uint64_t kSeed = 2020;

  std::vector<Variant> variants;
  {
    Variant v{"UTIL-BP (paper: Eq.12 g*, alpha=-1, beta=-2)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    variants.push_back(std::move(v));
  }
  {
    Variant v{"UTIL-BP, g*=0 (laziest keep-rule)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    v.cfg.controller.util.gstar_policy = core::GStarPolicy::Zero;
    variants.push_back(std::move(v));
  }
  {
    Variant v{"UTIL-BP, weak sentinels (alpha=-0.001, beta=-0.002)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    v.cfg.controller.util.alpha = -0.001;
    v.cfg.controller.util.beta = -0.002;
    variants.push_back(std::move(v));
  }
  {
    Variant v{"UTIL-BP, inverted sentinels (beta > alpha)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    v.cfg.controller.util.alpha = -2.0;
    v.cfg.controller.util.beta = -1.0;
    variants.push_back(std::move(v));
  }
  {
    Variant v{"CAP-BP, period 16 s (fixed-length reference)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::CapBp,
                                       16.0)};
    variants.push_back(std::move(v));
  }
  {
    Variant v{"ORIG-BP, period 16 s (no capacity awareness)",
              scenario::paper_scenario(traffic::PatternKind::I,
                                       core::ControllerType::OriginalBp, 16.0)};
    variants.push_back(std::move(v));
  }
  {
    Variant v{"FIXED-TIME (15 s green per phase)",
              scenario::paper_scenario(traffic::PatternKind::I,
                                       core::ControllerType::FixedTime)};
    variants.push_back(std::move(v));
  }
  {
    Variant v{"UTIL-BP on mixed lanes (HOL blocking possible)",
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    v.cfg.micro.dedicated_turn_lanes = false;
    variants.push_back(std::move(v));
  }
  for (core::PressureKind kind : {core::PressureKind::Sqrt, core::PressureKind::Quadratic,
                                  core::PressureKind::Normalized}) {
    Variant v{"UTIL-BP, pressure f = " + core::pressure_kind_name(kind),
              scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp)};
    v.cfg.controller.util.pressure = core::make_pressure(kind, 120.0);
    variants.push_back(std::move(v));
  }

  stats::TextTable table({"Variant", "Avg queuing [s]", "Completed", "In network",
                          "Ambers @J(0,2)"});
  auto csv = bench::open_csv("ablation_features");
  CsvWriter w(csv);
  w.row({"variant", "avg_queuing_s", "completed", "in_network", "transitions"});

  for (Variant& v : variants) {
    v.cfg.duration_s = duration;
    v.cfg.seed = kSeed;
    const stats::RunResult r = scenario::run_scenario(v.cfg);
    table.add_row({v.label, stats::TextTable::num(r.metrics.average_queuing_time_s()),
                   std::to_string(r.metrics.completed),
                   std::to_string(r.metrics.in_network_at_end),
                   std::to_string(r.phase_traces[2].transition_count())});
    w.typed_row(v.label, r.metrics.average_queuing_time_s(), r.metrics.completed,
                r.metrics.in_network_at_end, r.phase_traces[2].transition_count());
  }
  table.print(std::cout);

  // Substrate sensitivity: how does the UTIL-BP vs CAP-BP margin react when
  // the junction hardware discharges below the modeled mu = 1 veh/s?
  // (0 = serve at mu exactly, the paper's Section-II assumption.)
  bench::print_header("Ablation A2b: physical saturation-flow sensitivity (Pattern I, 1 h)");
  stats::TextTable sat_table({"Saturation flow [veh/s]", "UTIL-BP avg queuing [s]",
                              "CAP-BP(16) avg queuing [s]", "UTIL-BP completed",
                              "CAP-BP completed"});
  auto sat_csv = bench::open_csv("ablation_saturation");
  CsvWriter sw(sat_csv);
  sw.row({"saturation_vps", "utilbp_avg_queuing_s", "capbp_avg_queuing_s",
          "utilbp_completed", "capbp_completed"});
  // Values sit on the simulator's grant-headway grid (multiples of dt=0.5 s):
  // mu=1 -> 1.0 s, 0.667 -> 1.5 s, 0.5 -> 2.0 s between grants per movement.
  for (double sat : {0.0, 0.667, 0.5}) {
    double q[2];
    std::size_t done[2];
    int idx = 0;
    for (core::ControllerType type :
         {core::ControllerType::UtilBp, core::ControllerType::CapBp}) {
      scenario::ScenarioConfig cfg =
          scenario::paper_scenario(traffic::PatternKind::I, type, 16.0);
      cfg.duration_s = duration;
      cfg.seed = kSeed;
      cfg.micro.saturation_flow_vps = sat;
      const stats::RunResult r = scenario::run_scenario(cfg);
      q[idx] = r.metrics.average_queuing_time_s();
      done[idx] = r.metrics.completed;
      ++idx;
    }
    sat_table.add_row({sat == 0.0 ? "mu (idealized)" : stats::TextTable::num(sat, 2),
                       stats::TextTable::num(q[0]), stats::TextTable::num(q[1]),
                       std::to_string(done[0]), std::to_string(done[1])});
    sw.typed_row(sat, q[0], q[1], done[0], done[1]);
  }
  sat_table.print(std::cout);
  return 0;
}
