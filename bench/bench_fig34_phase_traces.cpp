// F3/F4: reproduces Fig. 3 and Fig. 4 — the control phases applied at the
// top-right (north-eastern) intersection over 2000 s of Pattern I, under
// CAP-BP at its best period (Fig. 3) and under UTIL-BP (Fig. 4).
//
// Paper shape to match: CAP-BP shows a strictly periodic staircase over the
// phases; UTIL-BP shows varying-length phases with visibly more time spent
// in phases 1 and 2 (the heavy north/south directions of Pattern I).
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

constexpr double kTraceDuration = 2000.0;
constexpr std::uint64_t kSeed = 2020;

abp::stats::RunResult run_trace(abp::core::ControllerType type, double period) {
  abp::scenario::ScenarioConfig cfg =
      abp::scenario::paper_scenario(abp::traffic::PatternKind::I, type, period);
  cfg.duration_s = kTraceDuration;
  cfg.seed = kSeed;
  return abp::scenario::run_scenario(cfg);
}

void report(const char* figure, const abp::stats::PhaseTrace& trace,
            abp::CsvWriter& csv, const char* policy) {
  using namespace abp;
  ChartSeries series{.name = policy, .marker = '#'};
  for (const auto& s : trace.samples()) {
    series.x.push_back(s.time);
    series.y.push_back(s.phase);
    csv.typed_row(policy, s.time, s.phase);
  }
  ChartOptions opt;
  opt.title = std::string(figure) + " — applied control phases, top-right intersection (" +
              policy + ", Pattern I)";
  opt.x_label = "Time [s]  (phase 0 = amber transition)";
  std::cout << render_step_chart(series, opt, 0, 4) << "\n";

  stats::TextTable summary({"Metric", "Value"});
  summary.add_row({"Transitions", std::to_string(trace.transition_count())});
  summary.add_row({"Amber time fraction",
                   stats::TextTable::num(100.0 * trace.amber_fraction(), 1) + " %"});
  for (int p = 1; p <= 4; ++p) {
    summary.add_row({"Time in phase " + std::to_string(p),
                     stats::TextTable::num(trace.time_in_phase(p), 0) + " s"});
  }
  const auto durations = trace.control_phase_durations();
  if (!durations.empty()) {
    double mn = durations.front(), mx = durations.front(), mean = 0.0;
    for (double d : durations) {
      mn = std::min(mn, d);
      mx = std::max(mx, d);
      mean += d;
    }
    mean /= static_cast<double>(durations.size());
    summary.add_row({"Phase duration min/mean/max",
                     stats::TextTable::num(mn, 1) + " / " + stats::TextTable::num(mean, 1) +
                         " / " + stats::TextTable::num(mx, 1) + " s"});
  }
  summary.print(std::cout);
}

}  // namespace

int main() {
  using namespace abp;

  // The best CAP-BP period for Pattern I from a quick sweep (the paper uses
  // the per-pattern optimum from its Table III, 18 s).
  double best_period = 18.0;
  double best_q = 1e18;
  for (double period = 10.0; period <= 30.0; period += 2.0) {
    scenario::ScenarioConfig cfg = scenario::paper_scenario(
        traffic::PatternKind::I, core::ControllerType::CapBp, period);
    cfg.duration_s = kTraceDuration;
    cfg.seed = kSeed;
    const double q = scenario::run_scenario(cfg).metrics.average_queuing_time_s();
    if (q < best_q) {
      best_q = q;
      best_period = period;
    }
  }

  auto csv = bench::open_csv("fig34_phase_traces");
  CsvWriter w(csv);
  w.row({"policy", "time_s", "phase"});

  bench::print_header("Fig. 3: CAP-BP phase trace (optimal period " +
                      std::to_string(static_cast<int>(best_period)) + " s)");
  const stats::RunResult cap = run_trace(core::ControllerType::CapBp, best_period);
  report("Fig. 3", cap.phase_traces[2], w, "CAP-BP");

  bench::print_header("Fig. 4: UTIL-BP phase trace");
  const stats::RunResult util = run_trace(core::ControllerType::UtilBp, best_period);
  report("Fig. 4", util.phase_traces[2], w, "UTIL-BP");

  // The paper's reading of the two figures: UTIL-BP gives the heavy
  // north/south movements (phases 1-2) a larger share than CAP-BP does.
  const auto share_ns = [](const stats::PhaseTrace& t) {
    const double ns = t.time_in_phase(1) + t.time_in_phase(2);
    const double ew = t.time_in_phase(3) + t.time_in_phase(4);
    return ns / (ns + ew);
  };
  std::cout << "\nNorth/South green share: CAP-BP "
            << stats::TextTable::num(100.0 * share_ns(cap.phase_traces[2]), 1)
            << " %, UTIL-BP "
            << stats::TextTable::num(100.0 * share_ns(util.phase_traces[2]), 1) << " %\n";
  return 0;
}
