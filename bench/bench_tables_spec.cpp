// T1/T2: regenerates the paper's workload specification tables.
//
// Table I  — turning probabilities of vehicles entering the network.
// Table II — average inter-arrival time of vehicles entering the network.
// These are inputs, not measurements; the bench prints them from the
// implementation so EXPERIMENTS.md can diff them against the paper verbatim.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/stats/report.hpp"
#include "src/traffic/patterns.hpp"

int main() {
  using namespace abp;

  bench::print_header("Table I: turning probabilities of vehicles entering the network");
  const traffic::TurningTable table = traffic::TurningTable::paper();
  stats::TextTable t1({"Entering from", "North", "East", "South", "West"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (net::Side s : net::kAllSides) {
      cells.push_back(stats::TextTable::num(getter(table.entering_from(s)), 1));
    }
    t1.add_row(cells);
  };
  row("Right-turning probability",
      [](const traffic::TurningTable::Probabilities& p) { return p.right; });
  row("Left-turning probability",
      [](const traffic::TurningTable::Probabilities& p) { return p.left; });
  row("(straight, derived)",
      [](const traffic::TurningTable::Probabilities& p) { return p.straight(); });
  t1.print(std::cout);

  bench::print_header("Table II: average inter-arrival time of vehicles entering the network");
  stats::TextTable t2({"Pattern", "Description", "North", "East", "South", "West"});
  const struct {
    traffic::PatternKind kind;
    const char* description;
  } rows[] = {
      {traffic::PatternKind::I, "adjacent heavy"},
      {traffic::PatternKind::II, "uniform"},
      {traffic::PatternKind::III, "opposite heavy"},
      {traffic::PatternKind::IV, "single heavy"},
  };
  for (const auto& r : rows) {
    const traffic::ArrivalRow arr = traffic::arrival_row(r.kind);
    t2.add_row({traffic::pattern_name(r.kind), r.description,
                stats::TextTable::num(arr.on(net::Side::North), 0) + " s",
                stats::TextTable::num(arr.on(net::Side::East), 0) + " s",
                stats::TextTable::num(arr.on(net::Side::South), 0) + " s",
                stats::TextTable::num(arr.on(net::Side::West), 0) + " s"});
  }
  t2.print(std::cout);

  auto csv = bench::open_csv("tables_spec");
  CsvWriter w(csv);
  w.row({"table", "side_or_pattern", "right", "left", "north", "east", "south", "west"});
  for (net::Side s : net::kAllSides) {
    const auto& p = table.entering_from(s);
    w.typed_row("I", std::string(net::side_name(s)), p.right, p.left, "", "", "", "");
  }
  for (const auto& r : rows) {
    const traffic::ArrivalRow arr = traffic::arrival_row(r.kind);
    w.typed_row("II", traffic::pattern_name(r.kind), "", "", arr.on(net::Side::North),
                arr.on(net::Side::East), arr.on(net::Side::South), arr.on(net::Side::West));
  }
  return 0;
}
