// Krauss lane-kernel microbench: ns per vehicle-step of the scalar reference
// vs the vectorized kernel (src/microsim/lane_kernel.hpp), at lane
// occupancies {1, 4, 16, 64} — the serial floor every other layer of the
// micro-sim multiplies, measured as an artifact instead of prose.
//
// Workload: a platoon released toward a stop line on a 500 m road. The head
// parks at the line and the platoon compresses into a standing queue, so a
// measurement interval covers the free-flow regime (sqrt fast path /
// vectorized sqrt), the approach, the per-tick head clamp and the queued
// crawl — the same mix the simulator's sweep sees. Positions reset to the
// release state on a fixed tick cadence (identical for both variants, cost
// included in both timings). Before timing, both variants are driven in
// lockstep and verified bit-identical, so the table can never quietly
// compare diverged computations.
//
// Output: stdout table, CSV mirror under ./bench_results/, and a JSON report
// (argv[1], default BENCH_krauss_kernel.json) following the throughput
// bench's schema: rows keyed (occupancy, variant) with ns_per_vehicle_step
// as the measurement and vehicle_steps as the load descriptor. ABP_FAST=1
// scales the tick counts down 10x.
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <bit>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/microsim/lane_kernel.hpp"
#include "src/util/rng.hpp"

namespace abp::bench {
namespace {

constexpr double kDt = 0.5;
constexpr double kSpeedLimit = 13.9;
constexpr double kRoadLength = 500.0;
constexpr int kResetEvery = 600;  // ticks between releases (~queue re-forms)

struct Row {
  int occupancy = 0;
  std::string variant;
  long long vehicle_steps = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double ns_per_vehicle_step() const {
    return vehicle_steps > 0 ? wall_seconds * 1e9 / static_cast<double>(vehicle_steps)
                             : 0.0;
  }
};

struct LaneState {
  std::vector<double> pos;
  std::vector<double> speed;
};

LaneState release_state(int n) {
  using microsim::VehicleParams;
  const VehicleParams p;
  LaneState s;
  s.pos.resize(static_cast<std::size_t>(n));
  s.speed.resize(static_cast<std::size_t>(n));
  double front = 300.0;
  for (int i = 0; i < n; ++i) {
    s.pos[static_cast<std::size_t>(i)] = front;
    front -= p.length_m + p.min_gap_m + 2.0;
    s.speed[static_cast<std::size_t>(i)] = 10.0;
  }
  return s;
}

// One tick of either variant over the lane state.
void tick(bool vectorized, LaneState& s, StreamRng& rng,
          microsim::LaneKernelScratch& scratch) {
  const microsim::VehicleParams p;
  const std::size_t n = s.pos.size();
  if (vectorized) {
    microsim::lane_update_vectorized(s.pos.data(), s.speed.data(), n, kSpeedLimit,
                                     kRoadLength, /*is_exit=*/false, p, kDt, &rng,
                                     scratch);
  } else {
    microsim::lane_update_reference(s.pos.data(), s.speed.data(), n, kSpeedLimit,
                                    kRoadLength, /*is_exit=*/false, p, kDt, &rng);
  }
}

// Lockstep equality check: both variants over the full reset cadence must
// stay bit-identical, or the comparison below is meaningless.
void verify_equivalence(int n) {
  LaneState ref = release_state(n);
  LaneState vec = release_state(n);
  StreamRng rng_ref(2020, static_cast<std::uint64_t>(n));
  StreamRng rng_vec(2020, static_cast<std::uint64_t>(n));
  microsim::LaneKernelScratch scratch;
  for (int t = 0; t < kResetEvery; ++t) {
    tick(false, ref, rng_ref, scratch);
    tick(true, vec, rng_vec, scratch);
    for (std::size_t i = 0; i < ref.pos.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(ref.pos[i]) !=
              std::bit_cast<std::uint64_t>(vec.pos[i]) ||
          std::bit_cast<std::uint64_t>(ref.speed[i]) !=
              std::bit_cast<std::uint64_t>(vec.speed[i])) {
        std::fprintf(stderr, "FATAL: variants diverged (n=%d tick=%d slot=%zu)\n", n, t,
                     i);
        std::exit(1);
      }
    }
  }
}

Row measure(bool vectorized, int n, long long target_vehicle_steps) {
  Row row;
  row.occupancy = n;
  row.variant = vectorized ? "vectorized" : "scalar";
  LaneState s = release_state(n);
  StreamRng rng(2020, static_cast<std::uint64_t>(n));
  microsim::LaneKernelScratch scratch;
  const long long ticks = target_vehicle_steps / n;
  // Warmup: one full reset cadence (pulls code+data hot, sizes the scratch).
  for (int t = 0; t < kResetEvery; ++t) tick(vectorized, s, rng, scratch);
  s = release_state(n);
  row.wall_seconds = timed_seconds([&] {
    for (long long t = 0; t < ticks; ++t) {
      if (t % kResetEvery == 0) {
        // Re-release the platoon so the regime mix stays fixed; same cadence
        // and cost on both variants.
        LaneState fresh = release_state(n);
        std::copy(fresh.pos.begin(), fresh.pos.end(), s.pos.begin());
        std::copy(fresh.speed.begin(), fresh.speed.end(), s.speed.begin());
      }
      tick(vectorized, s, rng, scratch);
    }
  });
  row.vehicle_steps = ticks * n;
  // Sink the state so the loop cannot be optimized out.
  if (std::bit_cast<std::uint64_t>(s.pos[0]) == 0xdeadbeefULL) std::printf("!");
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"krauss_kernel\",\n"
      << "  \"compiler\": \"" << kCompiler << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"occupancy\": " << r.occupancy << ", \"variant\": \"" << r.variant
        << "\", \"vehicle_steps\": " << r.vehicle_steps
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"ns_per_vehicle_step\": " << r.ns_per_vehicle_step() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] " << path << "\n";
}

}  // namespace
}  // namespace abp::bench

int main(int argc, char** argv) {
  using namespace abp::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_krauss_kernel.json";
  const long long target_steps =
      static_cast<long long>(40'000'000 * duration_scale());
  const int occupancies[] = {1, 4, 16, 64};

  print_header("Krauss lane kernel (ns per vehicle-step, scalar vs vectorized)");
  std::printf("compiler: %s\n", kCompiler);
  std::printf("%-10s %-11s %14s %10s %18s\n", "occupancy", "variant", "vehicle-steps",
              "wall [s]", "ns/vehicle-step");

  std::vector<Row> rows;
  std::ofstream csv = open_csv("krauss_kernel");
  csv << "occupancy,variant,vehicle_steps,wall_seconds,ns_per_vehicle_step\n";
  for (int n : occupancies) {
    verify_equivalence(n);
    for (bool vectorized : {false, true}) {
      Row row = measure(vectorized, n, target_steps);
      std::printf("%-10d %-11s %14lld %10.3f %18.2f\n", row.occupancy,
                  row.variant.c_str(), row.vehicle_steps, row.wall_seconds,
                  row.ns_per_vehicle_step());
      std::fflush(stdout);
      csv << row.occupancy << "," << row.variant << "," << row.vehicle_steps << ","
          << row.wall_seconds << "," << row.ns_per_vehicle_step() << "\n";
      rows.push_back(std::move(row));
    }
  }
  write_json(json_path, rows);
  return 0;
}
