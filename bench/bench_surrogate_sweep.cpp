// Surrogate sweep bench: wall-clock of a paper-scale config sweep on the
// micro backend vs the calibrated-surrogate protocol, with the achieved
// surrogate error measured against ground truth (docs/PERFORMANCE.md,
// "Surrogate throughput").
//
// Both arms evaluate the same ≥200-point controller x pattern x period grid
// on the paper's 3x3 network:
//
//   micro-only   R micro replications per point (the paper-grade protocol:
//                Student-t CIs need replications, and the micro backend is
//                the reference model) — points x R micro runs.
//   surrogate    calibrate once (src/surrogate/calibrator.hpp), one
//                calibrated queue run per point, R-replicated micro spot
//                checks on the frontier + a stratified sample
//                (src/surrogate/sweep.hpp).
//
// Because the micro-only arm runs anyway, its per-point means are ground
// truth: next to the sweep's own spot-check error bars the JSON reports the
// *true* per-metric surrogate error over every point, and the frontier
// regret (micro avg queuing of the surrogate's top pick vs the true best) —
// so BENCH_surrogate.json shows both the speedup and what the speedup cost,
// and whether the spot-check estimate tracked the truth.
//
// Output: stdout table, CSV mirror (per-point surrogate vs micro means)
// under ./bench_results/, JSON report (argv[1], default BENCH_surrogate.json).
// ABP_FAST=1 scales the horizon down 10x for smoke runs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/surrogate/calibrator.hpp"
#include "src/surrogate/metric_vector.hpp"
#include "src/surrogate/sweep.hpp"

namespace abp::bench {
namespace {

constexpr int kReplications = 5;  // the paper-grade per-point replication count

struct TrueError {
  double mean = 0.0;
  double max = 0.0;
};

}  // namespace
}  // namespace abp::bench

int main(int argc, char** argv) {
  using namespace abp;
  using namespace abp::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_surrogate.json";
  const double duration_s = 1800.0 * duration_scale();
  const std::uint64_t seed = 2020;

  scenario::ScenarioConfig base =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  base.duration_s = duration_s;
  base.seed = seed;

  surrogate::SweepAxes axes;
  axes.controllers = {core::ControllerType::UtilBp, core::ControllerType::CapBp,
                      core::ControllerType::OriginalBp, core::ControllerType::FixedTime};
  axes.patterns = {traffic::PatternKind::I, traffic::PatternKind::II,
                   traffic::PatternKind::III, traffic::PatternKind::IV,
                   traffic::PatternKind::Mixed};
  axes.periods_s = {6,  8,  10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32};
  const std::vector<surrogate::SweepPoint> points = surrogate::axis_points(axes);

  print_header("Surrogate sweep (micro-only vs calibrated surrogate + spot checks)");
  std::printf("compiler: %s, hardware threads: %u\n", kCompiler,
              std::thread::hardware_concurrency());
  std::printf("grid=3x3 duration=%.0fs points=%zu replications=%d\n", duration_s,
              points.size(), kReplications);
  std::fflush(stdout);

  // --- Arm 1: micro-only baseline — R replications of every point. Per-point
  // batches keep peak memory at R RunResults; the runner is reused so both
  // arms pay identical setup.
  exp::ExperimentRunner runner({.jobs = 1});
  std::vector<surrogate::MetricVector> micro_means(points.size());
  const double micro_wall = timed_seconds([&] {
    for (std::size_t i = 0; i < points.size(); ++i) {
      scenario::ScenarioConfig cfg = base;
      cfg.simulator = scenario::SimulatorKind::Micro;
      surrogate::apply_sweep_point(cfg, points[i]);
      const std::vector<stats::RunResult> results =
          runner.run(exp::replication_configs(cfg, kReplications));
      surrogate::MetricVector mean{};
      for (const stats::RunResult& r : results) {
        const surrogate::MetricVector m = surrogate::extract_metrics(r);
        for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) mean[c] += m[c];
      }
      for (double& v : mean) v /= static_cast<double>(results.size());
      micro_means[i] = mean;
    }
  });
  std::printf("micro-only: %zu runs, %.2f s wall\n", points.size() * kReplications,
              micro_wall);
  std::fflush(stdout);

  // --- Arm 2: the surrogate protocol — calibration included in the clock
  // (it is real cost the protocol pays; it amortizes over re-sweeps of the
  // same family but is charged here in full).
  surrogate::CalibrationOptions copt;
  copt.replications = 3;
  copt.duration_s = duration_s / 3.0;  // fits stabilize well before the horizon
  copt.profile_name = "bench-3x3";
  surrogate::CalibrationProfile profile;
  const double calibration_wall =
      timed_seconds([&] { profile = surrogate::calibrate(base, copt); });

  surrogate::SweepOptions sopt;
  sopt.best_k = 8;
  sopt.sample_fraction = 0.05;
  sopt.spot_replications = kReplications;
  surrogate::SweepReport report;
  const double sweep_wall = timed_seconds(
      [&] { report = surrogate::surrogate_sweep(base, profile, axes, sopt); });
  const double surrogate_wall = calibration_wall + sweep_wall;
  const double speedup = micro_wall / surrogate_wall;

  std::printf(
      "calibrated: profile=%s service=%.4f transit=%.4f capacity=%.4f "
      "(objective=%.4f, %.2f s wall)\n",
      profile.name.c_str(), profile.service_scale, profile.transit_scale,
      profile.capacity_scale, profile.objective, calibration_wall);
  std::printf("surrogate: %zu queue runs + %d spot checks x %d reps, %.2f s wall\n",
              points.size(), report.spot_checks, kReplications, sweep_wall);
  std::printf("speedup: %.2fx (micro %.2f s / surrogate %.2f s)\n", speedup, micro_wall,
              surrogate_wall);

  // --- Achieved error: the spot-check estimate next to ground truth.
  std::vector<TrueError> true_errors(surrogate::kMetricCount);
  for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double denom =
          std::max(std::abs(micro_means[i][c]), surrogate::kRelativeErrorFloor);
      const double err = std::abs(report.rows[i].surrogate[c] - micro_means[i][c]) / denom;
      true_errors[c].mean += err;
      true_errors[c].max = std::max(true_errors[c].max, err);
    }
    true_errors[c].mean /= static_cast<double>(points.size());
  }
  std::printf("%-18s %28s %28s\n", "metric", "spot-check estimate (95% CI)",
              "true error (mean / max)");
  for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) {
    const surrogate::MetricErrorBar& bar = report.error_bars[c];
    std::printf("%-18s %17.4f +/- %6.4f %18.4f / %6.4f\n", bar.metric.c_str(),
                bar.mean_relative_error, bar.ci95_halfwidth, true_errors[c].mean,
                true_errors[c].max);
  }

  // Frontier regret: how much worse (in true micro avg queuing time) is the
  // surrogate's top pick than the true best point.
  std::size_t true_best = 0, surrogate_best = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (micro_means[i][0] < micro_means[true_best][0]) true_best = i;
    if (report.rows[i].rank == 0) surrogate_best = i;
  }
  const double regret =
      micro_means[surrogate_best][0] / micro_means[true_best][0] - 1.0;
  std::printf("frontier: surrogate pick true avg_queuing_s=%.2f vs best %.2f "
              "(regret %.1f%%), flagged=%d/%d\n",
              micro_means[surrogate_best][0], micro_means[true_best][0], regret * 100.0,
              report.flagged, report.spot_checks);
  std::fflush(stdout);

  // --- CSV mirror: per-point surrogate vs micro-mean metrics.
  std::ofstream csv = open_csv("surrogate_sweep");
  csv << "controller,pattern,period_s,rank,spot_checked";
  for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) {
    csv << ",surrogate_" << surrogate::kMetricNames[c] << ",micro_"
        << surrogate::kMetricNames[c];
  }
  csv << "\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const surrogate::SweepRow& row = report.rows[i];
    csv << core::controller_type_name(row.point.controller) << ","
        << traffic::pattern_name(row.point.pattern) << "," << row.point.period_s << ","
        << row.rank << "," << (row.spot_checked ? 1 : 0);
    for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) {
      csv << "," << row.surrogate[c] << "," << micro_means[i][c];
    }
    csv << "\n";
  }

  // --- JSON report.
  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"surrogate_sweep\",\n"
      << "  \"compiler\": \"" << kCompiler << "\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"grid\": \"3x3\",\n"
      << "  \"sim_seconds\": " << duration_s << ",\n"
      << "  \"points\": " << points.size() << ",\n"
      << "  \"replications\": " << kReplications << ",\n"
      << "  \"micro_runs\": " << points.size() * kReplications << ",\n"
      << "  \"micro_only_wall_seconds\": " << micro_wall << ",\n"
      << "  \"calibration_wall_seconds\": " << calibration_wall << ",\n"
      << "  \"sweep_wall_seconds\": " << sweep_wall << ",\n"
      << "  \"surrogate_wall_seconds\": " << surrogate_wall << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"profile\": {\"service_scale\": " << profile.service_scale
      << ", \"transit_scale\": " << profile.transit_scale
      << ", \"capacity_scale\": " << profile.capacity_scale
      << ", \"objective\": " << profile.objective << "},\n"
      << "  \"spot_checks\": " << report.spot_checks << ",\n"
      << "  \"flagged\": " << report.flagged << ",\n"
      << "  \"frontier_regret\": " << regret << ",\n"
      << "  \"error_bars\": [\n";
  for (std::size_t c = 0; c < surrogate::kMetricCount; ++c) {
    const surrogate::MetricErrorBar& bar = report.error_bars[c];
    out << "    {\"metric\": \"" << bar.metric << "\", \"samples\": " << bar.samples
        << ", \"mean_relative_error\": " << bar.mean_relative_error
        << ", \"ci95_halfwidth\": " << bar.ci95_halfwidth
        << ", \"max_relative_error\": " << bar.max_relative_error
        << ", \"true_mean_relative_error\": " << true_errors[c].mean
        << ", \"true_max_relative_error\": " << true_errors[c].max << "}"
        << (c + 1 < surrogate::kMetricCount ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] " << json_path << "\n";
  return 0;
}
