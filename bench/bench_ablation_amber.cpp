// A1: ablation — sensitivity of both policies to the amber (transition)
// duration Delta-k. The paper fixes Delta-k = 4 s; its utilization argument
// says transitions are pure overhead, so queuing times should grow with the
// amber duration for both policies, with the adaptive policy paying per
// *useful* switch rather than per slot.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

int main() {
  using namespace abp;
  bench::print_header("Ablation A1: amber-duration sensitivity (Pattern I, 1 h)");

  const double duration = 3600.0 * bench::duration_scale();
  constexpr std::uint64_t kSeed = 2020;

  stats::TextTable table({"Amber [s]", "UTIL-BP avg queuing [s]", "CAP-BP(16) avg queuing [s]",
                          "UTIL-BP ambers @J(0,2)"});
  auto csv = bench::open_csv("ablation_amber");
  CsvWriter w(csv);
  w.row({"amber_s", "utilbp_avg_queuing_s", "capbp_avg_queuing_s", "utilbp_transitions"});

  for (double amber : {1.0, 2.0, 4.0, 6.0, 8.0}) {
    scenario::ScenarioConfig util_cfg =
        scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp);
    util_cfg.duration_s = duration;
    util_cfg.seed = kSeed;
    util_cfg.controller.util.amber_duration_s = amber;
    const stats::RunResult util = scenario::run_scenario(util_cfg);

    scenario::ScenarioConfig cap_cfg =
        scenario::paper_scenario(traffic::PatternKind::I, core::ControllerType::CapBp, 16.0);
    cap_cfg.duration_s = duration;
    cap_cfg.seed = kSeed;
    cap_cfg.controller.fixed_slot.amber_duration_s = amber;
    const stats::RunResult cap = scenario::run_scenario(cap_cfg);

    table.add_row({stats::TextTable::num(amber, 0),
                   stats::TextTable::num(util.metrics.average_queuing_time_s()),
                   stats::TextTable::num(cap.metrics.average_queuing_time_s()),
                   std::to_string(util.phase_traces[2].transition_count())});
    w.typed_row(amber, util.metrics.average_queuing_time_s(),
                cap.metrics.average_queuing_time_s(),
                util.phase_traces[2].transition_count());
  }
  table.print(std::cout);
  return 0;
}
