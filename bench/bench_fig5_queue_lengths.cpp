// F5: reproduces Fig. 5 — queue length over time on the incoming road from
// the East at the top-right intersection, for CAP-BP (optimal period) and
// UTIL-BP, Pattern I, 2000 s.
//
// Paper shape to match: UTIL-BP's queue stays below CAP-BP's in general and
// repeatedly drains to (near) zero.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

constexpr double kTraceDuration = 2000.0;
constexpr std::uint64_t kSeed = 2020;

abp::stats::TimeSeries run_watch(abp::core::ControllerType type, double period) {
  abp::scenario::ScenarioConfig cfg =
      abp::scenario::paper_scenario(abp::traffic::PatternKind::I, type, period);
  cfg.duration_s = kTraceDuration;
  cfg.seed = kSeed;
  cfg.watches.push_back(
      {.row = 0, .col = 2, .side = abp::net::Side::East, .name = "east@J(0,2)"});
  abp::stats::RunResult r = abp::scenario::run_scenario(cfg);
  return r.road_series.front();
}

}  // namespace

int main() {
  using namespace abp;
  bench::print_header(
      "Fig. 5: queue length, incoming road from the East, top-right intersection");

  const stats::TimeSeries cap = run_watch(core::ControllerType::CapBp, 18.0);
  const stats::TimeSeries util = run_watch(core::ControllerType::UtilBp, 18.0);

  ChartSeries cap_series{.name = "CAP-BP (optimal period)", .marker = 'o'};
  cap_series.x = cap.times();
  cap_series.y = cap.values();
  ChartSeries util_series{.name = "UTIL-BP", .marker = '+'};
  util_series.x = util.times();
  util_series.y = util.values();

  ChartOptions opt;
  opt.title = "Fig. 5 — queue lengths for the two control algorithms (Pattern I)";
  opt.x_label = "Time [s]";
  opt.y_label = "Queue length [veh]";
  opt.height = 16;
  std::cout << render_chart({cap_series, util_series}, opt);

  auto csv = bench::open_csv("fig5_queue_lengths");
  CsvWriter w(csv);
  w.row({"time_s", "capbp_queue", "utilbp_queue"});
  for (std::size_t i = 0; i < cap.size() && i < util.size(); ++i) {
    w.typed_row(cap.times()[i], cap.values()[i], util.values()[i]);
  }

  stats::TextTable summary({"Policy", "Mean queue [veh]", "Max queue [veh]",
                            "Time-weighted mean [veh]"});
  summary.add_row({"CAP-BP", stats::TextTable::num(cap.mean()),
                   stats::TextTable::num(cap.max(), 0),
                   stats::TextTable::num(cap.time_weighted_mean())});
  summary.add_row({"UTIL-BP", stats::TextTable::num(util.mean()),
                   stats::TextTable::num(util.max(), 0),
                   stats::TextTable::num(util.time_weighted_mean())});
  summary.print(std::cout);
  return 0;
}
