// A6: sensing-robustness ablation.
//
// Back-pressure control is a CPS: the cyber half acts on *measured* queue
// lengths. This bench degrades the queue detectors (missed detections,
// coarse quantization, dropouts) and reports how each policy's queuing time
// reacts on Pattern I. Fixed-time control ignores sensors entirely and is
// the flat reference line.
//
// The 9 sensing cases x 3 policies = 27 independent runs execute as one
// exp::ExperimentRunner batch (results bit-identical to the old serial loop
// at every jobs count).
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/stats/report.hpp"

namespace {

struct NoiseCase {
  std::string label;
  abp::core::SensorModel model;
};

}  // namespace

int main() {
  using namespace abp;
  bench::print_header("A6: robustness to queue-detector imperfection (Pattern I, 1 h)");

  const double duration = 3600.0 * bench::duration_scale();
  constexpr std::uint64_t kSeed = 2020;

  const NoiseCase cases[] = {
      {"perfect sensing", {}},
      {"90% detection", {.detection_probability = 0.9}},
      {"70% detection", {.detection_probability = 0.7}},
      {"50% detection", {.detection_probability = 0.5}},
      {"quantized to 5", {.quantization = 5}},
      {"quantized to 10", {.quantization = 10}},
      {"5% dropouts", {.dropout_probability = 0.05}},
      {"20% dropouts", {.dropout_probability = 0.2}},
      {"70% detection + quantized 5 + 5% dropouts",
       {.detection_probability = 0.7, .quantization = 5, .dropout_probability = 0.05}},
  };
  const core::ControllerType kPolicies[] = {core::ControllerType::UtilBp,
                                            core::ControllerType::CapBp,
                                            core::ControllerType::FixedTime};

  // Batch in (case, policy) row-major order: configs[c * 3 + p].
  std::vector<scenario::ScenarioConfig> configs;
  for (const NoiseCase& nc : cases) {
    for (core::ControllerType type : kPolicies) {
      scenario::ScenarioConfig cfg =
          scenario::paper_scenario(traffic::PatternKind::I, type, 16.0);
      cfg.duration_s = duration;
      cfg.seed = kSeed;
      cfg.micro.sensor = nc.model;
      configs.push_back(cfg);
    }
  }

  const int jobs = exp::max_safe_jobs();
  std::cout << "[exp] " << configs.size() << " runs, jobs=" << jobs << "\n";
  exp::ExperimentRunner runner({.jobs = jobs});
  const std::vector<stats::RunResult> results = runner.run(configs);

  stats::TextTable table({"Sensing", "UTIL-BP avg queuing [s]", "CAP-BP(16) avg queuing [s]",
                          "FIXED-TIME avg queuing [s]"});
  auto csv = bench::open_csv("sensor_noise");
  CsvWriter w(csv);
  w.row({"sensing", "utilbp_avg_queuing_s", "capbp_avg_queuing_s", "fixedtime_avg_queuing_s"});

  for (std::size_t c = 0; c < std::size(cases); ++c) {
    const double q0 = results[c * 3 + 0].metrics.average_queuing_time_s();
    const double q1 = results[c * 3 + 1].metrics.average_queuing_time_s();
    const double q2 = results[c * 3 + 2].metrics.average_queuing_time_s();
    table.add_row({cases[c].label, stats::TextTable::num(q0), stats::TextTable::num(q1),
                   stats::TextTable::num(q2)});
    w.typed_row(cases[c].label, q0, q1, q2);
  }
  table.print(std::cout);
  return 0;
}
