// Shared helpers for the experiment benches.
//
// Every bench prints its table/figure to stdout (bench_output.txt captures
// it) and mirrors the raw series into CSV files under ./bench_results/ for
// external re-plotting.
#pragma once

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "src/util/csv.hpp"

namespace abp::bench {

// Compiler identity stamped into every bench's JSON header so numbers from
// different builds stay attributable.
inline constexpr const char* kCompiler =
#if defined(__clang__)
    "clang " __clang_version__;
#elif defined(__GNUC__)
    "gcc " __VERSION__;
#else
    "unknown";
#endif

// The one timing loop every bench shares: wall-clock seconds of fn() on the
// steady clock. Timed sections must do their own warmup and carry their own
// optimization sinks; the helper only standardizes the clock and the unit.
template <typename Fn>
[[nodiscard]] inline double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Best-of-N timing for sections cheap enough to repeat: runs fn() `rounds`
// times and keeps the fastest wall clock, shedding scheduler noise the way
// repeated interleaved measurement does. Deterministic workloads only — fn
// must do the same work every round.
template <typename Fn>
[[nodiscard]] inline double best_of_seconds(int rounds, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const double s = timed_seconds(fn);
    if (s < best) best = s;
  }
  return best;
}

// Directory that receives the CSV mirrors of every bench result.
inline std::filesystem::path results_dir() {
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

// Opens bench_results/<name>.csv for writing, announcing it on stdout.
inline std::ofstream open_csv(const std::string& name) {
  const std::filesystem::path path = results_dir() / (name + ".csv");
  std::cout << "[csv] " << path.string() << "\n";
  return std::ofstream(path);
}

// Scales paper durations down when ABP_FAST=1 is set (quick smoke runs).
inline double duration_scale() {
  const char* fast = std::getenv("ABP_FAST");
  return (fast != nullptr && fast[0] == '1') ? 0.1 : 1.0;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace abp::bench
