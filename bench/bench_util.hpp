// Shared helpers for the experiment benches.
//
// Every bench prints its table/figure to stdout (bench_output.txt captures
// it) and mirrors the raw series into CSV files under ./bench_results/ for
// external re-plotting.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "src/util/csv.hpp"

namespace abp::bench {

// Directory that receives the CSV mirrors of every bench result.
inline std::filesystem::path results_dir() {
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

// Opens bench_results/<name>.csv for writing, announcing it on stdout.
inline std::ofstream open_csv(const std::string& name) {
  const std::filesystem::path path = results_dir() / (name + ".csv");
  std::cout << "[csv] " << path.string() << "\n";
  return std::ofstream(path);
}

// Scales paper durations down when ABP_FAST=1 is set (quick smoke runs).
inline double duration_scale() {
  const char* fast = std::getenv("ABP_FAST");
  return (fast != nullptr && fast[0] == '1') ? 0.1 : 1.0;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace abp::bench
