// A3: microbenchmarks for the controller decision path (google-benchmark).
//
// The paper's Section I claims back-pressure control has "low computational
// complexity" suitable for decentralized roadside deployment. This bench
// measures one decide() call on a Fig.-1 junction for every policy, plus the
// gain-computation kernel, so the claim is backed by numbers in
// bench_output.txt.
#include <benchmark/benchmark.h>

#include "src/core/factory.hpp"
#include "src/net/grid.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace abp;

core::IntersectionObservation random_observation(Rng& rng, double time) {
  core::IntersectionObservation obs;
  obs.time = time;
  for (int i = 0; i < 12; ++i) {
    core::LinkState l;
    l.queue = static_cast<int>(rng.uniform_int(0, 40));
    l.upstream_total = l.queue + static_cast<int>(rng.uniform_int(0, 40));
    l.upstream_capacity = 120;
    l.downstream_queue = static_cast<int>(rng.uniform_int(0, 40));
    l.downstream_total = l.downstream_queue + static_cast<int>(rng.uniform_int(0, 60));
    l.downstream_capacity = 120;
    l.service_rate = 1.0;
    obs.links.push_back(l);
  }
  return obs;
}

core::IntersectionPlan fig1_plan() {
  const net::Network net = net::build_grid({.rows = 1, .cols = 1});
  return core::make_plan(net, net.intersections().front());
}

void BM_GainComputation(benchmark::State& state) {
  Rng rng(1);
  const core::IntersectionObservation obs = random_observation(rng, 0.0);
  core::GainParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::all_link_gains_util(obs, params));
  }
}
BENCHMARK(BM_GainComputation);

template <core::ControllerType Type>
void BM_ControllerDecide(benchmark::State& state) {
  core::ControllerSpec spec;
  spec.type = Type;
  core::ControllerPtr controller = core::make_controller(spec, fig1_plan());
  Rng rng(7);
  double time = 0.0;
  for (auto _ : state) {
    time += 1.0;
    benchmark::DoNotOptimize(controller->decide(random_observation(rng, time)));
  }
}
BENCHMARK(BM_ControllerDecide<core::ControllerType::UtilBp>)->Name("BM_Decide_UTIL_BP");
BENCHMARK(BM_ControllerDecide<core::ControllerType::CapBp>)->Name("BM_Decide_CAP_BP");
BENCHMARK(BM_ControllerDecide<core::ControllerType::OriginalBp>)->Name("BM_Decide_ORIG_BP");
BENCHMARK(BM_ControllerDecide<core::ControllerType::FixedTime>)->Name("BM_Decide_FIXED_TIME");

void BM_ObservationScaling(benchmark::State& state) {
  // Decision cost vs junction size: links per junction on the x-axis.
  const int links = static_cast<int>(state.range(0));
  core::IntersectionPlan plan;
  plan.num_links = links;
  plan.phases.push_back({});
  for (int i = 0; i < links; i += 3) {
    std::vector<int> phase;
    for (int j = i; j < std::min(i + 3, links); ++j) phase.push_back(j);
    plan.phases.push_back(std::move(phase));
  }
  core::UtilBpConfig cfg;
  core::UtilBpController controller(std::move(plan), cfg);
  Rng rng(13);
  core::IntersectionObservation obs;
  obs.links.resize(static_cast<std::size_t>(links));
  for (auto& l : obs.links) {
    l.queue = static_cast<int>(rng.uniform_int(0, 40));
    l.upstream_total = l.queue;
    l.upstream_capacity = 120;
    l.downstream_queue = static_cast<int>(rng.uniform_int(0, 40));
    l.downstream_total = l.downstream_queue;
    l.downstream_capacity = 120;
    l.service_rate = 1.0;
  }
  double time = 0.0;
  for (auto _ : state) {
    time += 1.0;
    obs.time = time;
    benchmark::DoNotOptimize(controller.decide(obs));
  }
  state.SetComplexityN(links);
}
BENCHMARK(BM_ObservationScaling)->RangeMultiplier(2)->Range(3, 96)->Complexity();

void BM_FullControlStep3x3(benchmark::State& state) {
  // One network-wide control sweep: 9 junctions x decide() with fresh
  // observations — what a roadside cycle costs per mini-slot.
  const net::Network net = net::build_grid(net::GridConfig{});
  core::ControllerSpec spec;
  spec.type = core::ControllerType::UtilBp;
  auto controllers = core::make_controllers(spec, net);
  Rng rng(17);
  double time = 0.0;
  for (auto _ : state) {
    time += 1.0;
    for (auto& controller : controllers) {
      benchmark::DoNotOptimize(controller->decide(random_observation(rng, time)));
    }
  }
}
BENCHMARK(BM_FullControlStep3x3);

}  // namespace

BENCHMARK_MAIN();
