// Fixed-size thread pool for intra-tick data parallelism.
//
// The simulators dispatch a handful of parallel regions per tick (MicroSim's
// per-road Krauss sweep; QueueSim's two-pass service sweep), tens of
// thousands of times per run, so the pool is built for cheap repeated
// fork/join over the same worker set rather than for general task graphs:
// workers are spawned once, park on a condition variable between regions,
// and each parallel_for() splits the index range into one contiguous chunk
// per participant. The calling thread always executes chunk 0 itself,
// so ThreadPool(n) provides n-way parallelism with n-1 worker threads and
// ThreadPool(1) degenerates to an inline loop with no threads and no locking.
//
// Exceptions thrown inside a chunk are captured (first one wins), the region
// still completes on the other chunks, and parallel_for() rethrows on the
// calling thread; the pool stays usable afterwards. Determinism note: the
// chunk partition is a pure function of (n, size()), never of timing, so any
// caller whose chunks touch disjoint state gets identical results at every
// pool size — the property the simulators' golden tests pin.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace abp {

class ThreadPool {
 public:
  // A pool of total parallelism `threads` (>= 1), counting the caller.
  explicit ThreadPool(int threads) : size_(threads) {
    if (threads < 1) throw std::invalid_argument("ThreadPool needs >= 1 thread");
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  [[nodiscard]] int size() const noexcept { return size_; }

  // Runs fn(begin, end) over a partition of [0, n) into size() contiguous
  // half-open chunks (one per participant; chunk sizes differ by at most 1).
  // Blocks until every chunk has finished; rethrows the first exception any
  // chunk raised. Reentrant calls from inside fn are not supported.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for_indexed(
        n, [&fn](std::size_t begin, std::size_t end, std::size_t) { fn(begin, end); });
  }

  // Like parallel_for, but fn(begin, end, chunk) additionally receives the
  // chunk's index in [0, size()): a stable work-unit id — one per
  // participant, a pure function of the dispatch like the partition itself —
  // for callers that key per-work-unit scratch (MicroSim's lane-kernel
  // buffers) without replicating the chunking formula.
  void parallel_for_indexed(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (size_ == 1 || n == 1) {
      fn(0, n, 0);  // inline fast path: no locks, no wakeups
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      pending_ = size_ - 1;
      error_ = nullptr;
      ++epoch_;
    }
    start_cv_.notify_all();
    run_chunk(0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      job_fn_ = nullptr;
      if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void run_chunk(int who) noexcept {
    // Even split with the remainder spread over the leading chunks, so the
    // partition depends only on (job_n_, size_).
    const std::size_t n = job_n_;
    const std::size_t p = static_cast<std::size_t>(size_);
    const std::size_t base = n / p;
    const std::size_t extra = n % p;
    const std::size_t w = static_cast<std::size_t>(who);
    const std::size_t begin = w * base + (w < extra ? w : extra);
    const std::size_t end = begin + base + (w < extra ? 1 : 0);
    if (begin >= end) return;
    try {
      (*job_fn_)(begin, end, w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void worker_loop(int who) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
      }
      run_chunk(who);
      bool last;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = --pending_ == 0;
      }
      if (last) done_cv_.notify_one();
    }
  }

  const int size_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace abp
