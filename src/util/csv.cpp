#include "src/util/csv.hpp"

namespace abp {

CsvWriter::CsvWriter(std::ostream& out, char separator) : out_(out), sep_(separator) {}

std::string CsvWriter::escape(std::string_view field, char separator) {
  const bool needs_quoting = field.find_first_of("\"\r\n") != std::string_view::npos ||
                             field.find(separator) != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << sep_;
    out_ << escape(fields[i], sep_);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace abp
