// Deterministic random number generation for simulations.
//
// All stochastic inputs of a run (arrival times, turning decisions, car-follower
// dawdling) are drawn from a single seeded stream so that every experiment is
// exactly reproducible. We implement xoshiro256++ (public-domain, Blackman &
// Vigna) rather than relying on std::mt19937 so that the bit stream is stable
// across standard-library implementations, plus the distributions we need:
// uniform, exponential (Poisson inter-arrival times), Poisson counts and
// discrete choice.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace abp {

// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the state via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  // Next raw 64-bit word of the stream.
  std::uint64_t next() noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Exponentially distributed value with the given mean (= 1/rate).
  // Used for Poisson-process inter-arrival times (Table II of the paper).
  double exponential(double mean) noexcept;

  // Poisson-distributed count with the given mean. Knuth's method for small
  // means, normal approximation above 30 (counts per mini-slot are small).
  int poisson(double mean) noexcept;

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Index sampled according to `weights` (non-negative, not all zero).
  // Used for turning-probability draws (Table I).
  std::size_t discrete(std::span<const double> weights) noexcept;

  // Splits off an independent child stream; used to give each intersection /
  // entry road its own stream while keeping one master seed per run.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace abp
