// Deterministic random number generation for simulations.
//
// All stochastic inputs of a run (arrival times, turning decisions, car-follower
// dawdling) are drawn from a single seeded stream so that every experiment is
// exactly reproducible. We implement xoshiro256++ (public-domain, Blackman &
// Vigna) rather than relying on std::mt19937 so that the bit stream is stable
// across standard-library implementations, plus the distributions we need:
// uniform, exponential (Poisson inter-arrival times), Poisson counts and
// discrete choice.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace abp {

// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the state via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  // Next raw 64-bit word of the stream.
  std::uint64_t next() noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Exponentially distributed value with the given mean (= 1/rate).
  // Used for Poisson-process inter-arrival times (Table II of the paper).
  double exponential(double mean) noexcept;

  // Poisson-distributed count with the given mean. Knuth's method for small
  // means, normal approximation above 30 (counts per mini-slot are small).
  int poisson(double mean) noexcept;

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Index sampled according to `weights` (non-negative, not all zero).
  // Used for turning-probability draws (Table I).
  std::size_t discrete(std::span<const double> weights) noexcept;

  // Splits off an independent child stream; used to give each intersection /
  // entry road its own stream while keeping one master seed per run.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

// Counter-based (Philox-style) random stream: the value of draw k of stream s
// is a pure function mix(key(seed, s), k), with no state evolution beyond the
// counter. This is the RNG shape for parallel simulation — the parallel lane
// sweep gives every road its own stream, so the draws a road consumes depend
// only on that road's vehicle history, never on which thread ran it or in
// what order roads were scheduled. Fixed-seed runs are therefore bit-identical
// at any thread count. The mixer is four rounds of the Philox 2x64 bumped-key
// multiply-hi/lo round function (Salmon et al., SC'11), far more than needed
// for dawdling noise but still a handful of nanoseconds per draw.
class StreamRng {
 public:
  using result_type = std::uint64_t;

  StreamRng() noexcept = default;
  // Stream `stream` of master seed `seed`. Distinct (seed, stream) pairs give
  // statistically independent sequences.
  StreamRng(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  // Draw `ctr` of the stream keyed by `key`: four bumped-key Philox 2x64
  // rounds over (counter, key). A pure function — the whole determinism story
  // of the parallel sweep, and what makes bulk draws possible: draw k is the
  // same value whether it is taken alone, in sequence, or in a batch.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t key, std::uint64_t ctr) noexcept {
    constexpr std::uint64_t kMul = 0xd2b74407b1ce6e93ULL;   // Philox M2x64
    constexpr std::uint64_t kWeyl = 0x9e3779b97f4a7c15ULL;  // golden-ratio bump
    std::uint64_t x0 = ctr;
    std::uint64_t x1 = key;
    std::uint64_t k = key;
    for (int round = 0; round < 4; ++round) {
      const unsigned __int128 product =
          static_cast<unsigned __int128>(x0) * static_cast<unsigned __int128>(kMul);
      const std::uint64_t hi = static_cast<std::uint64_t>(product >> 64);
      const std::uint64_t lo = static_cast<std::uint64_t>(product);
      x0 = hi ^ k ^ x1;
      x1 = lo;
      k += kWeyl;
    }
    return x0 ^ x1;
  }

  // Word -> uniform double in [0, 1): the 53-bit construction of Rng::uniform01.
  [[nodiscard]] static double to_u01(std::uint64_t word) noexcept {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
  }

  // Next word of the stream: mixes the key with the counter, then advances
  // the counter. Inline: this is one draw per vehicle-step in the micro-sim
  // sweep, and a cross-TU call per draw is measurable at scale.
  std::uint64_t next() noexcept { return mix(key_, counter_++); }

  // Uniform double in [0, 1). Same 53-bit construction as Rng::uniform01.
  double uniform01() noexcept { return to_u01(next()); }

  // Bulk draw: fills dst[0..n) with exactly the values n sequential
  // uniform01() calls would produce, and advances the counter by n — the
  // stream-position accounting is indistinguishable from n scalar draws.
  // Because draw k is a pure function of (key, k), the loop body has no
  // loop-carried state: the four-round mixers of independent counters
  // pipeline across iterations instead of serializing on a state update,
  // which is what makes the micro-sim's per-lane bulk dawdle fill cheaper
  // than n scalar next() calls even though the arithmetic is identical.
  void fill_u01(double* dst, std::size_t n) noexcept {
    const std::uint64_t base = counter_;
    for (std::size_t j = 0; j < n; ++j) dst[j] = to_u01(mix(key_, base + j));
    counter_ += n;
  }

  // Bulk draw in tail-first consumption order: dst[i] receives draw
  // base + (n-1-i), so a kernel that assigns draws to lane slots head-first
  // (slot 0 = head) reproduces bit-for-bit the stream a tail-first scalar
  // loop (slot n-1 drawn first) consumed. Same counter advance as fill_u01;
  // only the destination order differs, keeping the hot speed-update loop's
  // read of the draws contiguous and forward.
  void fill_u01_tailfirst(double* dst, std::size_t n) noexcept {
    const std::uint64_t base = counter_;
    for (std::size_t j = 0; j < n; ++j) dst[n - 1 - j] = to_u01(mix(key_, base + j));
    counter_ += n;
  }

  // Uniform integer in [0, bound), unbiased, for bound >= 1. Lemire's
  // multiply-shift rejection (Lemire 2019, "Fast Random Integer Generation in
  // an Interval"): the naive `next() % bound` over-weights the low residues
  // whenever bound does not divide 2^64 — a small but real skew that a
  // uniformity test can pin. The widening multiply maps a 64-bit word onto
  // [0, bound) with its fractional part in the low word; only draws landing
  // in the partial (short) slice are rejected and redrawn, so almost every
  // call costs exactly one next(). Each accepted value consumes at least one
  // counter step, so bounded draws compose with the counter-accounting
  // contract like any other draw.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    for (;;) {
      const std::uint64_t word = next();
      unsigned __int128 product =
          static_cast<unsigned __int128>(word) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(product);
      if (low >= bound || low >= (0ULL - bound) % bound) {
        return static_cast<std::uint64_t>(product >> 64);
      }
    }
  }

  // Number of draws consumed so far; settable for replay/skip-ahead.
  [[nodiscard]] std::uint64_t counter() const noexcept { return counter_; }
  void set_counter(std::uint64_t counter) noexcept { counter_ = counter; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace abp
