// Strong identifier types used across the library.
//
// The network model indexes roads, links, phases, intersections and vehicles.
// Raw integers invite silent cross-indexing bugs (passing a road index where a
// link index is expected); per the C++ Core Guidelines (I.4 "make interfaces
// precisely and strongly typed") we wrap each index in a distinct type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace abp {

// A type-tagged integer id. `Tag` is an empty struct that only serves to make
// two instantiations incompatible. Ids are trivially copyable and ordered so
// they can key vectors and maps.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  // An invalid id (sentinel). Default-constructed ids are invalid so that a
  // forgotten assignment is caught by `valid()` checks and asserts, instead of
  // silently aliasing id 0.
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(value_type v) noexcept : v_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return v_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return v_ != kInvalid; }

  // Index into contiguous storage. Same as value(); spelled differently at
  // call sites that use the id as a vector subscript.
  [[nodiscard]] constexpr std::size_t index() const noexcept { return v_; }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept { return a.v_ == b.v_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept { return a.v_ != b.v_; }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept { return a.v_ < b.v_; }
  friend constexpr bool operator>(StrongId a, StrongId b) noexcept { return a.v_ > b.v_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) noexcept { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) noexcept { return a.v_ >= b.v_; }

 private:
  value_type v_ = kInvalid;
};

struct RoadTag {};
struct LinkTag {};
struct IntersectionTag {};
struct VehicleTag {};
struct LaneTag {};

// A directed road segment (a node N_i of the paper's queueing graph).
using RoadId = StrongId<RoadTag>;
// A feasible movement L_i^{i'} from an incoming to an outgoing road.
using LinkId = StrongId<LinkTag>;
// A signalized junction.
using IntersectionId = StrongId<IntersectionTag>;
// A simulated vehicle.
using VehicleId = StrongId<VehicleTag>;
// A dedicated turning lane on a road.
using LaneId = StrongId<LaneTag>;

}  // namespace abp

namespace std {
template <typename Tag>
struct hash<abp::StrongId<Tag>> {
  size_t operator()(abp::StrongId<Tag> id) const noexcept {
    return std::hash<typename abp::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
