// Index-based FIFO queue on contiguous storage.
//
// The simulators' lane and transit queues need O(1) pop_front, O(1) amortized
// push_back, indexed access and forward iteration — the access mix of a
// stop-line queue that is scanned every tick. std::vector front-erases are
// O(n) per pop; std::deque has O(1) pops but pays block-pointer indirection
// on every scan of a queue of 4-byte ids. VecQueue keeps a head cursor into a
// plain vector and compacts lazily once the dead prefix outweighs the live
// payload, so every operation is amortized O(1) with vector locality.
#pragma once

#include <cstddef>
#include <vector>

namespace abp {

template <typename T>
class VecQueue {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;

  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size() - head_; }
  [[nodiscard]] const T& front() const noexcept { return buf_[head_]; }
  [[nodiscard]] const T& back() const noexcept { return buf_.back(); }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return buf_[head_ + i];
  }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return buf_[head_ + i]; }

  void push_back(const T& value) { buf_.push_back(value); }

  void pop_front() {
    ++head_;
    // Compact once more than half the buffer is dead prefix; the memmove is
    // amortized over at least as many pops, keeping pop_front O(1).
    if (head_ >= 32 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

  [[nodiscard]] const_iterator begin() const noexcept {
    return buf_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  [[nodiscard]] const_iterator end() const noexcept { return buf_.end(); }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace abp
