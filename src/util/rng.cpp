#include "src/util/rng.hpp"

#include <cmath>

namespace abp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state would lock the generator at zero; splitmix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection-free multiply-shift is fine here; modulo bias for
  // spans far below 2^64 is negligible for simulation purposes, but we use
  // the widening multiply to avoid it anyway.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(span);
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF. 1 - u in (0,1] so the log argument is never zero.
  return -mean * std::log(1.0 - uniform01());
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double u1 = uniform01();
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value < 0.0 ? 0 : static_cast<int>(value);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng(next());
}

StreamRng::StreamRng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Derive the key by hashing both words through SplitMix64 so that nearby
  // seeds and consecutive stream ids land on unrelated keys.
  std::uint64_t x = seed;
  const std::uint64_t a = splitmix64(x);
  x = a ^ stream;
  key_ = splitmix64(x);
}

}  // namespace abp
