// Streaming statistics accumulators.
//
// Benchmarks and metrics code need running mean/variance/min/max without
// storing every sample, plus an exact-percentile variant that does store
// samples for the per-vehicle queuing-time distributions reported in
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <vector>

namespace abp {

// Welford online accumulator: numerically stable mean and variance, O(1) space.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  // Mean of the samples; 0 if empty.
  [[nodiscard]] double mean() const noexcept;
  // Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  // Min/max; 0 if empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(n_); }

  // Merges another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample-retaining accumulator with exact quantiles. Use when the sample count
// is bounded (per-vehicle metrics over a few hours of simulation).
class SampleSet {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  // Exact q-quantile by linear interpolation, q in [0,1]; 0 if empty.
  // Sorts lazily on first query after an insertion.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace abp
