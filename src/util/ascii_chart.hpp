// Terminal chart rendering for benchmark output.
//
// The paper's evaluation is figures (Fig. 2-5). Bench binaries print the same
// series as ASCII charts so the shape of each result is visible directly in
// bench_output.txt, in addition to the CSV dumps.
#pragma once

#include <string>
#include <vector>

namespace abp {

// One named series of (x, y) points.
struct ChartSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct ChartOptions {
  int width = 72;       // plot area width in characters
  int height = 20;      // plot area height in characters
  std::string title;
  std::string x_label;
  std::string y_label;
};

// Renders an XY line chart of all series into a multi-line string.
// Series are overlaid with their own markers; axes are annotated with min/max.
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const ChartOptions& options);

// Renders a step chart for categorical time series (phase traces, Fig. 3/4):
// y values are small integers; each is drawn on its own row band.
[[nodiscard]] std::string render_step_chart(const ChartSeries& series,
                                            const ChartOptions& options,
                                            int y_min, int y_max);

}  // namespace abp
