// Minimal CSV emission for experiment outputs.
//
// Every bench binary writes the series it prints to a CSV file next to the
// textual output, so figures can be re-plotted outside this repo. Quoting
// follows RFC 4180: fields containing separator, quote or newline are quoted,
// embedded quotes doubled.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace abp {

class CsvWriter {
 public:
  // Writes rows to `out`. The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char separator = ',');

  // Writes one row; each field is escaped independently.
  void row(const std::vector<std::string>& fields);

  // Convenience: heterogeneous row of printable values.
  template <typename... Ts>
  void typed_row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  // Escapes a single field per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view field, char separator = ',');

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::ostream& out_;
  char sep_;
  std::size_t rows_ = 0;
};

}  // namespace abp
