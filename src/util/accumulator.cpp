#include "src/util/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace abp {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double Accumulator::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace abp
