// Minimal JSON document model for the declarative scenario layer.
//
// The scenario loader (src/scenario/scenario_io.hpp) needs three things no
// system library on the build image provides together: parse errors with
// line/column positions (so scenario files fail with actionable messages),
// objects that preserve key insertion order (so dumps are byte-stable and
// diffs stay readable), and numbers that survive a load -> dump -> load
// round trip bit-for-bit — including 64-bit seeds above 2^53, which a
// double-only JSON number type would silently corrupt. Numbers therefore
// keep their raw token text: as_double() / as_uint64() / as_int64() parse on
// demand, and the writer emits doubles in shortest-round-trip form
// (std::to_chars), so serializing a parsed document reproduces every value
// exactly.
//
// Deliberately not a general-purpose JSON library: no comments, no NaN/Inf
// tokens (the scenario schema spells infinity as the string "inf"), no
// \u escapes beyond ASCII pass-through, documents up to the scenario-file
// scale only.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abp::json {

// Parse failure, with 1-based line/column of the offending character.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column)
      : std::runtime_error("JSON parse error at line " + std::to_string(line) +
                           ", column " + std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

class Value;
// Object members in insertion order. Duplicate keys are rejected at parse
// time; lookups are linear (scenario objects hold tens of keys, not
// thousands).
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;  // null

  [[nodiscard]] static Value boolean(bool b);
  // Numbers constructed from typed values serialize canonically: integers
  // without exponent/fraction, doubles in shortest form that parses back to
  // the same bits. Non-finite doubles are a logic error (throws
  // std::invalid_argument) — the schema represents infinity as a string.
  [[nodiscard]] static Value number(double v);
  [[nodiscard]] static Value number(std::int64_t v);
  [[nodiscard]] static Value number(std::uint64_t v);
  [[nodiscard]] static Value number(int v) { return number(static_cast<std::int64_t>(v)); }
  // Wraps an already-lexed number token verbatim (the parser's path; keeps
  // 64-bit integers and unusual-but-valid spellings exact). The token must be
  // a valid JSON number — typed accessors re-validate on use.
  [[nodiscard]] static Value raw_number(std::string token);
  [[nodiscard]] static Value string(std::string s);
  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }
  [[nodiscard]] const char* type_name() const noexcept;

  // Typed accessors. Calling the wrong one throws std::logic_error — callers
  // (the scenario loader) check type() first and raise their own
  // path-addressed errors.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  // Parses the raw number token. as_double accepts any JSON number;
  // as_int64/as_uint64 demand an integer token (no '.', no exponent) within
  // range and throw std::out_of_range / std::invalid_argument otherwise.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  // True when the number token is a plain integer (optional sign, digits).
  [[nodiscard]] bool is_integer_token() const;
  // The raw token text of a number, exactly as parsed or constructed.
  [[nodiscard]] const std::string& number_token() const;

  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] std::vector<Value>& items();
  [[nodiscard]] const std::vector<Member>& members() const;
  [[nodiscard]] std::vector<Member>& members();

  // Object lookup; nullptr when absent (never inserts).
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Appends (array / object). The object form does not check for duplicate
  // keys — builders append each key once by construction.
  void push_back(Value v);
  void set(std::string key, Value v);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  std::string scalar_;  // number token or string payload
  std::vector<Value> items_;
  std::vector<Member> members_;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// rejected). Throws ParseError.
[[nodiscard]] Value parse(std::string_view text);

// Serializes with 2-space indentation, object keys in insertion order, and a
// trailing newline — the canonical form the scenario round-trip tests pin
// byte-for-byte.
[[nodiscard]] std::string dump(const Value& value);

}  // namespace abp::json
