#include "src/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace abp {
namespace {

struct Bounds {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
};

Bounds compute_bounds(const std::vector<ChartSeries>& series) {
  Bounds b;
  for (const auto& s : series) {
    for (double v : s.x) {
      b.x_min = std::min(b.x_min, v);
      b.x_max = std::max(b.x_max, v);
    }
    for (double v : s.y) {
      b.y_min = std::min(b.y_min, v);
      b.y_max = std::max(b.y_max, v);
    }
  }
  if (!std::isfinite(b.x_min)) b = Bounds{0, 1, 0, 1};
  if (b.x_max <= b.x_min) b.x_max = b.x_min + 1.0;
  if (b.y_max <= b.y_min) b.y_max = b.y_min + 1.0;
  return b;
}

std::string format_number(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series, const ChartOptions& options) {
  const int w = std::max(options.width, 16);
  const int h = std::max(options.height, 6);
  const Bounds b = compute_bounds(series);

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  auto plot = [&](double x, double y, char m) {
    const int col = static_cast<int>(std::lround((x - b.x_min) / (b.x_max - b.x_min) * (w - 1)));
    const int row = static_cast<int>(std::lround((y - b.y_min) / (b.y_max - b.y_min) * (h - 1)));
    if (col < 0 || col >= w || row < 0 || row >= h) return;
    grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] = m;
  };

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    // Line interpolation between consecutive points so sparse series read as curves.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const int steps = w;
      for (int t = 0; t <= steps; ++t) {
        const double f = static_cast<double>(t) / steps;
        plot(s.x[i] + f * (s.x[i + 1] - s.x[i]), s.y[i] + f * (s.y[i + 1] - s.y[i]),
             t == 0 || t == steps ? s.marker : (s.marker == '*' ? '.' : s.marker));
      }
    }
    for (std::size_t i = 0; i < n; ++i) plot(s.x[i], s.y[i], s.marker);
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  const std::string y_hi = format_number(b.y_max);
  const std::string y_lo = format_number(b.y_min);
  const std::size_t label_w = std::max(y_hi.size(), y_lo.size());
  for (int r = 0; r < h; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = y_hi;
    if (r == h - 1) label = y_lo;
    label.resize(label_w, ' ');
    out << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(label_w, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  out << std::string(label_w, ' ') << "  " << format_number(b.x_min);
  const std::string x_hi = format_number(b.x_max);
  const int pad = w - static_cast<int>(format_number(b.x_min).size()) - static_cast<int>(x_hi.size());
  out << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ') << x_hi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << std::string(label_w, ' ') << "  x: " << options.x_label;
    if (!options.y_label.empty()) out << "   y: " << options.y_label;
    out << '\n';
  }
  for (const auto& s : series) {
    out << "  " << s.marker << " = " << s.name << '\n';
  }
  return out.str();
}

std::string render_step_chart(const ChartSeries& series, const ChartOptions& options,
                              int y_min, int y_max) {
  const int w = std::max(options.width, 16);
  const Bounds b = compute_bounds({series});
  const int bands = y_max - y_min + 1;

  std::vector<std::string> rows(static_cast<std::size_t>(bands), std::string(static_cast<std::size_t>(w), ' '));
  const std::size_t n = std::min(series.x.size(), series.y.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = series.x[i];
    const double x1 = (i + 1 < n) ? series.x[i + 1] : b.x_max;
    const int band = static_cast<int>(std::lround(series.y[i])) - y_min;
    if (band < 0 || band >= bands) continue;
    int c0 = static_cast<int>(std::lround((x0 - b.x_min) / (b.x_max - b.x_min) * (w - 1)));
    int c1 = static_cast<int>(std::lround((x1 - b.x_min) / (b.x_max - b.x_min) * (w - 1)));
    c0 = std::clamp(c0, 0, w - 1);
    c1 = std::clamp(c1, 0, w - 1);
    for (int c = c0; c <= c1; ++c) {
      rows[static_cast<std::size_t>(bands - 1 - band)][static_cast<std::size_t>(c)] = '#';
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  for (int band = 0; band < bands; ++band) {
    const int value = y_max - band;
    out << (value < 10 ? " " : "") << value << " |" << rows[static_cast<std::size_t>(band)] << '\n';
  }
  out << "   +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  out << "    " << format_number(b.x_min);
  const std::string x_hi = format_number(b.x_max);
  const int pad = w - static_cast<int>(format_number(b.x_min).size()) - static_cast<int>(x_hi.size());
  out << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ') << x_hi << '\n';
  if (!options.x_label.empty()) out << "    x: " << options.x_label << '\n';
  return out.str();
}

}  // namespace abp
