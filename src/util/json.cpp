#include "src/util/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace abp::json {

namespace {

[[noreturn]] void wrong_type(const char* wanted, const char* got) {
  throw std::logic_error(std::string("JSON value is ") + got + ", not " + wanted);
}

}  // namespace

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  if (!std::isfinite(d)) {
    throw std::invalid_argument("non-finite double has no JSON number form");
  }
  Value v;
  v.type_ = Type::Number;
  // Shortest representation that round-trips to the same bits; integral
  // doubles get a ".0" suffix so the token stays unambiguously a double and
  // dump(parse(dump(x))) is byte-stable.
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), d);
  v.scalar_.assign(buf, r.ptr);
  if (v.scalar_.find_first_of(".eE") == std::string::npos) v.scalar_ += ".0";
  return v;
}

Value Value::number(std::int64_t n) {
  Value v;
  v.type_ = Type::Number;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::number(std::uint64_t n) {
  Value v;
  v.type_ = Type::Number;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::raw_number(std::string token) {
  Value v;
  v.type_ = Type::Number;
  v.scalar_ = std::move(token);
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::String;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::Object;
  return v;
}

const char* Value::type_name() const noexcept {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return "a boolean";
    case Type::Number: return "a number";
    case Type::String: return "a string";
    case Type::Array: return "an array";
    case Type::Object: return "an object";
  }
  return "unknown";
}

bool Value::as_bool() const {
  if (type_ != Type::Bool) wrong_type("a boolean", type_name());
  return bool_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) wrong_type("a string", type_name());
  return scalar_;
}

double Value::as_double() const {
  if (type_ != Type::Number) wrong_type("a number", type_name());
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) {
    throw std::out_of_range("number out of double range: " + scalar_);
  }
  return d;
}

bool Value::is_integer_token() const {
  if (type_ != Type::Number) return false;
  std::size_t i = scalar_.size() && scalar_[0] == '-' ? 1 : 0;
  if (i == scalar_.size()) return false;
  for (; i < scalar_.size(); ++i) {
    if (scalar_[i] < '0' || scalar_[i] > '9') return false;
  }
  return true;
}

std::int64_t Value::as_int64() const {
  if (type_ != Type::Number) wrong_type("a number", type_name());
  if (!is_integer_token()) {
    throw std::invalid_argument("not an integer: " + scalar_);
  }
  std::int64_t out = 0;
  const auto r = std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (r.ec != std::errc{} || r.ptr != scalar_.data() + scalar_.size()) {
    throw std::out_of_range("integer out of int64 range: " + scalar_);
  }
  return out;
}

std::uint64_t Value::as_uint64() const {
  if (type_ != Type::Number) wrong_type("a number", type_name());
  if (!is_integer_token() || (!scalar_.empty() && scalar_[0] == '-')) {
    throw std::invalid_argument("not a non-negative integer: " + scalar_);
  }
  std::uint64_t out = 0;
  const auto r = std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (r.ec != std::errc{} || r.ptr != scalar_.data() + scalar_.size()) {
    throw std::out_of_range("integer out of uint64 range: " + scalar_);
  }
  return out;
}

const std::string& Value::number_token() const {
  if (type_ != Type::Number) wrong_type("a number", type_name());
  return scalar_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) wrong_type("an array", type_name());
  return items_;
}

std::vector<Value>& Value::items() {
  if (type_ != Type::Array) wrong_type("an array", type_name());
  return items_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::Object) wrong_type("an object", type_name());
  return members_;
}

std::vector<Member>& Value::members() {
  if (type_ != Type::Object) wrong_type("an object", type_name());
  return members_;
}

const Value* Value::find(std::string_view key) const {
  for (const Member& m : members()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Value::push_back(Value v) { items().push_back(std::move(v)); }

void Value::set(std::string key, Value v) {
  members().emplace_back(std::move(key), std::move(v));
}

// --- Parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(message, line, col);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    skip_whitespace();
    if (at_end() || peek() != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    if (at_end()) fail("unexpected end of document");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{', "'{'");
    Value obj = Value::object();
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      expect(':', "':'");
      obj.set(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[', "'['");
    Value arr = Value::array();
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: --pos_; fail("unsupported escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ == digits_start) fail("invalid number");
    // Reject leading zeros ("007") so integer tokens have one canonical form.
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      pos_ = digits_start;
      fail("leading zeros are not allowed");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == frac_start) fail("digits required after decimal point");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == exp_start) fail("digits required in exponent");
    }
    return Value::raw_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- Writer -----------------------------------------------------------------

namespace {

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_value(std::string& out, const Value& v, int depth) {
  const auto indent = [&](int d) { out.append(static_cast<std::size_t>(d) * 2, ' '); };
  switch (v.type()) {
    case Value::Type::Null: out += "null"; return;
    case Value::Type::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::Number: out += v.number_token(); return;
    case Value::Type::String: write_string(out, v.as_string()); return;
    case Value::Type::Array: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items.size(); ++i) {
        indent(depth + 1);
        write_value(out, items[i], depth + 1);
        if (i + 1 < items.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += ']';
      return;
    }
    case Value::Type::Object: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        indent(depth + 1);
        write_string(out, members[i].first);
        out += ": ";
        write_value(out, members[i].second, depth + 1);
        if (i + 1 < members.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& value) {
  std::string out;
  write_value(out, value, 0);
  out += '\n';
  return out;
}

}  // namespace abp::json
