#include "src/exp/experiment_runner.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/sim/simulator.hpp"

namespace abp::exp {

int max_safe_jobs(int tick_threads) noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 1;
  return std::max(1, static_cast<int>(hc) / std::max(1, tick_threads));
}

std::vector<scenario::ScenarioConfig> replication_configs(
    const scenario::ScenarioConfig& base, int replications) {
  if (replications < 1) throw std::invalid_argument("need at least one replication");
  std::vector<scenario::ScenarioConfig> configs(static_cast<std::size_t>(replications),
                                                base);
  for (int i = 0; i < replications; ++i) {
    configs[static_cast<std::size_t>(i)].seed =
        base.seed + static_cast<std::uint64_t>(i);
  }
  return configs;
}

ExperimentRunner::ExperimentRunner(BatchOptions options) : options_(options) {
  if (options_.jobs < 1) throw std::invalid_argument("ExperimentRunner needs jobs >= 1");
  pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

std::vector<stats::RunResult> ExperimentRunner::run(
    const std::vector<scenario::ScenarioConfig>& configs) {
  // Effective concurrency: a batch narrower than `jobs` never has more than
  // configs.size() runs in flight, so the guard judges what will actually
  // run, not the configured ceiling.
  const std::size_t participants =
      std::min(configs.size(), static_cast<std::size_t>(options_.jobs));
  if (!options_.allow_oversubscribe && participants > 1) {
    int max_tick = 1;
    for (const scenario::ScenarioConfig& cfg : configs) {
      max_tick = std::max(max_tick, scenario::tick_threads(cfg));
    }
    const unsigned hc = std::thread::hardware_concurrency();
    if (hc > 0 && static_cast<unsigned long long>(participants) *
                          static_cast<unsigned long long>(max_tick) >
                      static_cast<unsigned long long>(hc)) {
      throw std::invalid_argument(
          "ExperimentRunner: concurrent runs (" + std::to_string(participants) +
          ") x tick threads (" + std::to_string(max_tick) +
          ") oversubscribes hardware_concurrency (" + std::to_string(hc) +
          "); lower jobs or threads, or set BatchOptions::allow_oversubscribe");
    }
  }

  std::vector<stats::RunResult> results(configs.size());
  if (configs.empty()) return results;

  // Dynamic scheduling: each pool participant pulls the next unstarted run
  // off an atomic cursor, so long runs don't serialize behind a static
  // partition. Every run writes only its own results slot, and its output is
  // a pure function of its config — scheduling order cannot show up in the
  // results. parallel_for rethrows the first failed run's exception after
  // the rest of the batch has drained.
  std::atomic<std::size_t> next{0};
  pool_->parallel_for(participants, [&](std::size_t, std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      results[i] = sim::make_simulator(configs[i])->finish(configs[i].duration_s);
    }
  });
  return results;
}

}  // namespace abp::exp
