#include "src/exp/experiment_runner.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "src/sim/simulator.hpp"

namespace abp::exp {

int max_safe_jobs(int tick_threads) noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 1;
  return std::max(1, static_cast<int>(hc) / std::max(1, tick_threads));
}

std::vector<scenario::ScenarioConfig> replication_configs(
    const scenario::ScenarioConfig& base, int replications) {
  if (replications < 1) throw std::invalid_argument("need at least one replication");
  std::vector<scenario::ScenarioConfig> configs(static_cast<std::size_t>(replications),
                                                base);
  for (int i = 0; i < replications; ++i) {
    configs[static_cast<std::size_t>(i)].seed =
        base.seed + static_cast<std::uint64_t>(i);
  }
  return configs;
}

ExperimentRunner::ExperimentRunner(BatchOptions options) : options_(options) {
  if (options_.jobs < 1) throw std::invalid_argument("ExperimentRunner needs jobs >= 1");
  if (options_.tick_budget < 0) {
    throw std::invalid_argument("ExperimentRunner needs tick_budget >= 0");
  }
  if (options_.retries < 0) {
    throw std::invalid_argument("ExperimentRunner needs retries >= 0");
  }
  pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

RunStatus ExperimentRunner::execute_one(const scenario::ScenarioConfig& config) const {
  // The tick budget converts to a simulated-time horizon through the
  // backend's own step size; a run that fits inside the budget is untouched.
  double horizon_s = config.duration_s;
  bool truncated = false;
  if (options_.tick_budget > 0) {
    const double dt = config.simulator == scenario::SimulatorKind::Micro
                          ? config.micro.dt_s
                          : config.queue.step_s;
    const double budget_s = dt * static_cast<double>(options_.tick_budget);
    if (budget_s < config.duration_s) {
      horizon_s = budget_s;
      truncated = true;
    }
  }

  RunStatus status;
  for (int attempt = 0;; ++attempt) {
    status.attempts = attempt + 1;
    try {
      status.result = sim::make_simulator(config)->finish(horizon_s);
      if (truncated) {
        status.outcome = RunStatus::Outcome::Timeout;
        status.error = "tick budget " + std::to_string(options_.tick_budget) +
                       " exhausted at t=" + std::to_string(horizon_s) +
                       "s of " + std::to_string(config.duration_s) + "s";
      } else {
        status.outcome = RunStatus::Outcome::Ok;
        status.error.clear();
      }
      status.exception = nullptr;
      return status;
    } catch (const std::exception& e) {
      status.outcome = RunStatus::Outcome::Error;
      status.error = e.what();
      status.exception = std::current_exception();
      status.result = {};
    } catch (...) {
      status.outcome = RunStatus::Outcome::Error;
      status.error = "unknown exception";
      status.exception = std::current_exception();
      status.result = {};
    }
    if (attempt >= options_.retries) return status;
  }
}

std::vector<RunStatus> ExperimentRunner::run_statuses(
    const std::vector<scenario::ScenarioConfig>& configs) {
  // Effective concurrency: a batch narrower than `jobs` never has more than
  // configs.size() runs in flight, so the guard judges what will actually
  // run, not the configured ceiling.
  const std::size_t participants =
      std::min(configs.size(), static_cast<std::size_t>(options_.jobs));
  if (!options_.allow_oversubscribe && participants > 1) {
    int max_tick = 1;
    for (const scenario::ScenarioConfig& cfg : configs) {
      max_tick = std::max(max_tick, scenario::tick_threads(cfg));
    }
    const unsigned hc = std::thread::hardware_concurrency();
    if (hc > 0 && static_cast<unsigned long long>(participants) *
                          static_cast<unsigned long long>(max_tick) >
                      static_cast<unsigned long long>(hc)) {
      throw std::invalid_argument(
          "ExperimentRunner: concurrent runs (" + std::to_string(participants) +
          ") x tick threads (" + std::to_string(max_tick) +
          ") oversubscribes hardware_concurrency (" + std::to_string(hc) +
          "); lower jobs or threads, or set BatchOptions::allow_oversubscribe");
    }
  }

  std::vector<RunStatus> statuses(configs.size());
  if (configs.empty()) return statuses;

  // Dynamic scheduling: each pool participant pulls the next unstarted run
  // off an atomic cursor, so long runs don't serialize behind a static
  // partition. Every run writes only its own status slot, and its outcome is
  // a pure function of its config and the batch options — scheduling order
  // cannot show up in the statuses. execute_one never lets an exception
  // escape (it is captured into the status), so one bad run cannot take the
  // batch down with it.
  std::atomic<std::size_t> next{0};
  pool_->parallel_for(participants, [&](std::size_t, std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      statuses[i] = execute_one(configs[i]);
    }
  });
  return statuses;
}

std::vector<stats::RunResult> ExperimentRunner::run(
    const std::vector<scenario::ScenarioConfig>& configs) {
  std::vector<RunStatus> statuses = run_statuses(configs);
  std::vector<stats::RunResult> results;
  results.reserve(statuses.size());
  for (RunStatus& status : statuses) {
    switch (status.outcome) {
      case RunStatus::Outcome::Ok:
        results.push_back(std::move(status.result));
        break;
      case RunStatus::Outcome::Error:
        std::rethrow_exception(status.exception);
      case RunStatus::Outcome::Timeout:
        throw std::runtime_error("ExperimentRunner: " + status.error);
    }
  }
  return results;
}

}  // namespace abp::exp
