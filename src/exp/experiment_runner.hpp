// Experiment layer: run-level parallelism over independent scenario runs.
//
// PR 1-3 made a single tick fast and thread-invariant; this layer makes
// *experiments* fast. Paper benches and replication studies execute dozens of
// independent ScenarioConfigs (replication sets, pattern x controller grids,
// parameter sweeps) — each run is self-contained (make_simulator owns its
// network, demand and controllers), so a batch parallelizes trivially across
// runs with zero shared mutable state. ExperimentRunner drains a batch across
// the shared ThreadPool (src/util/thread_pool.hpp) with `jobs` concurrent
// runs and collects results in batch order.
//
// Determinism: a run's result depends only on its own ScenarioConfig (every
// RNG stream is derived from config.seed), never on which worker executes it
// or on how many run concurrently — so a batch is bit-identical to a serial
// run_scenario loop over the same configs at every jobs count. The
// `invariance`-labelled experiment_runner_test pins this at jobs in {1,2,8}.
//
// Failure isolation: a long campaign must not lose a night of sibling
// results to one bad run. run_statuses() captures each run's outcome into a
// per-run RunStatus — result, error (exception captured, batch always
// drains) or timeout (deterministic tick-budget deadline, partial result
// kept) — with optional same-seed retries. run() stays the thin throwing
// wrapper over it for callers that want the historical all-or-nothing
// contract. See docs/ROBUSTNESS.md, "ExperimentRunner failure policy".
//
// Oversubscription guard: run-level `jobs` multiplies with each config's
// tick-level `threads` (the backend's road-partitioned sweep). jobs x
// tick_threads beyond hardware_concurrency is almost never intended — it
// only adds contention — so run() rejects it unless
// BatchOptions::allow_oversubscribe is set. See docs/PERFORMANCE.md,
// "Run-level vs tick-level parallelism".
#pragma once

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/scenario/scenario_config.hpp"
#include "src/stats/run_result.hpp"
#include "src/util/thread_pool.hpp"

namespace abp::exp {

struct BatchOptions {
  // Concurrent runs (>= 1, counting the calling thread). 1 = serial.
  int jobs = 1;
  // Permit jobs x tick_threads to exceed hardware_concurrency. Tests use
  // this to exercise jobs counts above the core count; measurement runs
  // should leave it off and size jobs with max_safe_jobs().
  bool allow_oversubscribe = false;
  // Per-run deadline in simulator ticks (0 = unlimited). A run whose
  // configured duration needs more ticks than this is truncated at the
  // budget, finished there, and reported as Outcome::Timeout with the
  // partial result. Deliberately a *simulated*-tick budget, not wall clock:
  // statuses stay a pure function of the configs, so batches keep their
  // bit-identical-at-every-jobs-count guarantee.
  long long tick_budget = 0;
  // Extra same-config, same-seed attempts after a run raises an exception
  // (0 = fail fast). Timeouts are deterministic truncations, not failures,
  // and are never retried.
  int retries = 0;
};

// Largest jobs count that keeps jobs x tick_threads within the machine's
// hardware_concurrency, never below 1. Returns 1 when the hardware
// concurrency is unknown (hardware_concurrency() == 0).
[[nodiscard]] int max_safe_jobs(int tick_threads = 1) noexcept;

// The deterministic seed-derivation scheme for replication sets: `n` copies
// of `base` with seeds base.seed + 0, base.seed + 1, ..., base.seed + n - 1.
// Runs are identified by their seed, not by execution order, so per-seed
// result streams stay comparable across jobs counts, machines and the
// historical serial run_replications loop.
[[nodiscard]] std::vector<scenario::ScenarioConfig> replication_configs(
    const scenario::ScenarioConfig& base, int replications);

// Outcome of one run of a batch.
struct RunStatus {
  enum class Outcome {
    // Ran to its configured duration; `result` is complete.
    Ok,
    // Every attempt raised; `error` carries the last attempt's message and
    // `exception` the exception itself, `result` is empty.
    Error,
    // Hit the tick budget; `result` holds the partial run up to the budget
    // (bit-identical to a run configured with the truncated duration).
    Timeout,
  };

  Outcome outcome = Outcome::Ok;
  stats::RunResult result;
  std::string error;
  std::exception_ptr exception;
  // Attempts consumed (1 + retries used).
  int attempts = 1;

  [[nodiscard]] bool ok() const noexcept { return outcome == Outcome::Ok; }
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(BatchOptions options = {});

  [[nodiscard]] const BatchOptions& options() const noexcept { return options_; }

  // Executes every config (construct simulator, run to config.duration_s or
  // the tick budget, finish) with up to `jobs` runs in flight, capturing
  // each run's outcome into a RunStatus in batch order: statuses[i] belongs
  // to configs[i] regardless of completion order. A throwing run never
  // disturbs its siblings — the batch always drains. Throws
  // std::invalid_argument only for batch-level misconfiguration (the
  // oversubscription guard).
  [[nodiscard]] std::vector<RunStatus> run_statuses(
      const std::vector<scenario::ScenarioConfig>& configs);

  // All-or-nothing wrapper over run_statuses(): returns the results in batch
  // order when every run is Ok; otherwise rethrows the first (in batch
  // order) failed run's captured exception — with its original type — after
  // the whole batch has drained. A Timeout is a failure under this contract
  // (the caller asked for full runs) and surfaces as std::runtime_error.
  [[nodiscard]] std::vector<stats::RunResult> run(
      const std::vector<scenario::ScenarioConfig>& configs);

 private:
  [[nodiscard]] RunStatus execute_one(const scenario::ScenarioConfig& config) const;

  BatchOptions options_;
  // Workers are spawned once per runner and reused across batches.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace abp::exp
