// Experiment layer: run-level parallelism over independent scenario runs.
//
// PR 1-3 made a single tick fast and thread-invariant; this layer makes
// *experiments* fast. Paper benches and replication studies execute dozens of
// independent ScenarioConfigs (replication sets, pattern x controller grids,
// parameter sweeps) — each run is self-contained (make_simulator owns its
// network, demand and controllers), so a batch parallelizes trivially across
// runs with zero shared mutable state. ExperimentRunner drains a batch across
// the shared ThreadPool (src/util/thread_pool.hpp) with `jobs` concurrent
// runs and collects results in batch order.
//
// Determinism: a run's result depends only on its own ScenarioConfig (every
// RNG stream is derived from config.seed), never on which worker executes it
// or on how many run concurrently — so a batch is bit-identical to a serial
// run_scenario loop over the same configs at every jobs count. The
// `invariance`-labelled experiment_runner_test pins this at jobs in {1,2,8}.
//
// Oversubscription guard: run-level `jobs` multiplies with each config's
// tick-level `threads` (the backend's road-partitioned sweep). jobs x
// tick_threads beyond hardware_concurrency is almost never intended — it
// only adds contention — so run() rejects it unless
// BatchOptions::allow_oversubscribe is set. See docs/PERFORMANCE.md,
// "Run-level vs tick-level parallelism".
#pragma once

#include <memory>
#include <vector>

#include "src/scenario/scenario_config.hpp"
#include "src/stats/run_result.hpp"
#include "src/util/thread_pool.hpp"

namespace abp::exp {

struct BatchOptions {
  // Concurrent runs (>= 1, counting the calling thread). 1 = serial.
  int jobs = 1;
  // Permit jobs x tick_threads to exceed hardware_concurrency. Tests use
  // this to exercise jobs counts above the core count; measurement runs
  // should leave it off and size jobs with max_safe_jobs().
  bool allow_oversubscribe = false;
};

// Largest jobs count that keeps jobs x tick_threads within the machine's
// hardware_concurrency, never below 1. Returns 1 when the hardware
// concurrency is unknown (hardware_concurrency() == 0).
[[nodiscard]] int max_safe_jobs(int tick_threads = 1) noexcept;

// The deterministic seed-derivation scheme for replication sets: `n` copies
// of `base` with seeds base.seed + 0, base.seed + 1, ..., base.seed + n - 1.
// Runs are identified by their seed, not by execution order, so per-seed
// result streams stay comparable across jobs counts, machines and the
// historical serial run_replications loop.
[[nodiscard]] std::vector<scenario::ScenarioConfig> replication_configs(
    const scenario::ScenarioConfig& base, int replications);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(BatchOptions options = {});

  [[nodiscard]] const BatchOptions& options() const noexcept { return options_; }

  // Executes every config (construct simulator, run to config.duration_s,
  // finish) with up to `jobs` runs in flight, and returns the results in
  // batch order: results[i] belongs to configs[i] regardless of completion
  // order. Throws std::invalid_argument if the batch would oversubscribe
  // (see BatchOptions::allow_oversubscribe); rethrows the first exception
  // any run raised after the remaining runs have drained.
  [[nodiscard]] std::vector<stats::RunResult> run(
      const std::vector<scenario::ScenarioConfig>& configs);

 private:
  BatchOptions options_;
  // Workers are spawned once per runner and reused across batches.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace abp::exp
