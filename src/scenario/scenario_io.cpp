#include "src/scenario/scenario_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <utility>

#include "src/util/json.hpp"

namespace abp::scenario {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& problem) {
  throw ScenarioIoError(path, problem);
}

// --- Key tables -------------------------------------------------------------
// One table per schema object, in document order. These drive three things
// that must never drift apart: the parser's unknown-key rejection, the
// dumper's member order, and schema_field_paths() (the docs lint).

constexpr const char* kTopKeys[] = {
    "version", "name",  "description", "simulator",  "duration_s",
    "seed",    "grid",  "demand",      "controller", "controller_overrides",
    "micro",   "queue", "watches",     "faults",     "guard",
    "detector", "shard", "surrogate"};
constexpr const char* kGridKeys[] = {
    "rows",           "cols",     "road_length_m", "boundary_length_m",
    "speed_limit_mps", "capacity", "service_rate",  "handedness"};
constexpr const char* kDemandKeys[] = {"pattern", "interarrival_scale", "turning",
                                       "segments"};
constexpr const char* kTurningKeys[] = {"north", "east", "south", "west"};
constexpr const char* kTurnProbKeys[] = {"right", "left"};
constexpr const char* kSegmentKeys[] = {"duration_s", "pattern", "interarrival_scale"};
constexpr const char* kControllerKeys[] = {"type", "util", "fixed_slot", "fixed_time"};
constexpr const char* kUtilKeys[] = {"alpha",        "beta",           "amber_duration_s",
                                     "gstar_policy", "gstar_constant", "pressure"};
constexpr const char* kFixedSlotKeys[] = {"period_s", "amber_duration_s",
                                          "work_conserving", "pressure"};
constexpr const char* kFixedTimeKeys[] = {"green_duration_s", "amber_duration_s",
                                          "offset_s"};
constexpr const char* kOverrideKeys[] = {"node", "controller"};
constexpr const char* kNodeKeys[] = {"row", "col"};
constexpr const char* kMicroKeys[] = {"dt_s",
                                      "dedicated_turn_lanes",
                                      "control_interval_s",
                                      "sample_interval_s",
                                      "junction_crossing_s",
                                      "service_zone_m",
                                      "saturation_flow_vps",
                                      "insertion_speed_mps",
                                      "waiting_speed_threshold_mps",
                                      "approach_queue_threshold_mps",
                                      "congestion_queue_threshold_mps",
                                      "threads",
                                      "sensor",
                                      "vehicle"};
constexpr const char* kSensorModelKeys[] = {"detection_probability", "quantization",
                                            "dropout_probability"};
constexpr const char* kVehicleKeys[] = {"length_m", "min_gap_m", "accel_mps2",
                                        "decel_mps2", "tau_s",   "sigma"};
constexpr const char* kQueueKeys[] = {"step_s", "control_interval_s",
                                      "sample_interval_s", "threads"};
constexpr const char* kWatchKeys[] = {"row", "col", "side", "name"};
constexpr const char* kFaultsKeys[] = {"capacity", "sensors", "controllers"};
constexpr const char* kRoadRefKeys[] = {"row", "col", "side"};
constexpr const char* kCapacityFaultKeys[] = {"road", "start_s", "end_s",
                                              "capacity_factor"};
constexpr const char* kSensorFaultKeys[] = {"node", "start_s",  "end_s",
                                            "kind", "bias",     "noise_magnitude"};
constexpr const char* kControllerFaultKeys[] = {"node", "fail_s", "recover_s"};
constexpr const char* kGuardKeys[] = {"enabled", "policy", "interval_s"};
constexpr const char* kDetectorKeys[] = {
    "enabled",   "window_samples", "warmup_samples", "drift",      "threshold",
    "min_sigma", "min_links",      "fuse_window_s",  "cooldown_s", "adapt"};
// crash_worker/crash_at_s are deliberately absent: the crash hook is a test
// knob, not part of the declarative schema.
constexpr const char* kShardKeys[] = {"count", "allow_oversubscribe"};
constexpr const char* kSurrogateKeys[] = {"enabled", "service_scale", "transit_scale",
                                          "capacity_scale", "profile"};

void check_keys(const json::Value& obj, std::span<const char* const> allowed,
                const std::string& path) {
  for (const json::Member& m : obj.members()) {
    bool known = false;
    for (const char* k : allowed) {
      if (m.first == k) {
        known = true;
        break;
      }
    }
    if (!known) fail(path.empty() ? m.first : path + "." + m.first, "unknown key");
  }
}

// --- Typed readers ----------------------------------------------------------

const json::Value& expect_object(const json::Value& v, const std::string& path) {
  if (!v.is_object()) {
    fail(path, std::string("expected an object, got ") + v.type_name());
  }
  return v;
}

const json::Value& expect_array(const json::Value& v, const std::string& path) {
  if (!v.is_array()) {
    fail(path, std::string("expected an array, got ") + v.type_name());
  }
  return v;
}

double read_double(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  try {
    return v.as_double();
  } catch (const std::out_of_range&) {
    fail(path, "number out of double range");
  }
}

int read_int(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  if (!v.is_integer_token()) fail(path, "must be an integer");
  try {
    const std::int64_t n = v.as_int64();
    if (n < std::numeric_limits<int>::min() || n > std::numeric_limits<int>::max()) {
      fail(path, "integer out of range");
    }
    return static_cast<int>(n);
  } catch (const std::out_of_range&) {
    fail(path, "integer out of range");
  }
}

std::uint64_t read_u64(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  if (!v.is_integer_token() || v.number_token()[0] == '-') {
    fail(path, "must be a non-negative integer");
  }
  try {
    return v.as_uint64();
  } catch (const std::out_of_range&) {
    fail(path, "must fit in 64 bits");
  }
}

bool read_bool(const json::Value& v, const std::string& path) {
  if (!v.is_bool()) {
    fail(path, std::string("expected a boolean, got ") + v.type_name());
  }
  return v.as_bool();
}

std::string read_string(const json::Value& v, const std::string& path) {
  if (!v.is_string()) {
    fail(path, std::string("expected a string, got ") + v.type_name());
  }
  return v.as_string();
}

// A time that may be infinite: a number, or the string "inf".
double read_time_or_inf(const json::Value& v, const std::string& path) {
  if (v.is_string()) {
    if (v.as_string() == "inf") return std::numeric_limits<double>::infinity();
    fail(path, "expected a number or \"inf\"");
  }
  return read_double(v, path);
}

// --- Enum tokens ------------------------------------------------------------

template <typename E>
struct EnumEntry {
  const char* token;
  E value;
};

template <typename E, std::size_t N>
E parse_enum(const json::Value& v, const EnumEntry<E> (&table)[N],
             const std::string& path) {
  const std::string s = read_string(v, path);
  for (const EnumEntry<E>& e : table) {
    if (s == e.token) return e.value;
  }
  std::string expected = "expected one of ";
  for (std::size_t i = 0; i < N; ++i) {
    expected += std::string("\"") + table[i].token + "\"";
    if (i + 1 < N) expected += ", ";
  }
  fail(path, expected);
}

template <typename E, std::size_t N>
const char* enum_token(E value, const EnumEntry<E> (&table)[N]) {
  for (const EnumEntry<E>& e : table) {
    if (e.value == value) return e.token;
  }
  return table[0].token;
}

constexpr EnumEntry<SimulatorKind> kSimulatorTokens[] = {
    {"micro", SimulatorKind::Micro}, {"queue", SimulatorKind::Queue}};
constexpr EnumEntry<net::Handedness> kHandednessTokens[] = {
    {"left", net::Handedness::LeftHand}, {"right", net::Handedness::RightHand}};
constexpr EnumEntry<traffic::PatternKind> kPatternTokens[] = {
    {"I", traffic::PatternKind::I},
    {"II", traffic::PatternKind::II},
    {"III", traffic::PatternKind::III},
    {"IV", traffic::PatternKind::IV},
    {"mixed", traffic::PatternKind::Mixed}};
constexpr EnumEntry<net::Side> kSideTokens[] = {{"north", net::Side::North},
                                                {"east", net::Side::East},
                                                {"south", net::Side::South},
                                                {"west", net::Side::West}};
constexpr EnumEntry<core::ControllerType> kControllerTypeTokens[] = {
    {"util", core::ControllerType::UtilBp},
    {"cap", core::ControllerType::CapBp},
    {"orig", core::ControllerType::OriginalBp},
    {"fixed", core::ControllerType::FixedTime}};
constexpr EnumEntry<core::GStarPolicy> kGStarTokens[] = {
    {"wstar_mu", core::GStarPolicy::WStarMu},
    {"zero", core::GStarPolicy::Zero},
    {"constant", core::GStarPolicy::Constant}};
constexpr EnumEntry<core::PressureKind> kPressureTokens[] = {
    {"identity", core::PressureKind::Identity},
    {"sqrt", core::PressureKind::Sqrt},
    {"quadratic", core::PressureKind::Quadratic},
    {"normalized", core::PressureKind::Normalized}};
constexpr EnumEntry<core::SensorFaultKind> kSensorFaultTokens[] = {
    {"dropout", core::SensorFaultKind::Dropout},
    {"stuck_at", core::SensorFaultKind::StuckAt},
    {"noise", core::SensorFaultKind::Noise}};
constexpr EnumEntry<GuardPolicy> kGuardPolicyTokens[] = {{"throw", GuardPolicy::Throw},
                                                         {"record", GuardPolicy::Record},
                                                         {"abort", GuardPolicy::Abort}};

// --- Section loaders --------------------------------------------------------
// Each loader starts from the field's default value, overlays present keys,
// then validates the *final* value — so defaults and explicit values pass
// through identical checks, and every message carries the field's full path.

void load_grid(const json::Value& v, net::GridConfig& grid, const std::string& path) {
  expect_object(v, path);
  check_keys(v, kGridKeys, path);
  if (const auto* f = v.find("rows")) grid.rows = read_int(*f, path + ".rows");
  if (const auto* f = v.find("cols")) grid.cols = read_int(*f, path + ".cols");
  if (const auto* f = v.find("road_length_m")) {
    grid.road_length_m = read_double(*f, path + ".road_length_m");
  }
  if (const auto* f = v.find("boundary_length_m")) {
    grid.boundary_length_m = read_double(*f, path + ".boundary_length_m");
  }
  if (const auto* f = v.find("speed_limit_mps")) {
    grid.speed_limit_mps = read_double(*f, path + ".speed_limit_mps");
  }
  if (const auto* f = v.find("capacity")) grid.capacity = read_int(*f, path + ".capacity");
  if (const auto* f = v.find("service_rate")) {
    grid.service_rate = read_double(*f, path + ".service_rate");
  }
  if (const auto* f = v.find("handedness")) {
    grid.handedness = parse_enum(*f, kHandednessTokens, path + ".handedness");
  }
  if (grid.rows < 1) fail(path + ".rows", "must be >= 1");
  if (grid.cols < 1) fail(path + ".cols", "must be >= 1");
  if (!(grid.road_length_m > 0.0)) fail(path + ".road_length_m", "must be > 0");
  if (!(grid.boundary_length_m > 0.0)) fail(path + ".boundary_length_m", "must be > 0");
  if (!(grid.speed_limit_mps > 0.0)) fail(path + ".speed_limit_mps", "must be > 0");
  if (grid.capacity < 1) fail(path + ".capacity", "must be >= 1");
  if (!(grid.service_rate > 0.0)) fail(path + ".service_rate", "must be > 0");
}

void load_turn_probs(const json::Value& v, traffic::TurningTable::Probabilities& probs,
                     const std::string& path) {
  expect_object(v, path);
  check_keys(v, kTurnProbKeys, path);
  if (const auto* f = v.find("right")) probs.right = read_double(*f, path + ".right");
  if (const auto* f = v.find("left")) probs.left = read_double(*f, path + ".left");
  if (!(probs.right >= 0.0 && probs.right <= 1.0)) {
    fail(path + ".right", "must be in [0, 1]");
  }
  if (!(probs.left >= 0.0 && probs.left <= 1.0)) fail(path + ".left", "must be in [0, 1]");
  if (probs.right + probs.left > 1.0) fail(path, "right + left must not exceed 1");
}

void load_demand(const json::Value& v, traffic::DemandConfig& demand,
                 const std::string& path) {
  expect_object(v, path);
  check_keys(v, kDemandKeys, path);
  if (const auto* f = v.find("pattern")) {
    demand.pattern = parse_enum(*f, kPatternTokens, path + ".pattern");
  }
  if (const auto* f = v.find("interarrival_scale")) {
    demand.interarrival_scale = read_double(*f, path + ".interarrival_scale");
  }
  if (!(demand.interarrival_scale > 0.0)) {
    fail(path + ".interarrival_scale", "must be > 0");
  }
  if (const auto* f = v.find("turning")) {
    const std::string tpath = path + ".turning";
    expect_object(*f, tpath);
    check_keys(*f, kTurningKeys, tpath);
    for (const EnumEntry<net::Side>& side : kSideTokens) {
      if (const auto* s = f->find(side.token)) {
        load_turn_probs(
            *s, demand.turning.by_side[static_cast<std::size_t>(side.value)],
            tpath + "." + side.token);
      }
    }
  }
  if (const auto* f = v.find("segments")) {
    const std::string spath = path + ".segments";
    expect_array(*f, spath);
    std::vector<traffic::ScheduleSegment> segments;
    for (std::size_t i = 0; i < f->items().size(); ++i) {
      const std::string epath = spath + "[" + std::to_string(i) + "]";
      const json::Value& e = f->items()[i];
      expect_object(e, epath);
      check_keys(e, kSegmentKeys, epath);
      traffic::ScheduleSegment seg;
      if (const auto* s = e.find("duration_s")) {
        seg.duration_s = read_double(*s, epath + ".duration_s");
      }
      if (const auto* s = e.find("pattern")) {
        seg.pattern = parse_enum(*s, kPatternTokens, epath + ".pattern");
      }
      if (const auto* s = e.find("interarrival_scale")) {
        seg.interarrival_scale = read_double(*s, epath + ".interarrival_scale");
      }
      if (!(seg.duration_s > 0.0)) fail(epath + ".duration_s", "must be > 0");
      if (!(seg.interarrival_scale > 0.0)) {
        fail(epath + ".interarrival_scale", "must be > 0");
      }
      segments.push_back(seg);
    }
    // An empty array means "no schedule" — identical to the field being
    // absent, so dumps of schedule-free configs round-trip.
    if (!segments.empty()) demand.schedule = traffic::DemandSchedule(std::move(segments));
  }
}

void load_controller_spec(const json::Value& v, core::ControllerSpec& spec,
                          const std::string& path) {
  expect_object(v, path);
  check_keys(v, kControllerKeys, path);
  if (const auto* f = v.find("type")) {
    spec.type = parse_enum(*f, kControllerTypeTokens, path + ".type");
  }
  if (const auto* f = v.find("util")) {
    const std::string upath = path + ".util";
    expect_object(*f, upath);
    check_keys(*f, kUtilKeys, upath);
    core::UtilBpConfig& util = spec.util;
    if (const auto* s = f->find("alpha")) util.alpha = read_double(*s, upath + ".alpha");
    if (const auto* s = f->find("beta")) util.beta = read_double(*s, upath + ".beta");
    if (const auto* s = f->find("amber_duration_s")) {
      util.amber_duration_s = read_double(*s, upath + ".amber_duration_s");
    }
    if (const auto* s = f->find("gstar_policy")) {
      util.gstar_policy = parse_enum(*s, kGStarTokens, upath + ".gstar_policy");
    }
    if (const auto* s = f->find("gstar_constant")) {
      util.gstar_constant = read_double(*s, upath + ".gstar_constant");
    }
    if (const auto* s = f->find("pressure")) {
      util.pressure_kind = parse_enum(*s, kPressureTokens, upath + ".pressure");
    }
    if (!(util.alpha < 0.0)) fail(upath + ".alpha", "must be < 0");
    if (!(util.beta < 0.0)) fail(upath + ".beta", "must be < 0");
    if (!(util.amber_duration_s >= 0.0)) fail(upath + ".amber_duration_s", "must be >= 0");
  }
  if (const auto* f = v.find("fixed_slot")) {
    const std::string spath = path + ".fixed_slot";
    expect_object(*f, spath);
    check_keys(*f, kFixedSlotKeys, spath);
    core::FixedSlotBpConfig& slot = spec.fixed_slot;
    if (const auto* s = f->find("period_s")) {
      slot.period_s = read_double(*s, spath + ".period_s");
    }
    if (const auto* s = f->find("amber_duration_s")) {
      slot.amber_duration_s = read_double(*s, spath + ".amber_duration_s");
    }
    if (const auto* s = f->find("work_conserving")) {
      slot.work_conserving = read_bool(*s, spath + ".work_conserving");
    }
    if (const auto* s = f->find("pressure")) {
      slot.pressure_kind = parse_enum(*s, kPressureTokens, spath + ".pressure");
    }
    if (!(slot.period_s > 0.0)) fail(spath + ".period_s", "must be > 0");
    if (!(slot.amber_duration_s >= 0.0 && slot.amber_duration_s < slot.period_s)) {
      fail(spath + ".amber_duration_s", "must be in [0, period_s)");
    }
  }
  if (const auto* f = v.find("fixed_time")) {
    const std::string tpath = path + ".fixed_time";
    expect_object(*f, tpath);
    check_keys(*f, kFixedTimeKeys, tpath);
    core::FixedTimeConfig& fixed = spec.fixed_time;
    if (const auto* s = f->find("green_duration_s")) {
      fixed.green_duration_s = read_double(*s, tpath + ".green_duration_s");
    }
    if (const auto* s = f->find("amber_duration_s")) {
      fixed.amber_duration_s = read_double(*s, tpath + ".amber_duration_s");
    }
    if (const auto* s = f->find("offset_s")) {
      fixed.offset_s = read_double(*s, tpath + ".offset_s");
    }
    if (!(fixed.green_duration_s > 0.0)) fail(tpath + ".green_duration_s", "must be > 0");
    if (!(fixed.amber_duration_s >= 0.0)) fail(tpath + ".amber_duration_s", "must be >= 0");
    if (!(fixed.offset_s >= 0.0)) fail(tpath + ".offset_s", "must be >= 0");
  }
}

GridNodeRef load_node(const json::Value& v, const std::string& path) {
  expect_object(v, path);
  check_keys(v, kNodeKeys, path);
  GridNodeRef node;
  if (const auto* f = v.find("row")) node.row = read_int(*f, path + ".row");
  if (const auto* f = v.find("col")) node.col = read_int(*f, path + ".col");
  if (node.row < 0) fail(path + ".row", "must be >= 0");
  if (node.col < 0) fail(path + ".col", "must be >= 0");
  return node;
}

void load_micro(const json::Value& v, microsim::MicroSimConfig& micro,
                const std::string& path) {
  expect_object(v, path);
  check_keys(v, kMicroKeys, path);
  if (const auto* f = v.find("dt_s")) micro.dt_s = read_double(*f, path + ".dt_s");
  if (const auto* f = v.find("dedicated_turn_lanes")) {
    micro.dedicated_turn_lanes = read_bool(*f, path + ".dedicated_turn_lanes");
  }
  if (const auto* f = v.find("control_interval_s")) {
    micro.control_interval_s = read_double(*f, path + ".control_interval_s");
  }
  if (const auto* f = v.find("sample_interval_s")) {
    micro.sample_interval_s = read_double(*f, path + ".sample_interval_s");
  }
  if (const auto* f = v.find("junction_crossing_s")) {
    micro.junction_crossing_s = read_double(*f, path + ".junction_crossing_s");
  }
  if (const auto* f = v.find("service_zone_m")) {
    micro.service_zone_m = read_double(*f, path + ".service_zone_m");
  }
  if (const auto* f = v.find("saturation_flow_vps")) {
    micro.saturation_flow_vps = read_double(*f, path + ".saturation_flow_vps");
  }
  if (const auto* f = v.find("insertion_speed_mps")) {
    micro.insertion_speed_mps = read_double(*f, path + ".insertion_speed_mps");
  }
  if (const auto* f = v.find("waiting_speed_threshold_mps")) {
    micro.waiting_speed_threshold_mps =
        read_double(*f, path + ".waiting_speed_threshold_mps");
  }
  if (const auto* f = v.find("approach_queue_threshold_mps")) {
    micro.approach_queue_threshold_mps =
        read_double(*f, path + ".approach_queue_threshold_mps");
  }
  if (const auto* f = v.find("congestion_queue_threshold_mps")) {
    micro.congestion_queue_threshold_mps =
        read_double(*f, path + ".congestion_queue_threshold_mps");
  }
  if (const auto* f = v.find("threads")) micro.threads = read_int(*f, path + ".threads");
  if (const auto* f = v.find("sensor")) {
    const std::string spath = path + ".sensor";
    expect_object(*f, spath);
    check_keys(*f, kSensorModelKeys, spath);
    core::SensorModel& sensor = micro.sensor;
    if (const auto* s = f->find("detection_probability")) {
      sensor.detection_probability = read_double(*s, spath + ".detection_probability");
    }
    if (const auto* s = f->find("quantization")) {
      sensor.quantization = read_int(*s, spath + ".quantization");
    }
    if (const auto* s = f->find("dropout_probability")) {
      sensor.dropout_probability = read_double(*s, spath + ".dropout_probability");
    }
    if (!(sensor.detection_probability >= 0.0 && sensor.detection_probability <= 1.0)) {
      fail(spath + ".detection_probability", "must be in [0, 1]");
    }
    if (sensor.quantization < 1) fail(spath + ".quantization", "must be >= 1");
    if (!(sensor.dropout_probability >= 0.0 && sensor.dropout_probability <= 1.0)) {
      fail(spath + ".dropout_probability", "must be in [0, 1]");
    }
  }
  if (const auto* f = v.find("vehicle")) {
    const std::string vpath = path + ".vehicle";
    expect_object(*f, vpath);
    check_keys(*f, kVehicleKeys, vpath);
    microsim::VehicleParams& veh = micro.vehicle;
    if (const auto* s = f->find("length_m")) {
      veh.length_m = read_double(*s, vpath + ".length_m");
    }
    if (const auto* s = f->find("min_gap_m")) {
      veh.min_gap_m = read_double(*s, vpath + ".min_gap_m");
    }
    if (const auto* s = f->find("accel_mps2")) {
      veh.accel_mps2 = read_double(*s, vpath + ".accel_mps2");
    }
    if (const auto* s = f->find("decel_mps2")) {
      veh.decel_mps2 = read_double(*s, vpath + ".decel_mps2");
    }
    if (const auto* s = f->find("tau_s")) veh.tau_s = read_double(*s, vpath + ".tau_s");
    if (const auto* s = f->find("sigma")) veh.sigma = read_double(*s, vpath + ".sigma");
    if (!(veh.length_m > 0.0)) fail(vpath + ".length_m", "must be > 0");
    if (!(veh.min_gap_m >= 0.0)) fail(vpath + ".min_gap_m", "must be >= 0");
    if (!(veh.accel_mps2 > 0.0)) fail(vpath + ".accel_mps2", "must be > 0");
    if (!(veh.decel_mps2 > 0.0)) fail(vpath + ".decel_mps2", "must be > 0");
    if (!(veh.tau_s > 0.0)) fail(vpath + ".tau_s", "must be > 0");
    if (!(veh.sigma >= 0.0 && veh.sigma <= 1.0)) fail(vpath + ".sigma", "must be in [0, 1]");
  }
  if (!(micro.dt_s > 0.0)) fail(path + ".dt_s", "must be > 0");
  if (!(micro.control_interval_s >= micro.dt_s)) {
    fail(path + ".control_interval_s", "must be >= dt_s");
  }
  if (!(micro.sample_interval_s > 0.0)) fail(path + ".sample_interval_s", "must be > 0");
  if (!(micro.junction_crossing_s >= 0.0)) {
    fail(path + ".junction_crossing_s", "must be >= 0");
  }
  if (!(micro.service_zone_m >= 0.0)) fail(path + ".service_zone_m", "must be >= 0");
  if (!(micro.saturation_flow_vps >= 0.0)) {
    fail(path + ".saturation_flow_vps", "must be >= 0");
  }
  if (!(micro.insertion_speed_mps > 0.0)) {
    fail(path + ".insertion_speed_mps", "must be > 0");
  }
  if (!(micro.waiting_speed_threshold_mps >= 0.0)) {
    fail(path + ".waiting_speed_threshold_mps", "must be >= 0");
  }
  if (!(micro.approach_queue_threshold_mps >= 0.0)) {
    fail(path + ".approach_queue_threshold_mps", "must be >= 0");
  }
  if (!(micro.congestion_queue_threshold_mps >= 0.0)) {
    fail(path + ".congestion_queue_threshold_mps", "must be >= 0");
  }
  if (micro.threads < 1 || micro.threads > 256) {
    fail(path + ".threads", "must be in [1, 256]");
  }
}

void load_queue(const json::Value& v, queuesim::QueueSimConfig& queue,
                const std::string& path) {
  expect_object(v, path);
  check_keys(v, kQueueKeys, path);
  if (const auto* f = v.find("step_s")) queue.step_s = read_double(*f, path + ".step_s");
  if (const auto* f = v.find("control_interval_s")) {
    queue.control_interval_s = read_double(*f, path + ".control_interval_s");
  }
  if (const auto* f = v.find("sample_interval_s")) {
    queue.sample_interval_s = read_double(*f, path + ".sample_interval_s");
  }
  if (const auto* f = v.find("threads")) queue.threads = read_int(*f, path + ".threads");
  if (!(queue.step_s > 0.0)) fail(path + ".step_s", "must be > 0");
  if (!(queue.control_interval_s >= queue.step_s)) {
    fail(path + ".control_interval_s", "must be >= step_s");
  }
  if (!(queue.sample_interval_s > 0.0)) fail(path + ".sample_interval_s", "must be > 0");
  if (queue.threads < 1 || queue.threads > 256) {
    fail(path + ".threads", "must be in [1, 256]");
  }
}

void load_watches(const json::Value& v, std::vector<WatchSpec>& watches,
                  const std::string& path) {
  expect_array(v, path);
  for (std::size_t i = 0; i < v.items().size(); ++i) {
    const std::string epath = path + "[" + std::to_string(i) + "]";
    const json::Value& e = v.items()[i];
    expect_object(e, epath);
    check_keys(e, kWatchKeys, epath);
    WatchSpec w;
    if (const auto* f = e.find("row")) w.row = read_int(*f, epath + ".row");
    if (const auto* f = e.find("col")) w.col = read_int(*f, epath + ".col");
    if (const auto* f = e.find("side")) {
      w.side = parse_enum(*f, kSideTokens, epath + ".side");
    }
    if (const auto* f = e.find("name")) w.name = read_string(*f, epath + ".name");
    if (w.row < 0) fail(epath + ".row", "must be >= 0");
    if (w.col < 0) fail(epath + ".col", "must be >= 0");
    watches.push_back(std::move(w));
  }
}

void load_faults(const json::Value& v, FaultSchedule& faults, const std::string& path) {
  expect_object(v, path);
  check_keys(v, kFaultsKeys, path);
  if (const auto* f = v.find("capacity")) {
    const std::string cpath = path + ".capacity";
    expect_array(*f, cpath);
    for (std::size_t i = 0; i < f->items().size(); ++i) {
      const std::string epath = cpath + "[" + std::to_string(i) + "]";
      const json::Value& e = f->items()[i];
      expect_object(e, epath);
      check_keys(e, kCapacityFaultKeys, epath);
      CapacityFault fault;
      if (const auto* s = e.find("road")) {
        const std::string rpath = epath + ".road";
        expect_object(*s, rpath);
        check_keys(*s, kRoadRefKeys, rpath);
        if (const auto* r = s->find("row")) fault.road.row = read_int(*r, rpath + ".row");
        if (const auto* r = s->find("col")) fault.road.col = read_int(*r, rpath + ".col");
        if (const auto* r = s->find("side")) {
          fault.road.side = parse_enum(*r, kSideTokens, rpath + ".side");
        }
        if (fault.road.row < 0) fail(rpath + ".row", "must be >= 0");
        if (fault.road.col < 0) fail(rpath + ".col", "must be >= 0");
      }
      if (const auto* s = e.find("start_s")) {
        fault.start_s = read_double(*s, epath + ".start_s");
      }
      if (const auto* s = e.find("end_s")) {
        fault.end_s = read_time_or_inf(*s, epath + ".end_s");
      }
      if (const auto* s = e.find("capacity_factor")) {
        fault.capacity_factor = read_double(*s, epath + ".capacity_factor");
      }
      if (!(fault.start_s >= 0.0)) fail(epath + ".start_s", "must be >= 0");
      if (!(fault.end_s > fault.start_s)) fail(epath + ".end_s", "must exceed start_s");
      if (!(fault.capacity_factor >= 0.0 && fault.capacity_factor <= 1.0)) {
        fail(epath + ".capacity_factor", "must be in [0, 1]");
      }
      faults.capacity.push_back(fault);
    }
  }
  if (const auto* f = v.find("sensors")) {
    const std::string spath = path + ".sensors";
    expect_array(*f, spath);
    for (std::size_t i = 0; i < f->items().size(); ++i) {
      const std::string epath = spath + "[" + std::to_string(i) + "]";
      const json::Value& e = f->items()[i];
      expect_object(e, epath);
      check_keys(e, kSensorFaultKeys, epath);
      SensorFault fault;
      if (const auto* s = e.find("node")) fault.node = load_node(*s, epath + ".node");
      if (const auto* s = e.find("start_s")) {
        fault.start_s = read_double(*s, epath + ".start_s");
      }
      if (const auto* s = e.find("end_s")) {
        fault.end_s = read_time_or_inf(*s, epath + ".end_s");
      }
      if (const auto* s = e.find("kind")) {
        fault.kind = parse_enum(*s, kSensorFaultTokens, epath + ".kind");
      }
      if (const auto* s = e.find("bias")) fault.bias = read_int(*s, epath + ".bias");
      if (const auto* s = e.find("noise_magnitude")) {
        fault.noise_magnitude = read_int(*s, epath + ".noise_magnitude");
      }
      if (!(fault.start_s >= 0.0)) fail(epath + ".start_s", "must be >= 0");
      if (!(fault.end_s > fault.start_s)) fail(epath + ".end_s", "must exceed start_s");
      if (fault.noise_magnitude < 0) fail(epath + ".noise_magnitude", "must be >= 0");
      faults.sensors.push_back(fault);
    }
    // Same rule fault_schedule.cpp enforces, with the file's field paths.
    for (std::size_t i = 0; i < faults.sensors.size(); ++i) {
      for (std::size_t j = i + 1; j < faults.sensors.size(); ++j) {
        const SensorFault& a = faults.sensors[i];
        const SensorFault& b = faults.sensors[j];
        if (a.node.row != b.node.row || a.node.col != b.node.col) continue;
        if (a.start_s < b.end_s && b.start_s < a.end_s) {
          fail(spath + "[" + std::to_string(j) + "]",
               "overlaps " + spath + "[" + std::to_string(i) + "] at junction (" +
                   std::to_string(a.node.row) + ", " + std::to_string(a.node.col) + ")");
        }
      }
    }
  }
  if (const auto* f = v.find("controllers")) {
    const std::string cpath = path + ".controllers";
    expect_array(*f, cpath);
    for (std::size_t i = 0; i < f->items().size(); ++i) {
      const std::string epath = cpath + "[" + std::to_string(i) + "]";
      const json::Value& e = f->items()[i];
      expect_object(e, epath);
      check_keys(e, kControllerFaultKeys, epath);
      ControllerFault fault;
      if (const auto* s = e.find("node")) fault.node = load_node(*s, epath + ".node");
      if (const auto* s = e.find("fail_s")) {
        fault.fail_s = read_double(*s, epath + ".fail_s");
      }
      if (const auto* s = e.find("recover_s")) {
        fault.recover_s = read_time_or_inf(*s, epath + ".recover_s");
      }
      if (!(fault.fail_s >= 0.0)) fail(epath + ".fail_s", "must be >= 0");
      if (!(fault.recover_s > fault.fail_s)) {
        fail(epath + ".recover_s", "must exceed fail_s");
      }
      faults.controllers.push_back(fault);
    }
  }
}

void load_guard(const json::Value& v, GuardConfig& guard, const std::string& path) {
  expect_object(v, path);
  check_keys(v, kGuardKeys, path);
  if (const auto* f = v.find("enabled")) guard.enabled = read_bool(*f, path + ".enabled");
  if (const auto* f = v.find("policy")) {
    guard.policy = parse_enum(*f, kGuardPolicyTokens, path + ".policy");
  }
  if (const auto* f = v.find("interval_s")) {
    guard.interval_s = read_double(*f, path + ".interval_s");
  }
  if (!(guard.interval_s > 0.0)) fail(path + ".interval_s", "must be > 0");
}

void load_detector(const json::Value& v, detect::DetectorConfig& det,
                   const std::string& path) {
  expect_object(v, path);
  check_keys(v, kDetectorKeys, path);
  if (const auto* f = v.find("enabled")) det.enabled = read_bool(*f, path + ".enabled");
  if (const auto* f = v.find("window_samples")) {
    det.window_samples = read_int(*f, path + ".window_samples");
  }
  if (const auto* f = v.find("warmup_samples")) {
    det.warmup_samples = read_int(*f, path + ".warmup_samples");
  }
  if (const auto* f = v.find("drift")) det.drift = read_double(*f, path + ".drift");
  if (const auto* f = v.find("threshold")) {
    det.threshold = read_double(*f, path + ".threshold");
  }
  if (const auto* f = v.find("min_sigma")) {
    det.min_sigma = read_double(*f, path + ".min_sigma");
  }
  if (const auto* f = v.find("min_links")) {
    det.min_links = read_int(*f, path + ".min_links");
  }
  if (const auto* f = v.find("fuse_window_s")) {
    det.fuse_window_s = read_double(*f, path + ".fuse_window_s");
  }
  if (const auto* f = v.find("cooldown_s")) {
    det.cooldown_s = read_double(*f, path + ".cooldown_s");
  }
  if (const auto* f = v.find("adapt")) det.adapt = read_bool(*f, path + ".adapt");
  if (det.window_samples < 1) fail(path + ".window_samples", "must be >= 1");
  if (det.warmup_samples < 1) fail(path + ".warmup_samples", "must be >= 1");
  if (!(det.drift >= 0.0)) fail(path + ".drift", "must be >= 0");
  if (!(det.threshold > 0.0)) fail(path + ".threshold", "must be > 0");
  if (!(det.min_sigma > 0.0)) fail(path + ".min_sigma", "must be > 0");
  if (det.min_links < 1) fail(path + ".min_links", "must be >= 1");
  if (!(det.fuse_window_s > 0.0)) fail(path + ".fuse_window_s", "must be > 0");
  if (!(det.cooldown_s >= 0.0)) fail(path + ".cooldown_s", "must be >= 0");
}

void load_shard(const json::Value& v, ShardConfig& shard, const std::string& path) {
  expect_object(v, path);
  check_keys(v, kShardKeys, path);
  if (const auto* f = v.find("count")) shard.count = read_int(*f, path + ".count");
  if (const auto* f = v.find("allow_oversubscribe")) {
    shard.allow_oversubscribe = read_bool(*f, path + ".allow_oversubscribe");
  }
  if (shard.count < 1) fail(path + ".count", "must be >= 1");
  // The partitioner further requires count <= grid rows, but that depends on
  // the grid section; sim::make_simulator owns cross-section validation.
  if (shard.count > 256) fail(path + ".count", "must be <= 256");
}

void load_surrogate(const json::Value& v, SurrogateConfig& surrogate,
                    const std::string& path) {
  expect_object(v, path);
  check_keys(v, kSurrogateKeys, path);
  if (const auto* f = v.find("enabled")) {
    surrogate.enabled = read_bool(*f, path + ".enabled");
  }
  if (const auto* f = v.find("service_scale")) {
    surrogate.service_scale = read_double(*f, path + ".service_scale");
  }
  if (const auto* f = v.find("transit_scale")) {
    surrogate.transit_scale = read_double(*f, path + ".transit_scale");
  }
  if (const auto* f = v.find("capacity_scale")) {
    surrogate.capacity_scale = read_double(*f, path + ".capacity_scale");
  }
  if (const auto* f = v.find("profile")) {
    surrogate.profile = read_string(*f, path + ".profile");
  }
  if (!(surrogate.service_scale > 0.0)) fail(path + ".service_scale", "must be > 0");
  if (!(surrogate.transit_scale > 0.0)) fail(path + ".transit_scale", "must be > 0");
  if (!(surrogate.capacity_scale > 0.0)) fail(path + ".capacity_scale", "must be > 0");
}

// --- Section dumpers --------------------------------------------------------

json::Value dump_node(const GridNodeRef& node) {
  json::Value v = json::Value::object();
  v.set("row", json::Value::number(node.row));
  v.set("col", json::Value::number(node.col));
  return v;
}

json::Value dump_time_or_inf(double t) {
  if (std::isinf(t)) return json::Value::string("inf");
  return json::Value::number(t);
}

json::Value dump_controller_spec(const core::ControllerSpec& spec,
                                 const std::string& path) {
  if (spec.util.pressure) {
    fail(path + ".util.pressure",
         "a custom pressure function cannot be serialized; use the pressure preset");
  }
  if (spec.fixed_slot.pressure) {
    fail(path + ".fixed_slot.pressure",
         "a custom pressure function cannot be serialized; use the pressure preset");
  }
  json::Value v = json::Value::object();
  v.set("type", json::Value::string(enum_token(spec.type, kControllerTypeTokens)));
  json::Value util = json::Value::object();
  util.set("alpha", json::Value::number(spec.util.alpha));
  util.set("beta", json::Value::number(spec.util.beta));
  util.set("amber_duration_s", json::Value::number(spec.util.amber_duration_s));
  util.set("gstar_policy",
           json::Value::string(enum_token(spec.util.gstar_policy, kGStarTokens)));
  util.set("gstar_constant", json::Value::number(spec.util.gstar_constant));
  util.set("pressure",
           json::Value::string(enum_token(spec.util.pressure_kind, kPressureTokens)));
  v.set("util", std::move(util));
  json::Value slot = json::Value::object();
  slot.set("period_s", json::Value::number(spec.fixed_slot.period_s));
  slot.set("amber_duration_s", json::Value::number(spec.fixed_slot.amber_duration_s));
  slot.set("work_conserving", json::Value::boolean(spec.fixed_slot.work_conserving));
  slot.set("pressure", json::Value::string(
                           enum_token(spec.fixed_slot.pressure_kind, kPressureTokens)));
  v.set("fixed_slot", std::move(slot));
  json::Value fixed = json::Value::object();
  fixed.set("green_duration_s", json::Value::number(spec.fixed_time.green_duration_s));
  fixed.set("amber_duration_s", json::Value::number(spec.fixed_time.amber_duration_s));
  fixed.set("offset_s", json::Value::number(spec.fixed_time.offset_s));
  v.set("fixed_time", std::move(fixed));
  return v;
}

}  // namespace

ScenarioConfig load_scenario(std::string_view json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) {
    fail("$", std::string("expected an object, got ") + doc.type_name());
  }
  check_keys(doc, kTopKeys, "");

  const json::Value* version = doc.find("version");
  if (version == nullptr) fail("version", "required field is missing");
  const int v = read_int(*version, "version");
  if (v < kScenarioSchemaVersionMin || v > kScenarioSchemaVersion) {
    fail("version", "unsupported schema version " + std::to_string(v) +
                        " (this build reads versions " +
                        std::to_string(kScenarioSchemaVersionMin) + " through " +
                        std::to_string(kScenarioSchemaVersion) + ")");
  }

  ScenarioConfig cfg;
  if (const auto* f = doc.find("name")) cfg.name = read_string(*f, "name");
  if (const auto* f = doc.find("description")) {
    cfg.description = read_string(*f, "description");
  }
  if (const auto* f = doc.find("simulator")) {
    cfg.simulator = parse_enum(*f, kSimulatorTokens, "simulator");
  }
  if (const auto* f = doc.find("duration_s")) {
    cfg.duration_s = read_double(*f, "duration_s");
  }
  if (!(cfg.duration_s > 0.0)) fail("duration_s", "must be > 0");
  if (const auto* f = doc.find("seed")) cfg.seed = read_u64(*f, "seed");
  if (const auto* f = doc.find("grid")) load_grid(*f, cfg.grid, "grid");
  if (const auto* f = doc.find("demand")) load_demand(*f, cfg.demand, "demand");
  if (const auto* f = doc.find("controller")) {
    load_controller_spec(*f, cfg.controller, "controller");
  }
  if (const auto* f = doc.find("controller_overrides")) {
    expect_array(*f, "controller_overrides");
    for (std::size_t i = 0; i < f->items().size(); ++i) {
      const std::string epath = "controller_overrides[" + std::to_string(i) + "]";
      const json::Value& e = f->items()[i];
      expect_object(e, epath);
      check_keys(e, kOverrideKeys, epath);
      ControllerOverride o;
      if (const auto* s = e.find("node")) o.node = load_node(*s, epath + ".node");
      // Overrides start from the run-wide spec, not from factory defaults:
      // a corridor override that only sets fixed_time.offset_s keeps the
      // scenario's amber/green timings.
      o.spec = cfg.controller;
      if (const auto* s = e.find("controller")) {
        load_controller_spec(*s, o.spec, epath + ".controller");
      }
      for (const ControllerOverride& prev : cfg.controller_overrides) {
        if (prev.node.row == o.node.row && prev.node.col == o.node.col) {
          fail(epath, "duplicate override for junction (" + std::to_string(o.node.row) +
                          ", " + std::to_string(o.node.col) + ")");
        }
      }
      cfg.controller_overrides.push_back(std::move(o));
    }
  }
  if (const auto* f = doc.find("micro")) load_micro(*f, cfg.micro, "micro");
  if (const auto* f = doc.find("queue")) load_queue(*f, cfg.queue, "queue");
  if (const auto* f = doc.find("watches")) load_watches(*f, cfg.watches, "watches");
  if (const auto* f = doc.find("faults")) load_faults(*f, cfg.faults, "faults");
  if (const auto* f = doc.find("guard")) load_guard(*f, cfg.guard, "guard");
  if (const auto* f = doc.find("detector")) load_detector(*f, cfg.detector, "detector");
  if (const auto* f = doc.find("shard")) load_shard(*f, cfg.shard, "shard");
  if (const auto* f = doc.find("surrogate")) {
    load_surrogate(*f, cfg.surrogate, "surrogate");
  }
  return cfg;
}

ScenarioConfig load_scenario_file(const std::string& file_path) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open scenario file: " + file_path);
  std::ostringstream text;
  text << in.rdbuf();
  return load_scenario(text.str());
}

std::string dump_scenario(const ScenarioConfig& config) {
  json::Value doc = json::Value::object();
  doc.set("version", json::Value::number(kScenarioSchemaVersion));
  doc.set("name", json::Value::string(config.name));
  doc.set("description", json::Value::string(config.description));
  doc.set("simulator",
          json::Value::string(enum_token(config.simulator, kSimulatorTokens)));
  doc.set("duration_s", json::Value::number(config.duration_s));
  doc.set("seed", json::Value::number(config.seed));

  json::Value grid = json::Value::object();
  grid.set("rows", json::Value::number(config.grid.rows));
  grid.set("cols", json::Value::number(config.grid.cols));
  grid.set("road_length_m", json::Value::number(config.grid.road_length_m));
  grid.set("boundary_length_m", json::Value::number(config.grid.boundary_length_m));
  grid.set("speed_limit_mps", json::Value::number(config.grid.speed_limit_mps));
  grid.set("capacity", json::Value::number(config.grid.capacity));
  grid.set("service_rate", json::Value::number(config.grid.service_rate));
  grid.set("handedness",
           json::Value::string(enum_token(config.grid.handedness, kHandednessTokens)));
  doc.set("grid", std::move(grid));

  json::Value demand = json::Value::object();
  demand.set("pattern",
             json::Value::string(enum_token(config.demand.pattern, kPatternTokens)));
  demand.set("interarrival_scale",
             json::Value::number(config.demand.interarrival_scale));
  json::Value turning = json::Value::object();
  for (const EnumEntry<net::Side>& side : kSideTokens) {
    const traffic::TurningTable::Probabilities& probs =
        config.demand.turning.by_side[static_cast<std::size_t>(side.value)];
    json::Value p = json::Value::object();
    p.set("right", json::Value::number(probs.right));
    p.set("left", json::Value::number(probs.left));
    turning.set(side.token, std::move(p));
  }
  demand.set("turning", std::move(turning));
  json::Value segments = json::Value::array();
  for (const traffic::ScheduleSegment& seg : config.demand.schedule.segments()) {
    json::Value s = json::Value::object();
    s.set("duration_s", json::Value::number(seg.duration_s));
    s.set("pattern", json::Value::string(enum_token(seg.pattern, kPatternTokens)));
    s.set("interarrival_scale", json::Value::number(seg.interarrival_scale));
    segments.push_back(std::move(s));
  }
  demand.set("segments", std::move(segments));
  doc.set("demand", std::move(demand));

  doc.set("controller", dump_controller_spec(config.controller, "controller"));

  json::Value overrides = json::Value::array();
  for (std::size_t i = 0; i < config.controller_overrides.size(); ++i) {
    const ControllerOverride& o = config.controller_overrides[i];
    json::Value e = json::Value::object();
    e.set("node", dump_node(o.node));
    e.set("controller",
          dump_controller_spec(
              o.spec, "controller_overrides[" + std::to_string(i) + "].controller"));
    overrides.push_back(std::move(e));
  }
  doc.set("controller_overrides", std::move(overrides));

  json::Value micro = json::Value::object();
  micro.set("dt_s", json::Value::number(config.micro.dt_s));
  micro.set("dedicated_turn_lanes",
            json::Value::boolean(config.micro.dedicated_turn_lanes));
  micro.set("control_interval_s", json::Value::number(config.micro.control_interval_s));
  micro.set("sample_interval_s", json::Value::number(config.micro.sample_interval_s));
  micro.set("junction_crossing_s",
            json::Value::number(config.micro.junction_crossing_s));
  micro.set("service_zone_m", json::Value::number(config.micro.service_zone_m));
  micro.set("saturation_flow_vps",
            json::Value::number(config.micro.saturation_flow_vps));
  micro.set("insertion_speed_mps",
            json::Value::number(config.micro.insertion_speed_mps));
  micro.set("waiting_speed_threshold_mps",
            json::Value::number(config.micro.waiting_speed_threshold_mps));
  micro.set("approach_queue_threshold_mps",
            json::Value::number(config.micro.approach_queue_threshold_mps));
  micro.set("congestion_queue_threshold_mps",
            json::Value::number(config.micro.congestion_queue_threshold_mps));
  micro.set("threads", json::Value::number(config.micro.threads));
  json::Value sensor = json::Value::object();
  sensor.set("detection_probability",
             json::Value::number(config.micro.sensor.detection_probability));
  sensor.set("quantization", json::Value::number(config.micro.sensor.quantization));
  sensor.set("dropout_probability",
             json::Value::number(config.micro.sensor.dropout_probability));
  micro.set("sensor", std::move(sensor));
  json::Value vehicle = json::Value::object();
  vehicle.set("length_m", json::Value::number(config.micro.vehicle.length_m));
  vehicle.set("min_gap_m", json::Value::number(config.micro.vehicle.min_gap_m));
  vehicle.set("accel_mps2", json::Value::number(config.micro.vehicle.accel_mps2));
  vehicle.set("decel_mps2", json::Value::number(config.micro.vehicle.decel_mps2));
  vehicle.set("tau_s", json::Value::number(config.micro.vehicle.tau_s));
  vehicle.set("sigma", json::Value::number(config.micro.vehicle.sigma));
  micro.set("vehicle", std::move(vehicle));
  doc.set("micro", std::move(micro));

  json::Value queue = json::Value::object();
  queue.set("step_s", json::Value::number(config.queue.step_s));
  queue.set("control_interval_s", json::Value::number(config.queue.control_interval_s));
  queue.set("sample_interval_s", json::Value::number(config.queue.sample_interval_s));
  queue.set("threads", json::Value::number(config.queue.threads));
  doc.set("queue", std::move(queue));

  json::Value watches = json::Value::array();
  for (const WatchSpec& w : config.watches) {
    json::Value e = json::Value::object();
    e.set("row", json::Value::number(w.row));
    e.set("col", json::Value::number(w.col));
    e.set("side", json::Value::string(enum_token(w.side, kSideTokens)));
    e.set("name", json::Value::string(w.name));
    watches.push_back(std::move(e));
  }
  doc.set("watches", std::move(watches));

  json::Value faults = json::Value::object();
  json::Value capacity = json::Value::array();
  for (const CapacityFault& f : config.faults.capacity) {
    json::Value e = json::Value::object();
    json::Value road = json::Value::object();
    road.set("row", json::Value::number(f.road.row));
    road.set("col", json::Value::number(f.road.col));
    road.set("side", json::Value::string(enum_token(f.road.side, kSideTokens)));
    e.set("road", std::move(road));
    e.set("start_s", json::Value::number(f.start_s));
    e.set("end_s", dump_time_or_inf(f.end_s));
    e.set("capacity_factor", json::Value::number(f.capacity_factor));
    capacity.push_back(std::move(e));
  }
  faults.set("capacity", std::move(capacity));
  json::Value sensors = json::Value::array();
  for (const SensorFault& f : config.faults.sensors) {
    json::Value e = json::Value::object();
    e.set("node", dump_node(f.node));
    e.set("start_s", json::Value::number(f.start_s));
    e.set("end_s", dump_time_or_inf(f.end_s));
    e.set("kind", json::Value::string(enum_token(f.kind, kSensorFaultTokens)));
    e.set("bias", json::Value::number(f.bias));
    e.set("noise_magnitude", json::Value::number(f.noise_magnitude));
    sensors.push_back(std::move(e));
  }
  faults.set("sensors", std::move(sensors));
  json::Value controllers = json::Value::array();
  for (const ControllerFault& f : config.faults.controllers) {
    json::Value e = json::Value::object();
    e.set("node", dump_node(f.node));
    e.set("fail_s", json::Value::number(f.fail_s));
    e.set("recover_s", dump_time_or_inf(f.recover_s));
    controllers.push_back(std::move(e));
  }
  faults.set("controllers", std::move(controllers));
  doc.set("faults", std::move(faults));

  json::Value guard = json::Value::object();
  guard.set("enabled", json::Value::boolean(config.guard.enabled));
  guard.set("policy", json::Value::string(enum_token(config.guard.policy,
                                                     kGuardPolicyTokens)));
  guard.set("interval_s", json::Value::number(config.guard.interval_s));
  doc.set("guard", std::move(guard));

  json::Value detector = json::Value::object();
  detector.set("enabled", json::Value::boolean(config.detector.enabled));
  detector.set("window_samples", json::Value::number(config.detector.window_samples));
  detector.set("warmup_samples", json::Value::number(config.detector.warmup_samples));
  detector.set("drift", json::Value::number(config.detector.drift));
  detector.set("threshold", json::Value::number(config.detector.threshold));
  detector.set("min_sigma", json::Value::number(config.detector.min_sigma));
  detector.set("min_links", json::Value::number(config.detector.min_links));
  detector.set("fuse_window_s", json::Value::number(config.detector.fuse_window_s));
  detector.set("cooldown_s", json::Value::number(config.detector.cooldown_s));
  detector.set("adapt", json::Value::boolean(config.detector.adapt));
  doc.set("detector", std::move(detector));

  json::Value shard = json::Value::object();
  shard.set("count", json::Value::number(config.shard.count));
  shard.set("allow_oversubscribe",
            json::Value::boolean(config.shard.allow_oversubscribe));
  doc.set("shard", std::move(shard));

  json::Value surrogate = json::Value::object();
  surrogate.set("enabled", json::Value::boolean(config.surrogate.enabled));
  surrogate.set("service_scale", json::Value::number(config.surrogate.service_scale));
  surrogate.set("transit_scale", json::Value::number(config.surrogate.transit_scale));
  surrogate.set("capacity_scale",
                json::Value::number(config.surrogate.capacity_scale));
  surrogate.set("profile", json::Value::string(config.surrogate.profile));
  doc.set("surrogate", std::move(surrogate));

  return json::dump(doc);
}

std::vector<std::string> schema_field_paths() {
  std::vector<std::string> out;
  const auto add = [&out](const std::string& prefix,
                          std::span<const char* const> keys) {
    for (const char* k : keys) {
      out.push_back(prefix.empty() ? k : prefix + "." + k);
    }
  };
  add("", kTopKeys);
  add("grid", kGridKeys);
  add("demand", kDemandKeys);
  for (const EnumEntry<net::Side>& side : kSideTokens) {
    add(std::string("demand.turning.") + side.token, kTurnProbKeys);
  }
  add("demand.segments[]", kSegmentKeys);
  add("controller", kControllerKeys);
  add("controller.util", kUtilKeys);
  add("controller.fixed_slot", kFixedSlotKeys);
  add("controller.fixed_time", kFixedTimeKeys);
  add("controller_overrides[]", kOverrideKeys);
  add("controller_overrides[].node", kNodeKeys);
  add("micro", kMicroKeys);
  add("micro.sensor", kSensorModelKeys);
  add("micro.vehicle", kVehicleKeys);
  add("queue", kQueueKeys);
  add("watches[]", kWatchKeys);
  add("faults", kFaultsKeys);
  add("faults.capacity[]", kCapacityFaultKeys);
  add("faults.capacity[].road", kRoadRefKeys);
  add("faults.sensors[]", kSensorFaultKeys);
  add("faults.sensors[].node", kNodeKeys);
  add("faults.controllers[]", kControllerFaultKeys);
  add("faults.controllers[].node", kNodeKeys);
  add("guard", kGuardKeys);
  add("detector", kDetectorKeys);
  add("shard", kShardKeys);
  add("surrogate", kSurrogateKeys);
  return out;
}

}  // namespace abp::scenario
