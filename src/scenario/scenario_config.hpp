// Scenario description: everything needed to construct and run one simulation.
//
// A ScenarioConfig bundles the network (grid), demand (pattern), controller
// policy and simulator choice. It is a pure value type — the construction
// machinery lives behind abp::sim::make_simulator() (src/sim/simulator.hpp),
// and the one-call experiment entry points (run_scenario, run_replications,
// paper_scenario) in src/scenario/scenario.hpp. Split out of scenario.hpp so
// the simulator factory and the experiment layer (src/exp) can consume the
// config without a circular dependency on the scenario API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/factory.hpp"
#include "src/detect/detector_config.hpp"
#include "src/microsim/params.hpp"
#include "src/net/grid.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/scenario/fault_schedule.hpp"
#include "src/traffic/demand.hpp"

namespace abp::scenario {

enum class SimulatorKind {
  // Microscopic car-following simulator (the SUMO substitute) — used for the
  // headline experiments.
  Micro,
  // Discrete-time queueing-network model of Section II — used for property
  // tests and fast model-level cross-checks.
  Queue,
};

// Requests a queue-length time series on the incoming road arriving at grid
// junction (row, col) from boundary side `side` (Fig. 5 watches the road from
// the East at the top-right junction).
struct WatchSpec {
  int row = 0;
  int col = 0;
  net::Side side = net::Side::East;
  std::string name;
};

// Replaces the run-wide ControllerSpec at one grid junction. The declarative
// layer uses this for heterogeneous control — e.g. an arterial corridor whose
// fixed-time junctions carry staggered offsets (a green wave) while the rest
// of the grid stays adaptive. When several overrides name the same junction,
// the last one wins (scenario files reject such duplicates at load time).
struct ControllerOverride {
  GridNodeRef node;
  core::ControllerSpec spec;
};

// Multi-process sharding of the grid (src/shard/; docs/SHARDING.md). The
// grid is split into `count` contiguous row bands, each simulated by a forked
// worker process; workers exchange only boundary traffic per tick and the
// result is pinned bit-identical to the 1-shard run (ShardInvariance).
struct ShardConfig {
  // Number of shard processes; 1 = monolithic (no shard layer at all).
  int count = 1;
  // Allow count x backend-threads to exceed hardware_concurrency. Off by
  // default for the same reason ExperimentRunner rejects oversubscribed
  // batches: a silently timesliced "speedup" measurement is worse than an
  // error. The invariance tests enable it (correctness is schedule-free).
  bool allow_oversubscribe = false;
  // Run the shard workers in-process (coordinator drives every worker's tick
  // phases itself over deque channels) instead of forking. Same protocol,
  // same frames, no processes — the transport the determinism tests pin and
  // the only sharded mode usable under TSan. Programmatic-only, like the
  // crash knobs below (scenario_io never serializes it).
  bool in_process = false;
  // Debug hook for the worker-crash test: worker `crash_worker` calls
  // _exit() at simulated time `crash_at_s`. Negative = disabled. Not part of
  // the scenario schema (scenario_io never serializes it).
  int crash_worker = -1;
  double crash_at_s = -1.0;
};

// Calibrated-surrogate parameters (src/surrogate/; docs/PERFORMANCE.md,
// "Surrogate throughput"). When enabled and the run selects the queue
// backend, the grid's uniform service-rate / transit-time / capacity scalars
// are rescaled by these factors before network construction, so the queue
// sim imitates the micro sim's behavior for the scenario family the profile
// was fitted on. The micro backend ignores the section entirely (it is the
// calibration *target*), so a profile can be attached to a scenario without
// perturbing its micro-sim pins.
struct SurrogateConfig {
  bool enabled = false;
  // Multiplies GridConfig::service_rate (junction discharge, veh/s/link).
  double service_scale = 1.0;
  // Divides GridConfig::speed_limit_mps: transit_scale > 1 means vehicles
  // take proportionally longer to traverse a road than the design speed.
  double transit_scale = 1.0;
  // Multiplies GridConfig::capacity (rounded, floored at 1 vehicle).
  double capacity_scale = 1.0;
  // Name of the CalibrationProfile these scales came from ("" = hand-set).
  std::string profile;
};

struct ScenarioConfig {
  // Descriptive metadata (scenario library identity; empty for programmatic
  // configs). `name` keys the library's golden determinism pins.
  std::string name;
  std::string description;
  net::GridConfig grid;
  traffic::DemandConfig demand;
  core::ControllerSpec controller;
  // Per-junction exceptions to `controller`, applied by make_simulator().
  std::vector<ControllerOverride> controller_overrides;
  SimulatorKind simulator = SimulatorKind::Micro;
  double duration_s = 3600.0;
  std::uint64_t seed = 42;
  microsim::MicroSimConfig micro;
  queuesim::QueueSimConfig queue;
  std::vector<WatchSpec> watches;
  // Timed incidents executed during the run (empty = fault-free, zero
  // hot-path cost). Validated by make_simulator(); see fault_schedule.hpp.
  FaultSchedule faults;
  // Opt-in runtime invariant guard (sim::SimulatorGuard).
  GuardConfig guard;
  // Opt-in online changepoint detection over the junctions' sensor streams
  // (detect::JunctionMonitor via core::AdaptiveController; see
  // docs/CHANGEPOINT.md).
  detect::DetectorConfig detector;
  // Multi-process sharding (count > 1 routes make_simulator through
  // sim::ShardedSimulator; see docs/SHARDING.md).
  ShardConfig shard;
  // Calibrated-surrogate rescaling of the queue backend (src/surrogate/).
  SurrogateConfig surrogate;
};

// Tick-level parallelism the config's *selected* backend will use: the
// road-partitioned sweep width of the simulator that actually runs. The
// experiment layer multiplies this by its run-level `jobs` when checking for
// oversubscription (docs/PERFORMANCE.md, "Run-level vs tick-level
// parallelism").
[[nodiscard]] inline int tick_threads(const ScenarioConfig& config) noexcept {
  const int backend_threads = config.simulator == SimulatorKind::Micro
                                  ? config.micro.threads
                                  : config.queue.threads;
  // A sharded run forks `count` workers, each with its own sweep pool, so
  // the run's true hardware appetite is the product — the experiment layer's
  // oversubscription guard must see all of it.
  return backend_threads * (config.shard.count > 1 ? config.shard.count : 1);
}

}  // namespace abp::scenario
