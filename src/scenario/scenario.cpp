#include "src/scenario/scenario.hpp"

#include <cmath>

#include <stdexcept>

#include "src/exp/experiment_runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/student_t.hpp"
#include "src/util/accumulator.hpp"

namespace abp::scenario {

ScenarioConfig paper_scenario(traffic::PatternKind pattern, core::ControllerType type,
                              double fixed_slot_period_s) {
  ScenarioConfig cfg;
  cfg.grid = net::GridConfig{};  // 3x3, W=120, mu=1, left-hand traffic
  cfg.demand.pattern = pattern;
  cfg.demand.turning = traffic::TurningTable::paper();
  cfg.controller.type = type;
  cfg.controller.util.alpha = -1.0;
  cfg.controller.util.beta = -2.0;
  cfg.controller.util.amber_duration_s = 4.0;
  cfg.controller.util.gstar_policy = core::GStarPolicy::WStarMu;
  cfg.controller.fixed_slot.period_s = fixed_slot_period_s;
  cfg.controller.fixed_slot.amber_duration_s = 4.0;
  cfg.controller.fixed_time.amber_duration_s = 4.0;
  cfg.duration_s = traffic::paper_duration_s(pattern);
  return cfg;
}

stats::RunResult run_scenario(const ScenarioConfig& config) {
  return sim::make_simulator(config)->finish(config.duration_s);
}

ReplicationSummary run_replications(const ScenarioConfig& config, int replications,
                                    int jobs, bool allow_oversubscribe) {
  if (replications < 1) {
    throw std::invalid_argument("need at least one replication");
  }
  exp::ExperimentRunner runner(
      {.jobs = jobs, .allow_oversubscribe = allow_oversubscribe});
  const std::vector<stats::RunResult> runs =
      runner.run(exp::replication_configs(config, replications));

  ReplicationSummary summary;
  Accumulator acc;
  for (const stats::RunResult& r : runs) {
    summary.avg_queuing_times_s.push_back(r.metrics.average_queuing_time_s());
    acc.add(summary.avg_queuing_times_s.back());
  }
  summary.mean_s = acc.mean();
  summary.stddev_s = acc.stddev();
  summary.ci95_halfwidth_s =
      replications > 1 ? stats::student_t_quantile(0.975, replications - 1) *
                             acc.stddev() / std::sqrt(static_cast<double>(replications))
                       : 0.0;
  return summary;
}

}  // namespace abp::scenario
