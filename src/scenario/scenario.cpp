#include "src/scenario/scenario.hpp"

#include <stdexcept>

#include <cmath>

#include "src/microsim/micro_sim.hpp"
#include "src/util/accumulator.hpp"
#include "src/net/validation.hpp"

namespace abp::scenario {

ScenarioConfig paper_scenario(traffic::PatternKind pattern, core::ControllerType type,
                              double fixed_slot_period_s) {
  ScenarioConfig cfg;
  cfg.grid = net::GridConfig{};  // 3x3, W=120, mu=1, left-hand traffic
  cfg.demand.pattern = pattern;
  cfg.demand.turning = traffic::TurningTable::paper();
  cfg.controller.type = type;
  cfg.controller.util.alpha = -1.0;
  cfg.controller.util.beta = -2.0;
  cfg.controller.util.amber_duration_s = 4.0;
  cfg.controller.util.gstar_policy = core::GStarPolicy::WStarMu;
  cfg.controller.fixed_slot.period_s = fixed_slot_period_s;
  cfg.controller.fixed_slot.amber_duration_s = 4.0;
  cfg.controller.fixed_time.amber_duration_s = 4.0;
  cfg.duration_s = traffic::paper_duration_s(pattern);
  return cfg;
}

stats::RunResult run_scenario(const ScenarioConfig& config) {
  net::Network network = net::build_grid(config.grid);
  net::validate_or_throw(network);

  traffic::DemandGenerator demand(network, config.demand, config.seed);
  std::vector<core::ControllerPtr> controllers =
      core::make_controllers(config.controller, network);

  auto resolve_watch = [&](const WatchSpec& w) {
    const auto node = network.at_grid(w.row, w.col);
    if (!node) throw std::invalid_argument("watch references a junction outside the grid");
    const RoadId road = network.intersection(*node).incoming_on(w.side);
    if (!road.valid()) throw std::invalid_argument("watched junction has no such approach");
    return road;
  };

  if (config.simulator == SimulatorKind::Micro) {
    microsim::MicroSim sim(network, config.micro, std::move(controllers), demand,
                           config.seed + 0x5157u);
    for (const WatchSpec& w : config.watches) sim.watch_road(resolve_watch(w), w.name);
    return sim.finish(config.duration_s);
  }
  queuesim::QueueSim sim(network, config.queue, std::move(controllers), demand);
  for (const WatchSpec& w : config.watches) sim.watch_road(resolve_watch(w), w.name);
  return sim.finish(config.duration_s);
}

ReplicationSummary run_replications(ScenarioConfig config, int replications) {
  if (replications < 1) {
    throw std::invalid_argument("need at least one replication");
  }
  ReplicationSummary summary;
  Accumulator acc;
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < replications; ++i) {
    config.seed = base_seed + static_cast<std::uint64_t>(i);
    const stats::RunResult r = run_scenario(config);
    summary.avg_queuing_times_s.push_back(r.metrics.average_queuing_time_s());
    acc.add(summary.avg_queuing_times_s.back());
  }
  summary.mean_s = acc.mean();
  summary.stddev_s = acc.stddev();
  summary.ci95_halfwidth_s =
      replications > 1 ? 1.96 * acc.stddev() / std::sqrt(static_cast<double>(replications))
                       : 0.0;
  return summary;
}

}  // namespace abp::scenario
