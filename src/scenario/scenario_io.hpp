// Declarative scenario layer: JSON files <-> ScenarioConfig, validated and
// round-trippable.
//
// This is the boundary between "workloads are C++ code" and "workloads are
// data". A scenario file describes everything a run needs — topology, demand
// (including time-varying segment schedules), controller selection with
// per-junction overrides, both backends' parameters, watches, the full
// PR-6 fault schedule and the runtime guard — and loads into the same
// ScenarioConfig value the programmatic API uses, so every determinism
// guarantee (fixed-seed bit-equality at any thread/jobs count) holds for
// file-driven runs unchanged. The scenario library under scenarios/ plus
// abp_cli --scenario are built on this; docs/SCENARIOS.md is the schema
// reference (field-by-field semantics, defaults, validation rules,
// determinism contract) and is lint-checked against schema_field_paths().
//
// Error contract: every load failure throws ScenarioIoError whose what() is
// exactly "<dotted.path>: <problem>" — e.g.
//   demand.segments[2].interarrival_scale: must be > 0
//   micro.sensor.quantisation: unknown key
// so a failing file pinpoints the offending field without a stack trace.
// Malformed JSON (not valid JSON at all) throws json::ParseError with
// line/column instead, since there is no field path to report.
//
// Round-trip contract: dump_scenario() serializes *every* field in a fixed
// order and canonical number form (shortest round-trip doubles, exact 64-bit
// integers, infinity spelled "inf"), so for any config c,
// load(dump(c)) == c field-for-field and dump(load(dump(c))) == dump(c)
// byte-for-byte. The one deliberate exception: a config carrying a custom
// PressureFn (a std::function, programmatic API only) cannot be dumped —
// dump_scenario throws, pointing at the serializable pressure_kind field.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/scenario_config.hpp"

namespace abp::scenario {

// The schema version this build writes (the file's required top-level
// "version" field). Bumped only for schema changes; the loader also accepts
// kScenarioSchemaVersionMin, since every older document is a valid newer one
// (new sections are optional with behavior-preserving defaults). Version 2
// added the optional "detector" section (online changepoint detection);
// version 3 the optional "shard" section (multi-process sharding); version 4
// the optional "surrogate" section (calibrated queue-backend rescaling).
inline constexpr int kScenarioSchemaVersion = 4;
inline constexpr int kScenarioSchemaVersionMin = 1;

// Load/validate failure with the dotted path of the offending field.
// what() == "<path>: <problem>".
class ScenarioIoError : public std::invalid_argument {
 public:
  ScenarioIoError(std::string path, const std::string& problem)
      : std::invalid_argument(path + ": " + problem), path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// Parses and validates one scenario document. Throws ScenarioIoError on any
// schema violation (unknown key, wrong type, out-of-range value, overlapping
// fault windows, ...) and json::ParseError on malformed JSON.
[[nodiscard]] ScenarioConfig load_scenario(std::string_view json_text);

// Reads the file and calls load_scenario. Throws std::runtime_error when the
// file cannot be opened.
[[nodiscard]] ScenarioConfig load_scenario_file(const std::string& file_path);

// Serializes the full config (defaults included) in the canonical byte-stable
// form. Throws ScenarioIoError for the unserializable programmatic-only
// fields (custom PressureFn).
[[nodiscard]] std::string dump_scenario(const ScenarioConfig& config);

// Every dotted field path of the schema, in document order — array-valued
// fields use a "[]" suffix on the array segment (e.g.
// "demand.segments[].duration_s"). Derived from the same key tables the
// parser's unknown-key rejection uses, so the list cannot drift from what
// load_scenario accepts. Consumed by abp_cli --print-schema-fields and the
// docs lint (tools/check_scenario_docs.py).
[[nodiscard]] std::vector<std::string> schema_field_paths();

}  // namespace abp::scenario
