// Scenario assembly: one call from "paper experiment description" to results.
//
// A ScenarioConfig bundles the network (grid), demand (pattern), controller
// policy and simulator choice. run_scenario() builds everything with a fixed
// seed, runs to the configured duration and returns the metrics/traces/series
// bundle. paper_scenario() fills in the paper's evaluation defaults: 3x3
// grid, W=120, mu=1, amber 4 s, alpha=-1, beta=-2, g* per Eq. (12).
#pragma once

#include <string>
#include <vector>

#include "src/core/factory.hpp"
#include "src/microsim/params.hpp"
#include "src/net/grid.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/stats/run_result.hpp"
#include "src/traffic/demand.hpp"

namespace abp::scenario {

enum class SimulatorKind {
  // Microscopic car-following simulator (the SUMO substitute) — used for the
  // headline experiments.
  Micro,
  // Discrete-time queueing-network model of Section II — used for property
  // tests and fast model-level cross-checks.
  Queue,
};

// Requests a queue-length time series on the incoming road arriving at grid
// junction (row, col) from boundary side `side` (Fig. 5 watches the road from
// the East at the top-right junction).
struct WatchSpec {
  int row = 0;
  int col = 0;
  net::Side side = net::Side::East;
  std::string name;
};

struct ScenarioConfig {
  net::GridConfig grid;
  traffic::DemandConfig demand;
  core::ControllerSpec controller;
  SimulatorKind simulator = SimulatorKind::Micro;
  double duration_s = 3600.0;
  std::uint64_t seed = 42;
  microsim::MicroSimConfig micro;
  queuesim::QueueSimConfig queue;
  std::vector<WatchSpec> watches;
};

// The paper's evaluation defaults for a given pattern and policy.
// `fixed_slot_period_s` configures CAP-BP / ORIG-BP when selected.
[[nodiscard]] ScenarioConfig paper_scenario(traffic::PatternKind pattern,
                                            core::ControllerType type,
                                            double fixed_slot_period_s = 16.0);

// Builds network + demand + controllers + simulator, runs, returns results.
// Throws on invalid configuration (network validation failures included).
[[nodiscard]] stats::RunResult run_scenario(const ScenarioConfig& config);

// Statistical summary of one scenario across independent seeds.
struct ReplicationSummary {
  // Per-run network-wide average queuing times, in seed order.
  std::vector<double> avg_queuing_times_s;
  double mean_s = 0.0;
  double stddev_s = 0.0;
  // Half-width of the 95% confidence interval on the mean (normal
  // approximation; replication counts here are small but i.i.d.).
  double ci95_halfwidth_s = 0.0;
};

// Runs `replications` copies of the scenario with seeds config.seed,
// config.seed+1, ... and summarizes the headline metric. Requires
// replications >= 1.
[[nodiscard]] ReplicationSummary run_replications(ScenarioConfig config, int replications);

}  // namespace abp::scenario
