// Scenario assembly: one call from "paper experiment description" to results.
//
// ScenarioConfig (src/scenario/scenario_config.hpp) bundles the network
// (grid), demand (pattern), controller policy and simulator choice.
// run_scenario() hands the config to the unified simulator factory
// (abp::sim::make_simulator), runs to the configured duration and returns the
// metrics/traces/series bundle. paper_scenario() fills in the paper's
// evaluation defaults: 3x3 grid, W=120, mu=1, amber 4 s, alpha=-1, beta=-2,
// g* per Eq. (12). Batches of runs (replication sets, grids, sweeps) go
// through abp::exp::ExperimentRunner (src/exp/experiment_runner.hpp), which
// run_replications() wraps.
#pragma once

#include <vector>

#include "src/scenario/scenario_config.hpp"
#include "src/stats/run_result.hpp"

namespace abp::scenario {

// The paper's evaluation defaults for a given pattern and policy.
// `fixed_slot_period_s` configures CAP-BP / ORIG-BP when selected.
[[nodiscard]] ScenarioConfig paper_scenario(traffic::PatternKind pattern,
                                            core::ControllerType type,
                                            double fixed_slot_period_s = 16.0);

// Builds network + demand + controllers + simulator, runs, returns results.
// Throws on invalid configuration (network validation failures included).
[[nodiscard]] stats::RunResult run_scenario(const ScenarioConfig& config);

// Statistical summary of one scenario across independent seeds.
struct ReplicationSummary {
  // Per-run network-wide average queuing times, in seed order (the per-seed
  // result stream; seed i of the summary is config.seed + i).
  std::vector<double> avg_queuing_times_s;
  double mean_s = 0.0;
  double stddev_s = 0.0;
  // Half-width of the 95% confidence interval on the mean, using the
  // Student-t quantile with replications - 1 degrees of freedom (replication
  // counts are small; the normal 1.96 would be anti-conservative). 0 when
  // only one replication ran.
  double ci95_halfwidth_s = 0.0;
};

// Runs `replications` copies of the scenario with seeds config.seed,
// config.seed+1, ... (exp::replication_configs' derivation scheme) and
// summarizes the headline metric. Requires replications >= 1. `jobs` runs
// that many replications concurrently through exp::ExperimentRunner —
// results are bit-identical at every jobs count; jobs x tick threads beyond
// hardware_concurrency is rejected unless `allow_oversubscribe`.
[[nodiscard]] ReplicationSummary run_replications(const ScenarioConfig& config,
                                                  int replications, int jobs = 1,
                                                  bool allow_oversubscribe = false);

}  // namespace abp::scenario
