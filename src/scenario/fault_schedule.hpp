// Fault schedule: the timed incidents of one run, as a pure value type on
// ScenarioConfig.
//
// A schedule describes *what goes wrong and when* — road capacity drops /
// lane closures with restoration, sensor faults, controller failures — using
// the same (row, col, side) grid addressing as WatchSpec, so a schedule is
// grid-portable and serializable without knowing RoadIds. Resolution against
// the concrete network, and all execution machinery, live behind
// sim::make_simulator(): capacity events are applied between ticks by the
// simulator adapter through per-backend capacity-override hooks, and sensor /
// controller faults are wrapped around the affected junctions' controllers
// via core::FaultInjectedController. Every effect executes in the sequential
// phase of the tick, so fixed-seed runs with a nonempty schedule remain
// bit-identical at every thread count; an empty schedule leaves the run
// bit-identical to a build without the subsystem (see docs/ROBUSTNESS.md).
#pragma once

#include <limits>
#include <vector>

#include "src/core/fault_controller.hpp"
#include "src/net/geometry.hpp"

namespace abp::scenario {

// The incoming road arriving at grid junction (row, col) from `side` —
// WatchSpec's addressing.
struct GridRoadRef {
  int row = 0;
  int col = 0;
  net::Side side = net::Side::East;
};

struct GridNodeRef {
  int row = 0;
  int col = 0;
};

// Capacity drop / lane closure: on [start_s, end_s) the road's effective
// capacity is floor(capacity_factor * W); at end_s (if finite) it restores
// to the design capacity W. factor 0 closes the road to new entries entirely
// — vehicles already on it drain normally, occupancy above the reduced cap
// simply blocks admission until it has drained, so occupancy never exceeds
// the design W and the capacity-bound invariant keeps holding mid-incident.
struct CapacityFault {
  GridRoadRef road;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  double capacity_factor = 0.5;  // in [0, 1]
};

// Sensor fault at one junction: all of the junction's sensor-derived
// readings (queue, upstream_total, downstream_queue) are perturbed per
// core::SensorFaultKind on [start_s, end_s). Physical state is never forged.
struct SensorFault {
  GridNodeRef node;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  core::SensorFaultKind kind = core::SensorFaultKind::Dropout;
  int bias = 0;             // Noise only
  int noise_magnitude = 0;  // Noise only
};

// Controller failure at one junction: on [fail_s, recover_s) decisions are
// delegated to a fixed-time fallback (built from the run's
// ControllerSpec::fixed_time); at recover_s the primary is reset and resumes.
struct ControllerFault {
  GridNodeRef node;
  double fail_s = 0.0;
  double recover_s = std::numeric_limits<double>::infinity();
};

struct FaultSchedule {
  std::vector<CapacityFault> capacity;
  std::vector<SensorFault> sensors;
  std::vector<ControllerFault> controllers;

  [[nodiscard]] bool empty() const noexcept {
    return capacity.empty() && sensors.empty() && controllers.empty();
  }
};

// Value-level validation: non-negative times, start < end, factors in [0, 1],
// and no overlapping sensor windows at the same junction (the decorator
// resolves ties by order, but an overlap is almost always a config bug).
// Grid-reference resolution errors surface later, from make_simulator().
// Throws std::invalid_argument.
void validate_or_throw(const FaultSchedule& schedule);

// --- Runtime invariant guard -------------------------------------------
// Opt-in per-run checking of the cross-backend invariants (conservation,
// capacity bounds — the cross_sim_invariants_test checks, compiled into
// sim::SimulatorGuard) at a fixed simulated-time cadence.

enum class GuardPolicy {
  // Throw sim::GuardViolationError on the first violation (default): inside
  // an ExperimentRunner batch this becomes a per-run Error status.
  Throw,
  // Record violations into RunResult::guard and keep running.
  Record,
  // std::abort() — for debugging under a sanitizer or core dumps.
  Abort,
};

struct GuardConfig {
  bool enabled = false;
  GuardPolicy policy = GuardPolicy::Throw;
  // Simulated seconds between checks; 1.0 = every tick of the default
  // backends. Must be positive when enabled.
  double interval_s = 1.0;
};

}  // namespace abp::scenario
