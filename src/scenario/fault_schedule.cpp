#include "src/scenario/fault_schedule.hpp"

#include <stdexcept>
#include <string>

namespace abp::scenario {
namespace {

void check_window(double start_s, double end_s, const char* what) {
  if (start_s < 0.0) {
    throw std::invalid_argument(std::string(what) + ": start time must be non-negative");
  }
  if (!(end_s > start_s)) {  // also rejects NaN
    throw std::invalid_argument(std::string(what) + ": end time must exceed start time");
  }
}

}  // namespace

void validate_or_throw(const FaultSchedule& schedule) {
  for (const CapacityFault& f : schedule.capacity) {
    check_window(f.start_s, f.end_s, "capacity fault");
    if (!(f.capacity_factor >= 0.0 && f.capacity_factor <= 1.0)) {
      throw std::invalid_argument("capacity fault: factor must be in [0, 1]");
    }
  }
  for (const SensorFault& f : schedule.sensors) {
    check_window(f.start_s, f.end_s, "sensor fault");
    if (f.noise_magnitude < 0) {
      throw std::invalid_argument("sensor fault: noise magnitude must be non-negative");
    }
  }
  for (const ControllerFault& f : schedule.controllers) {
    check_window(f.fail_s, f.recover_s, "controller fault");
  }
  // Overlapping sensor windows at one junction would make "which fault is
  // active" order-dependent; reject them outright.
  for (std::size_t i = 0; i < schedule.sensors.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.sensors.size(); ++j) {
      const SensorFault& a = schedule.sensors[i];
      const SensorFault& b = schedule.sensors[j];
      if (a.node.row != b.node.row || a.node.col != b.node.col) continue;
      if (a.start_s < b.end_s && b.start_s < a.end_s) {
        throw std::invalid_argument(
            "sensor faults overlap at junction (" + std::to_string(a.node.row) + ", " +
            std::to_string(a.node.col) + ")");
      }
    }
  }
}

}  // namespace abp::scenario
