#include "src/queuesim/queue_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace abp::queuesim {

QueueSim::QueueSim(const net::Network& network, QueueSimConfig config,
                   std::vector<core::ControllerPtr> controllers,
                   traffic::DemandGenerator& demand)
    : net_(network), config_(config), controllers_(std::move(controllers)), demand_(demand) {
  if (!net_.finalized()) throw std::invalid_argument("network must be finalized");
  if (config_.step_s <= 0.0) throw std::invalid_argument("step must be positive");
  if (config_.control_interval_s < config_.step_s) {
    throw std::invalid_argument("control interval must be >= step");
  }
  if (config_.threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (controllers_.size() != net_.intersections().size()) {
    throw std::invalid_argument("need exactly one controller per intersection");
  }
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  roads_.resize(net_.roads().size());
  links_.resize(net_.links().size());
  displayed_.assign(net_.intersections().size(), net::kTransitionPhase);
  entry_buffer_.resize(net_.roads().size());
  road_queued_.assign(net_.roads().size(), 0);
  serve_count_.assign(net_.links().size(), 0);
  service_from_.assign(net_.roads().size(), 0);
  staged_.resize(net_.links().size());
  inbound_order_.resize(net_.roads().size());
  completions_.resize(net_.roads().size());
  result_.phase_traces.resize(net_.intersections().size());
}

void QueueSim::watch_road(RoadId road, std::string series_name) {
  watches_.push_back({road, result_.road_series.size()});
  result_.road_series.emplace_back(std::move(series_name));
}

int QueueSim::link_queue(LinkId link) const {
  return static_cast<int>(links_[link.index()].queue.size());
}

int QueueSim::road_occupancy(RoadId road) const { return roads_[road.index()].occupancy; }

net::PhaseIndex QueueSim::displayed_phase(IntersectionId node) const {
  return displayed_[node.index()];
}

int QueueSim::vehicles_in_network() const { return in_network_count_; }

int QueueSim::queued_on_road(RoadId road) const { return road_queued_[road.index()]; }

double QueueSim::link_credit(LinkId link) const { return links_[link.index()].credit; }

const core::IntersectionObservation& QueueSim::observe(const net::Intersection& node) {
  core::IntersectionObservation& obs = obs_scratch_;
  obs.time = now_;
  obs.links.clear();
  obs.links.reserve(node.links.size());
  for (LinkId lid : node.links) {
    const net::Link& link = net_.link(lid);
    core::LinkState state;
    state.queue = static_cast<int>(links_[lid.index()].queue.size());
    state.upstream_total = queued_on_road(link.from_road);
    state.upstream_capacity = net_.road(link.from_road).capacity;
    state.downstream_queue =
        net_.road(link.to_road).is_exit() ? 0 : queued_on_road(link.to_road);
    state.downstream_total = roads_[link.to_road.index()].occupancy;
    state.downstream_capacity = net_.road(link.to_road).capacity;
    state.service_rate = link.service_rate;
    obs.links.push_back(state);
  }
  return obs;
}

void QueueSim::control_step() {
  for (const net::Intersection& node : net_.intersections()) {
    const net::PhaseIndex phase = controllers_[node.id.index()]->decide(observe(node));
    if (phase < 0 || phase >= static_cast<int>(node.phases.size())) {
      throw std::logic_error("controller returned an out-of-range phase");
    }
    if (phase != displayed_[node.id.index()]) {
      // A phase change cuts service credit of links that lost green.
      for (LinkId lid : node.links) links_[lid.index()].credit = 0.0;
    }
    displayed_[node.id.index()] = phase;
    result_.phase_traces[node.id.index()].record(now_, phase);
  }
}

void QueueSim::route_vehicle_into_queue(VehicleId vid, RoadId road) {
  VehicleRecord& v = vehicles_[vid.index()];
  if (v.next_turn >= v.route.turns.size()) {
    throw std::logic_error("vehicle ran out of route turns on a non-exit road");
  }
  const net::Turn turn = v.route.turns[v.next_turn];
  const std::optional<LinkId> link = net_.find_link(road, turn);
  if (!link) throw std::logic_error("route commands a missing movement");
  links_[link->index()].queue.push_back(vid);
  road_queued_[road.index()] += 1;
}

void QueueSim::complete_vehicle(VehicleId vid) {
  VehicleRecord& v = vehicles_[vid.index()];
  v.in_network = false;
  in_network_count_ -= 1;
  result_.metrics.completed += 1;
  result_.metrics.queuing_time_s.add(v.queue_time);
  result_.metrics.travel_time_s.add(now_ - v.entry_time);
  free_slots_.push_back(vid.value());
}

VehicleId QueueSim::alloc_vehicle() {
  if (!free_slots_.empty()) {
    const VehicleId vid(free_slots_.back());
    free_slots_.pop_back();
    vehicles_[vid.index()] = VehicleRecord{};
    return vid;
  }
  vehicles_.emplace_back();
  return VehicleId(static_cast<VehicleId::value_type>(vehicles_.size() - 1));
}

void QueueSim::admit_spawns(double from, double to) {
  demand_.poll_into(from, to, spawn_buffer_);
  for (const traffic::SpawnRequest& req : spawn_buffer_) {
    const VehicleId vid = alloc_vehicle();
    VehicleRecord& rec = vehicles_[vid.index()];
    rec.route = req.route;
    rec.spawn_seq = result_.metrics.generated;
    rec.entry_time = req.time;
    result_.metrics.generated += 1;
    entry_buffer_[req.entry.index()].push_back(vid);
  }
  // Admit buffered vehicles while their entry road has space.
  for (RoadId entry : net_.entry_roads()) {
    auto& buffer = entry_buffer_[entry.index()];
    RoadState& road = roads_[entry.index()];
    const int capacity = net_.road(entry).capacity;
    while (!buffer.empty() && road.occupancy < capacity) {
      const VehicleId vid = buffer.front();
      buffer.pop_front();
      VehicleRecord& v = vehicles_[vid.index()];
      v.in_network = true;
      in_network_count_ += 1;
      v.entry_time = now_;  // waiting outside the network is not queuing time
      road.occupancy += 1;
      road.transit.push_back({now_ + net_.road(entry).free_flow_time_s(), vid});
      result_.metrics.entered += 1;
    }
    if (!buffer.empty()) {
      result_.metrics.entry_blocked_time_s +=
          static_cast<double>(buffer.size()) * config_.step_s;
    }
  }
}

void QueueSim::arbitrate_service() {
  for (const net::Intersection& node : net_.intersections()) {
    const net::PhaseIndex phase = displayed_[node.id.index()];
    if (phase == net::kTransitionPhase) continue;
    for (LinkId lid : node.phases[static_cast<std::size_t>(phase)].links) {
      const net::Link& link = net_.link(lid);
      LinkQueueState& lq = links_[lid.index()];
      // Service credit replenishes at mu while green; the cap prevents
      // banking service across steps in which the queue was empty.
      const double burst = std::max(1.0, link.service_rate * config_.step_s);
      lq.credit = std::min(lq.credit + link.service_rate * config_.step_s, burst);
      RoadState& downstream = roads_[link.to_road.index()];
      const int downstream_cap = net_.road(link.to_road).capacity;
      // The serial loop's serve arithmetic, with the vehicle pops deferred to
      // the parallel passes: identical comparisons and credit subtractions,
      // so the served counts (and therefore every metric) match bit for bit.
      const int queued = static_cast<int>(lq.queue.size());
      int served = 0;
      while (lq.credit >= 1.0 && served < queued && downstream.occupancy < downstream_cap) {
        lq.credit -= 1.0;
        road_queued_[link.from_road.index()] -= 1;
        roads_[link.from_road.index()].occupancy -= 1;
        downstream.occupancy += 1;
        served += 1;
      }
      if (served > 0) {
        serve_count_[lid.index()] = served;
        service_from_[link.from_road.index()] = 1;
        inbound_order_[link.to_road.index()].push_back(lid);
      }
    }
  }
}

void QueueSim::sweep_pop_served(std::size_t begin, std::size_t end) {
  for (std::size_t r = begin; r < end; ++r) {
    if (!service_from_[r]) continue;
    service_from_[r] = 0;
    for (LinkId lid : net_.links_from(net_.roads()[r].id)) {
      const int served = serve_count_[lid.index()];
      if (served == 0) continue;
      serve_count_[lid.index()] = 0;
      LinkQueueState& lq = links_[lid.index()];
      std::vector<VehicleId>& staged = staged_[lid.index()];
      for (int k = 0; k < served; ++k) {
        const VehicleId vid = lq.queue.front();
        lq.queue.pop_front();
        vehicles_[vid.index()].next_turn += 1;
        staged.push_back(vid);
      }
    }
  }
}

void QueueSim::sweep_deliver_and_transit(std::size_t begin, std::size_t end,
                                         double serve_time) {
  for (std::size_t r = begin; r < end; ++r) {
    RoadState& state = roads_[r];
    std::vector<LinkId>& inbound = inbound_order_[r];
    // Idle road: nothing served into it, nothing in flight, nothing queued.
    if (inbound.empty() && state.transit.empty() && road_queued_[r] == 0) continue;
    const net::Road& road = net_.roads()[r];
    if (!inbound.empty()) {
      // Arrival timestamps use the pre-advance tick time, exactly as the
      // serial loop pushed them during service.
      const double arrive = serve_time + road.free_flow_time_s();
      for (LinkId lid : inbound) {
        std::vector<VehicleId>& staged = staged_[lid.index()];
        for (VehicleId vid : staged) state.transit.push_back({arrive, vid});
        staged.clear();
      }
      inbound.clear();
    }
    while (!state.transit.empty() && state.transit.front().arrive_time <= now_) {
      const VehicleId vid = state.transit.front().vehicle;
      state.transit.pop_front();
      if (road.is_exit()) {
        state.occupancy -= 1;
        completions_[r].push_back(vid);
      } else {
        route_vehicle_into_queue(vid, road.id);
      }
    }
    if (road_queued_[r] > 0) {
      for (LinkId lid : net_.links_from(road.id)) {
        for (VehicleId vid : links_[lid.index()].queue) {
          vehicles_[vid.index()].queue_time += config_.step_s;
        }
      }
    }
  }
}

void QueueSim::apply_completions() {
  for (RoadId exit : net_.exit_roads()) {
    std::vector<VehicleId>& staged = completions_[exit.index()];
    for (VehicleId vid : staged) complete_vehicle(vid);
    staged.clear();
  }
}

void QueueSim::sample_watches() {
  for (const Watch& w : watches_) {
    result_.road_series[w.series_index].push(now_,
                                             static_cast<double>(queued_on_road(w.road)));
  }
  result_.in_network_series.push(now_, static_cast<double>(vehicles_in_network()));
}

void QueueSim::step() {
  if (now_ >= next_control_) {
    control_step();
    next_control_ += config_.control_interval_s;
  }
  if (now_ >= next_sample_) {
    sample_watches();
    next_sample_ += config_.sample_interval_s;
  }
  admit_spawns(now_, now_ + config_.step_s);
  arbitrate_service();
  const double serve_time = now_;  // arrival stamps predate the advance
  now_ += config_.step_s;
  // Road-partitioned parallel service sweep. Two passes with a barrier
  // between them: pass 1 touches only from-road state (movement queues,
  // vehicles being served), pass 2 only to-road state (transit FIFO, its own
  // queues' waiting times) — the barrier is what lets a road's work unit
  // drain the staging its upstream roads wrote. With threads == 1 both
  // dispatches degenerate to inline loops.
  const std::size_t road_count = net_.roads().size();
  pool_->parallel_for(road_count,
                      [this](std::size_t b, std::size_t e) { sweep_pop_served(b, e); });
  pool_->parallel_for(road_count, [this, serve_time](std::size_t b, std::size_t e) {
    sweep_deliver_and_transit(b, e, serve_time);
  });
  apply_completions();
}

stats::RunResult& QueueSim::run_until(double until_s) {
  if (finished_) throw std::logic_error("QueueSim::run_until after finish");
  while (now_ < until_s) step();
  return result_;
}

stats::RunResult QueueSim::finish(double duration_s) {
  run_until(duration_s);
  finished_ = true;
  // Close open records so heavy congestion is visible in the metric rather
  // than silently dropped. Closing happens in spawn order: slot recycling
  // permutes vehicle indices, and the metric SampleSets are floating-point
  // order-sensitive.
  std::vector<std::pair<std::uint64_t, VehicleId>> open;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (!vehicles_[i].in_network) continue;
    open.emplace_back(vehicles_[i].spawn_seq,
                      VehicleId(static_cast<VehicleId::value_type>(i)));
  }
  std::sort(open.begin(), open.end());
  for (const auto& [seq, vid] : open) {
    VehicleRecord& v = vehicles_[vid.index()];
    result_.metrics.in_network_at_end += 1;
    result_.metrics.queuing_time_s.add(v.queue_time);
    result_.metrics.travel_time_s.add(now_ - v.entry_time);
    v.in_network = false;
  }
  for (stats::PhaseTrace& trace : result_.phase_traces) trace.finish(now_);
  result_.duration_s = now_;
  return std::move(result_);
}

}  // namespace abp::queuesim
