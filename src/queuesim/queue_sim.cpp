#include "src/queuesim/queue_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace abp::queuesim {
namespace {

// The serve-credit core shared by the staged path (arbitrate_service) and
// the fused serial path (arbitrate_and_serve), so the credit/burst/capacity
// arithmetic that QueueSimThreadInvariance pins equal across the two exists
// exactly once. Replenishes the link's credit (capped at one burst), then
// serves while credit, queue and downstream capacity allow, committing the
// occupancy / queued-count deltas and invoking on_serve(k) for served
// vehicle k = 0, 1, ... — staging bookkeeping in one caller, inline
// pop-and-deliver in the other. Returns the serve count.
template <typename OnServe>
int run_serve_credit(double& credit, std::size_t queue_size, double rate_dt,
                     int& downstream_occupancy, int downstream_cap,
                     int& from_road_queued, int& from_road_occupancy, OnServe&& on_serve) {
  // Service credit replenishes at mu while green; the cap prevents banking
  // service across steps in which the queue was empty.
  const double burst = std::max(1.0, rate_dt);
  credit = std::min(credit + rate_dt, burst);
  const int queued = static_cast<int>(queue_size);
  int served = 0;
  while (credit >= 1.0 && served < queued && downstream_occupancy < downstream_cap) {
    credit -= 1.0;
    from_road_queued -= 1;
    from_road_occupancy -= 1;
    downstream_occupancy += 1;
    on_serve(served);
    served += 1;
  }
  return served;
}

}  // namespace

QueueSim::QueueSim(const net::Network& network, QueueSimConfig config,
                   std::vector<core::ControllerPtr> controllers,
                   traffic::DemandGenerator& demand)
    : net_(network), config_(config), controllers_(std::move(controllers)), demand_(demand) {
  if (!net_.finalized()) throw std::invalid_argument("network must be finalized");
  if (config_.step_s <= 0.0) throw std::invalid_argument("step must be positive");
  if (config_.control_interval_s < config_.step_s) {
    throw std::invalid_argument("control interval must be >= step");
  }
  if (config_.threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (controllers_.size() != net_.intersections().size()) {
    throw std::invalid_argument("need exactly one controller per intersection");
  }
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  roads_.resize(net_.roads().size());
  links_.resize(net_.links().size());
  displayed_.assign(net_.intersections().size(), net::kTransitionPhase);
  entry_buffer_.resize(net_.roads().size());
  road_queued_.assign(net_.roads().size(), 0);
  road_capacity_.reserve(net_.roads().size());
  for (const net::Road& road : net_.roads()) road_capacity_.push_back(road.capacity);
  serve_count_.assign(net_.links().size(), 0);
  service_from_.assign(net_.roads().size(), 0);
  staged_.resize(net_.links().size());
  inbound_order_.resize(net_.roads().size());
  completions_.resize(net_.roads().size());
  result_.phase_traces.resize(net_.intersections().size());
}

void QueueSim::watch_road(RoadId road, std::string series_name) {
  watches_.push_back({road, result_.road_series.size()});
  result_.road_series.emplace_back(std::move(series_name));
}

int QueueSim::link_queue(LinkId link) const {
  return static_cast<int>(links_[link.index()].queue.size());
}

int QueueSim::road_occupancy(RoadId road) const { return roads_[road.index()].occupancy; }

net::PhaseIndex QueueSim::displayed_phase(IntersectionId node) const {
  return displayed_[node.index()];
}

int QueueSim::vehicles_in_network() const { return in_network_count_; }

int QueueSim::queued_on_road(RoadId road) const { return road_queued_[road.index()]; }

void QueueSim::set_road_capacity(RoadId road, int capacity) {
  road_capacity_[road.index()] = std::max(0, capacity);
}

double QueueSim::link_credit(LinkId link) const { return links_[link.index()].credit; }

const core::IntersectionObservation& QueueSim::observe(const net::Intersection& node) {
  core::IntersectionObservation& obs = obs_scratch_;
  obs.time = now_;
  obs.links.clear();
  obs.links.reserve(node.links.size());
  for (LinkId lid : node.links) {
    const net::Link& link = net_.link(lid);
    core::LinkState state;
    state.queue = static_cast<int>(links_[lid.index()].queue.size());
    state.upstream_total = queued_on_road(link.from_road);
    state.upstream_capacity = net_.road(link.from_road).capacity;
    state.downstream_queue =
        net_.road(link.to_road).is_exit() ? 0 : queued_on_road(link.to_road);
    state.downstream_total = roads_[link.to_road.index()].occupancy;
    state.downstream_capacity = net_.road(link.to_road).capacity;
    state.service_rate = link.service_rate;
    obs.links.push_back(state);
  }
  return obs;
}

void QueueSim::control_step() {
  for (const net::Intersection& node : net_.intersections()) {
    // Sharded: decide only owned junctions (their observations read at most
    // mirror state of remote downstream roads, injected before this phase).
    if (masked_junction(node.id.index())) continue;
    const net::PhaseIndex phase = controllers_[node.id.index()]->decide(observe(node));
    if (phase < 0 || phase >= static_cast<int>(node.phases.size())) {
      throw std::logic_error("controller returned an out-of-range phase");
    }
    if (phase != displayed_[node.id.index()]) {
      // A phase change cuts service credit of links that lost green.
      for (LinkId lid : node.links) links_[lid.index()].credit = 0.0;
    }
    displayed_[node.id.index()] = phase;
    result_.phase_traces[node.id.index()].record(now_, phase);
  }
}

void QueueSim::route_vehicle_into_queue(VehicleId vid, RoadId road) {
  VehicleRecord& v = vehicles_[vid.index()];
  if (v.next_turn >= v.route.turns.size()) {
    throw std::logic_error("vehicle ran out of route turns on a non-exit road");
  }
  const net::Turn turn = v.route.turns[v.next_turn];
  const std::optional<LinkId> link = net_.find_link(road, turn);
  if (!link) throw std::logic_error("route commands a missing movement");
  links_[link->index()].queue.push_back(vid);
  road_queued_[road.index()] += 1;
}

void QueueSim::complete_vehicle(VehicleId vid) {
  VehicleRecord& v = vehicles_[vid.index()];
  v.in_network = false;
  in_network_count_ -= 1;
  result_.metrics.completed += 1;
  result_.metrics.queuing_time_s.add(v.queue_time);
  result_.metrics.travel_time_s.add(now_ - v.entry_time);
  free_slots_.push_back(vid.value());
}

VehicleId QueueSim::alloc_vehicle() {
  if (!free_slots_.empty()) {
    const VehicleId vid(free_slots_.back());
    free_slots_.pop_back();
    vehicles_[vid.index()] = VehicleRecord{};
    return vid;
  }
  vehicles_.emplace_back();
  return VehicleId(static_cast<VehicleId::value_type>(vehicles_.size() - 1));
}

void QueueSim::admit_spawns(double from, double to) {
  // Sharded: every worker polls the full demand stream (identical draws keep
  // spawn_seq a global ordinal and the generated count exact in each worker)
  // but only materializes vehicles bound for its own entry roads.
  demand_.poll_into(from, to, spawn_buffer_);
  for (const traffic::SpawnRequest& req : spawn_buffer_) {
    if (masked_road(req.entry.index())) {
      result_.metrics.generated += 1;
      continue;
    }
    const VehicleId vid = alloc_vehicle();
    VehicleRecord& rec = vehicles_[vid.index()];
    rec.route = req.route;
    rec.spawn_seq = result_.metrics.generated;
    rec.entry_time = req.time;
    result_.metrics.generated += 1;
    entry_buffer_[req.entry.index()].push_back(vid);
  }
  // Admit buffered vehicles while their entry road has space.
  std::uint32_t entry_index = 0;
  for (RoadId entry : net_.entry_roads()) {
    const std::uint32_t entry_order = entry_index++;
    if (masked_road(entry.index())) continue;
    auto& buffer = entry_buffer_[entry.index()];
    RoadState& road = roads_[entry.index()];
    const int capacity = road_capacity_[entry.index()];
    while (!buffer.empty() && road.occupancy < capacity) {
      const VehicleId vid = buffer.front();
      buffer.pop_front();
      VehicleRecord& v = vehicles_[vid.index()];
      v.in_network = true;
      in_network_count_ += 1;
      v.entry_time = now_;  // waiting outside the network is not queuing time
      road.occupancy += 1;
      road.transit.push_back({now_ + net_.road(entry).free_flow_time_s(), vid});
      result_.metrics.entered += 1;
    }
    if (!buffer.empty()) {
      result_.metrics.entry_blocked_time_s +=
          static_cast<double>(buffer.size()) * config_.step_s;
      if (shard_ != nullptr) {
        shard_->blocked.push_back(
            {entry_order, static_cast<std::uint32_t>(buffer.size())});
      }
    }
  }
}

void QueueSim::arbitrate_service() {
  for (const net::Intersection& node : net_.intersections()) {
    if (masked_junction(node.id.index())) continue;
    const net::PhaseIndex phase = displayed_[node.id.index()];
    if (phase == net::kTransitionPhase) continue;
    for (LinkId lid : node.phases[static_cast<std::size_t>(phase)].links) {
      const net::Link& link = net_.link(lid);
      LinkQueueState& lq = links_[lid.index()];
      // The serial loop's serve arithmetic (run_serve_credit), with the
      // vehicle pops deferred to the parallel passes: identical comparisons
      // and credit subtractions, so the served counts (and therefore every
      // metric) match bit for bit.
      const int served = run_serve_credit(
          lq.credit, lq.queue.size(), link.service_rate * config_.step_s,
          roads_[link.to_road.index()].occupancy, road_capacity_[link.to_road.index()],
          road_queued_[link.from_road.index()], roads_[link.from_road.index()].occupancy,
          [](int) {});
      if (served > 0) {
        serve_count_[lid.index()] = served;
        service_from_[link.from_road.index()] = 1;
        if (shard_ != nullptr && !shard_->own_road[link.to_road.index()]) {
          // Served into a remote boundary road: the serve-credit arithmetic
          // above already committed the mirror's occupancy deltas; the popped
          // vehicles become transfers (stage_remote_transfers) instead of
          // local transit pushes. Keeping them out of inbound_order_ keeps
          // the masked delivery pass from ever touching the mirror.
          remote_serve_order_.push_back(lid);
        } else {
          inbound_order_[link.to_road.index()].push_back(lid);
        }
      }
    }
  }
}

void QueueSim::sweep_pop_served(std::size_t begin, std::size_t end) {
  for (std::size_t r = begin; r < end; ++r) {
    if (!service_from_[r]) continue;
    service_from_[r] = 0;
    for (LinkId lid : net_.links_from(net_.roads()[r].id)) {
      const int served = serve_count_[lid.index()];
      if (served == 0) continue;
      serve_count_[lid.index()] = 0;
      LinkQueueState& lq = links_[lid.index()];
      std::vector<VehicleId>& staged = staged_[lid.index()];
      for (int k = 0; k < served; ++k) {
        const VehicleId vid = lq.queue.front();
        lq.queue.pop_front();
        vehicles_[vid.index()].next_turn += 1;
        staged.push_back(vid);
      }
    }
  }
}

void QueueSim::stage_remote_transfers(double serve_time) {
  if (shard_ == nullptr || remote_serve_order_.empty()) return;
  // Serve order == the order arbitrate_service recorded the links, so the
  // outbox (and therefore the owner's transit pushes after the
  // canonical-order delivery) matches the monolithic serial push order.
  for (LinkId lid : remote_serve_order_) {
    const net::Link& link = net_.link(lid);
    // Same arrival arithmetic as the local delivery pass: pre-advance tick
    // time plus the destination road's free-flow time.
    const double arrive = serve_time + net_.road(link.to_road).free_flow_time_s();
    std::vector<VehicleId>& staged = staged_[lid.index()];
    for (VehicleId vid : staged) {
      VehicleRecord& v = vehicles_[vid.index()];
      shard::QueueTransfer t;
      t.road = static_cast<std::uint32_t>(link.to_road.index());
      t.spawn_seq = v.spawn_seq;
      t.next_turn = v.next_turn;  // pass 1 already bumped it past this node
      t.arrive_time = arrive;
      t.entry_time = v.entry_time;
      t.queue_time = v.queue_time;
      t.turns = std::move(v.route.turns);
      shard_->queue_outbox.push_back(std::move(t));
      // The vehicle now lives on the owning worker; retire the local record.
      v.in_network = false;
      in_network_count_ -= 1;
      free_slots_.push_back(vid.value());
    }
    staged.clear();
  }
  remote_serve_order_.clear();
}

void QueueSim::ingest_transfer(const shard::QueueTransfer& t) {
  const VehicleId vid = alloc_vehicle();
  VehicleRecord& rec = vehicles_[vid.index()];
  rec.route.turns = t.turns;
  rec.route.entry = RoadId{};  // entry road is only read at admission
  rec.spawn_seq = t.spawn_seq;
  rec.next_turn = static_cast<std::size_t>(t.next_turn);
  rec.entry_time = t.entry_time;
  rec.queue_time = t.queue_time;
  rec.in_network = true;
  in_network_count_ += 1;
  RoadState& state = roads_[t.road];
  state.occupancy += 1;
  state.transit.push_back({t.arrive_time, vid});
}

void QueueSim::set_remote_road_state(RoadId road, int occupancy, int queued) {
  roads_[road.index()].occupancy = occupancy;
  road_queued_[road.index()] = queued;
}

void QueueSim::sweep_deliver_and_transit(std::size_t begin, std::size_t end,
                                         double serve_time) {
  for (std::size_t r = begin; r < end; ++r) {
    // Sharded: remote roads are mirrors (nonzero occupancy/queued counters,
    // no local vehicles); their delivery happens on the owning worker.
    if (masked_road(r)) continue;
    RoadState& state = roads_[r];
    std::vector<LinkId>& inbound = inbound_order_[r];
    // Idle road: nothing served into it, nothing in flight, nothing queued.
    if (inbound.empty() && state.transit.empty() && road_queued_[r] == 0) continue;
    const net::Road& road = net_.roads()[r];
    if (!inbound.empty()) {
      // Arrival timestamps use the pre-advance tick time, exactly as the
      // serial loop pushed them during service.
      const double arrive = serve_time + road.free_flow_time_s();
      for (LinkId lid : inbound) {
        std::vector<VehicleId>& staged = staged_[lid.index()];
        for (VehicleId vid : staged) state.transit.push_back({arrive, vid});
        staged.clear();
      }
      inbound.clear();
    }
    drain_due_transits(r, road);
    if (road_queued_[r] > 0) {
      for (LinkId lid : net_.links_from(road.id)) {
        for (VehicleId vid : links_[lid.index()].queue) {
          vehicles_[vid.index()].queue_time += config_.step_s;
        }
      }
    }
  }
}

void QueueSim::arbitrate_and_serve(double serve_time) {
  // The threads == 1 tick, fused: at one thread the phase split buys nothing
  // — the barrier is a no-op, the per-link staging is pure indirection, and
  // the serve-count / from-road-flag / inbound-order bookkeeping exists only
  // so road-partitioned passes can replay the arbitration order. The serial
  // path is therefore the historical serial service loop itself:
  // run_serve_credit — the one copy of the arithmetic arbitrate_service()
  // also runs, which QueueSimThreadInvariance pins equal across the paths —
  // walked in the same (intersection, phase-link) order, with each served
  // vehicle popped and delivered into the downstream transit FIFO on the
  // spot. Bit-identical to arbitration + staged passes by construction:
  // arbitration never reads the deferred state (a link's serve loop reads
  // its own queue's *size*, the downstream occupancy it updates itself, and
  // its own credit), and in-order inline delivery produces exactly the
  // transit FIFO contents pass 2 rebuilds from inbound_order_.
  for (const net::Intersection& node : net_.intersections()) {
    const net::PhaseIndex phase = displayed_[node.id.index()];
    if (phase == net::kTransitionPhase) continue;
    for (LinkId lid : node.phases[static_cast<std::size_t>(phase)].links) {
      const net::Link& link = net_.link(lid);
      LinkQueueState& lq = links_[lid.index()];
      RoadState& downstream = roads_[link.to_road.index()];
      // Arrival timestamps use the pre-advance tick time, exactly as the
      // staged path stamps them in sweep_deliver_and_transit; the division
      // is deferred until the first vehicle actually serves.
      double arrive = 0.0;
      run_serve_credit(lq.credit, lq.queue.size(), link.service_rate * config_.step_s,
                       downstream.occupancy, road_capacity_[link.to_road.index()],
                       road_queued_[link.from_road.index()],
                       roads_[link.from_road.index()].occupancy, [&](int k) {
                         if (k == 0) {
                           arrive =
                               serve_time + net_.road(link.to_road).free_flow_time_s();
                         }
                         const VehicleId vid = lq.queue.front();
                         lq.queue.pop_front();
                         vehicles_[vid.index()].next_turn += 1;
                         downstream.transit.push_back({arrive, vid});
                       });
    }
  }
}

void QueueSim::drain_due_transits(std::size_t r, const net::Road& road) {
  RoadState& state = roads_[r];
  while (!state.transit.empty() && state.transit.front().arrive_time <= now_) {
    const VehicleId vid = state.transit.front().vehicle;
    state.transit.pop_front();
    if (road.is_exit()) {
      state.occupancy -= 1;
      completions_[r].push_back(vid);
    } else {
      route_vehicle_into_queue(vid, road.id);
    }
  }
}

void QueueSim::apply_completions() {
  std::uint32_t exit_index = 0;
  for (RoadId exit : net_.exit_roads()) {
    const std::uint32_t exit_order = exit_index++;
    std::vector<VehicleId>& staged = completions_[exit.index()];
    for (VehicleId vid : staged) {
      if (shard_ != nullptr) {
        // Journal with the exact values complete_vehicle adds (now_ is
        // already advanced here) so the coordinator's replay is bitwise.
        const VehicleRecord& v = vehicles_[vid.index()];
        shard_->completions.push_back({exit_order, v.queue_time, now_ - v.entry_time});
      }
      complete_vehicle(vid);
    }
    staged.clear();
  }
}

void QueueSim::sample_watches() {
  for (const Watch& w : watches_) {
    result_.road_series[w.series_index].push(now_,
                                             static_cast<double>(queued_on_road(w.road)));
  }
  result_.in_network_series.push(now_, static_cast<double>(vehicles_in_network()));
}

void QueueSim::step_begin() {
  if (now_ >= next_control_) {
    control_step();
    next_control_ += config_.control_interval_s;
  }
  if (now_ >= next_sample_) {
    sample_watches();
    next_sample_ += config_.sample_interval_s;
  }
  admit_spawns(now_, now_ + config_.step_s);
}

void QueueSim::step_service() { arbitrate_service(); }

void QueueSim::step_finish() {
  const double serve_time = now_;  // arrival stamps predate the advance
  now_ += config_.step_s;
  // Road-partitioned parallel service sweep. Two passes with a barrier
  // between them: pass 1 touches only from-road state (movement queues,
  // vehicles being served), pass 2 only to-road state (transit FIFO, its
  // own queues' waiting times) — the barrier is what lets a road's work
  // unit drain the staging its upstream roads wrote.
  const std::size_t road_count = net_.roads().size();
  pool_->parallel_for(road_count,
                      [this](std::size_t b, std::size_t e) { sweep_pop_served(b, e); });
  // Sharded: vehicles served into remote roads leave through the outbox
  // here, between the passes — popped by pass 1, never seen by pass 2.
  stage_remote_transfers(serve_time);
  pool_->parallel_for(road_count, [this, serve_time](std::size_t b, std::size_t e) {
    sweep_deliver_and_transit(b, e, serve_time);
  });
  apply_completions();
}

void QueueSim::step() {
  step_begin();
  if (config_.threads == 1 && shard_ == nullptr) {
    // Serial path: the fused sweep — arbitration serves inline (no staging,
    // no bookkeeping, no barrier), then due transits in road order and one
    // flat queue-time pass. Bit-identical to the staged path below;
    // QueueSimThreadInvariance pins the two against each other at
    // threads {1, 2, 8}.
    arbitrate_and_serve(now_);
    now_ += config_.step_s;
    // Completions are staged rather than applied inline, sharing
    // apply_completions() with the threaded path; road order here ==
    // exit-road order there, so the metric accumulation order is identical
    // anyway.
    for (const net::Road& road : net_.roads()) {
      drain_due_transits(road.id.index(), road);
    }
    // Queue-time accumulation as one contiguous pass over the movement
    // queues instead of the road -> links_from indirection of the
    // road-partitioned pass (which needs road-owned writes). Every queued
    // vehicle's accumulator is touched exactly once per tick, so iteration
    // order cannot change any sum: bit-identical, and measurably cheaper —
    // newly-routed vehicles above are already queued and count, exactly as
    // in the per-road pass.
    for (const LinkQueueState& lq : links_) {
      for (VehicleId vid : lq.queue) {
        vehicles_[vid.index()].queue_time += config_.step_s;
      }
    }
    apply_completions();
    return;
  }
  step_service();
  step_finish();
}

stats::RunResult& QueueSim::run_until(double until_s) {
  if (finished_) throw std::logic_error("QueueSim::run_until after finish");
  while (now_ < until_s) step();
  return result_;
}

stats::RunResult QueueSim::finish(double duration_s) {
  run_until(duration_s);
  finished_ = true;
  // Close open records so heavy congestion is visible in the metric rather
  // than silently dropped. Closing happens in spawn order: slot recycling
  // permutes vehicle indices, and the metric SampleSets are floating-point
  // order-sensitive.
  std::vector<std::pair<std::uint64_t, VehicleId>> open;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (!vehicles_[i].in_network) continue;
    open.emplace_back(vehicles_[i].spawn_seq,
                      VehicleId(static_cast<VehicleId::value_type>(i)));
  }
  std::sort(open.begin(), open.end());
  for (const auto& [seq, vid] : open) {
    VehicleRecord& v = vehicles_[vid.index()];
    result_.metrics.in_network_at_end += 1;
    result_.metrics.queuing_time_s.add(v.queue_time);
    result_.metrics.travel_time_s.add(now_ - v.entry_time);
    if (shard_ != nullptr) shard_->opens.push_back({seq, v.queue_time, now_ - v.entry_time});
    v.in_network = false;
  }
  for (stats::PhaseTrace& trace : result_.phase_traces) trace.finish(now_);
  result_.duration_s = now_;
  return std::move(result_);
}

}  // namespace abp::queuesim
