// Discrete-time queueing-network simulator: the paper's Section II model,
// implemented exactly.
//
// Every road N_i is a queueing node with capacity W_i. Vehicles arriving on a
// road drive for its free-flow time (modeled as a constant transfer delay) and
// then join the dedicated per-movement queue q_i^{i'} matching the next turn
// of their route. While a movement's link is green, it serves its queue at
// rate mu_i^{i'} (Eq. 2's S term), bounded by the downstream road's remaining
// capacity. Served vehicles transfer to the downstream road; vehicles served
// into an exit road leave the network when they reach its far end.
//
// This simulator is the formal model the controllers were designed against:
// it is used by the property tests (work conservation, stability, capacity
// safety) and by the model-level cross-check bench; the microscopic simulator
// (src/microsim) is the SUMO substitute used for the headline experiments.
//
// --- Parallel tick architecture (see docs/PERFORMANCE.md) ---
// Each tick is split into a short sequential phase and a road-partitioned
// parallel service sweep, mirroring MicroSim. The sequential phase runs the
// controllers, admits demand (batched: one DemandGenerator::poll_into per
// tick into a reused buffer) and *arbitrates* service: the exact credit /
// downstream-capacity arithmetic of the serial loop, in the serial
// (intersection, phase-link) order, but recording only how many vehicles
// each movement serves — the cross-road couplings (a serve pops upstream
// state and reserves downstream capacity) all live here. The per-vehicle
// work then runs on the ThreadPool in two road-partitioned passes: pass 1
// pops each road's served vehicles out of its own movement queues into
// per-link staging, and pass 2 (after a barrier, so every upstream road has
// staged) delivers staged vehicles into the road's transit FIFO in the
// recorded serial order, processes due transits, and accumulates queue time
// over the road's own queues. Exit completions are staged per road and
// applied sequentially in exit-road (= road id) order, keeping the
// floating-point metric accumulation order thread-count independent. The
// sweep consumes no randomness (all stochastic draws — arrival times, route
// sampling — happen in the sequential admission phase on per-entry-road
// streams), so fixed-seed metrics are bit-identical at every
// QueueSimConfig::threads value, and identical to the serial loop.
#pragma once

#include <optional>
#include <vector>

#include <memory>

#include "src/core/controller.hpp"
#include "src/net/network.hpp"
#include "src/shard/sim_hooks.hpp"
#include "src/stats/run_result.hpp"
#include "src/traffic/demand.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vec_queue.hpp"

namespace abp::queuesim {

struct QueueSimConfig {
  // Mini-slot Delta-t: one service/arrival update per step.
  double step_s = 1.0;
  // Controllers are invoked every control_interval_s (>= step_s).
  double control_interval_s = 1.0;
  // Interval between samples pushed to registered road watches.
  double sample_interval_s = 10.0;
  // Total parallelism of the per-road service sweep (1 = serial, no worker
  // threads). Fixed-seed metrics are bit-identical at every value.
  int threads = 1;
};

class QueueSim {
 public:
  // All referees must outlive the simulator. `controllers` holds one
  // controller per intersection, indexed by IntersectionId::index().
  QueueSim(const net::Network& network, QueueSimConfig config,
           std::vector<core::ControllerPtr> controllers, traffic::DemandGenerator& demand);

  // Registers a queue-length watch on a road: the series samples the total
  // number of vehicles queued at the stop line of `road` (q_i of Eq. 1).
  void watch_road(RoadId road, std::string series_name);

  // Advances the simulation to `until_s` and returns the result. May be
  // called repeatedly with increasing horizons.
  stats::RunResult& run_until(double until_s);

  // Runs from the current time to `duration_s`, closes all per-vehicle
  // records, and returns the final result.
  stats::RunResult finish(double duration_s);

  [[nodiscard]] double now() const noexcept { return now_; }

  // Capacity-override hook for incident injection (sim adapter): caps
  // admission and service *into* the road from now on. Vehicles already on
  // the road drain normally; occupancy above the new value blocks inflow
  // until it has drained, so occupancy never exceeds the design W.
  // Observations keep reporting the design capacity — controllers know the
  // road geometry, not the incident. Called only between ticks, from the
  // sequential phase.
  void set_road_capacity(RoadId road, int capacity);
  [[nodiscard]] int road_capacity(RoadId road) const {
    return road_capacity_[road.index()];
  }

  // Vehicles currently queued for a movement (test hook).
  [[nodiscard]] int link_queue(LinkId link) const;
  // All vehicles currently on a road: in transit + queued (test hook).
  [[nodiscard]] int road_occupancy(RoadId road) const;
  // Phase currently displayed at a junction (test hook).
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const;
  // Total vehicles inside the network right now (test hook).
  [[nodiscard]] int vehicles_in_network() const;
  // Fractional service credit currently banked by a movement (test hook for
  // the burst clamp and the green-loss credit cut).
  [[nodiscard]] double link_credit(LinkId link) const;
  // Vehicles queued at the stop line of `road`, over all its movements
  // (q_i of Eq. 1; O(1), maintained incrementally). Also a test hook.
  [[nodiscard]] int queued_on_road(RoadId road) const;

  // --- Sharding surface (src/shard; docs/SHARDING.md) ---
  // Installs the ownership masks and per-tick event staging. Must be called
  // before the first step; null (the default) is the monolithic path. While
  // hooks are installed, control/arbitration run at owned junctions only,
  // admission and the delivery pass are masked to owned roads, serves into
  // remote roads extract the vehicle into hooks->queue_outbox, and the tick
  // always takes the staged (non-fused) path so arbitration and delivery are
  // separable phases.
  void set_shard_hooks(shard::SimShardHooks* hooks) { shard_ = hooks; }
  // Phase split of one tick: begin = control/sample/admission, service =
  // service arbitration (the cross-road coupling), finish = time advance +
  // the two road-partitioned passes + completions. step() is begin; service;
  // finish — except at threads == 1 without hooks, where service+finish fuse.
  void step_begin();
  void step_service();
  void step_finish();
  // Materializes a vehicle the neighbor served onto an owned boundary road:
  // joins the road's transit FIFO with the grantor-stamped arrival time. A
  // boundary road's transit receives pushes from exactly one grantor, so
  // append order is FIFO order, as in the monolithic run.
  void ingest_transfer(const shard::QueueTransfer& t);
  // Mirror-state injection for remote boundary roads (grantor side):
  // occupancy feeds the serve-credit downstream check, queued feeds the
  // controllers' downstream_queue observations.
  void set_remote_road_state(RoadId road, int occupancy, int queued);

 private:
  struct VehicleRecord {
    traffic::Route route;
    // Global spawn ordinal. Slot recycling permutes vehicle indices, so
    // order-sensitive end-of-run bookkeeping sorts by this instead.
    std::uint64_t spawn_seq = 0;
    std::size_t next_turn = 0;
    double entry_time = 0.0;
    double queue_time = 0.0;
    bool in_network = false;
  };

  struct TransitEntry {
    double arrive_time = 0.0;
    VehicleId vehicle;
  };

  struct RoadState {
    // Vehicles driving toward the stop line (constant free-flow delay), FIFO.
    VecQueue<TransitEntry> transit;
    // Occupancy counter: transit + all link queues + junction hand-off slots.
    int occupancy = 0;
  };

  struct LinkQueueState {
    VecQueue<VehicleId> queue;
    // Fractional service credit; replenished while green, capped at one burst.
    double credit = 0.0;
  };

  struct Watch {
    RoadId road;
    std::size_t series_index;
  };

  void step();
  void control_step();
  // Allocates a vehicle slot, reusing a completed vehicle's slot when one is
  // free so storage stays O(peak active + waiting), not O(history).
  [[nodiscard]] VehicleId alloc_vehicle();
  void admit_spawns(double from, double to);
  // Sequential service arbitration: the serial loop's credit replenishment,
  // burst clamp and downstream-capacity checks, in (intersection, phase-link)
  // order, committing occupancy / queued-count deltas and recording per-link
  // serve counts for the parallel passes. Touches cross-road state, so it
  // stays single-threaded — the queue-sim analog of MicroSim's junction phase.
  void arbitrate_service();
  // Parallel pass 1 (partition by road): pop each road's served vehicles out
  // of its own movement queues into per-link staging, bumping their routes.
  void sweep_pop_served(std::size_t begin, std::size_t end);
  // Parallel pass 2 (partition by road): deliver staged vehicles into the
  // road's transit FIFO (serial arrival order), process transits that are
  // due, stage exit completions, and accumulate queue time. `serve_time` is
  // the pre-advance tick time (arrival timestamps match the serial loop).
  void sweep_deliver_and_transit(std::size_t begin, std::size_t end, double serve_time);
  // Shared by pass 2 and the fused serial path: pop a road's due transits,
  // routing arrivals into its own movement queues and staging exit
  // completions for apply_completions().
  void drain_due_transits(std::size_t r, const net::Road& road);
  // The threads == 1 tick's service phase, fused: the historical serial
  // loop — arbitrate_service()'s exact credit arithmetic with each served
  // vehicle popped and delivered inline (no staging, no bookkeeping, no
  // barrier). Bit-identical to arbitration + the two staged passes; recovers
  // the phase split's serial-only overhead.
  void arbitrate_and_serve(double serve_time);
  // Applies the completions staged by pass 2, in exit-road (road id) order.
  void apply_completions();
  void sample_watches();
  void route_vehicle_into_queue(VehicleId vid, RoadId road);
  void complete_vehicle(VehicleId vid);
  // Drains the staging of links that served into remote roads this tick into
  // hooks->queue_outbox, in the recorded serve order — the queue-sim analog
  // of MicroSim's transfer extraction. Runs sequentially between the passes.
  void stage_remote_transfers(double serve_time);
  // Shard masks: true when hooks are installed and the entity is remote.
  [[nodiscard]] bool masked_road(std::size_t r) const {
    return shard_ != nullptr && !shard_->own_road[r];
  }
  [[nodiscard]] bool masked_junction(std::size_t j) const {
    return shard_ != nullptr && !shard_->own_junction[j];
  }
  // Fills and returns the reusable observation buffer (valid until the next
  // observe() call); avoids re-allocating the link array per decision.
  [[nodiscard]] const core::IntersectionObservation& observe(const net::Intersection& node);

  const net::Network& net_;
  QueueSimConfig config_;
  std::vector<core::ControllerPtr> controllers_;
  traffic::DemandGenerator& demand_;
  // Sweep-phase worker pool, sized config_.threads (inline when 1).
  std::unique_ptr<ThreadPool> pool_;

  double now_ = 0.0;
  double next_control_ = 0.0;
  double next_sample_ = 0.0;

  std::vector<RoadState> roads_;
  std::vector<LinkQueueState> links_;
  std::vector<net::PhaseIndex> displayed_;  // per intersection
  std::vector<VehicleRecord> vehicles_;
  // Slots of completed vehicles available for reuse.
  std::vector<VehicleId::value_type> free_slots_;
  // Vehicles inside the network, maintained incrementally.
  int in_network_count_ = 0;
  // Vehicles queued at the stop line of each road (sum over its movement
  // queues), maintained incrementally so observe() is O(1) per reading.
  std::vector<int> road_queued_;
  // Effective inflow capacity per road: the design W from the network,
  // overridden by set_road_capacity() during incidents. Admission and the
  // serve-credit downstream check read this; observations read the design
  // capacity from net_.
  std::vector<int> road_capacity_;
  // Spawns waiting for space on their (full) entry road, FIFO per road.
  std::vector<VecQueue<VehicleId>> entry_buffer_;
  // Reused per-tick spawn buffer filled by DemandGenerator::poll_into.
  std::vector<traffic::SpawnRequest> spawn_buffer_;

  // --- Per-tick staging between arbitration and the parallel passes ---
  // Vehicles each link serves this tick; written by arbitrate_service(),
  // consumed and zeroed by pass 1 (every serving link is visited via its
  // from_road's work unit, so no separate clear is needed).
  std::vector<int> serve_count_;
  // Roads with at least one serving outgoing link this tick; lets pass 1
  // skip the per-link scan on the (common) roads that serve nothing.
  // Written by arbitrate_service(), consumed and cleared by pass 1.
  std::vector<char> service_from_;
  // Served vehicles popped by pass 1, keyed by link; a link's staging is
  // written only by its from_road's work unit and drained (after the
  // barrier) only by its to_road's, so the passes never race.
  std::vector<std::vector<VehicleId>> staged_;
  // Links that served into each road this tick, in the serial serve order;
  // pass 2 drains staging in exactly this order so the downstream transit
  // FIFO matches the serial loop's push order bit for bit.
  std::vector<std::vector<LinkId>> inbound_order_;
  // Exit completions staged by pass 2 (FIFO per road), applied sequentially
  // by apply_completions(): metric accumulation is floating-point
  // order-sensitive and mutates shared counters.
  std::vector<std::vector<VehicleId>> completions_;

  std::vector<Watch> watches_;
  // Reused by observe() so the per-decision link array is allocated once.
  core::IntersectionObservation obs_scratch_;
  stats::RunResult result_;
  bool finished_ = false;
  // Sharding masks + event staging; null in a monolithic run.
  shard::SimShardHooks* shard_ = nullptr;
  // Links that served into *remote* roads this tick, in serve order — the
  // sharded counterpart of inbound_order_, drained by stage_remote_transfers.
  std::vector<LinkId> remote_serve_order_;
};

}  // namespace abp::queuesim
