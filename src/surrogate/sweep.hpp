// Surrogate sweep driver: wide config grids on the calibrated queue backend,
// micro-sim spot-checks at the frontier, per-metric error bars.
//
// A paper-grade sweep evaluates hundreds of (controller, pattern, period)
// points, each with R replications on the micro backend — the cost that
// caps experiment throughput. The surrogate protocol replaces it with:
//
//   1. one calibrated queue run per grid point (the queue backend is
//      deterministic per seed; the surrogate's error is *bias* against the
//      micro sim, not replication noise, so replicating it buys nothing);
//   2. micro spot-checks where they matter: the best-k points by surrogate
//      ranking (the frontier a sweep exists to find) plus a deterministic
//      stratified sample across the rest of the ranking (so the error bars
//      cover the whole quality range, not just the frontier);
//   3. per-metric relative-error bars over the spot-checked points
//      (Student-t, like every CI in this repo), and a trust flag on any
//      point whose surrogate error exceeds the threshold.
//
// Determinism: the grid enumerates in a fixed order, surrogate runs are
// ExperimentRunner batches (bit-identical at every jobs count), the ranking
// tie-breaks on enumeration index, and the stratified sample draws from
// counter-based StreamRng streams keyed on (seed, stratum) — so the whole
// report, spot-check selection included, is a pure function of
// (base config, profile, axes, options). Pinned by surrogate_pipeline_test.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/factory.hpp"
#include "src/scenario/scenario_config.hpp"
#include "src/surrogate/calibration_profile.hpp"
#include "src/surrogate/metric_vector.hpp"
#include "src/traffic/patterns.hpp"

namespace abp::surrogate {

// Seed salt of the stratified spot-check sample's RNG streams: disjoint from
// the demand (config.seed), micro (kMicroSeedSalt) and fault (kFaultSeedSalt)
// stream families.
inline constexpr std::uint64_t kSpotSeedSalt = 0x5707ULL;

// The sweep's axes. `periods_s` drives the slotted BP controllers'
// fixed_slot.period_s and the classical controller's green duration;
// UTIL-BP has no period knob, so it is crossed with the first period only
// (identical runs would otherwise pad the grid).
struct SweepAxes {
  std::vector<core::ControllerType> controllers;
  std::vector<traffic::PatternKind> patterns;
  std::vector<double> periods_s;
};

// One grid point's identity.
struct SweepPoint {
  core::ControllerType controller = core::ControllerType::UtilBp;
  traffic::PatternKind pattern = traffic::PatternKind::I;
  double period_s = 0.0;
};

// The fixed enumeration order of a grid (controller-major, then pattern,
// then period). Exposed so benches/tests can size a sweep before running it.
[[nodiscard]] std::vector<SweepPoint> axis_points(const SweepAxes& axes);

// Writes one grid point into a config: controller type, demand pattern, and
// the period into whichever knob the controller consumes (fixed_slot period
// for the slotted BP policies, green duration for FIXED-TIME; UTIL-BP has no
// period knob). Exposed so the micro-only baseline arm of
// bench_surrogate_sweep evaluates exactly the sweep's configs.
void apply_sweep_point(scenario::ScenarioConfig& config, const SweepPoint& point);

struct SweepOptions {
  // Run-level parallelism for the surrogate batch and the spot-check batch.
  int jobs = 1;
  bool allow_oversubscribe = false;
  // Spot-check policy: the `best_k` top-ranked points, plus one point from
  // each of ceil(sample_fraction * n) equal strata of the remaining ranking.
  int best_k = 4;
  double sample_fraction = 0.05;
  // Micro replications per spot check (Student-t CIs need >= 2).
  int spot_replications = 3;
  // A point is flagged untrusted when any metric's relative surrogate error
  // exceeds this.
  double trust_threshold = 0.2;
};

// The deterministic spot-check selection: `ranking` is the point indices
// sorted best-first; returns the chosen indices in ascending index order.
// Pure function of (ranking, options, seed) — exposed for the determinism
// tests and reused verbatim by surrogate_sweep().
[[nodiscard]] std::vector<std::size_t> spot_check_selection(
    const std::vector<std::size_t>& ranking, const SweepOptions& options,
    std::uint64_t seed);

// One spot-checked point's micro-vs-surrogate comparison.
struct SpotCheck {
  MetricVector micro_mean{};
  // 95% Student-t half-width of the micro mean (spot_replications - 1 df).
  MetricVector micro_ci95_halfwidth{};
  MetricVector relative_error{};
  bool trusted = true;
};

struct SweepRow {
  SweepPoint point;
  // Calibrated queue-backend metrics for this point.
  MetricVector surrogate{};
  // Position in the surrogate ranking (0 = best avg queuing time).
  int rank = 0;
  bool spot_checked = false;
  SpotCheck spot;
};

// Per-metric surrogate error bar over the spot-checked points.
struct MetricErrorBar {
  std::string metric;
  int samples = 0;
  double mean_relative_error = 0.0;
  // 95% Student-t half-width of the mean relative error.
  double ci95_halfwidth = 0.0;
  double max_relative_error = 0.0;
};

struct SweepReport {
  std::vector<SweepRow> rows;  // axis_points() order
  std::array<MetricErrorBar, kMetricCount> error_bars;
  int spot_checks = 0;
  // Points whose surrogate error exceeded the trust threshold.
  int flagged = 0;
  CalibrationProfile profile;
};

// Runs the sweep: every grid point on the calibrated queue backend, spot
// checks on the micro backend, error bars over the comparisons. `base`
// provides everything the axes don't (grid, seed, duration, demand scale...).
[[nodiscard]] SweepReport surrogate_sweep(const scenario::ScenarioConfig& base,
                                          const CalibrationProfile& profile,
                                          const SweepAxes& axes,
                                          const SweepOptions& options = {});

// Canonical JSON form of a report (byte-stable; determinism tests compare
// these strings across jobs counts).
[[nodiscard]] std::string dump_report(const SweepReport& report);

}  // namespace abp::surrogate
