#include "src/surrogate/calibrator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "src/exp/experiment_runner.hpp"
#include "src/surrogate/metric_vector.hpp"

namespace abp::surrogate {
namespace {

MetricVector mean_metrics(const std::vector<stats::RunResult>& results) {
  MetricVector mean{};
  for (const stats::RunResult& r : results) {
    const MetricVector m = extract_metrics(r);
    for (std::size_t i = 0; i < kMetricCount; ++i) mean[i] += m[i];
  }
  for (double& v : mean) v /= static_cast<double>(results.size());
  return mean;
}

double objective(const MetricVector& candidate, const MetricVector& target) {
  double sse = 0.0;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const double denom = std::max(std::abs(target[i]), kRelativeErrorFloor);
    const double r = (candidate[i] - target[i]) / denom;
    sse += r * r;
  }
  return sse;
}

}  // namespace

CalibrationProfile calibrate(const scenario::ScenarioConfig& base,
                             const CalibrationOptions& options) {
  if (options.replications < 1) {
    throw std::invalid_argument("calibration replications must be >= 1");
  }
  if (options.passes < 1) throw std::invalid_argument("calibration passes must be >= 1");
  if (!(options.initial_step > 0.0)) {
    throw std::invalid_argument("calibration initial_step must be > 0");
  }
  if (!(options.min_scale > 0.0) || !(options.max_scale >= options.min_scale)) {
    throw std::invalid_argument("calibration scale bounds must satisfy 0 < min <= max");
  }

  scenario::ScenarioConfig family = base;
  if (options.duration_s > 0.0) family.duration_s = options.duration_s;
  family.surrogate = scenario::SurrogateConfig{};

  exp::BatchOptions batch;
  batch.jobs = options.jobs;
  batch.allow_oversubscribe = options.allow_oversubscribe;
  exp::ExperimentRunner runner(batch);

  // Fit targets: R micro replications of the family, averaged.
  scenario::ScenarioConfig micro = family;
  micro.simulator = scenario::SimulatorKind::Micro;
  const MetricVector target =
      mean_metrics(runner.run(exp::replication_configs(micro, options.replications)));

  scenario::ScenarioConfig queue = family;
  queue.simulator = scenario::SimulatorKind::Queue;
  queue.surrogate.enabled = true;

  int evaluations = 0;
  // Candidates repeat across passes once steps shrink; cache on the exact
  // triple so a revisit costs nothing (and cannot re-randomize anything).
  std::map<std::tuple<double, double, double>, double> cache;
  const auto score = [&](double service, double transit, double capacity) {
    const auto key = std::make_tuple(service, transit, capacity);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
    scenario::ScenarioConfig candidate = queue;
    candidate.surrogate.service_scale = service;
    candidate.surrogate.transit_scale = transit;
    candidate.surrogate.capacity_scale = capacity;
    const double sse = objective(
        mean_metrics(
            runner.run(exp::replication_configs(candidate, options.replications))),
        target);
    ++evaluations;
    cache.emplace(key, sse);
    return sse;
  };

  const auto clamp = [&](double v) {
    return std::clamp(v, options.min_scale, options.max_scale);
  };

  double scales[3] = {1.0, 1.0, 1.0};
  double best = score(scales[0], scales[1], scales[2]);
  double step = options.initial_step;
  for (int pass = 0; pass < options.passes; ++pass, step *= 0.5) {
    for (int c = 0; c < 3; ++c) {
      // Fixed trial order (minus, then plus); strictly-better moves only, so
      // ties keep the incumbent and the walk is deterministic.
      for (const double delta : {-step, step}) {
        const double moved = clamp(scales[c] + delta);
        if (moved == scales[c]) continue;
        double trial[3] = {scales[0], scales[1], scales[2]};
        trial[c] = moved;
        const double sse = score(trial[0], trial[1], trial[2]);
        if (sse < best) {
          best = sse;
          scales[c] = moved;
        }
      }
    }
  }

  CalibrationProfile profile;
  profile.name = options.profile_name.empty()
                     ? (family.name.empty() ? "fit" : family.name + "-fit")
                     : options.profile_name;
  profile.scenario = family.name;
  profile.service_scale = scales[0];
  profile.transit_scale = scales[1];
  profile.capacity_scale = scales[2];
  profile.objective = best;
  profile.evaluations = evaluations;
  profile.replications = options.replications;
  profile.duration_s = family.duration_s;
  profile.seed = family.seed;
  return profile;
}

}  // namespace abp::surrogate
