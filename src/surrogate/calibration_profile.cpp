#include "src/surrogate/calibration_profile.hpp"

#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>

#include "src/util/json.hpp"

namespace abp::surrogate {
namespace {

// Document format version of the profile file itself (independent of the
// scenario schema version).
constexpr int kProfileVersion = 1;

// Member order of the canonical dump; also the unknown-key whitelist.
constexpr const char* kProfileKeys[] = {
    "version",       "name",        "scenario",     "service_scale",
    "transit_scale", "capacity_scale", "objective", "evaluations",
    "replications",  "duration_s",  "seed"};

[[noreturn]] void fail(const std::string& path, const std::string& problem) {
  throw std::invalid_argument(path + ": " + problem);
}

double read_double(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  try {
    return v.as_double();
  } catch (const std::out_of_range&) {
    fail(path, "number out of double range");
  }
}

int read_int(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  if (!v.is_integer_token()) fail(path, "must be an integer");
  const std::int64_t n = v.as_int64();
  if (n < std::numeric_limits<int>::min() || n > std::numeric_limits<int>::max()) {
    fail(path, "integer out of range");
  }
  return static_cast<int>(n);
}

std::uint64_t read_u64(const json::Value& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, std::string("expected a number, got ") + v.type_name());
  }
  if (!v.is_integer_token() || v.number_token()[0] == '-') {
    fail(path, "must be a non-negative integer");
  }
  return v.as_uint64();
}

std::string read_string(const json::Value& v, const std::string& path) {
  if (!v.is_string()) {
    fail(path, std::string("expected a string, got ") + v.type_name());
  }
  return v.as_string();
}

}  // namespace

std::string dump_profile(const CalibrationProfile& profile) {
  json::Value doc = json::Value::object();
  doc.set("version", json::Value::number(kProfileVersion));
  doc.set("name", json::Value::string(profile.name));
  doc.set("scenario", json::Value::string(profile.scenario));
  doc.set("service_scale", json::Value::number(profile.service_scale));
  doc.set("transit_scale", json::Value::number(profile.transit_scale));
  doc.set("capacity_scale", json::Value::number(profile.capacity_scale));
  doc.set("objective", json::Value::number(profile.objective));
  doc.set("evaluations", json::Value::number(profile.evaluations));
  doc.set("replications", json::Value::number(profile.replications));
  doc.set("duration_s", json::Value::number(profile.duration_s));
  doc.set("seed", json::Value::number(profile.seed));
  return json::dump(doc);
}

CalibrationProfile load_profile(std::string_view json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) {
    fail("$", std::string("expected an object, got ") + doc.type_name());
  }
  for (const json::Member& m : doc.members()) {
    bool known = false;
    for (const char* k : std::span<const char* const>(kProfileKeys)) {
      if (m.first == k) {
        known = true;
        break;
      }
    }
    if (!known) fail(m.first, "unknown key");
  }
  const json::Value* version = doc.find("version");
  if (version == nullptr) fail("version", "required field is missing");
  if (const int v = read_int(*version, "version"); v != kProfileVersion) {
    fail("version", "unsupported profile version " + std::to_string(v) +
                        " (this build reads version " +
                        std::to_string(kProfileVersion) + ")");
  }

  CalibrationProfile p;
  if (const auto* f = doc.find("name")) p.name = read_string(*f, "name");
  if (const auto* f = doc.find("scenario")) p.scenario = read_string(*f, "scenario");
  if (const auto* f = doc.find("service_scale")) {
    p.service_scale = read_double(*f, "service_scale");
  }
  if (const auto* f = doc.find("transit_scale")) {
    p.transit_scale = read_double(*f, "transit_scale");
  }
  if (const auto* f = doc.find("capacity_scale")) {
    p.capacity_scale = read_double(*f, "capacity_scale");
  }
  if (const auto* f = doc.find("objective")) p.objective = read_double(*f, "objective");
  if (const auto* f = doc.find("evaluations")) {
    p.evaluations = read_int(*f, "evaluations");
  }
  if (const auto* f = doc.find("replications")) {
    p.replications = read_int(*f, "replications");
  }
  if (const auto* f = doc.find("duration_s")) {
    p.duration_s = read_double(*f, "duration_s");
  }
  if (const auto* f = doc.find("seed")) p.seed = read_u64(*f, "seed");

  if (!(p.service_scale > 0.0)) fail("service_scale", "must be > 0");
  if (!(p.transit_scale > 0.0)) fail("transit_scale", "must be > 0");
  if (!(p.capacity_scale > 0.0)) fail("capacity_scale", "must be > 0");
  if (p.evaluations < 0) fail("evaluations", "must be >= 0");
  if (p.replications < 0) fail("replications", "must be >= 0");
  if (p.duration_s < 0.0) fail("duration_s", "must be >= 0");
  return p;
}

CalibrationProfile load_profile_file(const std::string& file_path) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open profile file: " + file_path);
  std::ostringstream text;
  text << in.rdbuf();
  return load_profile(text.str());
}

void apply_profile(const CalibrationProfile& profile,
                   scenario::ScenarioConfig& config) {
  config.surrogate.enabled = true;
  config.surrogate.service_scale = profile.service_scale;
  config.surrogate.transit_scale = profile.transit_scale;
  config.surrogate.capacity_scale = profile.capacity_scale;
  config.surrogate.profile = profile.name;
}

}  // namespace abp::surrogate
