// CalibrationProfile: the serializable result of fitting the queue backend
// to the micro backend for one scenario family (src/surrogate/calibrator.hpp).
//
// A profile is three multiplicative scales over the grid's uniform queue-sim
// parameters — junction service rate, road transit time, road capacity —
// plus fit provenance (what it was fitted on, with how many paired
// replications, and the residual objective at the optimum). Applying a
// profile to a ScenarioConfig just fills its `surrogate` section; the scales
// take effect only when the run selects the queue backend
// (sim::effective_grid), so a profile attached to a scenario never perturbs
// micro-sim runs or their golden pins.
//
// JSON round-trip discipline matches scenario_io: canonical member order,
// unknown keys rejected with the offending dotted path, and dump(load(dump))
// is byte-identical (json::dump's shortest-round-trip doubles make the dump
// a fixed point).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/scenario/scenario_config.hpp"

namespace abp::surrogate {

struct CalibrationProfile {
  // Profile identity (referenced by ScenarioConfig::surrogate.profile).
  std::string name;
  // Name of the scenario family the fit ran on (ScenarioConfig::name; may be
  // empty for programmatic configs).
  std::string scenario;

  // The fitted scales (see scenario::SurrogateConfig for their semantics).
  double service_scale = 1.0;
  double transit_scale = 1.0;
  double capacity_scale = 1.0;

  // Fit provenance: weighted relative SSE at the optimum, candidate
  // evaluations spent, paired replications per evaluation, the calibration
  // horizon and the base seed of the replication pairs.
  double objective = 0.0;
  int evaluations = 0;
  int replications = 0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
};

// Canonical JSON form (byte-stable: dump(load(dump)) == dump).
[[nodiscard]] std::string dump_profile(const CalibrationProfile& profile);

// Parses and validates a profile document. Throws std::invalid_argument with
// the offending field's dotted path on unknown keys, type mismatches or
// out-of-range scales.
[[nodiscard]] CalibrationProfile load_profile(std::string_view json_text);
[[nodiscard]] CalibrationProfile load_profile_file(const std::string& file_path);

// Writes the profile's scales (and name) into config.surrogate and enables
// it. The config's simulator choice is untouched — callers pick the backend.
void apply_profile(const CalibrationProfile& profile, scenario::ScenarioConfig& config);

}  // namespace abp::surrogate
