#include "src/surrogate/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/exp/experiment_runner.hpp"
#include "src/stats/student_t.hpp"
#include "src/util/accumulator.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"

namespace abp::surrogate {
namespace {

// Does the controller consume the period axis? UTIL-BP decides per control
// interval from the live utilization signal; it has no cycle/slot knob.
bool uses_period(core::ControllerType type) {
  return type != core::ControllerType::UtilBp;
}

MetricVector mean_metrics(const std::vector<stats::RunResult>& results) {
  MetricVector mean{};
  for (const stats::RunResult& r : results) {
    const MetricVector m = extract_metrics(r);
    for (std::size_t i = 0; i < kMetricCount; ++i) mean[i] += m[i];
  }
  for (double& v : mean) v /= static_cast<double>(results.size());
  return mean;
}

}  // namespace

void apply_sweep_point(scenario::ScenarioConfig& config, const SweepPoint& point) {
  config.controller.type = point.controller;
  config.demand.pattern = point.pattern;
  switch (point.controller) {
    case core::ControllerType::CapBp:
    case core::ControllerType::OriginalBp:
      config.controller.fixed_slot.period_s = point.period_s;
      break;
    case core::ControllerType::FixedTime:
      config.controller.fixed_time.green_duration_s = point.period_s;
      break;
    case core::ControllerType::UtilBp:
      break;
  }
}

std::vector<SweepPoint> axis_points(const SweepAxes& axes) {
  std::vector<SweepPoint> points;
  for (const core::ControllerType controller : axes.controllers) {
    const std::size_t period_count =
        uses_period(controller) ? axes.periods_s.size() : std::min<std::size_t>(
                                                              1, axes.periods_s.size());
    for (const traffic::PatternKind pattern : axes.patterns) {
      for (std::size_t p = 0; p < period_count; ++p) {
        points.push_back({controller, pattern, axes.periods_s[p]});
      }
    }
  }
  return points;
}

std::vector<std::size_t> spot_check_selection(const std::vector<std::size_t>& ranking,
                                              const SweepOptions& options,
                                              std::uint64_t seed) {
  const std::size_t n = ranking.size();
  std::vector<std::size_t> chosen;
  const std::size_t k = std::min<std::size_t>(std::max(options.best_k, 0), n);
  chosen.assign(ranking.begin(), ranking.begin() + static_cast<std::ptrdiff_t>(k));

  const std::size_t rest = n - k;
  if (rest > 0 && options.sample_fraction > 0.0) {
    const std::size_t strata = std::min<std::size_t>(
        rest, static_cast<std::size_t>(
                  std::ceil(options.sample_fraction * static_cast<double>(n))));
    for (std::size_t s = 0; s < strata; ++s) {
      // Equal contiguous strata over the ranked tail; one draw per stratum
      // from its own counter-based stream, so the selection is a pure
      // function of (seed, stratum) — independent of jobs, threads and
      // evaluation order.
      const std::size_t lo = k + s * rest / strata;
      const std::size_t hi = k + (s + 1) * rest / strata;
      if (hi <= lo) continue;
      StreamRng rng(seed + kSpotSeedSalt, static_cast<std::uint64_t>(s));
      chosen.push_back(ranking[lo + rng.bounded(static_cast<std::uint64_t>(hi - lo))]);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

SweepReport surrogate_sweep(const scenario::ScenarioConfig& base,
                            const CalibrationProfile& profile, const SweepAxes& axes,
                            const SweepOptions& options) {
  if (options.spot_replications < 1) {
    throw std::invalid_argument("spot_replications must be >= 1");
  }
  if (!(options.trust_threshold > 0.0)) {
    throw std::invalid_argument("trust_threshold must be > 0");
  }
  const std::vector<SweepPoint> points = axis_points(axes);
  if (points.empty()) throw std::invalid_argument("sweep axes enumerate no configs");

  exp::BatchOptions batch;
  batch.jobs = options.jobs;
  batch.allow_oversubscribe = options.allow_oversubscribe;
  exp::ExperimentRunner runner(batch);

  // Stage 1: every grid point once on the calibrated queue backend.
  std::vector<scenario::ScenarioConfig> surrogate_configs;
  surrogate_configs.reserve(points.size());
  for (const SweepPoint& point : points) {
    scenario::ScenarioConfig cfg = base;
    cfg.simulator = scenario::SimulatorKind::Queue;
    apply_profile(profile, cfg);
    apply_sweep_point(cfg, point);
    surrogate_configs.push_back(std::move(cfg));
  }
  const std::vector<stats::RunResult> surrogate_results =
      runner.run(surrogate_configs);

  SweepReport report;
  report.profile = profile;
  report.rows.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    report.rows[i].point = points[i];
    report.rows[i].surrogate = extract_metrics(surrogate_results[i]);
  }

  // Stage 2: ranking (headline metric ascending, enumeration index breaking
  // ties) and the deterministic spot-check selection over it.
  std::vector<std::size_t> ranking(points.size());
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
    const double qa = report.rows[a].surrogate[0];
    const double qb = report.rows[b].surrogate[0];
    if (qa != qb) return qa < qb;
    return a < b;
  });
  for (std::size_t r = 0; r < ranking.size(); ++r) {
    report.rows[ranking[r]].rank = static_cast<int>(r);
  }
  const std::vector<std::size_t> spots =
      spot_check_selection(ranking, options, base.seed);

  // Stage 3: micro replications of every spot-checked point, as one batch so
  // the spot checks share the jobs-level parallelism.
  const int reps = options.spot_replications;
  std::vector<scenario::ScenarioConfig> spot_configs;
  spot_configs.reserve(spots.size() * static_cast<std::size_t>(reps));
  for (const std::size_t i : spots) {
    scenario::ScenarioConfig cfg = base;
    cfg.simulator = scenario::SimulatorKind::Micro;
    cfg.surrogate = scenario::SurrogateConfig{};
    apply_sweep_point(cfg, points[i]);
    const std::vector<scenario::ScenarioConfig> reps_cfg =
        exp::replication_configs(cfg, reps);
    spot_configs.insert(spot_configs.end(), reps_cfg.begin(), reps_cfg.end());
  }
  const std::vector<stats::RunResult> spot_results = runner.run(spot_configs);

  std::array<Accumulator, kMetricCount> error_acc;
  std::array<double, kMetricCount> error_max{};
  for (std::size_t s = 0; s < spots.size(); ++s) {
    SweepRow& row = report.rows[spots[s]];
    row.spot_checked = true;
    std::array<Accumulator, kMetricCount> acc;
    for (int r = 0; r < reps; ++r) {
      const MetricVector m =
          extract_metrics(spot_results[s * static_cast<std::size_t>(reps) +
                                       static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < kMetricCount; ++i) acc[i].add(m[i]);
    }
    const double t_quantile =
        reps >= 2 ? stats::student_t_quantile(0.975, reps - 1) : 0.0;
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      row.spot.micro_mean[i] = acc[i].mean();
      row.spot.micro_ci95_halfwidth[i] =
          reps >= 2 ? t_quantile * acc[i].stddev() / std::sqrt(static_cast<double>(reps))
                    : 0.0;
      const double denom = std::max(std::abs(acc[i].mean()), kRelativeErrorFloor);
      row.spot.relative_error[i] = std::abs(row.surrogate[i] - acc[i].mean()) / denom;
      if (row.spot.relative_error[i] > options.trust_threshold) row.spot.trusted = false;
      error_acc[i].add(row.spot.relative_error[i]);
      error_max[i] = std::max(error_max[i], row.spot.relative_error[i]);
    }
    if (!row.spot.trusted) ++report.flagged;
  }
  report.spot_checks = static_cast<int>(spots.size());

  const int samples = static_cast<int>(spots.size());
  const double t_bar =
      samples >= 2 ? stats::student_t_quantile(0.975, samples - 1) : 0.0;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    report.error_bars[i].metric = kMetricNames[i];
    report.error_bars[i].samples = samples;
    report.error_bars[i].mean_relative_error = error_acc[i].mean();
    report.error_bars[i].ci95_halfwidth =
        samples >= 2
            ? t_bar * error_acc[i].stddev() / std::sqrt(static_cast<double>(samples))
            : 0.0;
    report.error_bars[i].max_relative_error = error_max[i];
  }
  return report;
}

std::string dump_report(const SweepReport& report) {
  json::Value doc = json::Value::object();
  json::Value profile = json::Value::object();
  profile.set("name", json::Value::string(report.profile.name));
  profile.set("service_scale", json::Value::number(report.profile.service_scale));
  profile.set("transit_scale", json::Value::number(report.profile.transit_scale));
  profile.set("capacity_scale", json::Value::number(report.profile.capacity_scale));
  doc.set("profile", std::move(profile));
  doc.set("points", json::Value::number(static_cast<int>(report.rows.size())));
  doc.set("spot_checks", json::Value::number(report.spot_checks));
  doc.set("flagged", json::Value::number(report.flagged));

  json::Value bars = json::Value::array();
  for (const MetricErrorBar& bar : report.error_bars) {
    json::Value b = json::Value::object();
    b.set("metric", json::Value::string(bar.metric));
    b.set("samples", json::Value::number(bar.samples));
    b.set("mean_relative_error", json::Value::number(bar.mean_relative_error));
    b.set("ci95_halfwidth", json::Value::number(bar.ci95_halfwidth));
    b.set("max_relative_error", json::Value::number(bar.max_relative_error));
    bars.push_back(std::move(b));
  }
  doc.set("error_bars", std::move(bars));

  json::Value rows = json::Value::array();
  for (const SweepRow& row : report.rows) {
    json::Value r = json::Value::object();
    r.set("controller",
          json::Value::string(core::controller_type_name(row.point.controller)));
    r.set("pattern", json::Value::string(traffic::pattern_name(row.point.pattern)));
    r.set("period_s", json::Value::number(row.point.period_s));
    r.set("rank", json::Value::number(row.rank));
    json::Value surrogate = json::Value::object();
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      surrogate.set(kMetricNames[i], json::Value::number(row.surrogate[i]));
    }
    r.set("surrogate", std::move(surrogate));
    r.set("spot_checked", json::Value::boolean(row.spot_checked));
    if (row.spot_checked) {
      json::Value spot = json::Value::object();
      for (std::size_t i = 0; i < kMetricCount; ++i) {
        json::Value m = json::Value::object();
        m.set("micro_mean", json::Value::number(row.spot.micro_mean[i]));
        m.set("ci95_halfwidth",
              json::Value::number(row.spot.micro_ci95_halfwidth[i]));
        m.set("relative_error", json::Value::number(row.spot.relative_error[i]));
        spot.set(kMetricNames[i], std::move(m));
      }
      spot.set("trusted", json::Value::boolean(row.spot.trusted));
      r.set("spot", std::move(spot));
    }
    rows.push_back(std::move(r));
  }
  doc.set("rows", std::move(rows));
  return json::dump(doc);
}

}  // namespace abp::surrogate
