// The metric vector both surrogate stages share: the calibrator fits the
// queue backend to the micro backend over these components, and the sweep
// driver reports per-component surrogate error bars over the same ones — so
// "what was fitted" and "what the error bars measure" cannot drift apart.
#pragma once

#include <array>
#include <cstddef>

#include "src/stats/run_result.hpp"

namespace abp::surrogate {

// Component order is part of the module's contract (reports and profiles
// index it); append-only.
inline constexpr std::size_t kMetricCount = 4;
inline constexpr const char* kMetricNames[kMetricCount] = {
    "avg_queuing_s", "avg_travel_s", "completed", "mean_in_network"};

using MetricVector = std::array<double, kMetricCount>;

// Relative-error floor shared by the calibrator's objective and the sweep's
// error bars: metrics whose reference magnitude is below this are compared
// absolutely, so a near-zero target (e.g. zero queuing on a free-flowing
// family) cannot blow a relative residual up.
inline constexpr double kRelativeErrorFloor = 1.0;

// The comparable summary of one run: network-average queuing and travel time
// per vehicle, completed-vehicle throughput, and the time-weighted mean
// vehicle count in the network (the paper's stability signal).
[[nodiscard]] inline MetricVector extract_metrics(const stats::RunResult& r) {
  return {r.metrics.average_queuing_time_s(), r.metrics.average_travel_time_s(),
          static_cast<double>(r.metrics.completed),
          r.in_network_series.time_weighted_mean()};
}

}  // namespace abp::surrogate
