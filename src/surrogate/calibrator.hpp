// Calibrator: least-squares fit of the queue backend to the micro backend.
//
// The queue sim is the cheap stand-in for the micro sim (ROADMAP, "Surrogate
// pipeline"), but out of the box its uniform service/transit/capacity
// parameters describe the *design* network, not the network the micro sim's
// car-following dynamics effectively realize (junction crossing time, amber
// lost time, dawdling and insertion gaps all shave real throughput off the
// design service rate). calibrate() measures that gap and closes it:
//
//   1. Run R paired replications of the scenario family on the micro backend
//      (seeds base.seed + 0..R-1 via exp::replication_configs) and average
//      the shared metric vector (metric_vector.hpp) — the fit targets.
//   2. Coordinate descent over the three SurrogateConfig scales on a fixed
//      lattice: per pass, each coordinate in a fixed order tries +/- the
//      pass's step; a candidate is scored by running the same R replication
//      seeds on the rescaled queue backend and taking the weighted relative
//      SSE against the targets; strictly-better moves are kept. Steps halve
//      each pass.
//
// Determinism: every candidate's score is a pure function of (config, seed)
// — ExperimentRunner batches are bit-identical at every jobs count, the
// descent visits candidates in a fixed order, and ties keep the incumbent —
// so the fitted CalibrationProfile is bit-identical however many jobs the
// calibration itself used. Pinned by surrogate_pipeline_test.
#pragma once

#include "src/scenario/scenario_config.hpp"
#include "src/surrogate/calibration_profile.hpp"

namespace abp::surrogate {

struct CalibrationOptions {
  // Paired replications per candidate evaluation (micro targets use the
  // same count and seeds).
  int replications = 3;
  // Run-level parallelism for each batch (exp::BatchOptions::jobs).
  int jobs = 1;
  bool allow_oversubscribe = false;
  // Coordinate-descent schedule: `passes` rounds over the three scales, the
  // first with +/- `initial_step`, halving each round.
  int passes = 3;
  double initial_step = 0.5;
  // Scale bounds: candidates are clamped to [min_scale, max_scale].
  double min_scale = 0.25;
  double max_scale = 4.0;
  // Calibration horizon override; 0 = the base config's duration_s. Fits
  // usually stabilize well before the full evaluation horizon, and a shorter
  // window keeps the one-off calibration cost small next to the sweep it
  // amortizes over.
  double duration_s = 0.0;
  // Name stamped into the profile ("" = "<scenario>-fit").
  std::string profile_name;
};

// Fits the queue backend to the micro backend for `base`'s scenario family
// and returns the profile (base's own simulator/surrogate fields are
// ignored; both backends run from the same family definition). Throws
// std::invalid_argument on nonsensical options and propagates run failures.
[[nodiscard]] CalibrationProfile calibrate(const scenario::ScenarioConfig& base,
                                           const CalibrationOptions& options = {});

}  // namespace abp::surrogate
