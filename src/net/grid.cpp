#include "src/net/grid.hpp"

#include <stdexcept>
#include <vector>

namespace abp::net {
namespace {

Road make_road(IntersectionId from, Side departure, IntersectionId to, Side arrival,
               const GridConfig& cfg, double length, std::string name) {
  Road r;
  r.from = from;
  r.to = to;
  r.departure_side = departure;
  r.arrival_side = arrival;
  r.length_m = length;
  r.speed_limit_mps = cfg.speed_limit_mps;
  r.capacity = cfg.capacity;
  r.name = std::move(name);
  return r;
}

}  // namespace

std::string grid_junction_name(int row, int col) {
  return "J(" + std::to_string(row) + "," + std::to_string(col) + ")";
}

Network build_grid(const GridConfig& cfg) {
  if (cfg.rows <= 0 || cfg.cols <= 0) {
    throw std::invalid_argument("grid dimensions must be positive");
  }
  Network net;

  std::vector<std::vector<IntersectionId>> node(static_cast<std::size_t>(cfg.rows));
  for (int r = 0; r < cfg.rows; ++r) {
    node[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(cfg.cols));
    for (int c = 0; c < cfg.cols; ++c) {
      node[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          net.add_intersection(grid_junction_name(r, c), r, c);
    }
  }
  auto at = [&](int r, int c) { return node[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]; };

  // Internal roads: one directed road each way between adjacent junctions.
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      if (c + 1 < cfg.cols) {
        // Eastward road leaves (r,c) on its East side and arrives at (r,c+1)
        // on its West side; and the reverse.
        net.add_road(make_road(at(r, c), Side::East, at(r, c + 1), Side::West, cfg,
                               cfg.road_length_m,
                               grid_junction_name(r, c) + "->" + grid_junction_name(r, c + 1)));
        net.add_road(make_road(at(r, c + 1), Side::West, at(r, c), Side::East, cfg,
                               cfg.road_length_m,
                               grid_junction_name(r, c + 1) + "->" + grid_junction_name(r, c)));
      }
      if (r + 1 < cfg.rows) {
        // Southward road leaves (r,c) on its South side, arrives at (r+1,c)
        // on its North side; and the reverse.
        net.add_road(make_road(at(r, c), Side::South, at(r + 1, c), Side::North, cfg,
                               cfg.road_length_m,
                               grid_junction_name(r, c) + "->" + grid_junction_name(r + 1, c)));
        net.add_road(make_road(at(r + 1, c), Side::North, at(r, c), Side::South, cfg,
                               cfg.road_length_m,
                               grid_junction_name(r + 1, c) + "->" + grid_junction_name(r, c)));
      }
    }
  }

  // Boundary entry/exit roads. Traffic "entering from the North" arrives on
  // the North side of a top-row junction.
  auto add_boundary = [&](IntersectionId junction, Side side, const std::string& where) {
    net.add_road(make_road(IntersectionId{}, Side::North, junction, side, cfg,
                           cfg.boundary_length_m,
                           "entry-" + std::string(side_name(side)) + where));
    net.add_road(make_road(junction, side, IntersectionId{}, Side::North, cfg,
                           cfg.boundary_length_m,
                           "exit-" + std::string(side_name(side)) + where));
  };
  for (int c = 0; c < cfg.cols; ++c) {
    add_boundary(at(0, c), Side::North, "(0," + std::to_string(c) + ")");
    add_boundary(at(cfg.rows - 1, c), Side::South,
                 "(" + std::to_string(cfg.rows - 1) + "," + std::to_string(c) + ")");
  }
  for (int r = 0; r < cfg.rows; ++r) {
    add_boundary(at(r, cfg.cols - 1), Side::East,
                 "(" + std::to_string(r) + "," + std::to_string(cfg.cols - 1) + ")");
    add_boundary(at(r, 0), Side::West, "(" + std::to_string(r) + ",0)");
  }

  net.finalize(cfg.handedness, cfg.service_rate);
  return net;
}

}  // namespace abp::net
