// The traffic network: a directed graph of roads joined by signalized
// intersections, per the queueing-network model of Section II of the paper.
//
// Usage: add intersections, add roads (with their from/to junctions and
// compass sides), then call finalize() once. finalize() wires each junction's
// approach arrays, derives the feasible movements (links), and installs the
// standard Fig.-1 phase table. After finalize() the structure is immutable.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/net/geometry.hpp"
#include "src/net/intersection.hpp"
#include "src/net/link.hpp"
#include "src/net/phase.hpp"
#include "src/net/road.hpp"
#include "src/util/ids.hpp"

namespace abp::net {

class Network {
 public:
  // Registers a new junction; returns its id.
  IntersectionId add_intersection(std::string name, int grid_row = -1, int grid_col = -1);

  // Registers a road. `road.id` is assigned by the network; all other fields
  // must be filled in by the caller. Returns the assigned id.
  RoadId add_road(Road road);

  // Builds approach arrays, links and the standard phase plan for every
  // junction. `default_service_rate` is mu for every created link.
  // Must be called exactly once, after all roads and intersections are added.
  void finalize(Handedness handedness, double default_service_rate = 1.0);

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] Handedness handedness() const noexcept { return handedness_; }

  [[nodiscard]] const std::vector<Road>& roads() const noexcept { return roads_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }
  [[nodiscard]] const std::vector<Intersection>& intersections() const noexcept {
    return intersections_;
  }

  [[nodiscard]] const Road& road(RoadId id) const { return roads_.at(id.index()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.index()); }
  [[nodiscard]] const Intersection& intersection(IntersectionId id) const {
    return intersections_.at(id.index());
  }

  // Mutable access for configuration tweaks (service rates, capacities)
  // between finalize() and simulation start.
  [[nodiscard]] Road& road_mut(RoadId id) { return roads_.at(id.index()); }
  [[nodiscard]] Link& link_mut(LinkId id) { return links_.at(id.index()); }

  // Topology queries. All of them are O(1) reads of index tables built once
  // by finalize(); calling them on a non-finalized network throws
  // std::logic_error. The simulators hit these on every tick, so none of
  // them may scan or allocate.

  // All roads on which vehicles enter the network (no upstream junction).
  [[nodiscard]] const std::vector<RoadId>& entry_roads() const;
  // Entry roads whose junction approach is on boundary side `s` (i.e. traffic
  // entering "from the North" arrives on the North side of its junction).
  [[nodiscard]] const std::vector<RoadId>& entry_roads_on(Side s) const;
  // All roads on which vehicles leave the network.
  [[nodiscard]] const std::vector<RoadId>& exit_roads() const;

  // The movement leaving `from_road` with the given geometric turn, if it
  // exists. Used by the router to walk vehicles through the grid.
  [[nodiscard]] std::optional<LinkId> find_link(RoadId from_road, Turn turn) const;
  // All movements whose incoming road is `from_road`, in turn order
  // (Left, Straight, Right). Points into the CSR index; valid as long as the
  // network lives.
  [[nodiscard]] std::span<const LinkId> links_from(RoadId from_road) const;

  // Junction at the given grid coordinates, if the network was grid-built.
  [[nodiscard]] std::optional<IntersectionId> at_grid(int row, int col) const;

 private:
  void build_links_for(Intersection& node, double default_service_rate);
  void build_standard_phases(Intersection& node) const;
  // Builds the runtime topology index (link table, CSR spans, cached road
  // lists, grid lookup). Called once, at the end of finalize().
  void build_topology_index();
  void require_finalized(const char* what) const;

  std::vector<Road> roads_;
  std::vector<Link> links_;
  std::vector<Intersection> intersections_;
  Handedness handedness_ = Handedness::LeftHand;
  bool finalized_ = false;

  // --- finalized-time topology index ---
  // road x turn -> link id; invalid when the movement does not exist.
  std::vector<LinkId> link_by_road_turn_;
  // CSR layout of "links leaving road r": links_from_flat_[links_from_offset_[r]
  // .. links_from_offset_[r+1]) in turn order.
  std::vector<LinkId> links_from_flat_;
  std::vector<std::uint32_t> links_from_offset_;
  std::vector<RoadId> entry_roads_;
  std::array<std::vector<RoadId>, 4> entry_roads_by_side_;
  std::vector<RoadId> exit_roads_;
  // Dense (row, col) -> junction lookup for grid-built networks.
  int grid_rows_ = 0;
  int grid_cols_ = 0;
  std::vector<IntersectionId> grid_lookup_;
};

}  // namespace abp::net
