// Junction geometry vocabulary: compass sides, turn directions, handedness.
//
// The paper's Fig. 1 intersection pairs straight-ahead movements with *left*
// turns in one control phase (c1 activates L_1^6 "turn left" together with
// L_1^7 straight) and gives *right* turns their own protected phase (c2).
// That is a left-hand-traffic (UK) junction: the left turn is the kerb-hugging
// "easy" turn that does not cross opposing traffic, while the right turn cuts
// across it. We keep handedness configurable; the reproduction uses LeftHand.
#pragma once

#include <array>
#include <string_view>

namespace abp::net {

// The compass side of a junction on which an approach sits. A vehicle
// arriving from the North side is heading South.
enum class Side : int { North = 0, East = 1, South = 2, West = 3 };

inline constexpr std::array<Side, 4> kAllSides = {Side::North, Side::East, Side::South,
                                                  Side::West};

// Geometric turn relative to the vehicle's heading.
enum class Turn : int { Left = 0, Straight = 1, Right = 2 };

inline constexpr std::array<Turn, 3> kAllTurns = {Turn::Left, Turn::Straight, Turn::Right};

// Which side of the road vehicles drive on. Determines which turn is the
// "easy" (non-crossing) turn and which one crosses opposing traffic.
enum class Handedness { LeftHand, RightHand };

// Side directly across the junction.
[[nodiscard]] constexpr Side opposite(Side s) noexcept {
  return static_cast<Side>((static_cast<int>(s) + 2) % 4);
}

// Exit side for a vehicle that entered from `from` and makes `turn`.
// Heading of a vehicle from the North side is South; its left is East.
[[nodiscard]] constexpr Side exit_side(Side from, Turn turn) noexcept {
  switch (turn) {
    case Turn::Left:
      return static_cast<Side>((static_cast<int>(from) + 1) % 4);
    case Turn::Straight:
      return opposite(from);
    case Turn::Right:
      return static_cast<Side>((static_cast<int>(from) + 3) % 4);
  }
  return opposite(from);
}

// Inverse of exit_side: the turn that takes a vehicle from side `from` out at
// side `to`. `from == to` (U-turn) is not a feasible movement in this model;
// callers must not ask for it.
[[nodiscard]] constexpr Turn turn_between(Side from, Side to) noexcept {
  const int delta = (static_cast<int>(to) - static_cast<int>(from) + 4) % 4;
  switch (delta) {
    case 1:
      return Turn::Left;
    case 2:
      return Turn::Straight;
    default:
      return Turn::Right;
  }
}

// The kerb-hugging turn that does not cross opposing traffic.
[[nodiscard]] constexpr Turn easy_turn(Handedness h) noexcept {
  return h == Handedness::LeftHand ? Turn::Left : Turn::Right;
}

// The turn that crosses opposing traffic and needs a protected phase.
[[nodiscard]] constexpr Turn crossing_turn(Handedness h) noexcept {
  return h == Handedness::LeftHand ? Turn::Right : Turn::Left;
}

[[nodiscard]] constexpr std::string_view side_name(Side s) noexcept {
  switch (s) {
    case Side::North:
      return "N";
    case Side::East:
      return "E";
    case Side::South:
      return "S";
    case Side::West:
      return "W";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view turn_name(Turn t) noexcept {
  switch (t) {
    case Turn::Left:
      return "left";
    case Turn::Straight:
      return "straight";
    case Turn::Right:
      return "right";
  }
  return "?";
}

// True when two movements through the same junction can be signalled green
// simultaneously without their paths crossing. Movements from the same
// approach never conflict (dedicated turning lanes diverge). Movements from
// opposing approaches are compatible when both stay out of the crossing
// conflict area: opposing straights, opposing easy turns, straight+easy in
// any combination, and the pair of opposing crossing turns (dual protected
// arrows, which pass one another inside the junction). Movements from
// perpendicular approaches always conflict.
[[nodiscard]] constexpr bool movements_compatible(Side from_a, Turn turn_a, Side from_b,
                                                  Turn turn_b, Handedness h) noexcept {
  if (from_a == from_b) return true;
  if (from_b != opposite(from_a)) return false;  // perpendicular approaches
  const Turn crossing = crossing_turn(h);
  const bool a_crosses = (turn_a == crossing);
  const bool b_crosses = (turn_b == crossing);
  if (a_crosses && b_crosses) return true;  // dual protected arrows
  if (!a_crosses && !b_crosses) return true;  // straight / easy combinations
  return false;  // crossing turn against opposing through traffic
}

}  // namespace abp::net
