// A feasible movement L_i^{i'} from an incoming to an outgoing road.
#pragma once

#include "src/net/geometry.hpp"
#include "src/util/ids.hpp"

namespace abp::net {

struct Link {
  LinkId id;
  // Junction that owns (signals) this movement.
  IntersectionId owner;
  // Incoming road N_i whose dedicated turning lane feeds this movement.
  RoadId from_road;
  // Outgoing road N_{i'} the movement discharges into.
  RoadId to_road;
  // Approach side at the owning junction.
  Side from_side = Side::North;
  // Geometric turn of the movement.
  Turn turn = Turn::Straight;
  // Full service rate mu_i^{i'} in vehicles per second: the saturation flow of
  // the movement while its signal is green (paper: mu = 1 for every link).
  double service_rate = 1.0;
};

}  // namespace abp::net
