// A directed road segment: a node N_i of the paper's queueing graph.
#pragma once

#include <string>

#include "src/net/geometry.hpp"
#include "src/util/ids.hpp"

namespace abp::net {

struct Road {
  RoadId id;

  // Junction this road leaves from; invalid for network entry roads, where
  // vehicles are injected by the demand process.
  IntersectionId from;
  // Junction this road arrives at; invalid for network exit roads, where
  // vehicles leave the network at the far end.
  IntersectionId to;

  // Side of `from` on which this road departs (meaningful only if from.valid()).
  Side departure_side = Side::North;
  // Side of `to` on which this road arrives (meaningful only if to.valid()).
  Side arrival_side = Side::North;

  // Physical length of the segment.
  double length_m = 200.0;
  // Free-flow speed limit.
  double speed_limit_mps = 13.9;  // 50 km/h
  // Capacity W_i: maximum number of vehicles the road can accommodate across
  // all its dedicated turning lanes (paper: W_i = 120).
  int capacity = 120;

  std::string name;

  [[nodiscard]] bool is_entry() const noexcept { return !from.valid(); }
  [[nodiscard]] bool is_exit() const noexcept { return !to.valid(); }
  // Free-flow traversal time, used as the transfer delay in the queueing
  // simulator and for sanity checks in the microscopic one.
  [[nodiscard]] double free_flow_time_s() const noexcept {
    return speed_limit_mps > 0.0 ? length_m / speed_limit_mps : 0.0;
  }
};

}  // namespace abp::net
