// Control phases: compatible sets of movements signalled green together.
//
// Phase index 0 is reserved for the transition phase c0 (amber, no links
// active); indices 1..P are the control phases c1..cP. Controllers return a
// PhaseIndex from every decision; the simulators translate it into signal
// states for the junction's links.
#pragma once

#include <string>
#include <vector>

#include "src/util/ids.hpp"

namespace abp::net {

// Index into Intersection::phases. Plain int by design: it is bounded, dense
// and used in arithmetic (argmax loops); 0 always denotes the transition
// phase.
using PhaseIndex = int;

// The transition phase c0 = {} during which the amber light clears the junction.
inline constexpr PhaseIndex kTransitionPhase = 0;

struct Phase {
  // Links activated while this phase is green. Empty for c0.
  std::vector<LinkId> links;
  std::string name;

  [[nodiscard]] bool is_transition() const noexcept { return links.empty(); }
};

}  // namespace abp::net
