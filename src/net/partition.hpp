// Row-band sharding plan over a grid network (docs/SHARDING.md).
//
// The grid's junction rows are split into `count` contiguous bands, one per
// shard. Every road is owned by exactly one shard — the shard of its
// *to*-junction (the junction that serves vehicles off the road), with exit
// roads falling to their from-junction's shard. Under that rule entry and
// exit roads never cross shards, and the only cross-shard roads are the
// vertical segments between adjacent bands: each has an *owner* (the shard
// that simulates it: sweeps its lanes, samples it, completes its vehicles)
// and a *grantor* (the shard whose junction serves vehicles onto it). The
// per-tick boundary exchange in src/shard/ moves exactly two kinds of state
// across each band seam: mirrored lane/occupancy state of these boundary
// roads (owner -> grantor, so admission checks see the real road) and
// vehicle transfers (grantor -> owner, vehicles granted onto the road).
#pragma once

#include <vector>

#include "src/net/network.hpp"
#include "src/util/ids.hpp"

namespace abp::net {

// One road whose from- and to-junctions live in different (always adjacent)
// bands. `owner` simulates the road; `grantor` serves vehicles onto it.
struct BoundaryRoad {
  RoadId road;
  int owner = 0;
  int grantor = 0;
};

struct ShardPlan {
  int count = 1;
  // Shard index per intersection (by id index) and per road (by id index).
  std::vector<int> junction_shard;
  std::vector<int> road_shard;
  // All cross-band roads, ascending by road index (the canonical order every
  // boundary message uses).
  std::vector<BoundaryRoad> boundary;

  [[nodiscard]] int shard_of_road(RoadId r) const {
    return road_shard[r.index()];
  }
  [[nodiscard]] int shard_of_junction(IntersectionId j) const {
    return junction_shard[j.index()];
  }
  [[nodiscard]] bool owns_road(int shard, RoadId r) const {
    return road_shard[r.index()] == shard;
  }
  [[nodiscard]] bool owns_junction(int shard, IntersectionId j) const {
    return junction_shard[j.index()] == shard;
  }
  // Boundary roads owned by `shard` whose grantor is `grantor`, ascending by
  // road index. The mirror-state messages owner->grantor and the transfer
  // messages grantor->owner both iterate this list, so the two sides agree on
  // framing without exchanging road ids.
  [[nodiscard]] std::vector<RoadId> boundary_owned_by(int shard, int grantor) const;
};

// Splits the grid's rows into `count` contiguous bands (balanced sizes, top
// band first) and classifies every junction and road as above. Throws
// std::invalid_argument if the network is not grid-built, count < 1, count
// exceeds the number of junction rows, or any cross-shard road connects
// non-adjacent bands (impossible for a grid; checked anyway because the
// pipelined exchange protocol relies on it).
[[nodiscard]] ShardPlan partition_rows(const Network& net, int count);

}  // namespace abp::net
