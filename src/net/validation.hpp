// Structural validation of a finalized network.
//
// Simulators and controllers assume a consistent network: approach wiring
// matches road endpoints, every movement's geometry is coherent, phases only
// combine compatible movements, and every movement is reachable through some
// phase. validate() checks all of it and returns human-readable findings, so
// hand-built networks fail loudly before a simulation silently misbehaves.
#pragma once

#include <string>
#include <vector>

#include "src/net/network.hpp"

namespace abp::net {

// Returns a list of problems; empty means the network is valid.
[[nodiscard]] std::vector<std::string> validate(const Network& network);

// Throws std::runtime_error listing all problems if validation fails.
void validate_or_throw(const Network& network);

}  // namespace abp::net
