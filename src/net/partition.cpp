#include "src/net/partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace abp::net {

std::vector<RoadId> ShardPlan::boundary_owned_by(int shard, int grantor) const {
  std::vector<RoadId> out;
  for (const BoundaryRoad& b : boundary) {
    if (b.owner == shard && b.grantor == grantor) out.push_back(b.road);
  }
  return out;
}

ShardPlan partition_rows(const Network& net, int count) {
  if (count < 1) throw std::invalid_argument("shard count must be >= 1");
  int rows = 0;
  for (const Intersection& node : net.intersections()) {
    if (node.grid_row < 0) {
      throw std::invalid_argument(
          "sharding requires a grid-built network (junction '" + node.name +
          "' has no grid row)");
    }
    rows = std::max(rows, node.grid_row + 1);
  }
  if (rows == 0) throw std::invalid_argument("cannot shard an empty network");
  if (count > rows) {
    throw std::invalid_argument("shard count " + std::to_string(count) +
                                " exceeds grid rows " + std::to_string(rows));
  }

  // Balanced contiguous bands: row r belongs to shard r*count/rows, which
  // hands the first rows%count bands one extra row each.
  const auto shard_of_row = [&](int row) { return row * count / rows; };

  ShardPlan plan;
  plan.count = count;
  plan.junction_shard.resize(net.intersections().size());
  for (const Intersection& node : net.intersections()) {
    plan.junction_shard[node.id.index()] = shard_of_row(node.grid_row);
  }
  plan.road_shard.resize(net.roads().size());
  for (const Road& road : net.roads()) {
    // The to-junction's shard simulates the road (it serves vehicles off it
    // and observes its queues); exit roads fall back to the from-junction.
    const IntersectionId anchor = road.to.valid() ? road.to : road.from;
    plan.road_shard[road.id.index()] = plan.junction_shard[anchor.index()];
    if (road.from.valid() && road.to.valid()) {
      const int grantor = plan.junction_shard[road.from.index()];
      const int owner = plan.junction_shard[road.to.index()];
      if (grantor != owner) {
        if (std::abs(grantor - owner) != 1) {
          throw std::invalid_argument(
              "road '" + road.name + "' connects non-adjacent shards " +
              std::to_string(grantor) + " and " + std::to_string(owner));
        }
        plan.boundary.push_back({road.id, owner, grantor});
      }
    }
  }
  // add_road assigns ids in insertion order, so the loop above already built
  // this ascending; sort anyway to make the canonical order a contract rather
  // than an accident of construction order.
  std::sort(plan.boundary.begin(), plan.boundary.end(),
            [](const BoundaryRoad& a, const BoundaryRoad& b) {
              return a.road.index() < b.road.index();
            });
  return plan;
}

}  // namespace abp::net
