#include "src/net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace abp::net {

IntersectionId Network::add_intersection(std::string name, int grid_row, int grid_col) {
  if (finalized_) throw std::logic_error("Network::add_intersection after finalize");
  Intersection node;
  node.id = IntersectionId(static_cast<std::uint32_t>(intersections_.size()));
  node.name = std::move(name);
  node.grid_row = grid_row;
  node.grid_col = grid_col;
  node.incoming.fill(RoadId{});
  node.outgoing.fill(RoadId{});
  intersections_.push_back(std::move(node));
  return intersections_.back().id;
}

RoadId Network::add_road(Road road) {
  if (finalized_) throw std::logic_error("Network::add_road after finalize");
  if (road.length_m <= 0.0) throw std::invalid_argument("road length must be positive");
  if (road.capacity <= 0) throw std::invalid_argument("road capacity must be positive");
  if (road.speed_limit_mps <= 0.0) throw std::invalid_argument("speed limit must be positive");
  if (!road.from.valid() && !road.to.valid()) {
    throw std::invalid_argument("road must touch at least one junction");
  }
  road.id = RoadId(static_cast<std::uint32_t>(roads_.size()));
  roads_.push_back(std::move(road));
  return roads_.back().id;
}

void Network::finalize(Handedness handedness, double default_service_rate) {
  if (finalized_) throw std::logic_error("Network::finalize called twice");
  if (default_service_rate <= 0.0) {
    throw std::invalid_argument("service rate must be positive");
  }
  handedness_ = handedness;

  // Wire approach arrays from the road endpoints.
  for (const Road& r : roads_) {
    if (r.to.valid()) {
      Intersection& node = intersections_.at(r.to.index());
      RoadId& slot = node.incoming[static_cast<std::size_t>(r.arrival_side)];
      if (slot.valid()) {
        throw std::logic_error("two incoming roads on the same side of " + node.name);
      }
      slot = r.id;
    }
    if (r.from.valid()) {
      Intersection& node = intersections_.at(r.from.index());
      RoadId& slot = node.outgoing[static_cast<std::size_t>(r.departure_side)];
      if (slot.valid()) {
        throw std::logic_error("two outgoing roads on the same side of " + node.name);
      }
      slot = r.id;
    }
  }

  for (Intersection& node : intersections_) {
    build_links_for(node, default_service_rate);
    build_standard_phases(node);
  }
  finalized_ = true;
}

void Network::build_links_for(Intersection& node, double default_service_rate) {
  for (Side from : kAllSides) {
    const RoadId in = node.incoming_on(from);
    if (!in.valid()) continue;
    for (Turn turn : kAllTurns) {
      const Side out_side = exit_side(from, turn);
      const RoadId out = node.outgoing_on(out_side);
      if (!out.valid()) continue;
      Link link;
      link.id = LinkId(static_cast<std::uint32_t>(links_.size()));
      link.owner = node.id;
      link.from_road = in;
      link.to_road = out;
      link.from_side = from;
      link.turn = turn;
      link.service_rate = default_service_rate;
      links_.push_back(link);
      node.links.push_back(link.id);
    }
  }
}

void Network::build_standard_phases(Intersection& node) const {
  // Fig. 1 phase table, generalized to junctions that may miss approaches:
  //   c1: North/South axis, straight + easy turn
  //   c2: North/South axis, crossing turn (protected)
  //   c3: East/West axis, straight + easy turn
  //   c4: East/West axis, crossing turn (protected)
  node.phases.clear();
  Phase transition;
  transition.name = "c0-transition";
  node.phases.push_back(std::move(transition));

  const Turn crossing = crossing_turn(handedness_);
  struct Group {
    std::array<Side, 2> sides;
    bool protected_turns;
    const char* name;
  };
  const Group groups[] = {
      {{Side::North, Side::South}, false, "c-NS-through"},
      {{Side::North, Side::South}, true, "c-NS-protected"},
      {{Side::East, Side::West}, false, "c-EW-through"},
      {{Side::East, Side::West}, true, "c-EW-protected"},
  };
  for (const Group& g : groups) {
    Phase phase;
    phase.name = g.name;
    for (LinkId lid : node.links) {
      const Link& l = links_.at(lid.index());
      const bool on_axis = (l.from_side == g.sides[0] || l.from_side == g.sides[1]);
      if (!on_axis) continue;
      const bool is_crossing = (l.turn == crossing);
      if (is_crossing == g.protected_turns) phase.links.push_back(lid);
    }
    if (!phase.links.empty()) node.phases.push_back(std::move(phase));
  }
}

std::vector<RoadId> Network::entry_roads() const {
  std::vector<RoadId> result;
  for (const Road& r : roads_) {
    if (r.is_entry()) result.push_back(r.id);
  }
  return result;
}

std::vector<RoadId> Network::entry_roads_on(Side s) const {
  std::vector<RoadId> result;
  for (const Road& r : roads_) {
    if (r.is_entry() && r.arrival_side == s) result.push_back(r.id);
  }
  return result;
}

std::vector<RoadId> Network::exit_roads() const {
  std::vector<RoadId> result;
  for (const Road& r : roads_) {
    if (r.is_exit()) result.push_back(r.id);
  }
  return result;
}

std::optional<LinkId> Network::find_link(RoadId from_road, Turn turn) const {
  for (const Link& l : links_) {
    if (l.from_road == from_road && l.turn == turn) return l.id;
  }
  return std::nullopt;
}

std::vector<LinkId> Network::links_from(RoadId from_road) const {
  std::vector<LinkId> result;
  for (const Link& l : links_) {
    if (l.from_road == from_road) result.push_back(l.id);
  }
  return result;
}

std::optional<IntersectionId> Network::at_grid(int row, int col) const {
  for (const Intersection& node : intersections_) {
    if (node.grid_row == row && node.grid_col == col) return node.id;
  }
  return std::nullopt;
}

}  // namespace abp::net
