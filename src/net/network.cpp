#include "src/net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace abp::net {

IntersectionId Network::add_intersection(std::string name, int grid_row, int grid_col) {
  if (finalized_) throw std::logic_error("Network::add_intersection after finalize");
  Intersection node;
  node.id = IntersectionId(static_cast<std::uint32_t>(intersections_.size()));
  node.name = std::move(name);
  node.grid_row = grid_row;
  node.grid_col = grid_col;
  node.incoming.fill(RoadId{});
  node.outgoing.fill(RoadId{});
  intersections_.push_back(std::move(node));
  return intersections_.back().id;
}

RoadId Network::add_road(Road road) {
  if (finalized_) throw std::logic_error("Network::add_road after finalize");
  if (road.length_m <= 0.0) throw std::invalid_argument("road length must be positive");
  if (road.capacity <= 0) throw std::invalid_argument("road capacity must be positive");
  if (road.speed_limit_mps <= 0.0) throw std::invalid_argument("speed limit must be positive");
  if (!road.from.valid() && !road.to.valid()) {
    throw std::invalid_argument("road must touch at least one junction");
  }
  road.id = RoadId(static_cast<std::uint32_t>(roads_.size()));
  roads_.push_back(std::move(road));
  return roads_.back().id;
}

void Network::finalize(Handedness handedness, double default_service_rate) {
  if (finalized_) throw std::logic_error("Network::finalize called twice");
  if (default_service_rate <= 0.0) {
    throw std::invalid_argument("service rate must be positive");
  }
  handedness_ = handedness;

  // Wire approach arrays from the road endpoints.
  for (const Road& r : roads_) {
    if (r.to.valid()) {
      Intersection& node = intersections_.at(r.to.index());
      RoadId& slot = node.incoming[static_cast<std::size_t>(r.arrival_side)];
      if (slot.valid()) {
        throw std::logic_error("two incoming roads on the same side of " + node.name);
      }
      slot = r.id;
    }
    if (r.from.valid()) {
      Intersection& node = intersections_.at(r.from.index());
      RoadId& slot = node.outgoing[static_cast<std::size_t>(r.departure_side)];
      if (slot.valid()) {
        throw std::logic_error("two outgoing roads on the same side of " + node.name);
      }
      slot = r.id;
    }
  }

  for (Intersection& node : intersections_) {
    build_links_for(node, default_service_rate);
    build_standard_phases(node);
  }
  build_topology_index();
  finalized_ = true;
}

void Network::build_topology_index() {
  // road x turn -> link table and CSR "links leaving road r" spans. Links are
  // created in ascending id order and, within one approach, in kAllTurns
  // order, so filling in id order yields turn-ordered per-road spans.
  link_by_road_turn_.assign(roads_.size() * kAllTurns.size(), LinkId{});
  links_from_offset_.assign(roads_.size() + 1, 0);
  for (const Link& l : links_) {
    link_by_road_turn_[l.from_road.index() * kAllTurns.size() +
                       static_cast<std::size_t>(l.turn)] = l.id;
    links_from_offset_[l.from_road.index() + 1] += 1;
  }
  for (std::size_t r = 0; r < roads_.size(); ++r) {
    links_from_offset_[r + 1] += links_from_offset_[r];
  }
  links_from_flat_.resize(links_.size());
  std::vector<std::uint32_t> cursor(links_from_offset_.begin(),
                                    links_from_offset_.end() - 1);
  for (const Link& l : links_) {
    links_from_flat_[cursor[l.from_road.index()]++] = l.id;
  }

  for (const Road& r : roads_) {
    if (r.is_entry()) {
      entry_roads_.push_back(r.id);
      entry_roads_by_side_[static_cast<std::size_t>(r.arrival_side)].push_back(r.id);
    }
    if (r.is_exit()) exit_roads_.push_back(r.id);
  }

  // Dense grid lookup; first registration wins on duplicate coordinates,
  // matching the old linear scan. Callers may pass arbitrary coordinates to
  // add_intersection, so only build the dense table when it stays reasonably
  // packed; degenerate sparse coordinates fall back to a linear-scan
  // at_grid (a cold path — the simulators never call it per tick).
  for (const Intersection& node : intersections_) {
    if (node.grid_row < 0 || node.grid_col < 0) continue;
    grid_rows_ = std::max(grid_rows_, node.grid_row + 1);
    grid_cols_ = std::max(grid_cols_, node.grid_col + 1);
  }
  const std::size_t cells = static_cast<std::size_t>(grid_rows_) *
                            static_cast<std::size_t>(grid_cols_);
  const std::size_t dense_cap = std::max<std::size_t>(1024, intersections_.size() * 16);
  if (cells > dense_cap) {
    grid_rows_ = 0;
    grid_cols_ = 0;
    return;
  }
  grid_lookup_.assign(cells, IntersectionId{});
  for (const Intersection& node : intersections_) {
    if (node.grid_row < 0 || node.grid_col < 0) continue;
    IntersectionId& slot =
        grid_lookup_[static_cast<std::size_t>(node.grid_row) *
                         static_cast<std::size_t>(grid_cols_) +
                     static_cast<std::size_t>(node.grid_col)];
    if (!slot.valid()) slot = node.id;
  }
}

void Network::require_finalized(const char* what) const {
  if (!finalized_) {
    throw std::logic_error(std::string("Network::") + what + " before finalize");
  }
}

void Network::build_links_for(Intersection& node, double default_service_rate) {
  for (Side from : kAllSides) {
    const RoadId in = node.incoming_on(from);
    if (!in.valid()) continue;
    for (Turn turn : kAllTurns) {
      const Side out_side = exit_side(from, turn);
      const RoadId out = node.outgoing_on(out_side);
      if (!out.valid()) continue;
      Link link;
      link.id = LinkId(static_cast<std::uint32_t>(links_.size()));
      link.owner = node.id;
      link.from_road = in;
      link.to_road = out;
      link.from_side = from;
      link.turn = turn;
      link.service_rate = default_service_rate;
      links_.push_back(link);
      node.links.push_back(link.id);
    }
  }
}

void Network::build_standard_phases(Intersection& node) const {
  // Fig. 1 phase table, generalized to junctions that may miss approaches:
  //   c1: North/South axis, straight + easy turn
  //   c2: North/South axis, crossing turn (protected)
  //   c3: East/West axis, straight + easy turn
  //   c4: East/West axis, crossing turn (protected)
  node.phases.clear();
  Phase transition;
  transition.name = "c0-transition";
  node.phases.push_back(std::move(transition));

  const Turn crossing = crossing_turn(handedness_);
  struct Group {
    std::array<Side, 2> sides;
    bool protected_turns;
    const char* name;
  };
  const Group groups[] = {
      {{Side::North, Side::South}, false, "c-NS-through"},
      {{Side::North, Side::South}, true, "c-NS-protected"},
      {{Side::East, Side::West}, false, "c-EW-through"},
      {{Side::East, Side::West}, true, "c-EW-protected"},
  };
  for (const Group& g : groups) {
    Phase phase;
    phase.name = g.name;
    for (LinkId lid : node.links) {
      const Link& l = links_.at(lid.index());
      const bool on_axis = (l.from_side == g.sides[0] || l.from_side == g.sides[1]);
      if (!on_axis) continue;
      const bool is_crossing = (l.turn == crossing);
      if (is_crossing == g.protected_turns) phase.links.push_back(lid);
    }
    if (!phase.links.empty()) node.phases.push_back(std::move(phase));
  }
}

const std::vector<RoadId>& Network::entry_roads() const {
  require_finalized("entry_roads");
  return entry_roads_;
}

const std::vector<RoadId>& Network::entry_roads_on(Side s) const {
  require_finalized("entry_roads_on");
  return entry_roads_by_side_[static_cast<std::size_t>(s)];
}

const std::vector<RoadId>& Network::exit_roads() const {
  require_finalized("exit_roads");
  return exit_roads_;
}

std::optional<LinkId> Network::find_link(RoadId from_road, Turn turn) const {
  require_finalized("find_link");
  const LinkId id = link_by_road_turn_[from_road.index() * kAllTurns.size() +
                                       static_cast<std::size_t>(turn)];
  if (!id.valid()) return std::nullopt;
  return id;
}

std::span<const LinkId> Network::links_from(RoadId from_road) const {
  require_finalized("links_from");
  const std::uint32_t begin = links_from_offset_[from_road.index()];
  const std::uint32_t end = links_from_offset_[from_road.index() + 1];
  return {links_from_flat_.data() + begin, links_from_flat_.data() + end};
}

std::optional<IntersectionId> Network::at_grid(int row, int col) const {
  require_finalized("at_grid");
  if (grid_lookup_.empty()) {
    // Sparse-coordinate fallback (dense table was skipped at finalize).
    for (const Intersection& node : intersections_) {
      if (node.grid_row == row && node.grid_col == col) return node.id;
    }
    return std::nullopt;
  }
  if (row < 0 || col < 0 || row >= grid_rows_ || col >= grid_cols_) return std::nullopt;
  const IntersectionId id = grid_lookup_[static_cast<std::size_t>(row) *
                                             static_cast<std::size_t>(grid_cols_) +
                                         static_cast<std::size_t>(col)];
  if (!id.valid()) return std::nullopt;
  return id;
}

}  // namespace abp::net
