// A signalized intersection: four approaches, feasible movements, phase table.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/net/geometry.hpp"
#include "src/net/phase.hpp"
#include "src/util/ids.hpp"

namespace abp::net {

struct Intersection {
  IntersectionId id;

  // Incoming/outgoing road per compass side; invalid id when the junction has
  // no approach on that side (all junctions in the paper's grid have four).
  std::array<RoadId, 4> incoming{};
  std::array<RoadId, 4> outgoing{};

  // Movements owned by this junction, in a stable order that observations and
  // controller plans share.
  std::vector<LinkId> links;

  // phases[0] is the transition phase c0; phases[1..] are the control phases.
  std::vector<Phase> phases;

  std::string name;

  // Grid coordinates when built by GridBuilder (row 0 = northmost); -1 otherwise.
  int grid_row = -1;
  int grid_col = -1;

  [[nodiscard]] RoadId incoming_on(Side s) const noexcept {
    return incoming[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] RoadId outgoing_on(Side s) const noexcept {
    return outgoing[static_cast<std::size_t>(s)];
  }
  // Number of control phases (excluding the transition phase).
  [[nodiscard]] int num_control_phases() const noexcept {
    return static_cast<int>(phases.size()) - 1;
  }
};

}  // namespace abp::net
