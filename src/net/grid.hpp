// Builder for the paper's evaluation topology: an M x N grid of four-approach
// signalized intersections with entry/exit roads on every boundary approach.
//
// The paper evaluates a 3x3 grid (9 junctions, 12 entry roads, 12 exit roads,
// 24 internal directed roads). Every junction has the Fig.-1 structure: four
// incoming roads, four outgoing roads, twelve feasible movements, four control
// phases plus the transition phase.
#pragma once

#include <string>

#include "src/net/network.hpp"

namespace abp::net {

struct GridConfig {
  int rows = 3;
  int cols = 3;
  // Length of internal roads between adjacent junctions.
  double road_length_m = 220.0;
  // Length of boundary entry/exit roads.
  double boundary_length_m = 220.0;
  double speed_limit_mps = 13.9;  // 50 km/h
  // Road capacity W_i (paper: 120 vehicles).
  int capacity = 120;
  // Saturation flow mu per movement (paper: 1 veh/s).
  double service_rate = 1.0;
  // The paper's junction pairs straight with left turns => left-hand traffic.
  Handedness handedness = Handedness::LeftHand;
};

// Builds and finalizes the grid network. Throws std::invalid_argument on a
// non-positive grid dimension.
[[nodiscard]] Network build_grid(const GridConfig& config);

// Human-readable junction name used by build_grid, e.g. "J(0,2)".
[[nodiscard]] std::string grid_junction_name(int row, int col);

}  // namespace abp::net
