#include "src/net/validation.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace abp::net {
namespace {

void check_roads(const Network& net, std::vector<std::string>& problems) {
  for (const Road& r : net.roads()) {
    if (r.length_m <= 0.0) problems.push_back("road " + r.name + ": non-positive length");
    if (r.capacity <= 0) problems.push_back("road " + r.name + ": non-positive capacity");
    if (r.speed_limit_mps <= 0.0) {
      problems.push_back("road " + r.name + ": non-positive speed limit");
    }
    if (r.to.valid()) {
      const Intersection& node = net.intersection(r.to);
      if (node.incoming_on(r.arrival_side) != r.id) {
        problems.push_back("road " + r.name + ": arrival wiring mismatch at " + node.name);
      }
    }
    if (r.from.valid()) {
      const Intersection& node = net.intersection(r.from);
      if (node.outgoing_on(r.departure_side) != r.id) {
        problems.push_back("road " + r.name + ": departure wiring mismatch at " + node.name);
      }
    }
  }
}

void check_links(const Network& net, std::vector<std::string>& problems) {
  for (const Link& l : net.links()) {
    std::ostringstream tag;
    tag << "link " << l.id.value();
    if (l.service_rate <= 0.0) problems.push_back(tag.str() + ": non-positive service rate");
    if (!l.owner.valid()) {
      problems.push_back(tag.str() + ": no owner");
      continue;
    }
    const Intersection& node = net.intersection(l.owner);
    if (node.incoming_on(l.from_side) != l.from_road) {
      problems.push_back(tag.str() + ": from_road is not the incoming road on its side at " +
                         node.name);
    }
    const Side out_side = exit_side(l.from_side, l.turn);
    if (node.outgoing_on(out_side) != l.to_road) {
      problems.push_back(tag.str() + ": to_road does not match turn geometry at " + node.name);
    }
    const Road& from = net.road(l.from_road);
    const Road& to = net.road(l.to_road);
    if (from.to != l.owner) {
      problems.push_back(tag.str() + ": incoming road does not end at owner");
    }
    if (to.from != l.owner) {
      problems.push_back(tag.str() + ": outgoing road does not start at owner");
    }
  }
}

void check_phases(const Network& net, std::vector<std::string>& problems) {
  for (const Intersection& node : net.intersections()) {
    if (node.phases.empty()) {
      problems.push_back(node.name + ": no phases");
      continue;
    }
    if (!node.phases.front().is_transition()) {
      problems.push_back(node.name + ": phases[0] must be the empty transition phase");
    }
    std::set<LinkId> covered;
    for (std::size_t p = 1; p < node.phases.size(); ++p) {
      const Phase& phase = node.phases[p];
      if (phase.links.empty()) {
        problems.push_back(node.name + ": control phase " + phase.name + " is empty");
      }
      for (LinkId lid : phase.links) {
        const Link& l = net.link(lid);
        if (l.owner != node.id) {
          problems.push_back(node.name + ": phase " + phase.name +
                             " activates a foreign link");
        }
        covered.insert(lid);
      }
      // Pairwise movement compatibility within the phase.
      for (std::size_t a = 0; a < phase.links.size(); ++a) {
        for (std::size_t b = a + 1; b < phase.links.size(); ++b) {
          const Link& la = net.link(phase.links[a]);
          const Link& lb = net.link(phase.links[b]);
          if (!movements_compatible(la.from_side, la.turn, lb.from_side, lb.turn,
                                    net.handedness())) {
            problems.push_back(node.name + ": phase " + phase.name +
                               " combines conflicting movements " +
                               std::string(side_name(la.from_side)) + "-" +
                               std::string(turn_name(la.turn)) + " and " +
                               std::string(side_name(lb.from_side)) + "-" +
                               std::string(turn_name(lb.turn)));
          }
        }
      }
    }
    for (LinkId lid : node.links) {
      if (!covered.contains(lid)) {
        const Link& l = net.link(lid);
        problems.push_back(node.name + ": movement " + std::string(side_name(l.from_side)) +
                           "-" + std::string(turn_name(l.turn)) +
                           " is not served by any phase");
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate(const Network& net) {
  std::vector<std::string> problems;
  if (!net.finalized()) {
    problems.push_back("network is not finalized");
    return problems;
  }
  check_roads(net, problems);
  check_links(net, problems);
  check_phases(net, problems);
  return problems;
}

void validate_or_throw(const Network& net) {
  const std::vector<std::string> problems = validate(net);
  if (problems.empty()) return;
  std::string message = "network validation failed:";
  for (const std::string& p : problems) {
    message += "\n  - " + p;
  }
  throw std::runtime_error(message);
}

}  // namespace abp::net
