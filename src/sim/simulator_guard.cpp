#include "src/sim/simulator_guard.hpp"

#include <cstdio>
#include <cstdlib>

namespace abp::sim {

void SimulatorGuard::handle(double now_s, std::string message,
                            stats::GuardReport& report) const {
  message = "invariant violation at t=" + std::to_string(now_s) + ": " + std::move(message);
  switch (policy_) {
    case scenario::GuardPolicy::Throw:
      throw GuardViolationError(message);
    case scenario::GuardPolicy::Record:
      report.violations.push_back({now_s, std::move(message)});
      return;
    case scenario::GuardPolicy::Abort:
      std::fprintf(stderr, "SimulatorGuard: %s\n", message.c_str());
      std::abort();
  }
}

void SimulatorGuard::check(const Simulator& simulator,
                           const stats::NetworkMetrics& metrics,
                           stats::GuardReport& report) const {
  report.checks += 1;
  const double now_s = simulator.now();

  if (metrics.entered > metrics.generated) {
    handle(now_s,
           "admission outran generation (entered=" + std::to_string(metrics.entered) +
               " > generated=" + std::to_string(metrics.generated) + ")",
           report);
  }
  const long long in_network = simulator.vehicles_in_network();
  const long long balance =
      static_cast<long long>(metrics.completed) + in_network;
  if (static_cast<long long>(metrics.entered) != balance) {
    handle(now_s,
           "conservation broken (entered=" + std::to_string(metrics.entered) +
               " != completed=" + std::to_string(metrics.completed) +
               " + in_network=" + std::to_string(in_network) + ")",
           report);
  }
  for (const net::Road& road : simulator.network().roads()) {
    const int occ = simulator.road_occupancy(road.id);
    if (occ < 0 || occ > road.capacity) {
      handle(now_s,
             "occupancy of " + road.name + " out of [0, W] (occ=" + std::to_string(occ) +
                 ", W=" + std::to_string(road.capacity) + ")",
             report);
    }
    const int queued = simulator.queued_on_road(road.id);
    if (queued < 0 || queued > occ) {
      handle(now_s,
             "queue of " + road.name + " out of [0, occupancy] (queued=" +
                 std::to_string(queued) + ", occ=" + std::to_string(occ) + ")",
             report);
    }
  }
}

}  // namespace abp::sim
