#include "src/sim/run_setup.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/factory.hpp"
#include "src/core/fault_controller.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/validation.hpp"
#include "src/queuesim/queue_sim.hpp"

namespace abp::sim {
namespace {

// The effective per-junction ControllerSpec: the run-wide spec, unless a
// controller override names the junction (last matching override wins).
const core::ControllerSpec& effective_spec(const scenario::ScenarioConfig& config,
                                           const net::Network& network,
                                           IntersectionId node) {
  const core::ControllerSpec* spec = &config.controller;
  for (const scenario::ControllerOverride& o : config.controller_overrides) {
    const IntersectionId target =
        resolve_node(network, o.node.row, o.node.col, "controller override");
    if (target == node) spec = &o.spec;
  }
  return *spec;
}

// The incident-tuned variant of a spec, for AdaptiveController's upward-shift
// mode (docs/CHANGEPOINT.md, "Re-tuning"). The shared idea: under a detected
// overload regime, hold phases longer — every transition inserts an amber
// interval that serves nobody, and amber loss is pure waste precisely when
// every approach is saturated. Returns nullopt when the policy has no useful
// variant (classical fixed-time; UTIL-BP already holding maximally):
// adaptation then degrades to reset-on-detection.
std::optional<core::ControllerSpec> retuned_spec(const core::ControllerSpec& spec) {
  core::ControllerSpec tuned = spec;
  switch (spec.type) {
    case core::ControllerType::UtilBp:
      // G* = 0 removes the sentinel's early-switch pressure: phases hold
      // until the backlog comparison itself flips, trading responsiveness
      // for fewer amber insertions.
      if (spec.util.gstar_policy == core::GStarPolicy::Zero) return std::nullopt;
      tuned.util.gstar_policy = core::GStarPolicy::Zero;
      return tuned;
    case core::ControllerType::CapBp:
    case core::ControllerType::OriginalBp:
      // Double the slot period: half the decision (and amber) rate. Also
      // force the work-conserving fallback — idling a whole doubled slot
      // would be twice as costly.
      tuned.fixed_slot.period_s = 2.0 * spec.fixed_slot.period_s;
      tuned.fixed_slot.work_conserving = true;
      return tuned;
    case core::ControllerType::FixedTime:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

net::Network build_validated(const net::GridConfig& grid) {
  net::Network network = net::build_grid(grid);
  net::validate_or_throw(network);
  return network;
}

net::GridConfig effective_grid(const scenario::ScenarioConfig& config) {
  net::GridConfig grid = config.grid;
  if (!config.surrogate.enabled ||
      config.simulator != scenario::SimulatorKind::Queue) {
    return grid;
  }
  const scenario::SurrogateConfig& s = config.surrogate;
  grid.service_rate *= s.service_scale;
  // transit_scale > 1 = slower traversal; dividing the speed limit keeps the
  // design travel time's scale factor exact (length is untouched).
  grid.speed_limit_mps /= s.transit_scale;
  grid.capacity = std::max(
      1, static_cast<int>(std::lround(s.capacity_scale * grid.capacity)));
  return grid;
}

IntersectionId resolve_node(const net::Network& network, int row, int col,
                            const char* what) {
  const auto node = network.at_grid(row, col);
  if (!node) {
    throw std::invalid_argument(std::string(what) +
                                " references a junction outside the grid");
  }
  return *node;
}

RoadId resolve_approach(const net::Network& network, int row, int col, net::Side side,
                        const char* what) {
  const IntersectionId node = resolve_node(network, row, col, what);
  const RoadId road = network.intersection(node).incoming_on(side);
  if (!road.valid()) {
    throw std::invalid_argument(std::string(what) + " names a missing approach");
  }
  return road;
}

RoadId resolve_watch(const net::Network& network, const scenario::WatchSpec& w) {
  return resolve_approach(network, w.row, w.col, w.side, "watch");
}

std::vector<core::ControllerPtr> make_run_controllers(
    const scenario::ScenarioConfig& config, const net::Network& network,
    std::vector<const core::AdaptiveController*>* monitors) {
  std::vector<core::ControllerPtr> controllers;
  if (config.controller_overrides.empty() && !config.detector.enabled) {
    controllers = core::make_controllers(config.controller, network);
  } else {
    // Validate every override (resolve_node throws on out-of-grid nodes) and
    // stamp each junction from its effective spec.
    controllers.reserve(network.intersections().size());
    double cap = 0.0;
    for (const net::Road& road : network.roads()) {
      cap = std::max(cap, static_cast<double>(road.capacity));
    }
    for (const net::Intersection& node : network.intersections()) {
      const core::ControllerSpec& spec = effective_spec(config, network, node.id);
      core::ControllerPtr controller =
          core::make_controller(spec, core::make_plan(network, node), cap);
      if (config.detector.enabled) {
        core::ControllerPtr tuned;
        if (const auto tuned_spec = retuned_spec(spec)) {
          tuned = core::make_controller(*tuned_spec, core::make_plan(network, node), cap);
        }
        auto adaptive = std::make_unique<core::AdaptiveController>(
            std::move(controller), std::move(tuned),
            detect::JunctionMonitor(config.detector,
                                    static_cast<int>(node.links.size()),
                                    node.grid_row, node.grid_col));
        if (monitors != nullptr) monitors->push_back(adaptive.get());
        controller = std::move(adaptive);
      }
      controllers.push_back(std::move(controller));
    }
  }
  if (config.faults.sensors.empty() && config.faults.controllers.empty()) {
    return controllers;
  }

  std::vector<std::vector<core::SensorFaultWindow>> sensor_windows(controllers.size());
  std::vector<std::vector<core::ControllerFaultWindow>> failure_windows(
      controllers.size());
  for (const scenario::SensorFault& f : config.faults.sensors) {
    const IntersectionId node =
        resolve_node(network, f.node.row, f.node.col, "sensor fault");
    sensor_windows[node.index()].push_back(
        {f.start_s, f.end_s, f.kind, f.bias, f.noise_magnitude});
  }
  for (const scenario::ControllerFault& f : config.faults.controllers) {
    const IntersectionId node =
        resolve_node(network, f.node.row, f.node.col, "controller fault");
    failure_windows[node.index()].push_back({f.fail_s, f.recover_s});
  }

  for (const net::Intersection& node : network.intersections()) {
    const std::size_t i = node.id.index();
    if (sensor_windows[i].empty() && failure_windows[i].empty()) continue;
    // The degraded-mode fallback is classical pre-timed control, built from
    // the junction's effective spec's fixed-time parameters (so an overridden
    // corridor junction fails over with its own offsets intact).
    core::ControllerSpec fallback_spec;
    fallback_spec.type = core::ControllerType::FixedTime;
    fallback_spec.fixed_time = effective_spec(config, network, node.id).fixed_time;
    controllers[i] = std::make_unique<core::FaultInjectedController>(
        std::move(controllers[i]),
        core::make_controller(fallback_spec, core::make_plan(network, node)),
        std::move(failure_windows[i]), std::move(sensor_windows[i]),
        config.seed + kFaultSeedSalt, static_cast<std::uint64_t>(i));
  }
  return controllers;
}

std::vector<CapacityEvent> build_capacity_events(const scenario::ScenarioConfig& config,
                                                 const net::Network& network) {
  std::vector<CapacityEvent> events;
  events.reserve(config.faults.capacity.size() * 2);
  for (const scenario::CapacityFault& f : config.faults.capacity) {
    const RoadId road = resolve_approach(network, f.road.row, f.road.col, f.road.side,
                                         "capacity fault");
    const int design = network.road(road).capacity;
    const int reduced = static_cast<int>(f.capacity_factor * design);
    events.push_back({f.start_s, road, reduced});
    if (f.end_s < std::numeric_limits<double>::infinity()) {
      events.push_back({f.end_s, road, design});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

template <>
microsim::MicroSim construct_backend<microsim::MicroSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers) {
  return microsim::MicroSim(network, config.micro, std::move(controllers), demand,
                            config.seed + kMicroSeedSalt);
}

template <>
queuesim::QueueSim construct_backend<queuesim::QueueSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers) {
  return queuesim::QueueSim(network, config.queue, std::move(controllers), demand);
}

}  // namespace abp::sim
