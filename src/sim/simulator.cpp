#include "src/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/adaptive_controller.hpp"
#include "src/core/factory.hpp"
#include "src/core/fault_controller.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/net/validation.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/shard/sharded_simulator.hpp"
#include "src/sim/run_setup.hpp"
#include "src/sim/simulator_guard.hpp"

namespace abp::sim {
namespace {

// Owns the full object graph of one run: network, demand, backend. Members
// are declared in dependency order — the backend holds references into the
// network and the demand generator, so it is constructed last and destroyed
// first. Both backends expose the same member names for the interface
// surface, so one adapter covers them.
//
// Fault execution lives here, not in the backends: run_until() advances the
// backend in slices bounded by the next due capacity event / guard check,
// applying each through the backend's sequential-phase hooks. Slicing is
// free of behavioral effect — run_until(a); run_until(b) is the same tick
// sequence as run_until(b) — so a run whose schedule never fires is
// bit-identical to a fault-free run, and when the schedule is empty and the
// guard is off the adapter forwards straight to the backend (zero cost).
template <typename Backend>
class BackendSimulator final : public Simulator {
 public:
  explicit BackendSimulator(const scenario::ScenarioConfig& config)
      : network_(build_validated(effective_grid(config))),
        demand_(network_, config.demand, config.seed),
        sim_(construct_backend<Backend>(
            config, network_, demand_,
            make_run_controllers(config, network_, &adaptive_))),
        events_(build_capacity_events(config, network_)) {
    if (config.guard.enabled) {
      if (!(config.guard.interval_s > 0.0)) {
        throw std::invalid_argument("guard interval must be positive");
      }
      guard_.emplace(config.guard.policy);
      guard_interval_s_ = config.guard.interval_s;
      next_guard_s_ = guard_interval_s_;
    }
    plain_ = events_.empty() && !guard_;
  }

  void watch_road(RoadId road, std::string series_name) override {
    sim_.watch_road(road, std::move(series_name));
  }

  stats::RunResult& run_until(double until_s) override {
    if (plain_) return export_detections(sim_.run_until(until_s));
    for (;;) {
      double target = until_s;
      if (next_event_ < events_.size()) {
        target = std::min(target, events_[next_event_].time_s);
      }
      if (guard_) target = std::min(target, next_guard_s_);
      stats::RunResult& result = sim_.run_until(target);
      const double now_s = sim_.now();
      while (next_event_ < events_.size() && events_[next_event_].time_s <= now_s) {
        sim_.set_road_capacity(events_[next_event_].road, events_[next_event_].capacity);
        ++next_event_;
      }
      if (guard_ && now_s >= next_guard_s_) {
        guard_->check(*this, result.metrics, result.guard);
        // Step strictly past `now`: a horizon jump larger than the interval
        // triggers one check, not a burst of catch-up checks.
        while (next_guard_s_ <= now_s) next_guard_s_ += guard_interval_s_;
      }
      if (now_s >= until_s) return export_detections(result);
    }
  }

  stats::RunResult finish(double duration_s) override {
    if (!plain_) run_until(duration_s);
    stats::RunResult result = sim_.finish(duration_s);
    export_detections(result);
    // Final check on the closed books: end-of-run accounting (records closed
    // by finish) must still conserve vehicles.
    if (guard_) guard_->check(*this, result.metrics, result.guard);
    return result;
  }

  [[nodiscard]] double now() const noexcept override { return sim_.now(); }
  [[nodiscard]] int vehicles_in_network() const override {
    return sim_.vehicles_in_network();
  }
  [[nodiscard]] int road_occupancy(RoadId road) const override {
    return sim_.road_occupancy(road);
  }
  [[nodiscard]] int queued_on_road(RoadId road) const override {
    return sim_.queued_on_road(road);
  }
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const override {
    return sim_.displayed_phase(node);
  }
  [[nodiscard]] const net::Network& network() const noexcept override { return network_; }

 private:
  // Rebuilds result.detections from the junction monitors: events merged
  // into one stream ordered by (time, row, col), samples summed. Junction
  // streams are already time-sorted, and at equal times junction-index order
  // is (row, col) order, so a stable sort by time alone yields the canonical
  // order. No-op (and detections stays empty) in a detector-free run.
  stats::RunResult& export_detections(stats::RunResult& result) {
    if (adaptive_.empty()) return result;
    result.detections.samples = 0;
    result.detections.events.clear();
    for (const core::AdaptiveController* controller : adaptive_) {
      const detect::JunctionMonitor& monitor = controller->monitor();
      result.detections.samples += monitor.samples();
      result.detections.events.insert(result.detections.events.end(),
                                      monitor.events().begin(),
                                      monitor.events().end());
    }
    std::stable_sort(result.detections.events.begin(), result.detections.events.end(),
                     [](const stats::DetectionEvent& a, const stats::DetectionEvent& b) {
                       return a.time_s < b.time_s;
                     });
    return result;
  }

  net::Network network_;
  traffic::DemandGenerator demand_;
  // AdaptiveController per junction when the detector is enabled (empty
  // otherwise); pointees owned by sim_'s controllers. Declared before sim_:
  // filled while sim_'s initializer builds the controller set.
  std::vector<const core::AdaptiveController*> adaptive_;
  Backend sim_;
  // Time-sorted capacity events; next_event_ is the first not yet applied.
  std::vector<CapacityEvent> events_;
  std::size_t next_event_ = 0;
  std::optional<SimulatorGuard> guard_;
  double guard_interval_s_ = 0.0;
  double next_guard_s_ = 0.0;
  // True when there is nothing to inject or check: run_until forwards
  // directly to the backend.
  bool plain_ = true;
};

}  // namespace

std::unique_ptr<Simulator> make_simulator(const scenario::ScenarioConfig& config) {
  scenario::validate_or_throw(config.faults);
  if (config.detector.enabled) {
    const detect::DetectorConfig& d = config.detector;
    if (d.window_samples < 1) {
      throw std::invalid_argument("detector window_samples must be at least 1");
    }
    if (d.warmup_samples < 1) {
      throw std::invalid_argument("detector warmup_samples must be at least 1");
    }
    if (!(d.drift >= 0.0)) throw std::invalid_argument("detector drift must be >= 0");
    if (!(d.threshold > 0.0)) {
      throw std::invalid_argument("detector threshold must be positive");
    }
    if (!(d.min_sigma > 0.0)) {
      throw std::invalid_argument("detector min_sigma must be positive");
    }
    if (d.min_links < 1) {
      throw std::invalid_argument("detector min_links must be at least 1");
    }
    if (!(d.fuse_window_s > 0.0)) {
      throw std::invalid_argument("detector fuse_window_s must be positive");
    }
    if (!(d.cooldown_s >= 0.0)) {
      throw std::invalid_argument("detector cooldown_s must be >= 0");
    }
  }
  if (config.shard.count < 1) {
    throw std::invalid_argument("shard.count must be at least 1");
  }
  std::unique_ptr<Simulator> sim;
  if (config.shard.count > 1) {
    // Multi-process (or in-process multi-worker) sharded run; bit-identical
    // to the monolithic path below (docs/SHARDING.md).
    sim = shard::make_sharded_simulator(config);
  } else if (config.simulator == scenario::SimulatorKind::Micro) {
    sim = std::make_unique<BackendSimulator<microsim::MicroSim>>(config);
  } else {
    sim = std::make_unique<BackendSimulator<queuesim::QueueSim>>(config);
  }
  for (const scenario::WatchSpec& w : config.watches) {
    sim->watch_road(resolve_watch(sim->network(), w), w.name);
  }
  return sim;
}

}  // namespace abp::sim
