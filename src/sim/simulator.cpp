#include "src/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "src/core/factory.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/net/validation.hpp"
#include "src/queuesim/queue_sim.hpp"

namespace abp::sim {
namespace {

// Builds and validates the grid before any backend state references it.
net::Network build_validated(const net::GridConfig& grid) {
  net::Network network = net::build_grid(grid);
  net::validate_or_throw(network);
  return network;
}

RoadId resolve_watch(const net::Network& network, const scenario::WatchSpec& w) {
  const auto node = network.at_grid(w.row, w.col);
  if (!node) throw std::invalid_argument("watch references a junction outside the grid");
  const RoadId road = network.intersection(*node).incoming_on(w.side);
  if (!road.valid()) throw std::invalid_argument("watched junction has no such approach");
  return road;
}

// Per-backend construction (the only thing the two backends don't share):
// returned as a prvalue so guaranteed copy elision constructs the simulator
// in place — the backends hold reference members and are not movable.
template <typename Backend>
Backend construct_backend(const scenario::ScenarioConfig& config,
                          const net::Network& network, traffic::DemandGenerator& demand);

template <>
microsim::MicroSim construct_backend<microsim::MicroSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand) {
  return microsim::MicroSim(network, config.micro,
                            core::make_controllers(config.controller, network), demand,
                            config.seed + 0x5157u);
}

template <>
queuesim::QueueSim construct_backend<queuesim::QueueSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand) {
  return queuesim::QueueSim(network, config.queue,
                            core::make_controllers(config.controller, network), demand);
}

// Owns the full object graph of one run: network, demand, backend. Members
// are declared in dependency order — the backend holds references into the
// network and the demand generator, so it is constructed last and destroyed
// first. Both backends expose the same member names for the interface
// surface, so one adapter covers them.
template <typename Backend>
class BackendSimulator final : public Simulator {
 public:
  explicit BackendSimulator(const scenario::ScenarioConfig& config)
      : network_(build_validated(config.grid)),
        demand_(network_, config.demand, config.seed),
        sim_(construct_backend<Backend>(config, network_, demand_)) {}

  void watch_road(RoadId road, std::string series_name) override {
    sim_.watch_road(road, std::move(series_name));
  }
  stats::RunResult& run_until(double until_s) override { return sim_.run_until(until_s); }
  stats::RunResult finish(double duration_s) override { return sim_.finish(duration_s); }
  [[nodiscard]] double now() const noexcept override { return sim_.now(); }
  [[nodiscard]] int vehicles_in_network() const override {
    return sim_.vehicles_in_network();
  }
  [[nodiscard]] int road_occupancy(RoadId road) const override {
    return sim_.road_occupancy(road);
  }
  [[nodiscard]] int queued_on_road(RoadId road) const override {
    return sim_.queued_on_road(road);
  }
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const override {
    return sim_.displayed_phase(node);
  }
  [[nodiscard]] const net::Network& network() const noexcept override { return network_; }

 private:
  net::Network network_;
  traffic::DemandGenerator demand_;
  Backend sim_;
};

}  // namespace

std::unique_ptr<Simulator> make_simulator(const scenario::ScenarioConfig& config) {
  std::unique_ptr<Simulator> sim;
  if (config.simulator == scenario::SimulatorKind::Micro) {
    sim = std::make_unique<BackendSimulator<microsim::MicroSim>>(config);
  } else {
    sim = std::make_unique<BackendSimulator<queuesim::QueueSim>>(config);
  }
  for (const scenario::WatchSpec& w : config.watches) {
    sim->watch_road(resolve_watch(sim->network(), w), w.name);
  }
  return sim;
}

}  // namespace abp::sim
