#include "src/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/adaptive_controller.hpp"
#include "src/core/factory.hpp"
#include "src/core/fault_controller.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/net/validation.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/sim/simulator_guard.hpp"

namespace abp::sim {
namespace {

// Seed salt for the fault decorators' noise streams: keeps them disjoint
// from the demand streams (config.seed) and the micro dawdle/sensor streams
// (config.seed + 0x5157), whatever junction index is used as the stream id.
constexpr std::uint64_t kFaultSeedSalt = 0xFA17ULL;

// Builds and validates the grid before any backend state references it.
net::Network build_validated(const net::GridConfig& grid) {
  net::Network network = net::build_grid(grid);
  net::validate_or_throw(network);
  return network;
}

IntersectionId resolve_node(const net::Network& network, int row, int col,
                            const char* what) {
  const auto node = network.at_grid(row, col);
  if (!node) {
    throw std::invalid_argument(std::string(what) +
                                " references a junction outside the grid");
  }
  return *node;
}

RoadId resolve_approach(const net::Network& network, int row, int col, net::Side side,
                        const char* what) {
  const IntersectionId node = resolve_node(network, row, col, what);
  const RoadId road = network.intersection(node).incoming_on(side);
  if (!road.valid()) {
    throw std::invalid_argument(std::string(what) + " names a missing approach");
  }
  return road;
}

RoadId resolve_watch(const net::Network& network, const scenario::WatchSpec& w) {
  return resolve_approach(network, w.row, w.col, w.side, "watch");
}

// The effective per-junction ControllerSpec: the run-wide spec, unless a
// controller override names the junction (last matching override wins).
const core::ControllerSpec& effective_spec(const scenario::ScenarioConfig& config,
                                           const net::Network& network,
                                           IntersectionId node) {
  const core::ControllerSpec* spec = &config.controller;
  for (const scenario::ControllerOverride& o : config.controller_overrides) {
    const IntersectionId target =
        resolve_node(network, o.node.row, o.node.col, "controller override");
    if (target == node) spec = &o.spec;
  }
  return *spec;
}

// The incident-tuned variant of a spec, for AdaptiveController's upward-shift
// mode (docs/CHANGEPOINT.md, "Re-tuning"). The shared idea: under a detected
// overload regime, hold phases longer — every transition inserts an amber
// interval that serves nobody, and amber loss is pure waste precisely when
// every approach is saturated. Returns nullopt when the policy has no useful
// variant (classical fixed-time; UTIL-BP already holding maximally):
// adaptation then degrades to reset-on-detection.
std::optional<core::ControllerSpec> retuned_spec(const core::ControllerSpec& spec) {
  core::ControllerSpec tuned = spec;
  switch (spec.type) {
    case core::ControllerType::UtilBp:
      // G* = 0 removes the sentinel's early-switch pressure: phases hold
      // until the backlog comparison itself flips, trading responsiveness
      // for fewer amber insertions.
      if (spec.util.gstar_policy == core::GStarPolicy::Zero) return std::nullopt;
      tuned.util.gstar_policy = core::GStarPolicy::Zero;
      return tuned;
    case core::ControllerType::CapBp:
    case core::ControllerType::OriginalBp:
      // Double the slot period: half the decision (and amber) rate. Also
      // force the work-conserving fallback — idling a whole doubled slot
      // would be twice as costly.
      tuned.fixed_slot.period_s = 2.0 * spec.fixed_slot.period_s;
      tuned.fixed_slot.work_conserving = true;
      return tuned;
    case core::ControllerType::FixedTime:
      return std::nullopt;
  }
  return std::nullopt;
}

// One controller per intersection — the run-wide spec with any per-junction
// overrides applied — wrapped (inside out) in a core::AdaptiveController when
// the scenario enables the changepoint detector, and in a
// core::FaultInjectedController at the junctions named by the fault schedule.
// That order puts the monitor behind the fault decorator, so it watches
// exactly the possibly-faulted readings the policy acts on. Junctions without
// faults in a detector-free run keep their plain controller — a run with an
// empty schedule builds exactly the controller set it always has.
//
// When `monitors` is non-null it receives one AdaptiveController pointer per
// junction (in junction-index order); the pointees are owned by the returned
// controllers (directly or via their fault wrapper) and stay stable for the
// simulator's lifetime.
std::vector<core::ControllerPtr> make_run_controllers(
    const scenario::ScenarioConfig& config, const net::Network& network,
    std::vector<const core::AdaptiveController*>* monitors) {
  std::vector<core::ControllerPtr> controllers;
  if (config.controller_overrides.empty() && !config.detector.enabled) {
    controllers = core::make_controllers(config.controller, network);
  } else {
    // Validate every override (resolve_node throws on out-of-grid nodes) and
    // stamp each junction from its effective spec.
    controllers.reserve(network.intersections().size());
    double cap = 0.0;
    for (const net::Road& road : network.roads()) {
      cap = std::max(cap, static_cast<double>(road.capacity));
    }
    for (const net::Intersection& node : network.intersections()) {
      const core::ControllerSpec& spec = effective_spec(config, network, node.id);
      core::ControllerPtr controller =
          core::make_controller(spec, core::make_plan(network, node), cap);
      if (config.detector.enabled) {
        core::ControllerPtr tuned;
        if (const auto tuned_spec = retuned_spec(spec)) {
          tuned = core::make_controller(*tuned_spec, core::make_plan(network, node), cap);
        }
        auto adaptive = std::make_unique<core::AdaptiveController>(
            std::move(controller), std::move(tuned),
            detect::JunctionMonitor(config.detector,
                                    static_cast<int>(node.links.size()),
                                    node.grid_row, node.grid_col));
        if (monitors != nullptr) monitors->push_back(adaptive.get());
        controller = std::move(adaptive);
      }
      controllers.push_back(std::move(controller));
    }
  }
  if (config.faults.sensors.empty() && config.faults.controllers.empty()) {
    return controllers;
  }

  std::vector<std::vector<core::SensorFaultWindow>> sensor_windows(controllers.size());
  std::vector<std::vector<core::ControllerFaultWindow>> failure_windows(
      controllers.size());
  for (const scenario::SensorFault& f : config.faults.sensors) {
    const IntersectionId node =
        resolve_node(network, f.node.row, f.node.col, "sensor fault");
    sensor_windows[node.index()].push_back(
        {f.start_s, f.end_s, f.kind, f.bias, f.noise_magnitude});
  }
  for (const scenario::ControllerFault& f : config.faults.controllers) {
    const IntersectionId node =
        resolve_node(network, f.node.row, f.node.col, "controller fault");
    failure_windows[node.index()].push_back({f.fail_s, f.recover_s});
  }

  for (const net::Intersection& node : network.intersections()) {
    const std::size_t i = node.id.index();
    if (sensor_windows[i].empty() && failure_windows[i].empty()) continue;
    // The degraded-mode fallback is classical pre-timed control, built from
    // the junction's effective spec's fixed-time parameters (so an overridden
    // corridor junction fails over with its own offsets intact).
    core::ControllerSpec fallback_spec;
    fallback_spec.type = core::ControllerType::FixedTime;
    fallback_spec.fixed_time = effective_spec(config, network, node.id).fixed_time;
    controllers[i] = std::make_unique<core::FaultInjectedController>(
        std::move(controllers[i]),
        core::make_controller(fallback_spec, core::make_plan(network, node)),
        std::move(failure_windows[i]), std::move(sensor_windows[i]),
        config.seed + kFaultSeedSalt, static_cast<std::uint64_t>(i));
  }
  return controllers;
}

// A capacity change the adapter applies once sim time reaches time_s.
struct CapacityEvent {
  double time_s = 0.0;
  RoadId road;
  int capacity = 0;
};

// Expands the schedule's capacity faults into a time-sorted event list:
// a drop to floor(factor * W) at start_s, and (for finite windows) a
// restoration to the design W at end_s. Stable sort: simultaneous events
// apply in schedule order, so "last writer wins" is well defined and
// deterministic.
std::vector<CapacityEvent> build_capacity_events(const scenario::ScenarioConfig& config,
                                                 const net::Network& network) {
  std::vector<CapacityEvent> events;
  events.reserve(config.faults.capacity.size() * 2);
  for (const scenario::CapacityFault& f : config.faults.capacity) {
    const RoadId road = resolve_approach(network, f.road.row, f.road.col, f.road.side,
                                         "capacity fault");
    const int design = network.road(road).capacity;
    const int reduced = static_cast<int>(f.capacity_factor * design);
    events.push_back({f.start_s, road, reduced});
    if (f.end_s < std::numeric_limits<double>::infinity()) {
      events.push_back({f.end_s, road, design});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

// Per-backend construction (the only thing the two backends don't share):
// returned as a prvalue so guaranteed copy elision constructs the simulator
// in place — the backends hold reference members and are not movable.
template <typename Backend>
Backend construct_backend(const scenario::ScenarioConfig& config,
                          const net::Network& network, traffic::DemandGenerator& demand,
                          std::vector<core::ControllerPtr> controllers);

template <>
microsim::MicroSim construct_backend<microsim::MicroSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers) {
  return microsim::MicroSim(network, config.micro, std::move(controllers), demand,
                            config.seed + 0x5157u);
}

template <>
queuesim::QueueSim construct_backend<queuesim::QueueSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers) {
  return queuesim::QueueSim(network, config.queue, std::move(controllers), demand);
}

// Owns the full object graph of one run: network, demand, backend. Members
// are declared in dependency order — the backend holds references into the
// network and the demand generator, so it is constructed last and destroyed
// first. Both backends expose the same member names for the interface
// surface, so one adapter covers them.
//
// Fault execution lives here, not in the backends: run_until() advances the
// backend in slices bounded by the next due capacity event / guard check,
// applying each through the backend's sequential-phase hooks. Slicing is
// free of behavioral effect — run_until(a); run_until(b) is the same tick
// sequence as run_until(b) — so a run whose schedule never fires is
// bit-identical to a fault-free run, and when the schedule is empty and the
// guard is off the adapter forwards straight to the backend (zero cost).
template <typename Backend>
class BackendSimulator final : public Simulator {
 public:
  explicit BackendSimulator(const scenario::ScenarioConfig& config)
      : network_(build_validated(config.grid)),
        demand_(network_, config.demand, config.seed),
        sim_(construct_backend<Backend>(
            config, network_, demand_,
            make_run_controllers(config, network_, &adaptive_))),
        events_(build_capacity_events(config, network_)) {
    if (config.guard.enabled) {
      if (!(config.guard.interval_s > 0.0)) {
        throw std::invalid_argument("guard interval must be positive");
      }
      guard_.emplace(config.guard.policy);
      guard_interval_s_ = config.guard.interval_s;
      next_guard_s_ = guard_interval_s_;
    }
    plain_ = events_.empty() && !guard_;
  }

  void watch_road(RoadId road, std::string series_name) override {
    sim_.watch_road(road, std::move(series_name));
  }

  stats::RunResult& run_until(double until_s) override {
    if (plain_) return export_detections(sim_.run_until(until_s));
    for (;;) {
      double target = until_s;
      if (next_event_ < events_.size()) {
        target = std::min(target, events_[next_event_].time_s);
      }
      if (guard_) target = std::min(target, next_guard_s_);
      stats::RunResult& result = sim_.run_until(target);
      const double now_s = sim_.now();
      while (next_event_ < events_.size() && events_[next_event_].time_s <= now_s) {
        sim_.set_road_capacity(events_[next_event_].road, events_[next_event_].capacity);
        ++next_event_;
      }
      if (guard_ && now_s >= next_guard_s_) {
        guard_->check(*this, result.metrics, result.guard);
        // Step strictly past `now`: a horizon jump larger than the interval
        // triggers one check, not a burst of catch-up checks.
        while (next_guard_s_ <= now_s) next_guard_s_ += guard_interval_s_;
      }
      if (now_s >= until_s) return export_detections(result);
    }
  }

  stats::RunResult finish(double duration_s) override {
    if (!plain_) run_until(duration_s);
    stats::RunResult result = sim_.finish(duration_s);
    export_detections(result);
    // Final check on the closed books: end-of-run accounting (records closed
    // by finish) must still conserve vehicles.
    if (guard_) guard_->check(*this, result.metrics, result.guard);
    return result;
  }

  [[nodiscard]] double now() const noexcept override { return sim_.now(); }
  [[nodiscard]] int vehicles_in_network() const override {
    return sim_.vehicles_in_network();
  }
  [[nodiscard]] int road_occupancy(RoadId road) const override {
    return sim_.road_occupancy(road);
  }
  [[nodiscard]] int queued_on_road(RoadId road) const override {
    return sim_.queued_on_road(road);
  }
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const override {
    return sim_.displayed_phase(node);
  }
  [[nodiscard]] const net::Network& network() const noexcept override { return network_; }

 private:
  // Rebuilds result.detections from the junction monitors: events merged
  // into one stream ordered by (time, row, col), samples summed. Junction
  // streams are already time-sorted, and at equal times junction-index order
  // is (row, col) order, so a stable sort by time alone yields the canonical
  // order. No-op (and detections stays empty) in a detector-free run.
  stats::RunResult& export_detections(stats::RunResult& result) {
    if (adaptive_.empty()) return result;
    result.detections.samples = 0;
    result.detections.events.clear();
    for (const core::AdaptiveController* controller : adaptive_) {
      const detect::JunctionMonitor& monitor = controller->monitor();
      result.detections.samples += monitor.samples();
      result.detections.events.insert(result.detections.events.end(),
                                      monitor.events().begin(),
                                      monitor.events().end());
    }
    std::stable_sort(result.detections.events.begin(), result.detections.events.end(),
                     [](const stats::DetectionEvent& a, const stats::DetectionEvent& b) {
                       return a.time_s < b.time_s;
                     });
    return result;
  }

  net::Network network_;
  traffic::DemandGenerator demand_;
  // AdaptiveController per junction when the detector is enabled (empty
  // otherwise); pointees owned by sim_'s controllers. Declared before sim_:
  // filled while sim_'s initializer builds the controller set.
  std::vector<const core::AdaptiveController*> adaptive_;
  Backend sim_;
  // Time-sorted capacity events; next_event_ is the first not yet applied.
  std::vector<CapacityEvent> events_;
  std::size_t next_event_ = 0;
  std::optional<SimulatorGuard> guard_;
  double guard_interval_s_ = 0.0;
  double next_guard_s_ = 0.0;
  // True when there is nothing to inject or check: run_until forwards
  // directly to the backend.
  bool plain_ = true;
};

}  // namespace

std::unique_ptr<Simulator> make_simulator(const scenario::ScenarioConfig& config) {
  scenario::validate_or_throw(config.faults);
  if (config.detector.enabled) {
    const detect::DetectorConfig& d = config.detector;
    if (d.window_samples < 1) {
      throw std::invalid_argument("detector window_samples must be at least 1");
    }
    if (d.warmup_samples < 1) {
      throw std::invalid_argument("detector warmup_samples must be at least 1");
    }
    if (!(d.drift >= 0.0)) throw std::invalid_argument("detector drift must be >= 0");
    if (!(d.threshold > 0.0)) {
      throw std::invalid_argument("detector threshold must be positive");
    }
    if (!(d.min_sigma > 0.0)) {
      throw std::invalid_argument("detector min_sigma must be positive");
    }
    if (d.min_links < 1) {
      throw std::invalid_argument("detector min_links must be at least 1");
    }
    if (!(d.fuse_window_s > 0.0)) {
      throw std::invalid_argument("detector fuse_window_s must be positive");
    }
    if (!(d.cooldown_s >= 0.0)) {
      throw std::invalid_argument("detector cooldown_s must be >= 0");
    }
  }
  std::unique_ptr<Simulator> sim;
  if (config.simulator == scenario::SimulatorKind::Micro) {
    sim = std::make_unique<BackendSimulator<microsim::MicroSim>>(config);
  } else {
    sim = std::make_unique<BackendSimulator<queuesim::QueueSim>>(config);
  }
  for (const scenario::WatchSpec& w : config.watches) {
    sim->watch_road(resolve_watch(sim->network(), w), w.name);
  }
  return sim;
}

}  // namespace abp::sim
