// Runtime invariant guard: the cross-backend physical invariants of
// tests/cross_sim_invariants_test, compiled into an opt-in per-run checker.
//
// The invariant suite pins both backends at test time; long fault-injection
// campaigns want the same checks *during* a run, so a backend bug (or a bad
// fault schedule interaction) is caught at the violating tick with a usable
// message instead of surfacing as skewed end-of-run metrics. The guard reads
// only the public Simulator introspection hooks plus the run's metrics —
// exactly what the tests read — and is driven by the simulator adapter at
// GuardConfig::interval_s simulated-second cadence, in the sequential phase
// between ticks, so enabling it cannot perturb results (it performs no
// writes and consumes no RNG).
//
// Checks, per invocation:
//   * conservation: generated >= entered, and
//     entered == completed + vehicles_in_network;
//   * capacity safety: per road, 0 <= occupancy <= design capacity W, and
//     0 <= queued <= occupancy. The bound is the *design* W even mid-incident:
//     capacity faults only restrict admission (factor in [0, 1]), so physical
//     occupancy must still respect the road's geometry.
#pragma once

#include <stdexcept>
#include <string>

#include "src/scenario/fault_schedule.hpp"
#include "src/sim/simulator.hpp"

namespace abp::sim {

// Raised under GuardPolicy::Throw; inside an ExperimentRunner batch it is
// captured into the run's Error status like any other run failure.
class GuardViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SimulatorGuard {
 public:
  explicit SimulatorGuard(scenario::GuardPolicy policy) : policy_(policy) {}

  // Runs every check against the simulator's current state, applying the
  // policy to each violation found: Throw raises GuardViolationError on the
  // first one, Record appends to `report`, Abort writes the message to
  // stderr and calls std::abort(). Always increments report.checks.
  void check(const Simulator& simulator, const stats::NetworkMetrics& metrics,
             stats::GuardReport& report) const;

  [[nodiscard]] scenario::GuardPolicy policy() const noexcept { return policy_; }

 private:
  void handle(double now_s, std::string message, stats::GuardReport& report) const;

  scenario::GuardPolicy policy_;
};

}  // namespace abp::sim
