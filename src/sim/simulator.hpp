// Unified simulator interface: one abstraction over both backends.
//
// The repository has two simulators with deliberately identical run contracts
// — the microscopic car-following model (src/microsim) and the Section-II
// queueing-network model (src/queuesim, the fast surrogate). Everything above
// the backends (scenario assembly, the experiment runner, benches, the CLI,
// the cross-backend invariant tests) talks to this interface instead of
// branching on SimulatorKind: make_simulator() builds the network from the
// ScenarioConfig, validates it, wires demand and controllers, resolves the
// config's watches, and returns a Simulator that *owns* all of it — callers
// hold one handle with no lifetime bookkeeping.
//
// The introspection hooks are the cross-backend subset the invariant tests
// pin on both implementations (conservation, capacity bounds): anything
// backend-specific (lane positions, link credits) stays on the concrete
// classes, which remain public for the tests that exercise one backend's
// internals.
#pragma once

#include <memory>
#include <string>

#include "src/net/network.hpp"
#include "src/scenario/scenario_config.hpp"
#include "src/stats/run_result.hpp"

namespace abp::sim {

class Simulator {
 public:
  virtual ~Simulator() = default;

  // Registers a queue-length watch on a road (the paper's q_i series).
  virtual void watch_road(RoadId road, std::string series_name) = 0;

  // Advances the simulation to `until_s`; may be called repeatedly with
  // increasing horizons.
  virtual stats::RunResult& run_until(double until_s) = 0;

  // Runs to `duration_s`, closes per-vehicle records, returns the result.
  virtual stats::RunResult finish(double duration_s) = 0;

  [[nodiscard]] virtual double now() const noexcept = 0;

  // --- Cross-backend introspection hooks (invariant tests) ---
  // Total vehicles inside the network right now (O(1) in both backends).
  [[nodiscard]] virtual int vehicles_in_network() const = 0;
  // All vehicles currently on a road, bounded by its capacity W.
  [[nodiscard]] virtual int road_occupancy(RoadId road) const = 0;
  // Vehicles queued at the stop line of a road over all its movements (q_i
  // of Eq. 1: link queues in the queue model, approach-lane occupancy in the
  // microscopic model).
  [[nodiscard]] virtual int queued_on_road(RoadId road) const = 0;
  // Phase currently displayed at a junction.
  [[nodiscard]] virtual net::PhaseIndex displayed_phase(IntersectionId node) const = 0;

  // The network the simulator runs on (owned by the simulator).
  [[nodiscard]] virtual const net::Network& network() const noexcept = 0;
};

// Builds the configured backend with everything it needs — grid network
// (validated), demand generator, one controller per intersection (wrapped in
// core::FaultInjectedController where the fault schedule names the
// junction), resolved watches, capacity-fault events and the opt-in runtime
// invariant guard — all owned by the returned object. Throws
// std::invalid_argument on unresolvable watches / fault references and on
// invalid fault schedules or guard configs, and std::runtime_error on
// network validation failures, like run_scenario() always has. See
// docs/ROBUSTNESS.md for the fault-execution model.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(
    const scenario::ScenarioConfig& config);

}  // namespace abp::sim
