// Shared run-construction helpers: the pieces of make_simulator() that build
// one run's object graph from a ScenarioConfig — network validation, the
// controller set (overrides, detector wrapping, fault decorators), capacity
// fault expansion, watch resolution and the per-backend constructor calls.
//
// Split out of simulator.cpp so the sharding layer (src/shard) can construct
// each worker's *full* network / demand / controller graph through exactly
// the same code path as the monolithic BackendSimulator. Bit-identical
// K-shard results (docs/SHARDING.md) depend on every worker seeding every
// stream the same way the 1-shard run does; funneling all construction
// through this one header makes that a structural property instead of a
// convention.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/adaptive_controller.hpp"
#include "src/core/controller.hpp"
#include "src/net/grid.hpp"
#include "src/net/network.hpp"
#include "src/scenario/scenario_config.hpp"
#include "src/traffic/demand.hpp"
#include "src/util/ids.hpp"

namespace abp::microsim {
class MicroSim;
}
namespace abp::queuesim {
class QueueSim;
}

namespace abp::sim {

// Seed salt for the fault decorators' noise streams: keeps them disjoint
// from the demand streams (config.seed) and the micro dawdle/sensor streams
// (config.seed + kMicroSeedSalt), whatever junction index is used as the
// stream id.
inline constexpr std::uint64_t kFaultSeedSalt = 0xFA17ULL;
// Seed salt of the microscopic backend's own streams (dawdle, sensor noise).
inline constexpr std::uint64_t kMicroSeedSalt = 0x5157ULL;

// Builds and validates the grid before any backend state references it.
[[nodiscard]] net::Network build_validated(const net::GridConfig& grid);

// The grid the run actually builds: config.grid, with the surrogate
// calibration scales applied when the config enables them AND selects the
// queue backend. The micro backend always runs the design grid — it is the
// calibration target, so attaching a profile to a scenario must not perturb
// its micro pins. Every construction path (monolithic, sharded coordinator,
// shard workers) must funnel through this so a calibrated run is bit-identical
// at every shard/thread count.
[[nodiscard]] net::GridConfig effective_grid(const scenario::ScenarioConfig& config);

// Resolves a grid (row, col) reference; throws std::invalid_argument naming
// `what` when the node lies outside the grid.
[[nodiscard]] IntersectionId resolve_node(const net::Network& network, int row, int col,
                                          const char* what);

// Resolves the incoming road arriving at (row, col) from `side`.
[[nodiscard]] RoadId resolve_approach(const net::Network& network, int row, int col,
                                      net::Side side, const char* what);

[[nodiscard]] RoadId resolve_watch(const net::Network& network,
                                   const scenario::WatchSpec& w);

// One controller per intersection — the run-wide spec with any per-junction
// overrides applied — wrapped (inside out) in a core::AdaptiveController when
// the scenario enables the changepoint detector, and in a
// core::FaultInjectedController at the junctions named by the fault schedule.
// That order puts the monitor behind the fault decorator, so it watches
// exactly the possibly-faulted readings the policy acts on. Junctions without
// faults in a detector-free run keep their plain controller — a run with an
// empty schedule builds exactly the controller set it always has.
//
// When `monitors` is non-null it receives one AdaptiveController pointer per
// junction (in junction-index order); the pointees are owned by the returned
// controllers (directly or via their fault wrapper) and stay stable for the
// simulator's lifetime.
[[nodiscard]] std::vector<core::ControllerPtr> make_run_controllers(
    const scenario::ScenarioConfig& config, const net::Network& network,
    std::vector<const core::AdaptiveController*>* monitors);

// A capacity change the run loop applies once sim time reaches time_s.
struct CapacityEvent {
  double time_s = 0.0;
  RoadId road;
  int capacity = 0;
};

// Expands the schedule's capacity faults into a time-sorted event list:
// a drop to floor(factor * W) at start_s, and (for finite windows) a
// restoration to the design W at end_s. Stable sort: simultaneous events
// apply in schedule order, so "last writer wins" is well defined and
// deterministic.
[[nodiscard]] std::vector<CapacityEvent> build_capacity_events(
    const scenario::ScenarioConfig& config, const net::Network& network);

// Per-backend construction (the only thing the two backends don't share):
// returned as a prvalue so guaranteed copy elision constructs the simulator
// in place — the backends hold reference members and are not movable.
// Specialized for microsim::MicroSim and queuesim::QueueSim.
template <typename Backend>
Backend construct_backend(const scenario::ScenarioConfig& config,
                          const net::Network& network, traffic::DemandGenerator& demand,
                          std::vector<core::ControllerPtr> controllers);

template <>
microsim::MicroSim construct_backend<microsim::MicroSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers);

template <>
queuesim::QueueSim construct_backend<queuesim::QueueSim>(
    const scenario::ScenarioConfig& config, const net::Network& network,
    traffic::DemandGenerator& demand, std::vector<core::ControllerPtr> controllers);

}  // namespace abp::sim
