// Run-level metrics: the quantities the paper's evaluation reports.
//
// The headline metric is the average queuing time of a vehicle across the
// whole network (Fig. 2 / Table III): the time a vehicle spends stopped (or
// queued, in the queueing simulator) between entering and leaving the
// network. We also track throughput and entry blocking to diagnose runs.
#pragma once

#include <cstddef>

#include "src/util/accumulator.hpp"

namespace abp::stats {

struct NetworkMetrics {
  // Per-vehicle queuing time, sampled when the vehicle's record closes
  // (network exit, or simulation end for vehicles still inside).
  SampleSet queuing_time_s;
  // Per-vehicle total travel time in the network (exit - entry).
  SampleSet travel_time_s;

  // Vehicles that the demand process generated.
  std::size_t generated = 0;
  // Vehicles that actually entered the network.
  std::size_t entered = 0;
  // Vehicles that left through an exit road.
  std::size_t completed = 0;
  // Vehicles still in the network when the run ended.
  std::size_t in_network_at_end = 0;
  // Time vehicles spent blocked outside a full entry road, total (diagnostic).
  double entry_blocked_time_s = 0.0;

  [[nodiscard]] double average_queuing_time_s() const { return queuing_time_s.mean(); }
  [[nodiscard]] double average_travel_time_s() const { return travel_time_s.mean(); }
  // Fraction of entered vehicles that completed their route.
  [[nodiscard]] double completion_ratio() const {
    return entered == 0 ? 0.0
                        : static_cast<double>(completed) / static_cast<double>(entered);
  }
};

}  // namespace abp::stats
