// Fixed-width text tables for bench and example output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace abp::stats {

// Builds a left-padded fixed-width table. Rows may have fewer cells than the
// header; missing cells render empty.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Formats a double with the given precision (helper for callers).
  [[nodiscard]] static std::string num(double value, int precision = 2);

  // Renders with column separators and a header rule.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abp::stats
