#include "src/stats/timeseries.hpp"

#include <algorithm>

namespace abp::stats {

double TimeSeries::mean() const {
  if (values_.empty()) return 0.0;
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double TimeSeries::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::time_weighted_mean() const {
  if (times_.size() < 2) return mean();
  double weighted = 0.0;
  double span = 0.0;
  for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
    const double dt = times_[i + 1] - times_[i];
    if (dt <= 0.0) continue;
    weighted += values_[i] * dt;
    span += dt;
  }
  return span > 0.0 ? weighted / span : mean();
}

}  // namespace abp::stats
