// Common result bundle produced by both simulators.
#pragma once

#include <string>
#include <vector>

#include "src/stats/metrics.hpp"
#include "src/stats/phase_trace.hpp"
#include "src/stats/timeseries.hpp"

namespace abp::stats {

// One invariant violation caught by the runtime guard (sim::SimulatorGuard
// under GuardPolicy::Record).
struct GuardViolation {
  double time_s = 0.0;
  std::string message;
};

struct GuardReport {
  // Guard invocations over the run; 0 when the guard was disabled.
  std::size_t checks = 0;
  std::vector<GuardViolation> violations;
};

// One junction-level regime-shift event raised by the online changepoint
// monitor (detect::JunctionMonitor; see docs/CHANGEPOINT.md).
struct DetectionEvent {
  double time_s = 0.0;
  // Grid coordinates of the junction that raised the event.
  int row = 0;
  int col = 0;
  // +1 = upward mean shift (surge onset, incident spillback), -1 = downward
  // (recovery, detectors going quiet).
  int direction = 0;
  // The CUSUM statistic that crossed the threshold, in baseline-sigma units.
  double statistic = 0.0;
  // Implicated local link indices (canonical intersection link order),
  // ascending — the fused root-cause set.
  std::vector<int> links;
};

struct DetectionReport {
  // Observations consumed across all junction monitors; 0 when no detector
  // was configured.
  std::size_t samples = 0;
  // All junction events of the run, ordered by (time, row, col).
  std::vector<DetectionEvent> events;
};

struct RunResult {
  NetworkMetrics metrics;
  // One trace per intersection, indexed by IntersectionId::index().
  std::vector<PhaseTrace> phase_traces;
  // One series per registered road watch, in registration order.
  std::vector<TimeSeries> road_series;
  // Vehicles inside the network over time (sampled at the watch interval).
  // Boundedness of this series is the paper's stability notion (Section IV,
  // Q1): a stable controller keeps it bounded, an unstable one lets it grow.
  TimeSeries in_network_series{"in_network"};
  // Wall-clock-independent simulated duration of the run.
  double duration_s = 0.0;
  // Runtime invariant-guard report (empty unless ScenarioConfig::guard is
  // enabled; violations only under GuardPolicy::Record).
  GuardReport guard;
  // Online changepoint-detection report (empty unless
  // ScenarioConfig::detector is enabled).
  DetectionReport detections;
};

}  // namespace abp::stats
