// Sampled time series (queue lengths over time, Fig. 5).
#pragma once

#include <string>
#include <vector>

namespace abp::stats {

class TimeSeries {
 public:
  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  void push(double time, double value) {
    times_.push_back(time);
    values_.push_back(value);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  // Time-weighted average assuming piecewise-constant values between samples.
  [[nodiscard]] double time_weighted_mean() const;

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace abp::stats
