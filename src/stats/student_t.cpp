#include "src/stats/student_t.hpp"

#include <cmath>
#include <stdexcept>

namespace abp::stats {
namespace {

// Continued-fraction core of the incomplete beta function (modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete beta needs a, b > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction on the side where it converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, int df) {
  if (df < 1) throw std::invalid_argument("Student-t needs df >= 1");
  const double nu = static_cast<double>(df);
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(0.5 * nu, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, int df) {
  if (df < 1) throw std::invalid_argument("Student-t needs df >= 1");
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("Student-t quantile needs p in (0, 1)");
  }
  if (p == 0.5) return 0.0;
  // By symmetry, invert on the upper half only.
  if (p < 0.5) return -student_t_quantile(1.0 - p, df);

  // Bracket: grow hi until the CDF passes p (df = 1 has very heavy tails).
  double lo = 0.0;
  double hi = 2.0;
  while (student_t_cdf(hi, df) < p) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1.0e12) break;  // p indistinguishable from 1 at double precision
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // bisection hit double resolution
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace abp::stats
