#include "src/stats/report.hpp"

#include <algorithm>
#include <cstdio>

namespace abp::stats {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  print_row(header_);
  out << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace abp::stats
