#include "src/stats/phase_trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace abp::stats {

void PhaseTrace::record(double time, net::PhaseIndex phase) {
  if (finished_) throw std::logic_error("PhaseTrace::record after finish");
  if (!samples_.empty()) {
    if (time < samples_.back().time) {
      throw std::invalid_argument("PhaseTrace times must be non-decreasing");
    }
    if (samples_.back().phase == phase) {
      end_time_ = std::max(end_time_, time);
      return;  // compress runs of the same phase
    }
  }
  samples_.push_back({time, phase});
  end_time_ = std::max(end_time_, time);
}

void PhaseTrace::finish(double end_time) {
  if (!samples_.empty() && end_time < samples_.back().time) {
    throw std::invalid_argument("PhaseTrace end before last sample");
  }
  end_time_ = std::max(end_time_, end_time);
  finished_ = true;
}

int PhaseTrace::transition_count() const {
  int count = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // The initial sample counts only if it is an amber display following a
    // phase; an initial amber at t=0 is a start-up artefact, not a change.
    if (samples_[i].phase == net::kTransitionPhase && i > 0) ++count;
  }
  return count;
}

double PhaseTrace::time_in_phase(net::PhaseIndex phase) const {
  double total = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double until = (i + 1 < samples_.size()) ? samples_[i + 1].time : end_time_;
    if (samples_[i].phase == phase) total += until - samples_[i].time;
  }
  return total;
}

double PhaseTrace::amber_fraction() const {
  if (samples_.empty()) return 0.0;
  const double span = end_time_ - samples_.front().time;
  if (span <= 0.0) return 0.0;
  return time_in_phase(net::kTransitionPhase) / span;
}

std::vector<double> PhaseTrace::control_phase_durations() const {
  std::vector<double> durations;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].phase == net::kTransitionPhase) continue;
    const double until = (i + 1 < samples_.size()) ? samples_[i + 1].time : end_time_;
    const double d = until - samples_[i].time;
    if (d > 0.0) durations.push_back(d);
  }
  return durations;
}

}  // namespace abp::stats
