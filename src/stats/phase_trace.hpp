// Applied-phase traces (paper Fig. 3 / Fig. 4) and derived statistics.
//
// A PhaseTrace records the phase displayed by one junction over time,
// compressed to change points. From it we derive the number of transitions,
// the amber-time fraction and the distribution of control-phase durations —
// the quantities behind the paper's utilization argument (each change costs
// one amber period).
#pragma once

#include <vector>

#include "src/net/phase.hpp"

namespace abp::stats {

class PhaseTrace {
 public:
  struct Sample {
    double time = 0.0;
    net::PhaseIndex phase = net::kTransitionPhase;
  };

  // Records the displayed phase at `time`; consecutive identical phases are
  // compressed. Times must be non-decreasing.
  void record(double time, net::PhaseIndex phase);
  // Closes the trace at `end_time` so the last segment has a duration.
  void finish(double end_time);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double end_time() const noexcept { return end_time_; }

  // Number of transitions into the amber phase.
  [[nodiscard]] int transition_count() const;
  // Total time displaying a given phase.
  [[nodiscard]] double time_in_phase(net::PhaseIndex phase) const;
  // Fraction of the trace spent in the transition phase.
  [[nodiscard]] double amber_fraction() const;
  // Durations of every maximal interval spent in a control phase (>0).
  [[nodiscard]] std::vector<double> control_phase_durations() const;

 private:
  std::vector<Sample> samples_;
  double end_time_ = 0.0;
  bool finished_ = false;
};

}  // namespace abp::stats
