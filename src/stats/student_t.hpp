// Student-t distribution: CDF and quantile for small-sample confidence
// intervals.
//
// Replication counts in this repo are small (typically 5-30 seeds), where
// the normal approximation's 1.96 understates the 95% half-width badly
// (t_{0.975} is 2.776 at 4 degrees of freedom and 12.706 at 1). The CDF is
// evaluated through the regularized incomplete beta function (Lentz's
// continued fraction); the quantile inverts it by bisection — replications
// are summarized once per batch, so robustness beats speed here.
#pragma once

namespace abp::stats {

// Regularized incomplete beta function I_x(a, b) for a, b > 0 and x in
// [0, 1]. Exposed for testing; accurate to ~1e-12.
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

// P(T <= t) for T Student-t distributed with `df` degrees of freedom (>= 1).
[[nodiscard]] double student_t_cdf(double t, int df);

// Inverse CDF: the t with student_t_cdf(t, df) == p, for p in (0, 1).
// student_t_quantile(0.975, df) is the two-sided 95% critical value.
// Throws std::invalid_argument on df < 1 or p outside (0, 1).
[[nodiscard]] double student_t_quantile(double p, int df);

}  // namespace abp::stats
