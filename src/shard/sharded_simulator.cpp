#include "src/shard/sharded_simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "src/microsim/micro_sim.hpp"
#include "src/net/partition.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/shard/channel.hpp"
#include "src/shard/messages.hpp"
#include "src/shard/worker_core.hpp"
#include "src/sim/run_setup.hpp"

namespace abp::shard {
namespace {

struct PendingWatch {
  RoadId road;
  std::string name;
};

// Coordinator's view of the worker set, independent of transport.
class WorkerGroup {
 public:
  virtual ~WorkerGroup() = default;
  // Drives every worker to `until_s` and returns the merged slice counters.
  virtual SliceCounters run_until(double until_s) = 0;
  // Drives to `duration_s`, closes every worker's run, returns the reports
  // in shard order.
  virtual std::vector<WorkerReport> finish(double duration_s) = 0;
  virtual int query(int shard, QueryWhat what, std::uint32_t index) = 0;
};

// Merge rule for slice counters: every worker runs the full demand process
// (generated is global in each), but enters/completes only its own band.
void merge_counters(SliceCounters& into, const SliceCounters& c, bool first) {
  if (first) {
    into.now_s = c.now_s;
    into.generated = c.generated;
  }
  into.entered += c.entered;
  into.completed += c.completed;
}

// --- In-process group -------------------------------------------------------
// The coordinator owns every WorkerCore and runs the tick phases itself:
// phase A for all workers, phase B in ascending shard order (the token
// cascade), phase C for all. Under that order each recv's frame is already
// delivered, so the deque transport never blocks.

template <typename Backend>
class InProcGroup final : public WorkerGroup {
 public:
  InProcGroup(const scenario::ScenarioConfig& config, const net::ShardPlan& plan,
              const std::vector<PendingWatch>& watches)
      : router_(plan.count) {
    const int count = plan.count;
    links_.reserve(static_cast<std::size_t>(count));
    cores_.reserve(static_cast<std::size_t>(count));
    for (int s = 0; s < count; ++s) {
      links_.push_back(std::make_unique<InProcLinks>(router_, s));
      cores_.push_back(std::make_unique<WorkerCore<Backend>>(config, plan, s, *links_[s]));
      for (std::size_t i = 0; i < watches.size(); ++i) {
        cores_.back()->register_watch(static_cast<std::uint32_t>(i), watches[i].road,
                                      watches[i].name);
      }
    }
  }

  SliceCounters run_until(double until_s) override {
    drive(until_s);
    SliceCounters merged;
    for (std::size_t s = 0; s < cores_.size(); ++s) {
      merge_counters(merged, cores_[s]->counters(), s == 0);
    }
    return merged;
  }

  std::vector<WorkerReport> finish(double duration_s) override {
    drive(duration_s);
    std::vector<WorkerReport> reports;
    reports.reserve(cores_.size());
    for (auto& core : cores_) reports.push_back(core->finish(duration_s));
    return reports;
  }

  int query(int shard, QueryWhat what, std::uint32_t index) override {
    return cores_[static_cast<std::size_t>(shard)]->query(what, index);
  }

 private:
  void drive(double until_s) {
    while (cores_.front()->now() < until_s) {
      for (auto& core : cores_) core->phase_a();
      for (auto& core : cores_) core->phase_b();
      for (auto& core : cores_) core->phase_c();
    }
  }

  InProcRouter router_;
  std::vector<std::unique_ptr<InProcLinks>> links_;
  std::vector<std::unique_ptr<WorkerCore<Backend>>> cores_;
};

// --- Fork group -------------------------------------------------------------
// One forked process per shard; this side speaks the command/report protocol
// (Watches once, then RunUntil/Query/Finish) and the workers exchange the
// boundary frames among themselves over the seam rings.

template <typename Backend>
void worker_loop(const scenario::ScenarioConfig& config, const net::ShardPlan& plan,
                 int shard, BoundaryLinks& links) {
  WorkerCore<Backend> core(config, plan, shard, links);
  {
    Frame f = links.recv(kCoordinator);
    ByteReader r(f);
    check_header(r, FrameKind::Watches, 0);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t road = r.u32();
      std::string name = r.str();
      core.register_watch(i, RoadId{road}, std::move(name));
    }
  }
  const bool crash_armed =
      config.shard.crash_worker == shard && config.shard.crash_at_s >= 0.0;
  const auto drive = [&](double until_s) {
    while (core.now() < until_s) {
      if (crash_armed && core.now() >= config.shard.crash_at_s) _exit(3);
      core.tick();
    }
  };
  for (;;) {
    Frame f = links.recv(kCoordinator);
    ByteReader r(f);
    const auto kind = static_cast<FrameKind>(r.u8());
    r.u64();  // header tick slot; always 0 on command frames
    switch (kind) {
      case FrameKind::RunUntil: {
        drive(r.f64());
        const SliceCounters c = core.counters();
        ByteWriter w;
        write_header(w, FrameKind::SliceDone, 0);
        w.f64(c.now_s);
        w.u64(c.generated);
        w.u64(c.entered);
        w.u64(c.completed);
        links.send(kCoordinator, w.take());
        break;
      }
      case FrameKind::Query: {
        const auto what = static_cast<QueryWhat>(r.u8());
        const std::uint32_t index = r.u32();
        ByteWriter w;
        write_header(w, FrameKind::QueryReply, 0);
        w.i32(core.query(what, index));
        links.send(kCoordinator, w.take());
        break;
      }
      case FrameKind::Finish: {
        const double duration_s = r.f64();
        drive(duration_s);
        links.send(kCoordinator, encode_report(core.finish(duration_s)));
        return;  // the fork wrapper turns this into _exit(0)
      }
      default:
        throw std::runtime_error("shard worker: unexpected command frame");
    }
  }
}

class ForkGroup final : public WorkerGroup {
 public:
  ForkGroup(const scenario::ScenarioConfig& config, const net::ShardPlan& plan,
            const std::vector<PendingWatch>& watches)
      : count_(plan.count),
        transport_(plan.count, [&config, &plan](int shard, BoundaryLinks& links) {
          if (config.simulator == scenario::SimulatorKind::Micro) {
            worker_loop<microsim::MicroSim>(config, plan, shard, links);
          } else {
            worker_loop<queuesim::QueueSim>(config, plan, shard, links);
          }
        }) {
    ByteWriter w;
    write_header(w, FrameKind::Watches, 0);
    w.u32(static_cast<std::uint32_t>(watches.size()));
    for (const PendingWatch& pw : watches) {
      w.u32(static_cast<std::uint32_t>(pw.road.index()));
      w.str(pw.name);
    }
    const Frame frame = w.take();
    for (int s = 0; s < count_; ++s) transport_.send(s, frame);
  }

  SliceCounters run_until(double until_s) override {
    ByteWriter w;
    write_header(w, FrameKind::RunUntil, 0);
    w.f64(until_s);
    const Frame frame = w.take();
    for (int s = 0; s < count_; ++s) transport_.send(s, frame);
    SliceCounters merged;
    for (int s = 0; s < count_; ++s) {
      Frame f = transport_.recv(s);
      ByteReader r(f);
      check_header(r, FrameKind::SliceDone, 0);
      SliceCounters c;
      c.now_s = r.f64();
      c.generated = r.u64();
      c.entered = r.u64();
      c.completed = r.u64();
      merge_counters(merged, c, s == 0);
    }
    return merged;
  }

  std::vector<WorkerReport> finish(double duration_s) override {
    ByteWriter w;
    write_header(w, FrameKind::Finish, 0);
    w.f64(duration_s);
    const Frame frame = w.take();
    for (int s = 0; s < count_; ++s) transport_.send(s, frame);
    std::vector<WorkerReport> reports;
    reports.reserve(static_cast<std::size_t>(count_));
    for (int s = 0; s < count_; ++s) reports.push_back(decode_report(transport_.recv(s)));
    transport_.join_all();
    return reports;
  }

  int query(int shard, QueryWhat what, std::uint32_t index) override {
    ByteWriter w;
    write_header(w, FrameKind::Query, 0);
    w.u8(static_cast<std::uint8_t>(what));
    w.u32(index);
    transport_.send(shard, w.take());
    Frame f = transport_.recv(shard);
    ByteReader r(f);
    check_header(r, FrameKind::QueryReply, 0);
    return r.i32();
  }

 private:
  int count_;
  ForkGroupTransport transport_;
};

// --- ShardedSimulator -------------------------------------------------------

class ShardedSimulator final : public sim::Simulator {
 public:
  explicit ShardedSimulator(const scenario::ScenarioConfig& config)
      : config_(config),
        network_(sim::build_validated(sim::effective_grid(config))),
        plan_(net::partition_rows(network_, config.shard.count)) {
    if (config_.guard.enabled) {
      throw std::invalid_argument(
          "shard.count > 1 does not support the runtime invariant guard");
    }
    if (config_.simulator == scenario::SimulatorKind::Micro &&
        !config_.micro.sensor.perfect()) {
      throw std::invalid_argument(
          "shard.count > 1 requires a perfect sensor model on the microscopic "
          "backend (imperfect sensors draw per-junction randomness that masked "
          "junctions would skip)");
    }
    if (config_.simulator == scenario::SimulatorKind::Queue) {
      for (const net::BoundaryRoad& b : plan_.boundary) {
        if (network_.road(b.road).free_flow_time_s() <= config_.queue.step_s) {
          throw std::invalid_argument(
              "shard.count > 1 requires every boundary road's free-flow time to "
              "exceed queue.step_s");
        }
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (!config_.shard.allow_oversubscribe && hw != 0 &&
        static_cast<unsigned>(scenario::tick_threads(config_)) > hw) {
      throw std::invalid_argument(
          "shard.count x backend threads exceeds hardware concurrency; set "
          "shard.allow_oversubscribe to run anyway");
    }
  }

  void watch_road(RoadId road, std::string series_name) override {
    if (group_ != nullptr) {
      throw std::logic_error("sharded runs require all watches before the first step");
    }
    watches_.push_back({road, std::move(series_name)});
  }

  stats::RunResult& run_until(double until_s) override {
    ensure_started();
    const SliceCounters c = group_->run_until(until_s);
    now_ = c.now_s;
    result_.metrics.generated = static_cast<std::size_t>(c.generated);
    result_.metrics.entered = static_cast<std::size_t>(c.entered);
    result_.metrics.completed = static_cast<std::size_t>(c.completed);
    return result_;
  }

  stats::RunResult finish(double duration_s) override {
    if (finished_) throw std::logic_error("finish() called twice");
    ensure_started();
    std::vector<WorkerReport> reports = group_->finish(duration_s);
    finished_ = true;
    merge_reports(reports);
    now_ = result_.duration_s;
    return result_;
  }

  [[nodiscard]] double now() const noexcept override { return now_; }

  [[nodiscard]] int vehicles_in_network() const override {
    int total = 0;
    for (int s = 0; s < plan_.count; ++s) {
      total += mutable_group().query(s, QueryWhat::VehiclesInNetwork, 0);
    }
    return total;
  }

  [[nodiscard]] int road_occupancy(RoadId road) const override {
    return mutable_group().query(plan_.shard_of_road(road), QueryWhat::RoadOccupancy,
                                 static_cast<std::uint32_t>(road.index()));
  }

  [[nodiscard]] int queued_on_road(RoadId road) const override {
    return mutable_group().query(plan_.shard_of_road(road), QueryWhat::QueuedOnRoad,
                                 static_cast<std::uint32_t>(road.index()));
  }

  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const override {
    return mutable_group().query(plan_.shard_of_junction(node), QueryWhat::DisplayedPhase,
                                 static_cast<std::uint32_t>(node.index()));
  }

  [[nodiscard]] const net::Network& network() const noexcept override { return network_; }

 private:
  void ensure_started() {
    if (group_ != nullptr) return;
    if (config_.shard.in_process) {
      if (config_.simulator == scenario::SimulatorKind::Micro) {
        group_ = std::make_unique<InProcGroup<microsim::MicroSim>>(config_, plan_, watches_);
      } else {
        group_ = std::make_unique<InProcGroup<queuesim::QueueSim>>(config_, plan_, watches_);
      }
    } else {
      group_ = std::make_unique<ForkGroup>(config_, plan_, watches_);
    }
  }

  // The introspection overrides are const (interface contract) but must be
  // able to lazily start the group and exchange query frames.
  [[nodiscard]] WorkerGroup& mutable_group() const {
    auto* self = const_cast<ShardedSimulator*>(this);
    self->ensure_started();
    return *self->group_;
  }

  // Replays the workers' journals into the merged RunResult in exactly the
  // monolithic accumulation order, so every double accumulates in the same
  // sequence and the result is bit-identical (see docs/SHARDING.md).
  void merge_reports(std::vector<WorkerReport>& reports) {
    stats::NetworkMetrics& m = result_.metrics;
    m.generated = static_cast<std::size_t>(reports.front().generated);
    m.entered = 0;
    for (const WorkerReport& rep : reports) {
      m.entered += static_cast<std::size_t>(rep.entered);
    }
    result_.duration_s = reports.front().duration_s;

    // Completions: each worker's journal is (tick, exit_index)-sorted and no
    // two workers share an exit road, so one sort restores the global order
    // the monolithic apply_completions() accumulated in.
    std::vector<ReportCompletion> completions;
    for (WorkerReport& rep : reports) {
      completions.insert(completions.end(), rep.completions.begin(), rep.completions.end());
    }
    std::sort(completions.begin(), completions.end(),
              [](const ReportCompletion& a, const ReportCompletion& b) {
                return a.tick != b.tick ? a.tick < b.tick : a.exit_index < b.exit_index;
              });
    m.completed = 0;
    for (const ReportCompletion& c : completions) {
      m.completed += 1;
      m.queuing_time_s.add(c.waiting);
      m.travel_time_s.add(c.travel);
    }

    // Open records close after every completion in the monolithic finish(),
    // in global spawn order.
    std::vector<OpenRecord> opens;
    for (WorkerReport& rep : reports) {
      opens.insert(opens.end(), rep.opens.begin(), rep.opens.end());
    }
    std::sort(opens.begin(), opens.end(),
              [](const OpenRecord& a, const OpenRecord& b) { return a.spawn_seq < b.spawn_seq; });
    m.in_network_at_end = opens.size();
    for (const OpenRecord& o : opens) {
      m.queuing_time_s.add(o.waiting);
      m.travel_time_s.add(o.travel);
    }

    // Entry blocking: the monolithic admission pass adds blocked * dt per
    // tick walking the entry roads in order; replay the journaled nonzero
    // counts in that (tick, entry_index) order.
    const double step_s = config_.simulator == scenario::SimulatorKind::Micro
                              ? config_.micro.dt_s
                              : config_.queue.step_s;
    std::vector<ReportBlocked> blocked;
    for (WorkerReport& rep : reports) {
      blocked.insert(blocked.end(), rep.blocked.begin(), rep.blocked.end());
    }
    std::sort(blocked.begin(), blocked.end(),
              [](const ReportBlocked& a, const ReportBlocked& b) {
                return a.tick != b.tick ? a.tick < b.tick : a.entry_index < b.entry_index;
              });
    m.entry_blocked_time_s = 0.0;
    for (const ReportBlocked& b : blocked) {
      m.entry_blocked_time_s += static_cast<double>(b.count) * step_s;
    }

    // Vehicles-in-network series: workers sample the same schedule; the
    // global count at each sample is the element-wise sum of the bands.
    result_.in_network_series = stats::TimeSeries{"in_network"};
    if (!reports.empty()) {
      const std::vector<SeriesPoint>& base = reports.front().in_network_series;
      for (std::size_t i = 0; i < base.size(); ++i) {
        double total = 0.0;
        for (const WorkerReport& rep : reports) {
          total += rep.in_network_series[i].value;
        }
        result_.in_network_series.push(base[i].time, total);
      }
    }

    // Road watches: each series lives wholly at its road's owner.
    result_.road_series.clear();
    result_.road_series.reserve(watches_.size());
    for (const PendingWatch& pw : watches_) {
      result_.road_series.emplace_back(pw.name);
    }
    for (const WorkerReport& rep : reports) {
      for (const ReportSeries& s : rep.road_series) {
        stats::TimeSeries& out = result_.road_series[s.global_index];
        for (const SeriesPoint& p : s.points) out.push(p.time, p.value);
      }
    }

    // Phase traces: replay each owned junction's compressed samples and
    // close at the worker's end time.
    result_.phase_traces.assign(network_.intersections().size(), stats::PhaseTrace{});
    for (const WorkerReport& rep : reports) {
      for (const ReportPhaseTrace& t : rep.phase_traces) {
        stats::PhaseTrace& trace = result_.phase_traces[t.node_index];
        for (const stats::PhaseTrace::Sample& s : t.samples) trace.record(s.time, s.phase);
        trace.finish(t.end_time);
      }
    }

    // Detections: reports arrive in shard order and each worker lists its
    // junctions ascending, so concatenation is global junction order — the
    // order BackendSimulator::export_detections merges in. A stable sort by
    // time alone then yields its canonical (time, row, col) order.
    result_.detections.samples = 0;
    result_.detections.events.clear();
    for (const WorkerReport& rep : reports) {
      for (const ReportDetector& d : rep.detections) {
        result_.detections.samples += static_cast<std::size_t>(d.samples);
        result_.detections.events.insert(result_.detections.events.end(), d.events.begin(),
                                         d.events.end());
      }
    }
    std::stable_sort(result_.detections.events.begin(), result_.detections.events.end(),
                     [](const stats::DetectionEvent& a, const stats::DetectionEvent& b) {
                       return a.time_s < b.time_s;
                     });
  }

  scenario::ScenarioConfig config_;
  net::Network network_;
  net::ShardPlan plan_;
  std::vector<PendingWatch> watches_;
  std::unique_ptr<WorkerGroup> group_;
  stats::RunResult result_;
  double now_ = 0.0;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<sim::Simulator> make_sharded_simulator(
    const scenario::ScenarioConfig& config) {
  return std::make_unique<ShardedSimulator>(config);
}

}  // namespace abp::shard
