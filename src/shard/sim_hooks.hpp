// The narrow surface a backend simulator exposes to the sharding layer.
//
// A shard worker (src/shard/worker_core.hpp) owns one full-network backend
// simulator but simulates only its band of the grid: the junction phase,
// admission and the lane/queue sweeps are masked to the roads and junctions
// the worker owns, and every cross-band effect travels through explicit
// per-tick boundary messages (docs/SHARDING.md). This header defines the
// data that crosses that boundary — vehicle transfer payloads, mirrored lane
// rear states — plus the SimShardHooks staging block through which a sim
// hands its per-tick events (granted-away vehicles, completions, blocked
// counts, end-of-run open records) to its worker. It deliberately depends
// only on id and geometry types so both simulators can include it without
// pulling the shard layer's transport code into their translation units.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/net/geometry.hpp"
#include "src/util/ids.hpp"

namespace abp::shard {

// Mirrored rear-of-lane state of one lane of a boundary road, enough for the
// grantor's insertion-gap checks (MicroSim::entry_clear reads only the rear
// vehicle's position). The grantor materializes it as a "phantom" vehicle —
// an invalid VehicleId at `pos` — on its otherwise-unsimulated mirror lane.
struct LaneRear {
  bool occupied = false;
  double pos = 0.0;
};

// One vehicle granted across a band seam by the microscopic simulator: the
// grantor served it off its stop line into the junction box and the owner
// releases it onto `road` next tick, exactly as the monolithic run would
// have moved it between its own structures.
struct MicroTransfer {
  std::uint32_t road = 0;  // target road index (owned by the receiver)
  std::int32_t lane = 0;   // target lane on `road`
  std::uint64_t spawn_seq = 0;
  std::uint64_t next_turn = 0;
  double junction_exit = 0.0;  // time the junction box releases the vehicle
  double entry_time = 0.0;
  double waiting = 0.0;  // accumulated waiting total carried across
  std::vector<net::Turn> turns;  // the route's full turn sequence
};

// One vehicle served across a band seam by the queueing simulator: arrives on
// the owner's road `road` at `arrive_time` (stamped by the grantor with the
// exact serve_time + free-flow arithmetic of the monolithic path).
struct QueueTransfer {
  std::uint32_t road = 0;
  std::uint64_t spawn_seq = 0;
  std::uint64_t next_turn = 0;
  double arrive_time = 0.0;
  double entry_time = 0.0;
  double queue_time = 0.0;
  std::vector<net::Turn> turns;
};

// One vehicle completion this tick, in the sim's canonical accumulation
// order (exit-road order; FIFO within a road). The coordinator replays the
// merged streams into the run metrics in (tick, exit_index) order, which is
// exactly the order the monolithic run's apply_completions() added them.
struct CompletionRecord {
  std::uint32_t exit_index = 0;  // position in net_.exit_roads()
  double waiting = 0.0;
  double travel = 0.0;
};

// Nonzero entry-blocked accounting for one entry road this tick. Zero adds
// are the bitwise identity on the accumulated double, so only nonzero counts
// are recorded and replayed.
struct BlockedRecord {
  std::uint32_t entry_index = 0;  // position in net_.entry_roads()
  std::uint32_t count = 0;        // vehicles waiting outside this tick
};

// End-of-run record of a vehicle still in the network, emitted by finish()
// in spawn order. The coordinator merges the workers' streams by spawn_seq —
// the global order the monolithic finish() closes them in.
struct OpenRecord {
  std::uint64_t spawn_seq = 0;
  double waiting = 0.0;
  double travel = 0.0;
};

// Ownership masks plus per-tick event staging shared between a worker's
// backend simulator and its WorkerCore. The sim fills the outbox/logs during
// its tick phases; the worker drains them when assembling boundary messages
// and the per-tick event journal. Installed once, before the first step, via
// the sims' set_shard_hooks(); a null hooks pointer is the monolithic fast
// path and leaves every hot loop untouched.
struct SimShardHooks {
  // Masks by RoadId / IntersectionId index: nonzero = this worker simulates
  // it. Remote roads hold only mirror state (occupancy, queued counts, lane
  // rears) injected by the worker between phases.
  std::vector<char> own_road;
  std::vector<char> own_junction;
  // Micro: insertion point in in_junction_ for transfers from the lower-band
  // neighbor (recorded by step_begin after the release pass; see
  // MicroSim::ingest_transfer for the ordering argument).
  std::size_t junction_mark = 0;
  // Vehicles granted onto remote roads this tick, in grant (= node-index)
  // order. Exactly one of these is used per backend.
  std::vector<MicroTransfer> micro_outbox;
  std::vector<QueueTransfer> queue_outbox;
  // This tick's completions (in exit-road order) and nonzero blocked counts
  // (in entry-road order); cleared by the worker after each tick.
  std::vector<CompletionRecord> completions;
  std::vector<BlockedRecord> blocked;
  // Filled once by finish(): still-open vehicle records in spawn order.
  std::vector<OpenRecord> opens;
};

}  // namespace abp::shard
