#include "src/shard/channel.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sched.h>
#include <stdexcept>
#include <sys/mman.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace abp::shard {
namespace {

// 1 MiB of payload per ring; larger frames (end-of-run reports) stream
// through in chunks, so this bounds memory, not message size.
constexpr std::size_t kRingCapacity = std::size_t{1} << 20;
constexpr std::size_t kRingSlot = sizeof(RingHeader) + kRingCapacity;

// Blocked-side backoff: stay cheap on contended single-core machines (the
// dev boxes running the invariance tests) without adding measurable latency
// on idle multi-core ones.
void backoff(unsigned spin) {
  if (spin < 64) {
    sched_yield();
    return;
  }
  timespec ts{0, 50'000};  // 50us
  nanosleep(&ts, nullptr);
}

}  // namespace

// --- InProcRouter -----------------------------------------------------------

InProcRouter::InProcRouter(int workers)
    : mail_(static_cast<std::size_t>(workers),
            std::vector<std::deque<Frame>>(static_cast<std::size_t>(workers))) {}

void InProcRouter::post(int from, int to, Frame frame) {
  mail_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)].push_back(
      std::move(frame));
}

Frame InProcRouter::fetch(int to, int from) {
  auto& box = mail_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)];
  if (box.empty()) {
    // The in-process drive order (A for all, B ascending, C for all)
    // guarantees delivery before receipt; an empty box is a protocol bug.
    throw std::logic_error("shard in-process transport: recv before send");
  }
  Frame f = std::move(box.front());
  box.pop_front();
  return f;
}

// --- ShmRing ----------------------------------------------------------------

void ShmRing::write(const std::uint8_t* data, std::size_t n,
                    const std::function<void()>& on_wait) {
  std::size_t written = 0;
  unsigned spin = 0;
  while (written < n) {
    const std::uint64_t head = header_->head.load(std::memory_order_acquire);
    const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
    const std::size_t free = capacity_ - static_cast<std::size_t>(tail - head);
    if (free == 0) {
      if (on_wait) on_wait();
      backoff(spin++);
      continue;
    }
    spin = 0;
    std::size_t chunk = std::min(free, n - written);
    const std::size_t at = static_cast<std::size_t>(tail % capacity_);
    const std::size_t run = std::min(chunk, capacity_ - at);
    std::memcpy(buf_ + at, data + written, run);
    if (run < chunk) std::memcpy(buf_, data + written + run, chunk - run);
    written += chunk;
    header_->tail.store(tail + chunk, std::memory_order_release);
  }
}

void ShmRing::read(std::uint8_t* out, std::size_t n, const std::function<void()>& on_wait) {
  std::size_t got = 0;
  unsigned spin = 0;
  while (got < n) {
    const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
    const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    if (avail == 0) {
      if (on_wait) on_wait();
      backoff(spin++);
      continue;
    }
    spin = 0;
    std::size_t chunk = std::min(avail, n - got);
    const std::size_t at = static_cast<std::size_t>(head % capacity_);
    const std::size_t run = std::min(chunk, capacity_ - at);
    std::memcpy(out + got, buf_ + at, run);
    if (run < chunk) std::memcpy(out + got + run, buf_, chunk - run);
    got += chunk;
    header_->head.store(head + chunk, std::memory_order_release);
  }
}

void ShmRing::send_frame(const Frame& frame, const std::function<void()>& on_wait) {
  const std::uint64_t len = frame.size();
  write(reinterpret_cast<const std::uint8_t*>(&len), sizeof len, on_wait);
  write(frame.data(), frame.size(), on_wait);
}

Frame ShmRing::recv_frame(const std::function<void()>& on_wait) {
  std::uint64_t len = 0;
  read(reinterpret_cast<std::uint8_t*>(&len), sizeof len, on_wait);
  Frame frame(static_cast<std::size_t>(len));
  read(frame.data(), frame.size(), on_wait);
  return frame;
}

// --- RingArena --------------------------------------------------------------
// Slot layout: [seam up 0..K-2][seam down 0..K-2][command 0..K-1][report
// 0..K-1], where seam up i carries i -> i+1 and seam down i carries i+1 -> i.

RingArena::RingArena(int workers) : workers_(workers) {
  const std::size_t rings = 2 * static_cast<std::size_t>(workers - 1) +
                            2 * static_cast<std::size_t>(workers);
  size_ = rings * kRingSlot;
  mem_ = mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem_ == MAP_FAILED) {
    mem_ = nullptr;
    throw std::runtime_error("shard transport: mmap failed");
  }
  // MAP_ANONYMOUS memory is zeroed, which is exactly the initial ring state
  // (head == tail == 0); nothing further to construct.
}

RingArena::~RingArena() {
  if (mem_ != nullptr) munmap(mem_, size_);
}

ShmRing RingArena::ring(std::size_t index) const {
  return ShmRing(static_cast<std::uint8_t*>(mem_) + index * kRingSlot, kRingCapacity);
}

ShmRing RingArena::seam(int from, int to) const {
  const std::size_t seams = static_cast<std::size_t>(workers_ - 1);
  if (from < 0 || to < 0 || from >= workers_ || to >= workers_) {
    throw std::logic_error("shard transport: seam endpoint out of range");
  }
  if (to == from + 1) return ring(static_cast<std::size_t>(from));
  if (to == from - 1) return ring(seams + static_cast<std::size_t>(to));
  throw std::logic_error("shard transport: seam rings connect adjacent shards only");
}

ShmRing RingArena::command(int worker) const {
  const std::size_t seams = static_cast<std::size_t>(workers_ - 1);
  return ring(2 * seams + static_cast<std::size_t>(worker));
}

ShmRing RingArena::report(int worker) const {
  const std::size_t seams = static_cast<std::size_t>(workers_ - 1);
  return ring(2 * seams + static_cast<std::size_t>(workers_) +
              static_cast<std::size_t>(worker));
}

// --- ForkWorkerLinks --------------------------------------------------------

ForkWorkerLinks::ForkWorkerLinks(const RingArena& arena, int self)
    : self_(self), to_coord_(arena.report(self)), from_coord_(arena.command(self)) {
  // Seam rings only exist toward actual neighbors; the default-constructed
  // rings are never touched (WorkerCore skips missing neighbors).
  if (self > 0) {
    to_prev_ = arena.seam(self, self - 1);
    from_prev_ = arena.seam(self - 1, self);
  }
  if (self + 1 < arena.workers()) {
    to_next_ = arena.seam(self, self + 1);
    from_next_ = arena.seam(self + 1, self);
  }
}

ShmRing& ForkWorkerLinks::ring_to(int peer) {
  if (peer == kCoordinator) return to_coord_;
  return peer < self_ ? to_prev_ : to_next_;
}

ShmRing& ForkWorkerLinks::ring_from(int peer) {
  if (peer == kCoordinator) return from_coord_;
  return peer < self_ ? from_prev_ : from_next_;
}

void ForkWorkerLinks::send(int peer, Frame frame) { ring_to(peer).send_frame(frame, {}); }

Frame ForkWorkerLinks::recv(int peer) { return ring_from(peer).recv_frame({}); }

// --- ForkGroupTransport -----------------------------------------------------

ForkGroupTransport::ForkGroupTransport(
    int workers, const std::function<void(int, BoundaryLinks&)>& worker_main)
    : arena_(workers) {
  pids_.reserve(static_cast<std::size_t>(workers));
  for (int s = 0; s < workers; ++s) {
    command_.push_back(arena_.command(s));
    report_.push_back(arena_.report(s));
  }
  for (int s = 0; s < workers; ++s) {
    const pid_t pid = fork();
    if (pid < 0) {
      abort_group();
      throw std::runtime_error("shard transport: fork failed");
    }
    if (pid == 0) {
      // Worker process. Die with the coordinator, never return into the
      // coordinator's stack, and convert any escape into a nonzero exit so
      // the coordinator's liveness poll reports it.
#if defined(__linux__)
      prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      try {
        ForkWorkerLinks links(arena_, s);
        worker_main(s, links);
      } catch (...) {
        _exit(2);
      }
      _exit(0);
    }
    pids_.push_back(pid);
  }
}

ForkGroupTransport::~ForkGroupTransport() { abort_group(); }

void ForkGroupTransport::send(int worker, const Frame& frame) {
  command_[static_cast<std::size_t>(worker)].send_frame(frame,
                                                        [this] { check_children(); });
}

Frame ForkGroupTransport::recv(int worker) {
  return report_[static_cast<std::size_t>(worker)].recv_frame([this] { check_children(); });
}

void ForkGroupTransport::check_children() {
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    int status = 0;
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        // Clean exit: the worker answered Finish and left; its report is
        // already in (or streaming through) its ring. Not an error — this
        // happens while the coordinator is still collecting the other
        // workers' reports.
        pid = -1;
        continue;
      }
      // A worker died while the coordinator still expected frames from the
      // group: abort the remaining workers and fail the run.
      pid = -1;
      abort_group();
      throw std::runtime_error("shard worker process died mid-run");
    }
  }
}

void ForkGroupTransport::join_all() {
  bool failed = false;
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    pid = -1;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) failed = true;
  }
  if (failed) throw std::runtime_error("shard worker process failed");
}

void ForkGroupTransport::abort_group() noexcept {
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    kill(pid, SIGKILL);
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    pid = -1;
  }
}

}  // namespace abp::shard
