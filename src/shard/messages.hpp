// Wire format of the sharding layer (docs/SHARDING.md).
//
// Every message between shard workers — and between the coordinator and a
// forked worker — is one length-delimited frame of little-endian scalars,
// written with ByteWriter and read back with ByteReader. Boundary frames
// (Ex1 / Token / Ex2) are *positional*: both sides of a band seam iterate the
// same ShardPlan::boundary_owned_by list, so frames carry no road ids, only
// a (kind, tick) header that is checked on receipt to catch any protocol
// drift. The same framing runs over the in-process deque router and the
// shared-memory rings, so the fork transport exercises byte-for-byte the
// protocol the in-process tests pin.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/shard/sim_hooks.hpp"
#include "src/stats/run_result.hpp"

namespace abp::shard {

using Frame = std::vector<std::uint8_t>;

// Little-endian scalar writer over a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  [[nodiscard]] Frame take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  Frame buf_;
};

// Matching reader; throws std::runtime_error on overrun so a truncated or
// misframed message fails loudly instead of yielding garbage state.
class ByteReader {
 public:
  explicit ByteReader(const Frame& f) : buf_(f) {}
  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::int32_t i32() { return take<std::int32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  double f64() { return take<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    if (pos_ + n > buf_.size()) throw std::runtime_error("shard frame truncated");
    std::string s(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }

 private:
  template <typename T>
  T take() {
    if (pos_ + sizeof(T) > buf_.size()) throw std::runtime_error("shard frame truncated");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  const Frame& buf_;
  std::size_t pos_ = 0;
};

enum class FrameKind : std::uint8_t {
  // Boundary exchange (worker <-> worker), one of each per seam per tick.
  Ex1 = 1,    // post-admission lane rears, owner -> grantor (micro only)
  Token = 2,  // post-service occupancy (+ micro rears), owner -> grantor
  Ex2 = 3,    // end-of-tick mirrors + vehicle transfers, both directions
  // Coordinator protocol (fork transport only).
  Watches = 16,   // resolved watch list, coordinator -> worker, once
  RunUntil = 17,  // advance to a horizon
  SliceDone = 18, // RunUntil acknowledgment: now + progress counters
  Finish = 19,    // close the run; answered with Report, then worker exits
  Report = 20,    // serialized WorkerReport
  Query = 21,     // introspection read (road occupancy, phase, ...)
  QueryReply = 22,
};

// Every frame leads with [kind u8][tick u64]; non-tick frames carry 0.
inline void write_header(ByteWriter& w, FrameKind kind, std::uint64_t tick) {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(tick);
}

// Validates the header and returns the tick. A kind or tick mismatch means
// the two sides of the protocol have desynchronized — unrecoverable.
inline void check_header(ByteReader& r, FrameKind expect, std::uint64_t tick) {
  const auto kind = static_cast<FrameKind>(r.u8());
  if (kind != expect) throw std::runtime_error("shard protocol: unexpected frame kind");
  const std::uint64_t got = r.u64();
  if (got != tick) throw std::runtime_error("shard protocol: tick desynchronized");
}

enum class QueryWhat : std::uint8_t {
  RoadOccupancy = 0,
  QueuedOnRoad = 1,
  DisplayedPhase = 2,
  VehiclesInNetwork = 3,
};

// RunUntil acknowledgment: enough for a partial RunResult between slices
// (full metrics are assembled from the WorkerReports at finish).
struct SliceCounters {
  double now_s = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t entered = 0;
  std::uint64_t completed = 0;
};

// --- End-of-run worker report -----------------------------------------------
// Everything the coordinator needs to replay this worker's share of the run
// into the merged RunResult in the monolithic accumulation order: journaled
// per-tick events (tick-stamped), sampled series, phase traces and detector
// state of owned junctions, and the closing counters.

struct ReportCompletion {
  std::uint64_t tick = 0;
  std::uint32_t exit_index = 0;  // position in net exit-road order
  double waiting = 0.0;
  double travel = 0.0;
};

struct ReportBlocked {
  std::uint64_t tick = 0;
  std::uint32_t entry_index = 0;  // position in net entry-road order
  std::uint32_t count = 0;
};

struct SeriesPoint {
  double time = 0.0;
  double value = 0.0;
};

struct ReportSeries {
  std::uint32_t global_index = 0;  // watch registration index at the coordinator
  std::vector<SeriesPoint> points;
};

struct ReportPhaseTrace {
  std::uint32_t node_index = 0;
  double end_time = 0.0;  // the trace's finish() time at the worker
  std::vector<stats::PhaseTrace::Sample> samples;
};

struct ReportDetector {
  std::uint32_t node_index = 0;
  std::uint64_t samples = 0;
  std::vector<stats::DetectionEvent> events;
};

struct WorkerReport {
  std::uint64_t generated = 0;
  std::uint64_t entered = 0;
  double duration_s = 0.0;
  std::vector<ReportCompletion> completions;  // (tick, exit_index) ascending
  std::vector<ReportBlocked> blocked;         // (tick, entry_index) ascending
  std::vector<OpenRecord> opens;              // spawn_seq ascending
  std::vector<SeriesPoint> in_network_series;
  std::vector<ReportSeries> road_series;
  std::vector<ReportPhaseTrace> phase_traces;  // owned junctions only
  std::vector<ReportDetector> detections;      // owned junctions, detector on
};

[[nodiscard]] Frame encode_report(const WorkerReport& rep);
[[nodiscard]] WorkerReport decode_report(const Frame& frame);

}  // namespace abp::shard
