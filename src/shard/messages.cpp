#include "src/shard/messages.hpp"

namespace abp::shard {

Frame encode_report(const WorkerReport& rep) {
  ByteWriter w;
  write_header(w, FrameKind::Report, 0);
  w.u64(rep.generated);
  w.u64(rep.entered);
  w.f64(rep.duration_s);
  w.u64(rep.completions.size());
  for (const ReportCompletion& c : rep.completions) {
    w.u64(c.tick);
    w.u32(c.exit_index);
    w.f64(c.waiting);
    w.f64(c.travel);
  }
  w.u64(rep.blocked.size());
  for (const ReportBlocked& b : rep.blocked) {
    w.u64(b.tick);
    w.u32(b.entry_index);
    w.u32(b.count);
  }
  w.u64(rep.opens.size());
  for (const OpenRecord& o : rep.opens) {
    w.u64(o.spawn_seq);
    w.f64(o.waiting);
    w.f64(o.travel);
  }
  w.u64(rep.in_network_series.size());
  for (const SeriesPoint& p : rep.in_network_series) {
    w.f64(p.time);
    w.f64(p.value);
  }
  w.u64(rep.road_series.size());
  for (const ReportSeries& s : rep.road_series) {
    w.u32(s.global_index);
    w.u64(s.points.size());
    for (const SeriesPoint& p : s.points) {
      w.f64(p.time);
      w.f64(p.value);
    }
  }
  w.u64(rep.phase_traces.size());
  for (const ReportPhaseTrace& t : rep.phase_traces) {
    w.u32(t.node_index);
    w.f64(t.end_time);
    w.u64(t.samples.size());
    for (const stats::PhaseTrace::Sample& s : t.samples) {
      w.f64(s.time);
      w.i32(s.phase);
    }
  }
  w.u64(rep.detections.size());
  for (const ReportDetector& d : rep.detections) {
    w.u32(d.node_index);
    w.u64(d.samples);
    w.u64(d.events.size());
    for (const stats::DetectionEvent& e : d.events) {
      w.f64(e.time_s);
      w.i32(e.row);
      w.i32(e.col);
      w.i32(e.direction);
      w.f64(e.statistic);
      w.u32(static_cast<std::uint32_t>(e.links.size()));
      for (int link : e.links) w.i32(link);
    }
  }
  return w.take();
}

WorkerReport decode_report(const Frame& frame) {
  ByteReader r(frame);
  check_header(r, FrameKind::Report, 0);
  WorkerReport rep;
  rep.generated = r.u64();
  rep.entered = r.u64();
  rep.duration_s = r.f64();
  rep.completions.resize(r.u64());
  for (ReportCompletion& c : rep.completions) {
    c.tick = r.u64();
    c.exit_index = r.u32();
    c.waiting = r.f64();
    c.travel = r.f64();
  }
  rep.blocked.resize(r.u64());
  for (ReportBlocked& b : rep.blocked) {
    b.tick = r.u64();
    b.entry_index = r.u32();
    b.count = r.u32();
  }
  rep.opens.resize(r.u64());
  for (OpenRecord& o : rep.opens) {
    o.spawn_seq = r.u64();
    o.waiting = r.f64();
    o.travel = r.f64();
  }
  rep.in_network_series.resize(r.u64());
  for (SeriesPoint& p : rep.in_network_series) {
    p.time = r.f64();
    p.value = r.f64();
  }
  rep.road_series.resize(r.u64());
  for (ReportSeries& s : rep.road_series) {
    s.global_index = r.u32();
    s.points.resize(r.u64());
    for (SeriesPoint& p : s.points) {
      p.time = r.f64();
      p.value = r.f64();
    }
  }
  rep.phase_traces.resize(r.u64());
  for (ReportPhaseTrace& t : rep.phase_traces) {
    t.node_index = r.u32();
    t.end_time = r.f64();
    t.samples.resize(r.u64());
    for (stats::PhaseTrace::Sample& s : t.samples) {
      s.time = r.f64();
      s.phase = r.i32();
    }
  }
  rep.detections.resize(r.u64());
  for (ReportDetector& d : rep.detections) {
    d.node_index = r.u32();
    d.samples = r.u64();
    d.events.resize(r.u64());
    for (stats::DetectionEvent& e : d.events) {
      e.time_s = r.f64();
      e.row = r.i32();
      e.col = r.i32();
      e.direction = r.i32();
      e.statistic = r.f64();
      e.links.resize(r.u32());
      for (int& link : e.links) link = r.i32();
    }
  }
  if (!r.done()) throw std::runtime_error("shard report: trailing bytes");
  return rep;
}

}  // namespace abp::shard
