// Sharded front-end to the unified simulator interface (docs/SHARDING.md).
//
// make_sharded_simulator() returns a sim::Simulator whose run is split into
// config.shard.count row bands, each simulated by a worker — a forked
// process exchanging boundary frames over shared-memory rings by default, or
// an in-process worker driven directly by the coordinator when
// config.shard.in_process is set (the sanitizer-friendly transport the
// determinism tests pin). Results are bit-identical to the monolithic run:
// the coordinator replays the workers' journaled events in the monolithic
// accumulation order when assembling the merged RunResult.
//
// Validation (throws std::invalid_argument from the factory):
//   - count must fit the grid's junction rows (net::partition_rows),
//   - the runtime invariant guard is not supported in sharded runs,
//   - the microscopic backend requires a perfect sensor model (an imperfect
//     one draws per-measurement randomness that masked junctions would skip,
//     breaking the bit-identity contract),
//   - the queueing backend requires every boundary road's free-flow time to
//     exceed the step (so a cross-band transfer is never serviceable in the
//     tick it was granted, which the one-tick message latency relies on),
//   - count x backend-threads must not exceed the machine's hardware
//     concurrency unless shard.allow_oversubscribe is set.
#pragma once

#include <memory>

#include "src/scenario/scenario_config.hpp"
#include "src/sim/simulator.hpp"

namespace abp::shard {

[[nodiscard]] std::unique_ptr<sim::Simulator> make_sharded_simulator(
    const scenario::ScenarioConfig& config);

}  // namespace abp::shard
