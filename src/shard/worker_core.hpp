// One shard worker's engine: a full-network backend simulator masked to its
// row band, plus the per-tick boundary exchange (docs/SHARDING.md).
//
// Every worker builds the *entire* object graph — network, demand generator,
// controller set — through src/sim/run_setup.hpp, exactly as the monolithic
// run does, then installs ownership masks so it simulates only the junctions
// and roads of its band. Determinism follows: all random streams (demand,
// fault noise) are seeded and consumed identically in every worker, and the
// cross-band couplings travel through explicit messages delivered in the
// canonical boundary order, so the K-shard run replays the monolithic tick
// bit for bit (ShardInvariance pins this).
//
// A tick is three phases, mirroring the backends' step split:
//   phase A  ingest the neighbors' end-of-last-tick Ex2 (mirror state +
//            vehicle transfers), apply due capacity faults, run
//            step_begin() (control / sampling / admission / release), then
//            (micro) send the post-admission lane rears of the southbound
//            boundary roads to the upper neighbor (Ex1).
//   phase B  receive the upper neighbor's service token (post-service
//            occupancy, micro: + rears, of the northbound boundary roads)
//            and (micro) the lower neighbor's Ex1, run step_service(), then
//            send the token downward. Tokens cascade in ascending shard
//            order — the sharded image of the monolithic junction pass's
//            node-index order across bands.
//   phase C  run step_finish() (the band's road sweep + completions), then
//            send Ex2 both ways: fresh mirror state of owned boundary roads
//            and the vehicles granted onto the neighbor's roads this tick.
//            Per-tick events (completions, blocked counts) drain into the
//            tick-stamped journal the coordinator replays at finish.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/adaptive_controller.hpp"
#include "src/net/network.hpp"
#include "src/net/partition.hpp"
#include "src/scenario/scenario_config.hpp"
#include "src/shard/channel.hpp"
#include "src/shard/messages.hpp"
#include "src/shard/sim_hooks.hpp"
#include "src/sim/run_setup.hpp"
#include "src/traffic/demand.hpp"

namespace abp::shard {

template <typename Backend>
class WorkerCore {
 public:
  // `config` and `links` must outlive the core. `plan` is the partition this
  // worker's masks and boundary lists derive from; `shard` is this worker's
  // band index.
  WorkerCore(const scenario::ScenarioConfig& config, net::ShardPlan plan, int shard,
             BoundaryLinks& links);

  // Registers a road watch if this worker owns the road (no-op otherwise);
  // `global_index` is the coordinator's registration index, echoed in the
  // report so the merged result places the series correctly.
  void register_watch(std::uint32_t global_index, RoadId road, std::string name);

  // The three phases of one tick; see the header comment for the protocol.
  // The caller (fork worker loop, or the in-process coordinator) must run
  // A, then B in ascending shard order across workers, then C.
  void phase_a();
  void phase_b();
  void phase_c();
  // One full tick — valid only when each recv can block until the neighbor
  // catches up, i.e. on the fork transport.
  void tick();

  [[nodiscard]] double now() const noexcept { return sim_.now(); }
  [[nodiscard]] SliceCounters counters();

  // Closes the backend run and assembles this worker's share of the merged
  // result. The caller must have driven the ticks to `duration_s` already.
  [[nodiscard]] WorkerReport finish(double duration_s);

  [[nodiscard]] int query(QueryWhat what, std::uint32_t index) const;

 private:
  void ingest_ex2(int neighbor);
  void send_ex2(int neighbor, const std::vector<std::size_t>& transfer_indices);

  const scenario::ScenarioConfig& config_;
  net::ShardPlan plan_;
  int shard_;
  BoundaryLinks& links_;

  net::Network network_;
  traffic::DemandGenerator demand_;
  // AdaptiveController per junction when the detector is enabled; pointees
  // owned by sim_'s controllers. Declared before sim_ (filled during its
  // construction); hooks_ declared before sim_ too (sim_ keeps a pointer).
  std::vector<const core::AdaptiveController*> monitors_;
  SimShardHooks hooks_;
  Backend sim_;
  std::vector<sim::CapacityEvent> events_;
  std::size_t next_event_ = 0;

  // Boundary lists (ShardPlan::boundary_owned_by, canonical ascending-road
  // order): roads this worker owns whose grantor is the lower / upper
  // neighbor, and roads the neighbors own that this worker grants onto.
  std::vector<RoadId> owned_from_prev_, owned_from_next_;
  std::vector<RoadId> remote_to_prev_, remote_to_next_;
  // Transfers sent onto each remote boundary road last tick (parallel to the
  // remote_to_* lists): added to the neighbor's next Ex2 occupancy snapshot,
  // which cannot yet include the in-flight vehicles.
  std::vector<int> sent_prev_, sent_next_;
  // Position of each remote boundary road in its remote_to_* list (-1 for
  // every other road), for O(1) sent-count updates while draining outboxes.
  std::vector<int> remote_pos_;

  std::uint64_t tick_ = 0;

  struct LocalWatch {
    std::uint32_t global_index;
    std::size_t local_index;
  };
  std::vector<LocalWatch> watches_;

  // Tick-stamped event journal, drained from hooks_ each phase C.
  std::vector<ReportCompletion> report_completions_;
  std::vector<ReportBlocked> report_blocked_;

  // Reused scratch for lane-rear frames (micro).
  std::vector<LaneRear> rears_;
};

}  // namespace abp::shard
