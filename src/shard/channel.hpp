// Transports of the sharding layer: the frame channels workers exchange
// boundary messages over, in two interchangeable implementations.
//
// InProcRouter — plain per-edge deques, no threads, no processes. The
// coordinator drives every worker's tick phases itself in an order that
// guarantees each recv() finds its frame already delivered (phase A for all
// workers, phase B in ascending shard order, phase C for all), so a recv on
// an empty queue is a protocol bug and throws. This is the transport the
// determinism tests pin: single-process, sanitizer-friendly, schedule-free.
//
// ForkGroup — one forked process per shard, exchanging the identical frames
// over single-producer/single-consumer byte rings in one shared anonymous
// mapping created before the forks. Frames are length-prefixed and streamed
// through the ring in chunks, so a frame larger than the ring capacity
// (end-of-run reports) still passes; blocking sides spin with sched_yield
// and a short sleep, and the coordinator's blocking reads poll child
// liveness so a crashed worker surfaces as std::runtime_error (-> the
// experiment runner's RunStatus::Error) instead of a hang. Workers arm
// PR_SET_PDEATHSIG so an abandoned coordinator reaps the whole group.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <sys/types.h>
#include <vector>

#include "src/shard/messages.hpp"

namespace abp::shard {

// A worker's frame endpoint: peers are shard indices, kCoordinator is the
// coordinator. send() delivers a whole frame; recv() blocks (fork transport)
// or asserts availability (in-process) until the peer's next frame arrives.
inline constexpr int kCoordinator = -1;

class BoundaryLinks {
 public:
  virtual ~BoundaryLinks() = default;
  virtual void send(int peer, Frame frame) = 0;
  [[nodiscard]] virtual Frame recv(int peer) = 0;
};

// --- In-process transport ---------------------------------------------------

class InProcRouter {
 public:
  explicit InProcRouter(int workers);
  void post(int from, int to, Frame frame);
  [[nodiscard]] Frame fetch(int to, int from);

 private:
  // mail_[to][from]: frames from `from` awaiting `to`, FIFO.
  std::vector<std::vector<std::deque<Frame>>> mail_;
};

class InProcLinks final : public BoundaryLinks {
 public:
  InProcLinks(InProcRouter& router, int self) : router_(router), self_(self) {}
  void send(int peer, Frame frame) override { router_.post(self_, peer, std::move(frame)); }
  [[nodiscard]] Frame recv(int peer) override { return router_.fetch(self_, peer); }

 private:
  InProcRouter& router_;
  int self_;
};

// --- Fork transport ---------------------------------------------------------

// SPSC byte ring in shared memory. head (read cursor) and tail (write
// cursor) are free-running 64-bit counters; entries are raw bytes. The
// header lives at the start of the ring's shared-memory slot, the buffer
// right after it.
struct RingHeader {
  std::atomic<std::uint64_t> head;
  std::atomic<std::uint64_t> tail;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory rings require address-free 64-bit atomics");

class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(void* slot, std::size_t capacity) noexcept
      : header_(static_cast<RingHeader*>(slot)),
        buf_(static_cast<std::uint8_t*>(slot) + sizeof(RingHeader)),
        capacity_(capacity) {}

  // Streams `n` bytes into / out of the ring, blocking in chunks as space or
  // data becomes available; `on_wait` runs on every blocked iteration (the
  // coordinator's child-liveness poll).
  void write(const std::uint8_t* data, std::size_t n, const std::function<void()>& on_wait);
  void read(std::uint8_t* out, std::size_t n, const std::function<void()>& on_wait);

  void send_frame(const Frame& frame, const std::function<void()>& on_wait);
  [[nodiscard]] Frame recv_frame(const std::function<void()>& on_wait);

 private:
  RingHeader* header_ = nullptr;
  std::uint8_t* buf_ = nullptr;
  std::size_t capacity_ = 0;
};

// The whole group's ring set in one anonymous MAP_SHARED mapping: per band
// seam one ring each way, per worker a command and a report ring. Created
// (and its headers zeroed) by the coordinator before forking.
class RingArena {
 public:
  explicit RingArena(int workers);
  ~RingArena();
  RingArena(const RingArena&) = delete;
  RingArena& operator=(const RingArena&) = delete;

  // Seam rings between adjacent shards; `from`/`to` must differ by 1.
  [[nodiscard]] ShmRing seam(int from, int to) const;
  [[nodiscard]] ShmRing command(int worker) const;  // coordinator -> worker
  [[nodiscard]] ShmRing report(int worker) const;   // worker -> coordinator
  [[nodiscard]] int workers() const noexcept { return workers_; }

 private:
  [[nodiscard]] ShmRing ring(std::size_t index) const;
  int workers_ = 0;
  void* mem_ = nullptr;
  std::size_t size_ = 0;
};

// A forked worker's endpoint over the arena's rings.
class ForkWorkerLinks final : public BoundaryLinks {
 public:
  ForkWorkerLinks(const RingArena& arena, int self);
  void send(int peer, Frame frame) override;
  [[nodiscard]] Frame recv(int peer) override;

 private:
  [[nodiscard]] ShmRing& ring_to(int peer);
  [[nodiscard]] ShmRing& ring_from(int peer);
  int self_;
  ShmRing to_prev_, from_prev_, to_next_, from_next_, to_coord_, from_coord_;
};

// Coordinator side of the fork transport: forks one worker per shard (the
// child calls `worker_main(shard, links)` and must never return), then
// exchanges command/report frames. Any blocking receive polls the children;
// a dead child aborts the group (kill + reap) and throws.
class ForkGroupTransport {
 public:
  ForkGroupTransport(int workers, const std::function<void(int, BoundaryLinks&)>& worker_main);
  ~ForkGroupTransport();
  ForkGroupTransport(const ForkGroupTransport&) = delete;
  ForkGroupTransport& operator=(const ForkGroupTransport&) = delete;

  void send(int worker, const Frame& frame);
  [[nodiscard]] Frame recv(int worker);
  // Reaps workers that exited cleanly after Finish; throws if any failed.
  void join_all();

 private:
  void check_children();
  void abort_group() noexcept;
  RingArena arena_;
  std::vector<pid_t> pids_;
  std::vector<ShmRing> command_, report_;
};

}  // namespace abp::shard
