#include "src/shard/worker_core.hpp"

#include <type_traits>
#include <utility>

#include "src/detect/junction_monitor.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/queuesim/queue_sim.hpp"

namespace abp::shard {
namespace {

template <typename Backend>
inline constexpr bool kMicro = std::is_same_v<Backend, microsim::MicroSim>;

void write_turns(ByteWriter& w, const std::vector<net::Turn>& turns) {
  w.u32(static_cast<std::uint32_t>(turns.size()));
  for (net::Turn t : turns) w.u8(static_cast<std::uint8_t>(t));
}

std::vector<net::Turn> read_turns(ByteReader& r) {
  std::vector<net::Turn> turns(r.u32());
  for (net::Turn& t : turns) t = static_cast<net::Turn>(r.u8());
  return turns;
}

}  // namespace

template <typename Backend>
WorkerCore<Backend>::WorkerCore(const scenario::ScenarioConfig& config, net::ShardPlan plan,
                                int shard, BoundaryLinks& links)
    : config_(config),
      plan_(std::move(plan)),
      shard_(shard),
      links_(links),
      network_(sim::build_validated(sim::effective_grid(config))),
      demand_(network_, config.demand, config.seed),
      sim_(sim::construct_backend<Backend>(
          config, network_, demand_,
          sim::make_run_controllers(config, network_, &monitors_))),
      events_(sim::build_capacity_events(config, network_)) {
  hooks_.own_road.resize(network_.roads().size(), 0);
  for (std::size_t r = 0; r < hooks_.own_road.size(); ++r) {
    hooks_.own_road[r] = plan_.road_shard[r] == shard_ ? 1 : 0;
  }
  hooks_.own_junction.resize(network_.intersections().size(), 0);
  for (std::size_t j = 0; j < hooks_.own_junction.size(); ++j) {
    hooks_.own_junction[j] = plan_.junction_shard[j] == shard_ ? 1 : 0;
  }
  sim_.set_shard_hooks(&hooks_);

  owned_from_prev_ = plan_.boundary_owned_by(shard_, shard_ - 1);
  owned_from_next_ = plan_.boundary_owned_by(shard_, shard_ + 1);
  remote_to_prev_ = plan_.boundary_owned_by(shard_ - 1, shard_);
  remote_to_next_ = plan_.boundary_owned_by(shard_ + 1, shard_);
  sent_prev_.assign(remote_to_prev_.size(), 0);
  sent_next_.assign(remote_to_next_.size(), 0);
  remote_pos_.assign(network_.roads().size(), -1);
  for (std::size_t i = 0; i < remote_to_prev_.size(); ++i) {
    remote_pos_[remote_to_prev_[i].index()] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < remote_to_next_.size(); ++i) {
    remote_pos_[remote_to_next_[i].index()] = static_cast<int>(i);
  }
}

template <typename Backend>
void WorkerCore<Backend>::register_watch(std::uint32_t global_index, RoadId road,
                                         std::string name) {
  if (plan_.road_shard[road.index()] != shard_) return;
  watches_.push_back({global_index, watches_.size()});
  sim_.watch_road(road, std::move(name));
}

// Phase A — mirror ingestion, due capacity faults, step_begin, and (micro)
// the post-admission Ex1 rears up to the grantor of the southbound roads.
template <typename Backend>
void WorkerCore<Backend>::phase_a() {
  if (tick_ > 0) {
    // Tick 0 has no preceding phase C; nothing is in flight yet.
    if (shard_ > 0) ingest_ex2(shard_ - 1);
    if (shard_ + 1 < plan_.count) ingest_ex2(shard_ + 1);
  }
  while (next_event_ < events_.size() && events_[next_event_].time_s <= sim_.now()) {
    sim_.set_road_capacity(events_[next_event_].road, events_[next_event_].capacity);
    ++next_event_;
  }
  sim_.step_begin();
  if constexpr (kMicro<Backend>) {
    if (shard_ > 0) {
      // Rears of the roads this worker owns and the lower neighbor grants
      // onto, after this tick's releases landed — the state the grantor's
      // insertion-gap check reads in the monolithic junction pass.
      ByteWriter w;
      write_header(w, FrameKind::Ex1, tick_);
      for (RoadId road : owned_from_prev_) {
        rears_.clear();
        sim_.collect_lane_rears(road, rears_);
        w.u32(static_cast<std::uint32_t>(rears_.size()));
        for (const LaneRear& lr : rears_) {
          w.u8(lr.occupied ? 1 : 0);
          w.f64(lr.pos);
        }
      }
      links_.send(shard_ - 1, w.take());
    }
  }
}

// Phase B — the ascending service cascade. The token from the lower neighbor
// carries the post-service state of the northbound boundary roads (this
// worker grants onto them; their owner's junctions, at lower node indices,
// have already served). Micro additionally needs the upper neighbor's Ex1
// rears before its own junctions grant downward.
template <typename Backend>
void WorkerCore<Backend>::phase_b() {
  if (shard_ > 0) {
    Frame f = links_.recv(shard_ - 1);
    ByteReader r(f);
    check_header(r, FrameKind::Token, tick_);
    for (RoadId road : remote_to_prev_) {
      const int occ = r.i32();
      if constexpr (kMicro<Backend>) {
        sim_.set_remote_occupancy(road, occ);
        rears_.resize(r.u32());
        for (LaneRear& lr : rears_) {
          lr.occupied = r.u8() != 0;
          lr.pos = r.f64();
        }
        sim_.set_remote_lane_rears(road, rears_);
      } else {
        sim_.set_remote_road_state(road, occ, sim_.queued_on_road(road));
      }
    }
  }
  if constexpr (kMicro<Backend>) {
    if (shard_ + 1 < plan_.count) {
      Frame f = links_.recv(shard_ + 1);
      ByteReader r(f);
      check_header(r, FrameKind::Ex1, tick_);
      for (RoadId road : remote_to_next_) {
        rears_.resize(r.u32());
        for (LaneRear& lr : rears_) {
          lr.occupied = r.u8() != 0;
          lr.pos = r.f64();
        }
        sim_.set_remote_lane_rears(road, rears_);
      }
    }
  }
  sim_.step_service();
  if (shard_ + 1 < plan_.count) {
    ByteWriter w;
    write_header(w, FrameKind::Token, tick_);
    for (RoadId road : owned_from_next_) {
      w.i32(sim_.road_occupancy(road));
      if constexpr (kMicro<Backend>) {
        rears_.clear();
        sim_.collect_lane_rears(road, rears_);
        w.u32(static_cast<std::uint32_t>(rears_.size()));
        for (const LaneRear& lr : rears_) {
          w.u8(lr.occupied ? 1 : 0);
          w.f64(lr.pos);
        }
      }
    }
    links_.send(shard_ + 1, w.take());
  }
}

// Phase C — finish the tick locally, then publish: Ex2 both ways (fresh
// mirrors of owned boundary roads + the vehicles granted onto each neighbor's
// roads this tick, in grant order), and the tick-stamped event journal.
template <typename Backend>
void WorkerCore<Backend>::phase_c() {
  sim_.step_finish();

  const std::size_t outbox_size = kMicro<Backend> ? hooks_.micro_outbox.size()
                                                  : hooks_.queue_outbox.size();
  std::vector<std::size_t> to_prev, to_next;
  for (std::size_t i = 0; i < outbox_size; ++i) {
    const std::uint32_t road = kMicro<Backend> ? hooks_.micro_outbox[i].road
                                               : hooks_.queue_outbox[i].road;
    (plan_.road_shard[road] < shard_ ? to_prev : to_next).push_back(i);
  }
  if (shard_ > 0) send_ex2(shard_ - 1, to_prev);
  if (shard_ + 1 < plan_.count) send_ex2(shard_ + 1, to_next);
  hooks_.micro_outbox.clear();
  hooks_.queue_outbox.clear();

  for (const CompletionRecord& c : hooks_.completions) {
    report_completions_.push_back({tick_, c.exit_index, c.waiting, c.travel});
  }
  hooks_.completions.clear();
  for (const BlockedRecord& b : hooks_.blocked) {
    report_blocked_.push_back({tick_, b.entry_index, b.count});
  }
  hooks_.blocked.clear();

  tick_ += 1;
}

template <typename Backend>
void WorkerCore<Backend>::send_ex2(int neighbor, const std::vector<std::size_t>& transfer_indices) {
  ByteWriter w;
  write_header(w, FrameKind::Ex2, tick_);
  const std::vector<RoadId>& owned = neighbor < shard_ ? owned_from_prev_ : owned_from_next_;
  for (RoadId road : owned) {
    w.i32(sim_.road_occupancy(road));
    if constexpr (kMicro<Backend>) {
      w.i32(sim_.congestion_memo(road));
    } else {
      w.i32(sim_.queued_on_road(road));
    }
  }
  std::vector<int>& sent = neighbor < shard_ ? sent_prev_ : sent_next_;
  w.u32(static_cast<std::uint32_t>(transfer_indices.size()));
  for (std::size_t i : transfer_indices) {
    if constexpr (kMicro<Backend>) {
      const MicroTransfer& t = hooks_.micro_outbox[i];
      sent[static_cast<std::size_t>(remote_pos_[t.road])] += 1;
      w.u32(t.road);
      w.i32(t.lane);
      w.u64(t.spawn_seq);
      w.u64(t.next_turn);
      w.f64(t.junction_exit);
      w.f64(t.entry_time);
      w.f64(t.waiting);
      write_turns(w, t.turns);
    } else {
      const QueueTransfer& t = hooks_.queue_outbox[i];
      sent[static_cast<std::size_t>(remote_pos_[t.road])] += 1;
      w.u32(t.road);
      w.u64(t.spawn_seq);
      w.u64(t.next_turn);
      w.f64(t.arrive_time);
      w.f64(t.entry_time);
      w.f64(t.queue_time);
      write_turns(w, t.turns);
    }
  }
  links_.send(neighbor, w.take());
}

template <typename Backend>
void WorkerCore<Backend>::ingest_ex2(int neighbor) {
  const bool from_lower = neighbor < shard_;
  const std::vector<RoadId>& mirrors = from_lower ? remote_to_prev_ : remote_to_next_;
  std::vector<int>& sent = from_lower ? sent_prev_ : sent_next_;
  Frame f = links_.recv(neighbor);
  ByteReader r(f);
  check_header(r, FrameKind::Ex2, tick_ - 1);
  for (std::size_t i = 0; i < mirrors.size(); ++i) {
    // The owner's snapshot predates the transfers this worker sent it in the
    // same phase C; add them back so the mirror matches the monolithic value
    // once the owner ingests them (which it does before reading anything).
    const int occ = r.i32() + sent[i];
    const int cong = r.i32();
    sent[i] = 0;
    if constexpr (kMicro<Backend>) {
      sim_.set_remote_occupancy(mirrors[i], occ);
      sim_.set_remote_congestion(mirrors[i], cong);
    } else {
      sim_.set_remote_road_state(mirrors[i], occ, cong);
    }
  }
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    if constexpr (kMicro<Backend>) {
      MicroTransfer t;
      t.road = r.u32();
      t.lane = r.i32();
      t.spawn_seq = r.u64();
      t.next_turn = r.u64();
      t.junction_exit = r.f64();
      t.entry_time = r.f64();
      t.waiting = r.f64();
      t.turns = read_turns(r);
      sim_.ingest_transfer(t, from_lower);
    } else {
      QueueTransfer t;
      t.road = r.u32();
      t.spawn_seq = r.u64();
      t.next_turn = r.u64();
      t.arrive_time = r.f64();
      t.entry_time = r.f64();
      t.queue_time = r.f64();
      t.turns = read_turns(r);
      sim_.ingest_transfer(t);
    }
  }
}

template <typename Backend>
void WorkerCore<Backend>::tick() {
  phase_a();
  phase_b();
  phase_c();
}

template <typename Backend>
SliceCounters WorkerCore<Backend>::counters() {
  // run_until at the current time is a no-op that hands back the live result
  // accumulator; only the counters are read (full metrics merge at finish).
  const stats::RunResult& result = sim_.run_until(sim_.now());
  SliceCounters c;
  c.now_s = sim_.now();
  c.generated = result.metrics.generated;
  c.entered = result.metrics.entered;
  c.completed = result.metrics.completed;
  return c;
}

template <typename Backend>
WorkerReport WorkerCore<Backend>::finish(double duration_s) {
  // Vehicles granted across a seam in the final tick's phase C are still in
  // flight — the run ended before the next phase A would ingest them. In the
  // monolithic run they are already on (or in the junction box of) the target
  // road and close as open records; ingest them now so finish() sees them.
  if (tick_ > 0) {
    if (shard_ > 0) ingest_ex2(shard_ - 1);
    if (shard_ + 1 < plan_.count) ingest_ex2(shard_ + 1);
  }
  stats::RunResult result = sim_.finish(duration_s);
  WorkerReport rep;
  rep.generated = result.metrics.generated;
  rep.entered = result.metrics.entered;
  rep.duration_s = result.duration_s;
  rep.completions = std::move(report_completions_);
  rep.blocked = std::move(report_blocked_);
  rep.opens = std::move(hooks_.opens);

  const stats::TimeSeries& in = result.in_network_series;
  rep.in_network_series.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    rep.in_network_series.push_back({in.times()[i], in.values()[i]});
  }
  rep.road_series.reserve(watches_.size());
  for (const LocalWatch& lw : watches_) {
    const stats::TimeSeries& s = result.road_series[lw.local_index];
    ReportSeries out;
    out.global_index = lw.global_index;
    out.points.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      out.points.push_back({s.times()[i], s.values()[i]});
    }
    rep.road_series.push_back(std::move(out));
  }
  for (std::size_t j = 0; j < network_.intersections().size(); ++j) {
    if (plan_.junction_shard[j] != shard_) continue;
    rep.phase_traces.push_back({static_cast<std::uint32_t>(j),
                                result.phase_traces[j].end_time(),
                                result.phase_traces[j].samples()});
  }
  if (!monitors_.empty()) {
    for (std::size_t j = 0; j < network_.intersections().size(); ++j) {
      if (plan_.junction_shard[j] != shard_) continue;
      const detect::JunctionMonitor& m = monitors_[j]->monitor();
      rep.detections.push_back({static_cast<std::uint32_t>(j), m.samples(), m.events()});
    }
  }
  return rep;
}

template <typename Backend>
int WorkerCore<Backend>::query(QueryWhat what, std::uint32_t index) const {
  switch (what) {
    case QueryWhat::RoadOccupancy:
      return sim_.road_occupancy(RoadId{index});
    case QueryWhat::QueuedOnRoad:
      return sim_.queued_on_road(RoadId{index});
    case QueryWhat::DisplayedPhase:
      return sim_.displayed_phase(IntersectionId{index});
    case QueryWhat::VehiclesInNetwork: {
      // Vehicles this worker granted across a seam last tick are still in
      // flight (the owner ingests them next phase A); they are in the network
      // in the monolithic count, so the grantor carries them here.
      int in_flight = 0;
      for (int n : sent_prev_) in_flight += n;
      for (int n : sent_next_) in_flight += n;
      return sim_.vehicles_in_network() + in_flight;
    }
  }
  return 0;
}

template class WorkerCore<microsim::MicroSim>;
template class WorkerCore<queuesim::QueueSim>;

}  // namespace abp::shard
