#include "src/microsim/micro_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/microsim/krauss.hpp"

namespace abp::microsim {
namespace {

// Gap value that behaves as "no obstacle ahead".
constexpr double kFreeGap = 1e9;

}  // namespace

MicroSim::MicroSim(const net::Network& network, MicroSimConfig config,
                   std::vector<core::ControllerPtr> controllers,
                   traffic::DemandGenerator& demand, std::uint64_t seed)
    : net_(network),
      config_(config),
      controllers_(std::move(controllers)),
      demand_(demand),
      rng_(seed) {
  if (!net_.finalized()) throw std::invalid_argument("network must be finalized");
  if (config_.dt_s <= 0.0) throw std::invalid_argument("dt must be positive");
  if (config_.control_interval_s < config_.dt_s) {
    throw std::invalid_argument("control interval must be >= dt");
  }
  if (controllers_.size() != net_.intersections().size()) {
    throw std::invalid_argument("need exactly one controller per intersection");
  }
  build_runtime();
}

void MicroSim::build_runtime() {
  roads_.resize(net_.roads().size());
  links_.resize(net_.links().size());
  displayed_.assign(net_.intersections().size(), net::kTransitionPhase);
  result_.phase_traces.resize(net_.intersections().size());

  for (const net::Road& road : net_.roads()) {
    RoadRt& rt = roads_[road.id.index()];
    if (road.is_exit()) {
      rt.lanes.push_back(Lane{});  // single unsignalled lane
      continue;
    }
    // The topology index guarantees turn order (Left, Straight, Right) —
    // exactly the dedicated-lane layout the paper assumes.
    const std::span<const LinkId> movements = net_.links_from(road.id);
    if (config_.dedicated_turn_lanes) {
      // One dedicated lane per feasible movement, ordered Left/Straight/Right.
      for (LinkId lid : movements) {
        LinkRt& lrt = links_[lid.index()];
        lrt.from_road = road.id;
        lrt.lane_index = static_cast<int>(rt.lanes.size());
        Lane lane;
        lane.link = lid;
        rt.lanes.push_back(std::move(lane));
      }
    } else {
      // One mixed lane shared by all movements: a vehicle's own route turn
      // selects its movement at the stop line (head-of-line blocking).
      rt.lanes.push_back(Lane{});
      for (LinkId lid : movements) {
        LinkRt& lrt = links_[lid.index()];
        lrt.from_road = road.id;
        lrt.lane_index = 0;
      }
    }
  }

  road_queued_approach_.assign(net_.roads().size(), 0);
  road_queued_congestion_.assign(net_.roads().size(), 0);
  link_queued_approach_.assign(net_.links().size(), 0);
  std::size_t max_lanes = 1;
  for (const RoadRt& rt : roads_) max_lanes = std::max(max_lanes, rt.lanes.size());
  lane_blocked_.assign(max_lanes, 0);
}

void MicroSim::watch_road(RoadId road, std::string series_name) {
  watches_.push_back({road, result_.road_series.size()});
  result_.road_series.emplace_back(std::move(series_name));
}

int MicroSim::lane_count(LinkId link) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  if (lane.link) return static_cast<int>(lane.vehicles.size());
  // Mixed lane: count the vehicles whose route takes this movement.
  int count = 0;
  for (VehicleId vid : lane.vehicles) {
    if (vehicles_[vid.index()].next_link == link) ++count;
  }
  return count;
}

int MicroSim::road_occupancy(RoadId road) const { return roads_[road.index()].occupancy; }

net::PhaseIndex MicroSim::displayed_phase(IntersectionId node) const {
  return displayed_[node.index()];
}

int MicroSim::vehicles_in_network() const { return in_network_count_; }

std::vector<double> MicroSim::lane_positions(LinkId link) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  std::vector<double> positions;
  positions.reserve(lane.vehicles.size());
  for (VehicleId vid : lane.vehicles) positions.push_back(vehicles_[vid.index()].pos);
  return positions;
}

bool MicroSim::no_overlaps() const {
  for (const RoadRt& rt : roads_) {
    for (const Lane& lane : rt.lanes) {
      for (std::size_t i = 0; i + 1 < lane.vehicles.size(); ++i) {
        const Veh& ahead = vehicles_[lane.vehicles[i].index()];
        const Veh& behind = vehicles_[lane.vehicles[i + 1].index()];
        if (behind.pos > ahead.pos - config_.vehicle.length_m + 1e-6) return false;
      }
    }
  }
  return true;
}

int MicroSim::lane_index_for_turn(RoadId road, net::Turn turn) const {
  const RoadRt& rt = roads_[road.index()];
  if (!config_.dedicated_turn_lanes) return 0;  // single mixed lane
  for (std::size_t i = 0; i < rt.lanes.size(); ++i) {
    if (rt.lanes[i].link && net_.link(*rt.lanes[i].link).turn == turn) {
      return static_cast<int>(i);
    }
  }
  throw std::logic_error("no lane for requested turn on road " + net_.road(road).name);
}

std::optional<LinkId> MicroSim::movement_of(const Veh& v, RoadId road) const {
  if (v.next_turn >= v.route.turns.size()) return std::nullopt;
  return net_.find_link(road, v.route.turns[v.next_turn]);
}

int MicroSim::road_vehicle_count(RoadId road) const {
  int count = 0;
  for (const Lane& lane : roads_[road.index()].lanes) {
    count += static_cast<int>(lane.vehicles.size());
  }
  return count;
}

int MicroSim::lane_queued_count(const Lane& lane, double threshold_mps) const {
  int count = 0;
  for (VehicleId vid : lane.vehicles) {
    if (vehicles_[vid.index()].speed < threshold_mps) ++count;
  }
  return count;
}

int MicroSim::link_queued_count(LinkId link, double threshold_mps) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  if (lane.link) return lane_queued_count(lane, threshold_mps);
  // Mixed lane: the movement's queue is the slow vehicles headed through it.
  int count = 0;
  for (VehicleId vid : lane.vehicles) {
    const Veh& v = vehicles_[vid.index()];
    if (v.speed < threshold_mps && v.next_link == link) ++count;
  }
  return count;
}

int MicroSim::road_queued_count(RoadId road, double threshold_mps) const {
  int count = 0;
  for (const Lane& lane : roads_[road.index()].lanes) {
    count += lane_queued_count(lane, threshold_mps);
  }
  return count;
}

bool MicroSim::entry_clear(const RoadRt& rt, int lane_index) const {
  const Lane& lane = rt.lanes[static_cast<std::size_t>(lane_index)];
  if (lane.vehicles.empty()) return true;
  const Veh& rear = vehicles_[lane.vehicles.back().index()];
  // The new vehicle's front bumper enters at pos 0; the rear vehicle's back
  // bumper must leave room for it plus the standstill gap.
  return rear.pos - config_.vehicle.length_m >= config_.vehicle.min_gap_m + 0.5;
}

const core::IntersectionObservation& MicroSim::observe(const net::Intersection& node) {
  core::IntersectionObservation& obs = obs_scratch_;
  obs.time = now_;
  obs.links.clear();
  obs.links.reserve(node.links.size());
  for (LinkId lid : node.links) {
    const net::Link& link = net_.link(lid);
    core::LinkState state;
    // Queue readings pass through the detector model; occupancy and
    // capacities are physical state, never perturbed. True counts come from
    // the control-step memo tables (refresh_queue_memo), not per-link scans.
    state.queue =
        core::measure_queue(link_queued_approach_[lid.index()], config_.sensor, rng_);
    state.upstream_total = core::measure_queue(road_queued_approach_[link.from_road.index()],
                                               config_.sensor, rng_);
    state.upstream_capacity = net_.road(link.from_road).capacity;
    state.downstream_queue = core::measure_queue(
        road_queued_congestion_[link.to_road.index()], config_.sensor, rng_);
    state.downstream_total = roads_[link.to_road.index()].occupancy;
    state.downstream_capacity = net_.road(link.to_road).capacity;
    state.service_rate = link.service_rate;
    obs.links.push_back(state);
  }
  return obs;
}

void MicroSim::control_step() {
  for (const net::Intersection& node : net_.intersections()) {
    const net::PhaseIndex phase = controllers_[node.id.index()]->decide(observe(node));
    if (phase < 0 || phase >= static_cast<int>(node.phases.size())) {
      throw std::logic_error("controller returned an out-of-range phase");
    }
    displayed_[node.id.index()] = phase;
    result_.phase_traces[node.id.index()].record(now_, phase);
    for (LinkId lid : node.links) links_[lid.index()].green = false;
    for (LinkId lid : node.phases[static_cast<std::size_t>(phase)].links) {
      links_[lid.index()].green = true;
    }
  }
}

VehicleId MicroSim::alloc_vehicle() {
  if (!free_slots_.empty()) {
    const VehicleId vid(free_slots_.back());
    free_slots_.pop_back();
    vehicles_[vid.index()] = Veh{};
    return vid;
  }
  vehicles_.emplace_back();
  return VehicleId(static_cast<VehicleId::value_type>(vehicles_.size() - 1));
}

void MicroSim::admit_spawns() {
  for (const traffic::SpawnRequest& req : demand_.poll(now_, now_ + config_.dt_s)) {
    const VehicleId vid = alloc_vehicle();
    Veh& v = vehicles_[vid.index()];
    v.route = req.route;
    v.spawn_seq = result_.metrics.generated;
    v.loc = Loc::Outside;
    v.road = req.entry;
    result_.metrics.generated += 1;
    roads_[req.entry.index()].buffer.push_back(vid);
  }
  for (RoadId entry : net_.entry_roads()) {
    RoadRt& rt = roads_[entry.index()];
    const int capacity = net_.road(entry).capacity;
    // Per-lane FIFO admission: dedicated turning lanes run the full road
    // length, so a vehicle waiting for a full lane does not physically block
    // vehicles headed for the other lanes. Order is preserved within each
    // lane; a lane that rejects its first candidate admits nobody this step.
    // The scratch is sized to the widest road of the network (build_runtime),
    // never to a fixed lane count.
    std::fill(lane_blocked_.begin(), lane_blocked_.begin() + rt.lanes.size(), 0);
    for (auto it = rt.buffer.begin(); it != rt.buffer.end() && rt.occupancy < capacity;) {
      const VehicleId vid = *it;
      Veh& v = vehicles_[vid.index()];
      const int lane = lane_index_for_turn(entry, v.route.turns.front());
      if (lane_blocked_[static_cast<std::size_t>(lane)] || !entry_clear(rt, lane)) {
        lane_blocked_[static_cast<std::size_t>(lane)] = 1;
        ++it;
        continue;
      }
      it = rt.buffer.erase(it);
      rt.occupancy += 1;
      v.loc = Loc::Lane;
      v.lane = lane;
      v.pos = 0.0;
      v.speed = std::min(config_.insertion_speed_mps, net_.road(entry).speed_limit_mps);
      v.entry_time = now_;
      if (const std::optional<LinkId> movement = movement_of(v, entry)) {
        v.next_link = *movement;
      }
      in_network_count_ += 1;
      rt.lanes[static_cast<std::size_t>(lane)].vehicles.push_back(vid);
      result_.metrics.entered += 1;
      // The lane just received a vehicle at its entry point; nobody else fits
      // behind it this step.
      lane_blocked_[static_cast<std::size_t>(lane)] = 1;
    }
    result_.metrics.entry_blocked_time_s +=
        static_cast<double>(rt.buffer.size()) * config_.dt_s;
  }
}

void MicroSim::release_junction_vehicles() {
  for (std::size_t i = 0; i < in_junction_.size();) {
    const VehicleId vid = in_junction_[i];
    Veh& v = vehicles_[vid.index()];
    RoadRt& target = roads_[v.road.index()];
    if (v.junction_exit <= now_ && entry_clear(target, v.lane)) {
      v.loc = Loc::Lane;
      v.pos = 0.0;
      v.speed = std::min(config_.insertion_speed_mps, net_.road(v.road).speed_limit_mps);
      target.lanes[static_cast<std::size_t>(v.lane)].vehicles.push_back(vid);
      in_junction_[i] = in_junction_.back();
      in_junction_.pop_back();
    } else {
      ++i;
    }
  }
}

bool MicroSim::try_grant(VehicleId vid, LinkId link) {
  LinkRt& lrt = links_[link.index()];
  if (!lrt.green || now_ < lrt.next_grant) return false;
  Veh& v = vehicles_[vid.index()];
  const net::Link& l = net_.link(link);
  const RoadId to_road = l.to_road;
  RoadRt& target = roads_[to_road.index()];
  if (target.occupancy >= net_.road(to_road).capacity) return false;

  int target_lane = 0;
  const std::size_t next = v.next_turn + 1;
  if (!net_.road(to_road).is_exit()) {
    if (next >= v.route.turns.size()) {
      throw std::logic_error("route exhausted before reaching an exit road");
    }
    target_lane = lane_index_for_turn(to_road, v.route.turns[next]);
  }
  if (!entry_clear(target, target_lane)) return false;

  // Grant: reserve downstream space, consume the service-rate headway, and
  // stage the vehicle's post-crossing location.
  const double physical_rate = config_.saturation_flow_vps > 0.0
                                   ? std::min(l.service_rate, config_.saturation_flow_vps)
                                   : l.service_rate;
  lrt.next_grant = now_ + 1.0 / physical_rate;
  target.occupancy += 1;
  v.road = to_road;
  v.lane = target_lane;
  v.next_turn = next;
  v.next_link = LinkId{};
  if (!net_.road(to_road).is_exit()) {
    if (const std::optional<LinkId> movement = movement_of(v, to_road)) {
      v.next_link = *movement;
    }
  }
  return true;
}

void MicroSim::update_lane(const net::Road& road, Lane& lane) {
  // Junction service first: a green movement serves the head vehicle at most
  // once per 1/mu seconds, provided it has reached the service zone at the
  // stop line. Service moves the vehicle into the junction box immediately;
  // everything behind it keeps following normally. On a mixed lane the head
  // vehicle's own route decides the movement — if that movement is red, the
  // whole lane waits behind it (head-of-line blocking).
  if (!lane.vehicles.empty() && !road.is_exit()) {
    const VehicleId vid = lane.vehicles.front();
    Veh& v = vehicles_[vid.index()];
    const LinkId head_link = lane.link ? *lane.link : v.next_link;
    if (head_link.valid() && v.pos >= road.length_m - config_.service_zone_m &&
        try_grant(vid, head_link)) {
      v.loc = Loc::Junction;
      v.junction_exit = now_ + config_.junction_crossing_s;
      v.speed = config_.insertion_speed_mps;
      roads_[road.id.index()].occupancy -= 1;
      in_junction_.push_back(vid);
      lane.vehicles.pop_front();
    }
  }

  // Hot loop: hoist config reads and carry the leader across iterations, so
  // each vehicle costs one Krauss update and no repeated indexing. Vehicle
  // storage is not reallocated inside this loop, so the pointer stays valid.
  const double dt = config_.dt_s;
  const double vehicle_length = config_.vehicle.length_m;
  const double min_gap = config_.vehicle.min_gap_m;
  const bool dawdling = config_.vehicle.sigma > 0.0;
  const bool is_exit = road.is_exit();
  const bool count_queues = memo_pending_;
  const bool dedicated = lane.link.has_value();
  const LinkId lane_link = dedicated ? *lane.link : LinkId{};
  const std::size_t road_index = road.id.index();
  bool head_completed = false;
  const Veh* leader = nullptr;
  const std::size_t n = lane.vehicles.size();
  for (std::size_t i = 0; i < n; ++i) {
    const VehicleId vid = lane.vehicles[i];
    Veh& v = vehicles_[vid.index()];
    double gap;
    double leader_speed;

    if (leader != nullptr) {
      gap = leader->pos - vehicle_length - v.pos - min_gap;
      leader_speed = leader->speed;
    } else if (is_exit) {
      gap = kFreeGap;  // drives off the far end
      leader_speed = 0.0;
    } else {
      // Approach the stop line as a standing obstacle; service happens via
      // the grant above once within the zone.
      gap = road.length_m - v.pos;
      leader_speed = 0.0;
    }

    const double dawdle = dawdling ? rng_.uniform01() : 0.0;
    v.speed = next_speed(v.speed, gap, leader_speed, road.speed_limit_mps, config_.vehicle,
                         dt, dawdle);
    v.pos += v.speed * dt;

    if (leader != nullptr) {
      // Numerical guard: never overlap the leader.
      const double limit = leader->pos - vehicle_length - 0.1;
      if (v.pos > limit) {
        v.pos = std::max(0.0, limit);
        v.speed = std::min(v.speed, leader->speed);
      }
    } else if (!is_exit && v.pos > road.length_m - 0.2) {
      v.pos = road.length_m - 0.2;  // hold at the stop line
      v.speed = 0.0;
    }

    if (is_exit && i == 0 && v.pos >= road.length_m) {
      complete_vehicle(vid);
      head_completed = true;
    } else {
      if (v.speed < config_.waiting_speed_threshold_mps) {
        // Waiting-time accumulation, folded into the lane update so the
        // per-tick cost is O(active vehicles), never O(vehicles ever spawned).
        v.waiting_time += dt;
      }
      if (count_queues) {
        // Queued-count memo for next step's controller decisions; a vehicle
        // that just completed is gone by decision time and must not count.
        if (v.speed < config_.approach_queue_threshold_mps) {
          road_queued_approach_[road_index] += 1;
          const LinkId movement = dedicated ? lane_link : v.next_link;
          if (movement.valid()) link_queued_approach_[movement.index()] += 1;
        }
        if (v.speed < config_.congestion_queue_threshold_mps) {
          road_queued_congestion_[road_index] += 1;
        }
      }
    }
    leader = &v;
  }
  if (head_completed) {
    lane.vehicles.pop_front();
  }
}

void MicroSim::update_roads() {
  // When the next step opens with a controller decision, the queued-count
  // memo tables are rebuilt during this sweep — the vehicles are already in
  // cache here, so observe() never needs a separate scan. The predicate is
  // bit-identical to next step's control check (same addition, same compare).
  memo_pending_ = now_ + config_.dt_s >= next_control_;
  if (memo_pending_) {
    std::fill(road_queued_approach_.begin(), road_queued_approach_.end(), 0);
    std::fill(road_queued_congestion_.begin(), road_queued_congestion_.end(), 0);
    std::fill(link_queued_approach_.begin(), link_queued_approach_.end(), 0);
  }
  for (const net::Road& road : net_.roads()) {
    for (Lane& lane : roads_[road.id.index()].lanes) {
      update_lane(road, lane);
    }
  }
}

void MicroSim::complete_vehicle(VehicleId vid) {
  Veh& v = vehicles_[vid.index()];
  v.loc = Loc::Done;
  roads_[v.road.index()].occupancy -= 1;
  in_network_count_ -= 1;
  result_.metrics.completed += 1;
  result_.metrics.queuing_time_s.add(v.waiting_time);
  result_.metrics.travel_time_s.add(now_ - v.entry_time);
  // The slot becomes reusable next step; update_lane pops the id from its
  // lane before any new vehicle can claim it (admission runs pre-update).
  free_slots_.push_back(vid.value());
}

void MicroSim::sample_watches() {
  for (const Watch& w : watches_) {
    // Fig. 5 plots queue lengths, i.e. what the approach detectors report.
    result_.road_series[w.series_index].push(
        now_, static_cast<double>(
                  road_queued_count(w.road, config_.approach_queue_threshold_mps)));
  }
  result_.in_network_series.push(now_, static_cast<double>(vehicles_in_network()));
}

void MicroSim::step() {
  if (now_ >= next_control_) {
    control_step();
    next_control_ += config_.control_interval_s;
  }
  if (now_ >= next_sample_) {
    sample_watches();
    next_sample_ += config_.sample_interval_s;
  }
  admit_spawns();
  release_junction_vehicles();
  update_roads();
  now_ += config_.dt_s;
}

stats::RunResult& MicroSim::run_until(double until_s) {
  if (finished_) throw std::logic_error("MicroSim::run_until after finish");
  while (now_ < until_s) step();
  return result_;
}

stats::RunResult MicroSim::finish(double duration_s) {
  run_until(duration_s);
  finished_ = true;
  // Close open records in spawn order: slot recycling permutes vehicle
  // indices, and the metric SampleSets are floating-point order-sensitive.
  std::vector<std::pair<std::uint64_t, VehicleId>> open;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const Veh& v = vehicles_[i];
    if (v.loc != Loc::Lane && v.loc != Loc::Junction) continue;
    open.emplace_back(v.spawn_seq, VehicleId(static_cast<VehicleId::value_type>(i)));
  }
  std::sort(open.begin(), open.end());
  for (const auto& [seq, vid] : open) {
    Veh& v = vehicles_[vid.index()];
    result_.metrics.in_network_at_end += 1;
    result_.metrics.queuing_time_s.add(v.waiting_time);
    result_.metrics.travel_time_s.add(now_ - v.entry_time);
    v.loc = Loc::Done;
  }
  for (stats::PhaseTrace& trace : result_.phase_traces) trace.finish(now_);
  result_.duration_s = now_;
  return std::move(result_);
}

}  // namespace abp::microsim
