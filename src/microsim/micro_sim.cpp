#include "src/microsim/micro_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/microsim/krauss.hpp"
#include "src/microsim/lane_kernel.hpp"

namespace abp::microsim {

MicroSim::MicroSim(const net::Network& network, MicroSimConfig config,
                   std::vector<core::ControllerPtr> controllers,
                   traffic::DemandGenerator& demand, std::uint64_t seed)
    : net_(network),
      config_(config),
      controllers_(std::move(controllers)),
      demand_(demand),
      rng_(seed),
      seed_(seed) {
  if (!net_.finalized()) throw std::invalid_argument("network must be finalized");
  if (config_.dt_s <= 0.0) throw std::invalid_argument("dt must be positive");
  if (config_.control_interval_s < config_.dt_s) {
    throw std::invalid_argument("control interval must be >= dt");
  }
  if (config_.threads < 1) throw std::invalid_argument("threads must be >= 1");
  if (controllers_.size() != net_.intersections().size()) {
    throw std::invalid_argument("need exactly one controller per intersection");
  }
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  build_runtime();
}

void MicroSim::build_runtime() {
  roads_.resize(net_.roads().size());
  links_.resize(net_.links().size());
  displayed_.assign(net_.intersections().size(), net::kTransitionPhase);
  result_.phase_traces.resize(net_.intersections().size());
  road_streams_.reserve(net_.roads().size());
  for (std::size_t r = 0; r < net_.roads().size(); ++r) {
    road_streams_.emplace_back(seed_, static_cast<std::uint64_t>(r));
  }
  road_capacity_.reserve(net_.roads().size());
  for (const net::Road& road : net_.roads()) road_capacity_.push_back(road.capacity);

  for (const net::Road& road : net_.roads()) {
    RoadRt& rt = roads_[road.id.index()];
    if (road.is_exit()) {
      rt.lanes.push_back(Lane{});  // single unsignalled lane
      continue;
    }
    // The topology index guarantees turn order (Left, Straight, Right) —
    // exactly the dedicated-lane layout the paper assumes.
    const std::span<const LinkId> movements = net_.links_from(road.id);
    if (config_.dedicated_turn_lanes) {
      // One dedicated lane per feasible movement, ordered Left/Straight/Right.
      for (LinkId lid : movements) {
        LinkRt& lrt = links_[lid.index()];
        lrt.from_road = road.id;
        lrt.lane_index = static_cast<int>(rt.lanes.size());
        Lane lane;
        lane.link = lid;
        rt.lanes.push_back(std::move(lane));
      }
    } else {
      // One mixed lane shared by all movements: a vehicle's own route turn
      // selects its movement at the stop line (head-of-line blocking).
      rt.lanes.push_back(Lane{});
      for (LinkId lid : movements) {
        LinkRt& lrt = links_[lid.index()];
        lrt.from_road = road.id;
        lrt.lane_index = 0;
      }
    }
  }

  // Per-(intersection, phase) green-link index, CSR over one flat array:
  // phase_links_[phase_link_offsets_[slot] .. phase_link_offsets_[slot + 1])
  // with slot = phase_slot_base_[node] + displayed phase. Built once here —
  // phase composition is finalized-time topology — so the junction phase
  // reads the displayed phase's movements directly instead of a green set
  // rebuilt every control step. Order inside a slot is the phase's own link
  // order, so iterating nodes in index order reproduces the historical
  // (intersection, phase-link) grant order exactly.
  phase_slot_base_.clear();
  phase_slot_base_.reserve(net_.intersections().size());
  phase_link_offsets_.assign(1, 0);
  phase_links_.clear();
  for (const net::Intersection& node : net_.intersections()) {
    phase_slot_base_.push_back(static_cast<std::uint32_t>(phase_link_offsets_.size() - 1));
    for (const net::Phase& phase : node.phases) {
      for (LinkId lid : phase.links) phase_links_.push_back(lid);
      phase_link_offsets_.push_back(static_cast<std::uint32_t>(phase_links_.size()));
    }
  }

  road_queued_approach_.assign(net_.roads().size(), 0);
  road_queued_congestion_.assign(net_.roads().size(), 0);
  link_queued_approach_.assign(net_.links().size(), 0);
  memo_dirty_.assign(net_.roads().size(), 0);
  sweep_scratch_.resize(static_cast<std::size_t>(config_.threads));
  std::size_t max_lanes = 1;
  for (const RoadRt& rt : roads_) max_lanes = std::max(max_lanes, rt.lanes.size());
  lane_blocked_.assign(max_lanes, 0);
}

void MicroSim::watch_road(RoadId road, std::string series_name) {
  watches_.push_back({road, result_.road_series.size()});
  result_.road_series.emplace_back(std::move(series_name));
}

int MicroSim::lane_count(LinkId link) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  if (lane.link) return static_cast<int>(lane.vehicles.size());
  // Mixed lane: count the vehicles whose route takes this movement.
  int count = 0;
  for (VehicleId vid : lane.vehicles) {
    if (veh_next_link_[vid.index()] == link) ++count;
  }
  return count;
}

int MicroSim::road_occupancy(RoadId road) const { return roads_[road.index()].occupancy; }

void MicroSim::set_road_capacity(RoadId road, int capacity) {
  road_capacity_[road.index()] = std::max(0, capacity);
}

int MicroSim::queued_on_road(RoadId road) const {
  int total = 0;
  for (LinkId link : net_.links_from(road)) total += lane_count(link);
  return total;
}

net::PhaseIndex MicroSim::displayed_phase(IntersectionId node) const {
  return displayed_[node.index()];
}

int MicroSim::vehicles_in_network() const { return in_network_count_; }

std::vector<double> MicroSim::lane_positions(LinkId link) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  std::vector<double> positions;
  positions.reserve(lane.pos.size());
  for (std::size_t i = 0; i < lane.pos.size(); ++i) positions.push_back(lane.pos[i]);
  return positions;
}

bool MicroSim::no_overlaps() const {
  for (const RoadRt& rt : roads_) {
    for (const Lane& lane : rt.lanes) {
      for (std::size_t i = 0; i + 1 < lane.pos.size(); ++i) {
        if (lane.pos[i + 1] > lane.pos[i] - config_.vehicle.length_m + 1e-6) return false;
      }
    }
  }
  return true;
}

int MicroSim::lane_index_for_turn(RoadId road, net::Turn turn) const {
  const RoadRt& rt = roads_[road.index()];
  if (!config_.dedicated_turn_lanes) return 0;  // single mixed lane
  for (std::size_t i = 0; i < rt.lanes.size(); ++i) {
    if (rt.lanes[i].link && net_.link(*rt.lanes[i].link).turn == turn) {
      return static_cast<int>(i);
    }
  }
  throw std::logic_error("no lane for requested turn on road " + net_.road(road).name);
}

std::optional<LinkId> MicroSim::movement_of(const VehMeta& m, RoadId road) const {
  if (m.next_turn >= m.route.turns.size()) return std::nullopt;
  return net_.find_link(road, m.route.turns[m.next_turn]);
}

int MicroSim::road_vehicle_count(RoadId road) const {
  int count = 0;
  for (const Lane& lane : roads_[road.index()].lanes) {
    count += static_cast<int>(lane.vehicles.size());
  }
  return count;
}

int MicroSim::lane_queued_count(const Lane& lane, double threshold_mps) const {
  int count = 0;
  for (std::size_t i = 0; i < lane.speed.size(); ++i) {
    if (lane.speed[i] < threshold_mps) ++count;
  }
  return count;
}

int MicroSim::link_queued_count(LinkId link, double threshold_mps) const {
  const LinkRt& lrt = links_[link.index()];
  const Lane& lane =
      roads_[lrt.from_road.index()].lanes[static_cast<std::size_t>(lrt.lane_index)];
  if (lane.link) return lane_queued_count(lane, threshold_mps);
  // Mixed lane: the movement's queue is the slow vehicles headed through it.
  int count = 0;
  for (std::size_t i = 0; i < lane.speed.size(); ++i) {
    if (lane.speed[i] < threshold_mps && veh_next_link_[lane.vehicles[i].index()] == link) {
      ++count;
    }
  }
  return count;
}

int MicroSim::road_queued_count(RoadId road, double threshold_mps) const {
  int count = 0;
  for (const Lane& lane : roads_[road.index()].lanes) {
    count += lane_queued_count(lane, threshold_mps);
  }
  return count;
}

bool MicroSim::entry_clear(const RoadRt& rt, int lane_index) const {
  const Lane& lane = rt.lanes[static_cast<std::size_t>(lane_index)];
  if (lane.vehicles.empty()) return true;
  const double rear_pos = lane.pos.back();
  // The new vehicle's front bumper enters at pos 0; the rear vehicle's back
  // bumper must leave room for it plus the standstill gap.
  return rear_pos - config_.vehicle.length_m >= config_.vehicle.min_gap_m + 0.5;
}

const core::IntersectionObservation& MicroSim::observe(const net::Intersection& node) {
  core::IntersectionObservation& obs = obs_scratch_;
  obs.time = now_;
  obs.links.clear();
  obs.links.reserve(node.links.size());
  for (LinkId lid : node.links) {
    const net::Link& link = net_.link(lid);
    core::LinkState state;
    // Queue readings pass through the detector model; occupancy and
    // capacities are physical state, never perturbed. True counts come from
    // the control-step memo tables (refresh_queue_memo), not per-link scans.
    state.queue =
        core::measure_queue(link_queued_approach_[lid.index()], config_.sensor, rng_);
    state.upstream_total = core::measure_queue(road_queued_approach_[link.from_road.index()],
                                               config_.sensor, rng_);
    state.upstream_capacity = net_.road(link.from_road).capacity;
    state.downstream_queue = core::measure_queue(
        road_queued_congestion_[link.to_road.index()], config_.sensor, rng_);
    state.downstream_total = roads_[link.to_road.index()].occupancy;
    state.downstream_capacity = net_.road(link.to_road).capacity;
    state.service_rate = link.service_rate;
    obs.links.push_back(state);
  }
  return obs;
}

void MicroSim::control_step() {
  for (const net::Intersection& node : net_.intersections()) {
    // Sharded: decide only owned junctions. Skipping a junction cannot desync
    // the sensor stream — sharded construction requires a perfect sensor
    // model, under which measure_queue never draws from rng_.
    if (masked_junction(node.id.index())) continue;
    const net::PhaseIndex phase = controllers_[node.id.index()]->decide(observe(node));
    if (phase < 0 || phase >= static_cast<int>(node.phases.size())) {
      throw std::logic_error("controller returned an out-of-range phase");
    }
    displayed_[node.id.index()] = phase;
    result_.phase_traces[node.id.index()].record(now_, phase);
  }
}

VehicleId MicroSim::alloc_vehicle() {
  if (!free_slots_.empty()) {
    const VehicleId vid(free_slots_.back());
    free_slots_.pop_back();
    const std::size_t idx = vid.index();
    veh_meta_[idx] = VehMeta{};
    veh_waiting_[idx] = 0.0;
    veh_next_link_[idx] = LinkId{};
    return vid;
  }
  veh_meta_.emplace_back();
  veh_waiting_.push_back(0.0);
  veh_next_link_.emplace_back();
  return VehicleId(static_cast<VehicleId::value_type>(veh_meta_.size() - 1));
}

void MicroSim::admit_spawns() {
  // Sharded: every worker polls the full demand stream (identical draws keep
  // spawn_seq a global ordinal and the generated count exact in each worker)
  // but only materializes vehicles bound for its own entry roads.
  demand_.poll_into(now_, now_ + config_.dt_s, spawn_buffer_);
  for (const traffic::SpawnRequest& req : spawn_buffer_) {
    if (masked_road(req.entry.index())) {
      result_.metrics.generated += 1;
      continue;
    }
    const VehicleId vid = alloc_vehicle();
    VehMeta& m = veh_meta_[vid.index()];
    m.route = req.route;
    m.spawn_seq = result_.metrics.generated;
    m.loc = Loc::Outside;
    m.road = req.entry;
    result_.metrics.generated += 1;
    roads_[req.entry.index()].buffer.push_back(vid);
  }
  std::uint32_t entry_index = 0;
  for (RoadId entry : net_.entry_roads()) {
    const std::uint32_t entry_order = entry_index++;
    if (masked_road(entry.index())) continue;
    RoadRt& rt = roads_[entry.index()];
    const int capacity = road_capacity_[entry.index()];
    // Per-lane FIFO admission: dedicated turning lanes run the full road
    // length, so a vehicle waiting for a full lane does not physically block
    // vehicles headed for the other lanes. Order is preserved within each
    // lane; a lane that rejects its first candidate admits nobody this step.
    // The scratch is sized to the widest road of the network (build_runtime),
    // never to a fixed lane count.
    std::fill(lane_blocked_.begin(), lane_blocked_.begin() + rt.lanes.size(), 0);
    for (auto it = rt.buffer.begin(); it != rt.buffer.end() && rt.occupancy < capacity;) {
      const VehicleId vid = *it;
      VehMeta& m = veh_meta_[vid.index()];
      const int lane = lane_index_for_turn(entry, m.route.turns.front());
      if (lane_blocked_[static_cast<std::size_t>(lane)] || !entry_clear(rt, lane)) {
        lane_blocked_[static_cast<std::size_t>(lane)] = 1;
        ++it;
        continue;
      }
      it = rt.buffer.erase(it);
      rt.occupancy += 1;
      m.loc = Loc::Lane;
      m.lane = lane;
      m.entry_time = now_;
      if (const std::optional<LinkId> movement = movement_of(m, entry)) {
        veh_next_link_[vid.index()] = *movement;
      }
      in_network_count_ += 1;
      rt.lanes[static_cast<std::size_t>(lane)].push_vehicle(
          vid, 0.0, std::min(config_.insertion_speed_mps, net_.road(entry).speed_limit_mps),
          veh_waiting_[vid.index()]);
      result_.metrics.entered += 1;
      // The lane just received a vehicle at its entry point; nobody else fits
      // behind it this step.
      lane_blocked_[static_cast<std::size_t>(lane)] = 1;
    }
    result_.metrics.entry_blocked_time_s +=
        static_cast<double>(rt.buffer.size()) * config_.dt_s;
    // Journal nonzero blocked counts for the coordinator's metric replay;
    // the zero adds above are the bitwise identity and need no record.
    if (shard_ != nullptr && !rt.buffer.empty()) {
      shard_->blocked.push_back({entry_order, static_cast<std::uint32_t>(rt.buffer.size())});
    }
  }
}

void MicroSim::release_junction_vehicles() {
  // Order-preserving compaction: vehicles are released in box-entry (FIFO)
  // order, so when two boxed vehicles contend for the same target lane's
  // insertion gap, the earlier grant wins. The order is a pure function of
  // the grant sequence — reproducible per junction, independent of how
  // vehicles were removed in earlier ticks.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < in_junction_.size(); ++i) {
    const VehicleId vid = in_junction_[i];
    VehMeta& m = veh_meta_[vid.index()];
    RoadRt& target = roads_[m.road.index()];
    if (m.junction_exit <= now_ && entry_clear(target, m.lane)) {
      m.loc = Loc::Lane;
      target.lanes[static_cast<std::size_t>(m.lane)].push_vehicle(
          vid, 0.0, std::min(config_.insertion_speed_mps, net_.road(m.road).speed_limit_mps),
          veh_waiting_[vid.index()]);
    } else {
      in_junction_[kept++] = vid;
    }
  }
  in_junction_.resize(kept);
}

bool MicroSim::try_grant(VehicleId vid, LinkId link) {
  // Only ever called for links of the currently displayed phase (the green
  // set by construction), so no green check is needed — just the headway.
  LinkRt& lrt = links_[link.index()];
  if (now_ < lrt.next_grant) return false;
  VehMeta& m = veh_meta_[vid.index()];
  const net::Link& l = net_.link(link);
  const RoadId to_road = l.to_road;
  RoadRt& target = roads_[to_road.index()];
  if (target.occupancy >= road_capacity_[to_road.index()]) return false;

  int target_lane = 0;
  const std::size_t next = m.next_turn + 1;
  if (!net_.road(to_road).is_exit()) {
    if (next >= m.route.turns.size()) {
      throw std::logic_error("route exhausted before reaching an exit road");
    }
    target_lane = lane_index_for_turn(to_road, m.route.turns[next]);
  }
  if (!entry_clear(target, target_lane)) return false;

  // Grant: reserve downstream space, consume the service-rate headway, and
  // stage the vehicle's post-crossing location.
  const double physical_rate = config_.saturation_flow_vps > 0.0
                                   ? std::min(l.service_rate, config_.saturation_flow_vps)
                                   : l.service_rate;
  lrt.next_grant = now_ + 1.0 / physical_rate;
  target.occupancy += 1;
  m.road = to_road;
  m.lane = target_lane;
  m.next_turn = next;
  veh_next_link_[vid.index()] = LinkId{};
  if (!net_.road(to_road).is_exit()) {
    if (const std::optional<LinkId> movement = movement_of(m, to_road)) {
      veh_next_link_[vid.index()] = *movement;
    }
  }
  return true;
}

void MicroSim::service_junctions() {
  // A green movement serves the head vehicle at most once per 1/mu seconds,
  // provided it has reached the service zone at the stop line. Service moves
  // the vehicle into the junction box immediately; everything behind it keeps
  // following normally in the sweep. Only the currently green links are
  // visited — each node's displayed phase selects its slot of the precomputed
  // green-link index, so red movements are never scanned and control steps no
  // longer rebuild any green set. On a mixed lane the head vehicle's own route
  // decides the movement
  // — the grant happens on the link matching the head's resolved next_link,
  // and if that movement is red the whole lane waits behind it (head-of-line
  // blocking). Grants read and write state of the *downstream* road
  // (occupancy reservation, insertion-gap check), which another road's work
  // unit owns — that cross-road coupling is exactly why this phase runs
  // sequentially, before the parallel sweep.
  for (const net::Intersection& node : net_.intersections()) {
    const std::size_t ni = node.id.index();
    if (masked_junction(ni)) continue;
    const std::uint32_t slot =
        phase_slot_base_[ni] + static_cast<std::uint32_t>(displayed_[ni]);
    const std::uint32_t slot_end = phase_link_offsets_[slot + 1];
    for (std::uint32_t k = phase_link_offsets_[slot]; k < slot_end; ++k) {
      const LinkId lid = phase_links_[k];
      const LinkRt& lrt = links_[lid.index()];
      if (now_ < lrt.next_grant) continue;
      RoadRt& rt = roads_[lrt.from_road.index()];
      Lane& lane = rt.lanes[static_cast<std::size_t>(lrt.lane_index)];
      if (lane.vehicles.empty()) continue;
      const VehicleId vid = lane.vehicles.front();
      // Mixed lane: this link only serves the head if it is the head's own
      // movement (dedicated lanes satisfy this by construction), and the stop
      // line serves at most one vehicle per tick even when several green links
      // share the lane.
      if (!lane.link &&
          (veh_next_link_[vid.index()] != lid || lane.serviced_at == now_)) {
        continue;
      }
      const net::Road& road = net_.road(lrt.from_road);
      if (lane.pos.front() < road.length_m - config_.service_zone_m) continue;
      if (!try_grant(vid, lid)) continue;
      lane.serviced_at = now_;
      veh_waiting_[vid.index()] = lane.waiting.front();
      VehMeta& m = veh_meta_[vid.index()];
      m.junction_exit = now_ + config_.junction_crossing_s;
      rt.occupancy -= 1;
      lane.pop_head();
      if (shard_ != nullptr && !shard_->own_road[m.road.index()]) {
        // Granted onto a remote boundary road: hand the vehicle to the owner
        // instead of this worker's junction box. try_grant already committed
        // the grant's effects on the mirror (occupancy reservation, headway);
        // the owner re-materializes the vehicle at ingest, so the slot here
        // is done.
        shard::MicroTransfer t;
        t.road = static_cast<std::uint32_t>(m.road.index());
        t.lane = m.lane;
        t.spawn_seq = m.spawn_seq;
        t.next_turn = m.next_turn;
        t.junction_exit = m.junction_exit;
        t.entry_time = m.entry_time;
        t.waiting = veh_waiting_[vid.index()];
        t.turns = m.route.turns;
        shard_->micro_outbox.push_back(std::move(t));
        m.loc = Loc::Done;
        in_network_count_ -= 1;
        free_slots_.push_back(vid.value());
      } else {
        m.loc = Loc::Junction;
        in_junction_.push_back(vid);
      }
    }
  }
}

void MicroSim::sweep_lane(const net::Road& road, RoadRt& rt, Lane& lane, StreamRng& rng,
                          LaneKernelScratch& scratch) {
  const std::size_t n = lane.vehicles.size();
  if (n == 0) return;

  // Hot path. All state touched here is owned by this road's work unit: the
  // lane order, the lane-local kinematic arrays, the road's memo-table rows,
  // and the road's own dawdle stream — nothing shared, so the sweep
  // parallelizes without locks and the draw sequence is independent of the
  // thread schedule.
  const double dt = config_.dt_s;
  // Local copy of the car-following parameters: every store into the lane's
  // double arrays could alias a double field reached through a reference
  // (same TBAA class), which would force the compiler to reload them each
  // iteration; locals provably cannot alias and stay in registers.
  const VehicleParams vp = config_.vehicle;
  const double road_length = road.length_m;
  const bool is_exit = road.is_exit();
  double* pos = &lane.pos[0];
  double* speed = &lane.speed[0];

  // Kinematics: the vectorized kernel passes of lane_kernel.hpp — bulk
  // dawdle fill (one counter-stream batch, identical stream accounting to n
  // scalar draws), gap stencil, branchless synchronous-Krauss speed pass,
  // fused integrate + stop-line clamp, and the rare sequential overlap
  // fallback. Used at every occupancy: the branchless form also beats the
  // scalar loop on short lanes in the real sweep, where varied lane states
  // defeat the branch predictor (see lane_kernel.hpp on why the microbench
  // suggests otherwise). Bit-identical to the scalar reference by
  // construction (element-wise FP in array order is the same arithmetic in
  // the same order); tests/microsim_krauss_test.cpp pins it lane-for-lane.
  lane_update_vectorized(pos, speed, n, road.speed_limit_mps, road_length, is_exit, vp,
                         dt, vp.sigma > 0.0 ? &rng : nullptr, scratch);

  // Accounting tail — completion staging, waiting time, queued-count memos —
  // on the final speeds/positions. The integer memo counts commute, so
  // splitting them out of the kinematic loop cannot change them; waiting-time
  // accumulation stays element-wise (+= dt or += 0.0, and a waiting total is
  // never -0.0, so the no-op add is the bitwise identity).
  std::size_t begin = 0;
  if (is_exit && pos[0] >= road_length) {
    // Stage the completion: metric accumulation is floating-point
    // order-sensitive and mutates shared counters, so it runs sequentially
    // in apply_completions(), in exit-road order. Write the lane-carried
    // waiting time back now; the pop at the end of the sweep discards it.
    // A completed vehicle is gone by decision time and must not count in
    // the waiting/memo passes below. At most the head can cross per tick.
    rt.completed = lane.vehicles.front();
    veh_waiting_[rt.completed.index()] = lane.waiting[0];
    begin = 1;
  }
  double* waiting = &lane.waiting[0];
  const double waiting_threshold = config_.waiting_speed_threshold_mps;
  for (std::size_t i = begin; i < n; ++i) {
    // Waiting-time accumulation, folded into the lane update so the per-tick
    // cost is O(active vehicles), never O(vehicles ever spawned), and
    // contiguous: the scattered per-vehicle row is only touched when the
    // vehicle leaves the lane.
    waiting[i] += speed[i] < waiting_threshold ? dt : 0.0;
  }
  if (memo_pending_) {
    // Queued-count memo for next step's controller decisions.
    const double approach_threshold = config_.approach_queue_threshold_mps;
    const double congestion_threshold = config_.congestion_queue_threshold_mps;
    int approach = 0;
    int congestion = 0;
    for (std::size_t i = begin; i < n; ++i) {
      approach += speed[i] < approach_threshold ? 1 : 0;
      congestion += speed[i] < congestion_threshold ? 1 : 0;
    }
    const std::size_t road_index = road.id.index();
    road_queued_approach_[road_index] += approach;
    road_queued_congestion_[road_index] += congestion;
    if (lane.link) {
      // Dedicated lane: every queued vehicle belongs to the lane's movement.
      link_queued_approach_[lane.link->index()] += approach;
    } else {
      // Mixed (or exit) lane: gather each slow vehicle's own resolved
      // movement; invalid on exit roads, where no link row exists.
      for (std::size_t i = begin; i < n; ++i) {
        if (speed[i] < approach_threshold) {
          const LinkId movement = veh_next_link_[lane.vehicles[i].index()];
          if (movement.valid()) link_queued_approach_[movement.index()] += 1;
        }
      }
    }
  }
  if (begin == 1) {
    lane.pop_head();
  }
}

void MicroSim::sweep_roads() {
  // When the next step opens with a controller decision, the queued-count
  // memo tables are rebuilt during this sweep — the vehicles are already in
  // cache here, so observe() never needs a separate scan. The predicate is
  // bit-identical to next step's control check (same addition, same compare).
  memo_pending_ = now_ + config_.dt_s >= next_control_;
  if (memo_pending_ && config_.memo_always_rebuild) {
    // Reference path: global zero of every memo row before the rebuild. The
    // default path below instead zeroes rows per road, lazily — a row is
    // cleared only when its road is occupied this tick (about to be
    // re-accumulated) or still dirty from an earlier rebuild. Empty roads
    // whose rows are already clean — the common case on big grids — are
    // skipped entirely (the elision). The lazy zeroing after a global fill
    // re-zeroes zeros, so both paths land on identical tables; the unit test
    // pins that bit-for-bit.
    std::fill(road_queued_approach_.begin(), road_queued_approach_.end(), 0);
    std::fill(road_queued_congestion_.begin(), road_queued_congestion_.end(), 0);
    std::fill(link_queued_approach_.begin(), link_queued_approach_.end(), 0);
  }
  const std::vector<net::Road>& roads = net_.roads();
  // The chunk id keys the per-work-unit kernel scratch: one scratch per
  // participant, never shared, reused across that chunk's lanes and ticks.
  // Memo rows and dirty bits are touched only by the owning road's work
  // unit (a link's row belongs to its from_road), so this stays race-free.
  pool_->parallel_for_indexed(
      roads.size(), [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        LaneKernelScratch& scratch = sweep_scratch_[chunk];
        for (std::size_t r = begin; r < end; ++r) {
          // Sharded: remote roads are mirrors — nonzero occupancy but no
          // simulated lanes here. Mask before the occupancy fast path.
          if (masked_road(r)) continue;
          RoadRt& rt = roads_[r];
          if (rt.occupancy == 0) {  // occupancy >= vehicles on lanes
            if (memo_pending_ && memo_dirty_[r]) {
              zero_memo_rows(r);
              memo_dirty_[r] = 0;
            }
            continue;
          }
          const net::Road& road = roads[r];
          if (memo_pending_) {
            zero_memo_rows(r);
            memo_dirty_[r] = 1;
          }
          StreamRng& stream = road_streams_[r];
          for (Lane& lane : rt.lanes) {
            // Empty dedicated lanes are common (traffic concentrates on a
            // few movements); skip them before paying the call.
            if (!lane.vehicles.empty()) sweep_lane(road, rt, lane, stream, scratch);
          }
        }
      });
  apply_completions();
}

void MicroSim::zero_memo_rows(std::size_t road_index) {
  road_queued_approach_[road_index] = 0;
  road_queued_congestion_[road_index] = 0;
  for (LinkId lid : net_.links_from(net_.roads()[road_index].id)) {
    link_queued_approach_[lid.index()] = 0;
  }
}

void MicroSim::apply_completions() {
  std::uint32_t exit_index = 0;
  for (RoadId exit : net_.exit_roads()) {
    const std::uint32_t exit_order = exit_index++;
    RoadRt& rt = roads_[exit.index()];
    if (!rt.completed.valid()) continue;
    if (shard_ != nullptr) {
      // Journal the completion for the coordinator's metric replay, with the
      // exact doubles the local accumulation below adds.
      const VehMeta& m = veh_meta_[rt.completed.index()];
      shard_->completions.push_back(
          {exit_order, veh_waiting_[rt.completed.index()], now_ - m.entry_time});
    }
    complete_vehicle(rt.completed);
    rt.completed = VehicleId{};
  }
}

void MicroSim::complete_vehicle(VehicleId vid) {
  VehMeta& m = veh_meta_[vid.index()];
  m.loc = Loc::Done;
  roads_[m.road.index()].occupancy -= 1;
  in_network_count_ -= 1;
  result_.metrics.completed += 1;
  result_.metrics.queuing_time_s.add(veh_waiting_[vid.index()]);
  result_.metrics.travel_time_s.add(now_ - m.entry_time);
  // The slot becomes reusable next step; the sweep popped the id from its
  // lane before any new vehicle can claim it (admission runs pre-sweep).
  free_slots_.push_back(vid.value());
}

void MicroSim::sample_watches() {
  for (const Watch& w : watches_) {
    // Fig. 5 plots queue lengths, i.e. what the approach detectors report.
    result_.road_series[w.series_index].push(
        now_, static_cast<double>(
                  road_queued_count(w.road, config_.approach_queue_threshold_mps)));
  }
  result_.in_network_series.push(now_, static_cast<double>(vehicles_in_network()));
}

void MicroSim::step_begin() {
  if (now_ >= next_control_) {
    control_step();
    next_control_ += config_.control_interval_s;
  }
  if (now_ >= next_sample_) {
    sample_watches();
    next_sample_ += config_.sample_interval_s;
  }
  admit_spawns();
  release_junction_vehicles();
  // Everything in the box from here on is this tick's own grants; next
  // tick's lower-band transfers insert at this point (see ingest_transfer).
  junction_mark_ = in_junction_.size();
}

void MicroSim::step_service() { service_junctions(); }

void MicroSim::step_finish() {
  sweep_roads();
  now_ += config_.dt_s;
}

void MicroSim::step() {
  step_begin();
  step_service();
  step_finish();
}

void MicroSim::ingest_transfer(const shard::MicroTransfer& t, bool from_lower_band) {
  const VehicleId vid = alloc_vehicle();
  VehMeta& m = veh_meta_[vid.index()];
  m.route.turns = t.turns;
  m.route.entry = RoadId{};  // only admission reads the entry; already past it
  m.spawn_seq = t.spawn_seq;
  m.next_turn = static_cast<std::size_t>(t.next_turn);
  m.loc = Loc::Junction;
  m.road = RoadId(t.road);
  m.lane = t.lane;
  m.junction_exit = t.junction_exit;
  m.entry_time = t.entry_time;
  veh_waiting_[vid.index()] = t.waiting;
  // The grantor's try_grant resolved the *next* movement before extraction
  // was decided; redo that resolution here (same inputs, same result).
  if (!net_.road(m.road).is_exit()) {
    if (const std::optional<LinkId> movement = movement_of(m, m.road)) {
      veh_next_link_[vid.index()] = *movement;
    }
  }
  roads_[m.road.index()].occupancy += 1;
  in_network_count_ += 1;
  // Box-entry order must replay the monolithic grant order: [survivors of
  // last tick's release | lower band's grants | own grants | upper band's
  // grants] — node index grows with grid row, so the lower-numbered band's
  // junctions granted first in the monolithic service pass. junction_mark_
  // is the survivors/own-grants split recorded by step_begin.
  if (from_lower_band) {
    in_junction_.insert(
        in_junction_.begin() + static_cast<std::ptrdiff_t>(junction_mark_), vid);
    junction_mark_ += 1;
  } else {
    in_junction_.push_back(vid);
  }
}

void MicroSim::set_remote_occupancy(RoadId road, int occupancy) {
  roads_[road.index()].occupancy = occupancy;
}

void MicroSim::set_remote_congestion(RoadId road, int congestion) {
  road_queued_congestion_[road.index()] = congestion;
}

void MicroSim::set_remote_lane_rears(RoadId road,
                                     const std::vector<shard::LaneRear>& rears) {
  RoadRt& rt = roads_[road.index()];
  for (std::size_t i = 0; i < rt.lanes.size(); ++i) {
    Lane& lane = rt.lanes[i];
    while (!lane.vehicles.empty()) lane.pop_head();
    if (i < rears.size() && rears[i].occupied) {
      // Phantom rear: an invalid VehicleId at the true rear position, enough
      // for entry_clear (which reads only pos.back()). Remote lanes are never
      // swept, serviced or flushed, so nothing dereferences the id.
      lane.push_vehicle(VehicleId{}, rears[i].pos, 0.0, 0.0);
    }
  }
}

void MicroSim::collect_lane_rears(RoadId road, std::vector<shard::LaneRear>& out) const {
  const RoadRt& rt = roads_[road.index()];
  for (const Lane& lane : rt.lanes) {
    shard::LaneRear rear;
    if (!lane.vehicles.empty()) {
      rear.occupied = true;
      rear.pos = lane.pos.back();
    }
    out.push_back(rear);
  }
}

stats::RunResult& MicroSim::run_until(double until_s) {
  if (finished_) throw std::logic_error("MicroSim::run_until after finish");
  while (now_ < until_s) step();
  return result_;
}

stats::RunResult MicroSim::finish(double duration_s) {
  run_until(duration_s);
  finished_ = true;
  // Flush the lane-carried waiting times of vehicles still on a lane back to
  // the per-vehicle array before closing their records. Sharded: remote
  // mirror lanes hold phantom rears with invalid ids — skip them.
  for (std::size_t r = 0; r < roads_.size(); ++r) {
    if (masked_road(r)) continue;
    for (Lane& lane : roads_[r].lanes) {
      for (std::size_t i = 0; i < lane.vehicles.size(); ++i) {
        veh_waiting_[lane.vehicles[i].index()] = lane.waiting[i];
      }
    }
  }
  // Close open records in spawn order: slot recycling permutes vehicle
  // indices, and the metric SampleSets are floating-point order-sensitive.
  std::vector<std::pair<std::uint64_t, VehicleId>> open;
  for (std::size_t i = 0; i < veh_meta_.size(); ++i) {
    const VehMeta& m = veh_meta_[i];
    if (m.loc != Loc::Lane && m.loc != Loc::Junction) continue;
    open.emplace_back(m.spawn_seq, VehicleId(static_cast<VehicleId::value_type>(i)));
  }
  std::sort(open.begin(), open.end());
  for (const auto& [seq, vid] : open) {
    VehMeta& m = veh_meta_[vid.index()];
    result_.metrics.in_network_at_end += 1;
    result_.metrics.queuing_time_s.add(veh_waiting_[vid.index()]);
    result_.metrics.travel_time_s.add(now_ - m.entry_time);
    if (shard_ != nullptr) {
      shard_->opens.push_back({m.spawn_seq, veh_waiting_[vid.index()], now_ - m.entry_time});
    }
    m.loc = Loc::Done;
  }
  for (stats::PhaseTrace& trace : result_.phase_traces) trace.finish(now_);
  result_.duration_s = now_;
  return std::move(result_);
}

}  // namespace abp::microsim
