// Krauss car-following model (the SUMO default), as pure functions.
//
// The model computes a *safe speed* from the gap to the leader such that the
// follower can always stop behind it assuming the leader brakes at its
// comfortable deceleration, then clips by speed limit and acceleration, and
// finally subtracts a random "dawdling" term (driver imperfection).
//
// Free functions (no simulator state) so the dynamics are unit-testable:
// collision freedom and stopping behaviour are asserted directly in
// tests/microsim_krauss_test.cpp. Defined inline: this is the innermost
// per-vehicle-per-tick computation of the microscopic simulator, and a
// cross-TU call per vehicle-step is measurable at scale.
#pragma once

#include <algorithm>
#include <cmath>

#include "src/microsim/params.hpp"

namespace abp::microsim {

// Maximum speed that guarantees the follower can stop behind the leader.
// `gap` is the bumper-to-bumper distance minus the standstill minimum gap;
// `leader_speed` may be zero for a standing obstacle (stop line, queue tail).
// Both braking at `p.decel_mps2`, reaction time `p.tau_s`.
[[nodiscard]] inline double safe_speed(double gap, double leader_speed,
                                       const VehicleParams& p) {
  if (gap <= 0.0) return 0.0;
  // Krauss (1998): v_safe = -b*tau + sqrt(b^2 tau^2 + v_l^2 + 2 b g).
  const double b = p.decel_mps2;
  const double bt = b * p.tau_s;
  const double radicand = bt * bt + leader_speed * leader_speed + 2.0 * b * gap;
  const double v = -bt + std::sqrt(std::max(0.0, radicand));
  return std::max(0.0, v);
}

// One Krauss update: returns the follower's next speed.
// `rand01` in [0,1) supplies the dawdling draw; pass 0 for deterministic
// (no-dawdle) behaviour.
[[nodiscard]] inline double next_speed(double current_speed, double gap, double leader_speed,
                                       double speed_limit, const VehicleParams& p, double dt,
                                       double rand01) {
  const double v_safe = safe_speed(gap, leader_speed, p);
  const double v_des = std::min({speed_limit, current_speed + p.accel_mps2 * dt, v_safe});
  // Dawdling: random imperfection, never below zero and never more than one
  // acceleration step below the desired speed.
  const double dawdle = p.sigma * p.accel_mps2 * dt * rand01;
  return std::max(0.0, v_des - dawdle);
}

// Bit-identical to next_speed(), with the sqrt elided in the free-flow case.
// When the safe-speed radicand exceeds (cap + b*tau)^2 by a wide margin —
// where cap = min(speed_limit, v + a*dt) is the accel/limit ceiling — then
// v_safe cannot be the binding term of the min, so the sqrt never influences
// the result and is skipped. The 1e-12 relative margin is ~10^3 ulps, orders
// of magnitude beyond the <4-ulp rounding slop of the exact computation, so
// the fast path only fires where both paths provably agree bit for bit;
// anything closer falls through to next_speed(). Most vehicle-steps in a
// flowing network are free-flow, so this removes the sqrt from the common
// case of the hot sweep (tests/microsim_krauss_test.cpp sweeps the boundary).
[[nodiscard]] inline double next_speed_fast(double current_speed, double gap,
                                            double leader_speed, double speed_limit,
                                            const VehicleParams& p, double dt,
                                            double rand01) {
  const double cap = std::min(speed_limit, current_speed + p.accel_mps2 * dt);
  if (gap > 0.0) {
    const double bt = p.decel_mps2 * p.tau_s;
    const double radicand =
        bt * bt + leader_speed * leader_speed + 2.0 * p.decel_mps2 * gap;
    const double c = cap + bt;
    if (radicand > c * c * (1.0 + 1e-12)) {
      const double dawdle = p.sigma * p.accel_mps2 * dt * rand01;
      return std::max(0.0, cap - dawdle);
    }
  }
  return next_speed(current_speed, gap, leader_speed, speed_limit, p, dt, rand01);
}

}  // namespace abp::microsim
