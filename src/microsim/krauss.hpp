// Krauss car-following model (the SUMO default), as pure functions.
//
// The model computes a *safe speed* from the gap to the leader such that the
// follower can always stop behind it assuming the leader brakes at its
// comfortable deceleration, then clips by speed limit and acceleration, and
// finally subtracts a random "dawdling" term (driver imperfection).
//
// Free functions (no simulator state) so the dynamics are unit-testable:
// collision freedom and stopping behaviour are asserted directly in
// tests/microsim_krauss_test.cpp.
#pragma once

#include "src/microsim/params.hpp"

namespace abp::microsim {

// Maximum speed that guarantees the follower can stop behind the leader.
// `gap` is the bumper-to-bumper distance minus the standstill minimum gap;
// `leader_speed` may be zero for a standing obstacle (stop line, queue tail).
// Both braking at `p.decel_mps2`, reaction time `p.tau_s`.
[[nodiscard]] double safe_speed(double gap, double leader_speed, const VehicleParams& p);

// One Krauss update: returns the follower's next speed.
// `rand01` in [0,1) supplies the dawdling draw; pass 0 for deterministic
// (no-dawdle) behaviour.
[[nodiscard]] double next_speed(double current_speed, double gap, double leader_speed,
                                double speed_limit, const VehicleParams& p, double dt,
                                double rand01);

}  // namespace abp::microsim
