#include "src/microsim/krauss.hpp"

#include <algorithm>
#include <cmath>

namespace abp::microsim {

double safe_speed(double gap, double leader_speed, const VehicleParams& p) {
  if (gap <= 0.0) return 0.0;
  // Krauss (1998): v_safe = -b*tau + sqrt(b^2 tau^2 + v_l^2 + 2 b g).
  const double b = p.decel_mps2;
  const double bt = b * p.tau_s;
  const double radicand = bt * bt + leader_speed * leader_speed + 2.0 * b * gap;
  const double v = -bt + std::sqrt(std::max(0.0, radicand));
  return std::max(0.0, v);
}

double next_speed(double current_speed, double gap, double leader_speed, double speed_limit,
                  const VehicleParams& p, double dt, double rand01) {
  const double v_safe = safe_speed(gap, leader_speed, p);
  const double v_des =
      std::min({speed_limit, current_speed + p.accel_mps2 * dt, v_safe});
  // Dawdling: random imperfection, never below zero and never more than one
  // acceleration step below the desired speed.
  const double dawdle = p.sigma * p.accel_mps2 * dt * rand01;
  return std::max(0.0, v_des - dawdle);
}

}  // namespace abp::microsim
