// Tunable parameters of the microscopic simulator.
#pragma once

#include "src/core/sensor.hpp"

namespace abp::microsim {

// Car-following (Krauss model, SUMO's default) and vehicle geometry.
struct VehicleParams {
  double length_m = 4.5;
  double min_gap_m = 1.0;
  // Maximum acceleration / comfortable deceleration.
  double accel_mps2 = 2.6;
  double decel_mps2 = 4.5;
  // Driver reaction time.
  double tau_s = 1.0;
  // Krauss dawdling factor in [0,1]: fraction of one acceleration step
  // randomly subtracted from the desired speed each update.
  double sigma = 0.3;
};

struct MicroSimConfig {
  // Integration step of the vehicle dynamics.
  double dt_s = 0.5;
  // Dedicated turning lanes (the paper's assumption, Section IV Q4): one
  // FIFO lane per feasible movement, so a red movement never blocks a green
  // one. Setting this to false models a single mixed lane per road, where
  // head-of-line blocking becomes possible — the extension the paper leaves
  // as future work.
  bool dedicated_turn_lanes = true;
  // Controllers are invoked every control_interval_s (the paper's mini-slot).
  double control_interval_s = 1.0;
  // Interval between samples pushed to registered road watches.
  double sample_interval_s = 10.0;
  // Time a vehicle needs to traverse the junction box after being served.
  // Must not exceed the amber duration, which exists to clear the box.
  double junction_crossing_s = 2.0;
  // Distance upstream of the stop line within which the head vehicle counts
  // as waiting at the junction and may be served. Service then happens at
  // the movement's physical saturation flow; the zone buffers car-following
  // start-up losses so the microscopic discharge matches that flow instead
  // of being throttled by acceleration from standstill.
  double service_zone_m = 25.0;
  // Physical saturation flow of a movement in veh/s — the green-time
  // discharge rate the junction hardware actually achieves, corresponding to
  // SUMO's ~1800-2000 veh/h/lane. The controllers' *modeled* mu (the link
  // service_rate, the paper's mu = 1) is what enters the gain computations;
  // the physical grant headway is min(modeled mu, saturation flow).
  // Set to 0 (the default) to serve at the modeled mu exactly — the paper's
  // Section-II service assumption, under which the headline comparison
  // reproduces most faithfully. bench_ablation_features sweeps this knob to
  // show how the margin reacts to less ideal junction hardware.
  double saturation_flow_vps = 0.0;
  // Speed at which vehicles are released onto the downstream road.
  double insertion_speed_mps = 10.0;
  // Speed below which a vehicle counts as queued (SUMO's waiting-time notion).
  double waiting_speed_threshold_mps = 0.1;
  // Queue-detector thresholds feeding the controllers. Incoming approaches
  // use a generous threshold so a queue that is rolling forward during
  // discharge still registers as demand; outgoing roads use SUMO's halting
  // threshold (1.39 m/s = 5 km/h) so only standing congestion counts as
  // back-pressure — a downstream road in free flow exerts none.
  double approach_queue_threshold_mps = 7.0;
  double congestion_queue_threshold_mps = 1.39;
  // Parallelism of the per-tick lane sweep: total worker count including the
  // calling thread, >= 1. The sweep partitions work by road and draws
  // dawdling noise from per-road counter-based streams, so fixed-seed metrics
  // are bit-identical at every thread count (the golden determinism test pins
  // this); raising it only changes wall-clock time. See docs/PERFORMANCE.md.
  int threads = 1;
  // Detector imperfection applied to every queue reading handed to the
  // controllers (occupancy/capacity admission state stays physical). Perfect
  // by default; bench_sensor_noise sweeps it.
  core::SensorModel sensor;
  VehicleParams vehicle;
  // Debug/reference knob: force the pre-elision memo-table path that zeroes
  // every road/link row globally before each rebuild, instead of the default
  // per-road lazy path (zero only rows of roads that are occupied or still
  // dirty from an earlier rebuild). The two paths are pinned bit-identical
  // by tests/memo_elision_test.cpp; this flag exists for that pin and for
  // bisecting, not for scenarios (scenario_io does not serialize it).
  bool memo_always_rebuild = false;
};

}  // namespace abp::microsim
