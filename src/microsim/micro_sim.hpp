// Microscopic traffic simulator: the repository's SUMO substitute.
//
// Space-continuous, time-discrete simulation of individual vehicles:
//   * by default every non-exit road carries one *dedicated turning lane* per
//     feasible movement at its downstream junction (the paper's lane
//     assumption, which rules out head-of-line blocking); vehicles pick their
//     lane on entry from the next turn of their route and never change lanes.
//     MicroSimConfig::dedicated_turn_lanes = false switches to a single mixed
//     lane per road, where HOL blocking becomes possible (Section IV Q4);
//   * longitudinal dynamics follow the Krauss car-following model
//     (src/microsim/krauss.hpp) against the lane leader or the stop line;
//   * a green movement serves the head vehicle inside its stop-line service
//     zone at most at the saturation rate (one grant per 1/mu seconds by
//     default); a served vehicle traverses the junction box for a fixed
//     crossing time and is released onto the matching lane of the downstream
//     road, whose capacity W it reserves at grant time so the road can never
//     exceed W;
//   * the transition (amber) phase grants nothing; vehicles already in the
//     box finish crossing — precisely the role of the paper's c0;
//   * demand arrives via traffic::DemandGenerator; vehicles whose entry road
//     is full or whose entry point is blocked wait outside the network.
//
// Controllers are invoked every control interval (the paper's mini-slot) with
// the same observation structure the queueing simulator produces. Queue
// readings come from speed-threshold detectors (optionally degraded by
// MicroSimConfig::sensor); the capacity test of Eq. (8) uses physical
// occupancy. See DESIGN.md §5 for the sensing rationale.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/core/controller.hpp"
#include "src/microsim/params.hpp"
#include "src/net/network.hpp"
#include "src/stats/run_result.hpp"
#include "src/traffic/demand.hpp"
#include "src/util/rng.hpp"
#include "src/util/vec_queue.hpp"

namespace abp::microsim {

class MicroSim {
 public:
  // `network` and `demand` must outlive the simulator; `controllers` holds
  // one controller per intersection, indexed by IntersectionId::index().
  MicroSim(const net::Network& network, MicroSimConfig config,
           std::vector<core::ControllerPtr> controllers, traffic::DemandGenerator& demand,
           std::uint64_t seed);

  // Registers a queue-length watch: samples the number of vehicles on the
  // incoming road `road` (all dedicated lanes, the paper's q_i).
  void watch_road(RoadId road, std::string series_name);

  // Advances the simulation to `until_s`; may be called repeatedly.
  stats::RunResult& run_until(double until_s);

  // Runs to `duration_s`, closes per-vehicle records, returns the result.
  stats::RunResult finish(double duration_s);

  [[nodiscard]] double now() const noexcept { return now_; }

  // --- Introspection hooks used by tests ---
  // Vehicles on the dedicated lane feeding `link`.
  [[nodiscard]] int lane_count(LinkId link) const;
  // Vehicles on the road (all lanes) plus inbound junction reservations.
  [[nodiscard]] int road_occupancy(RoadId road) const;
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const;
  [[nodiscard]] int vehicles_in_network() const;
  // Positions (road-start-relative) of vehicles on a lane, head first.
  [[nodiscard]] std::vector<double> lane_positions(LinkId link) const;
  // True when no two vehicles on any lane overlap (collision check).
  [[nodiscard]] bool no_overlaps() const;

 private:
  enum class Loc { Outside, Lane, Junction, Done };

  struct Veh {
    traffic::Route route;
    // Global spawn ordinal. Slot recycling permutes vehicle indices, so
    // order-sensitive end-of-run bookkeeping sorts by this instead.
    std::uint64_t spawn_seq = 0;
    std::size_t next_turn = 0;
    Loc loc = Loc::Outside;
    RoadId road;      // current road (Loc::Lane) or target road (Loc::Junction)
    int lane = 0;     // lane index on `road`
    double pos = 0.0;  // front-bumper distance from road start
    double speed = 0.0;
    double junction_exit = 0.0;  // time the junction box releases the vehicle
    double entry_time = 0.0;
    double waiting_time = 0.0;
    // Resolved movement the vehicle takes at the end of its current road;
    // invalid on exit roads or when the route commands a missing movement.
    // Kept in sync with (road, next_turn) so mixed-lane queue counting never
    // re-resolves the movement per query.
    LinkId next_link;
  };

  struct Lane {
    // Movement this lane feeds; empty for the single lane of an exit road.
    std::optional<LinkId> link;
    // Vehicles ordered head (largest pos) first; O(1) head pops.
    VecQueue<VehicleId> vehicles;
  };

  struct RoadRt {
    std::vector<Lane> lanes;
    // Vehicles on lanes + junction-box reservations headed here.
    int occupancy = 0;
    // Spawns waiting outside the network for space, FIFO.
    std::deque<VehicleId> buffer;
  };

  struct LinkRt {
    RoadId from_road;
    int lane_index = 0;
    // Earliest time the next service grant may be issued (rate mu).
    double next_grant = 0.0;
    bool green = false;
  };

  struct Watch {
    RoadId road;
    std::size_t series_index;
  };

  void build_runtime();
  void step();
  void control_step();
  // Allocates a vehicle slot, reusing a completed vehicle's slot when one is
  // free so storage stays O(peak active + waiting), not O(history).
  [[nodiscard]] VehicleId alloc_vehicle();
  void admit_spawns();
  void release_junction_vehicles();
  void update_roads();
  void update_lane(const net::Road& road, Lane& lane);
  // Grants a crossing to `vid` (head of a green lane) if rate, capacity and
  // downstream insertion allow; returns true when granted.
  bool try_grant(VehicleId vid, LinkId link);
  void complete_vehicle(VehicleId vid);
  void sample_watches();
  // Fills and returns the reusable observation buffer (valid until the next
  // observe() call); avoids re-allocating the link array per decision.
  [[nodiscard]] const core::IntersectionObservation& observe(const net::Intersection& node);
  [[nodiscard]] int lane_index_for_turn(RoadId road, net::Turn turn) const;
  [[nodiscard]] int road_vehicle_count(RoadId road) const;
  // Queue-length detector: vehicles on the lane moving slower than the given
  // speed threshold.
  [[nodiscard]] int lane_queued_count(const Lane& lane, double threshold_mps) const;
  // Queue detector for one movement: on a dedicated lane, its lane's slow
  // vehicles; on a mixed lane, the slow vehicles routed through the movement.
  [[nodiscard]] int link_queued_count(LinkId link, double threshold_mps) const;
  // Sum of lane_queued_count over all lanes of the road (q_i of Eq. 1).
  [[nodiscard]] int road_queued_count(RoadId road, double threshold_mps) const;
  // The movement the vehicle will take at the end of `road`, if feasible.
  [[nodiscard]] std::optional<LinkId> movement_of(const Veh& v, RoadId road) const;
  // True when a vehicle can be released at the start of the lane.
  [[nodiscard]] bool entry_clear(const RoadRt& rt, int lane_index) const;

  const net::Network& net_;
  MicroSimConfig config_;
  std::vector<core::ControllerPtr> controllers_;
  traffic::DemandGenerator& demand_;
  Rng rng_;

  double now_ = 0.0;
  double next_control_ = 0.0;
  double next_sample_ = 0.0;

  std::vector<Veh> vehicles_;
  // Slots of completed vehicles available for reuse.
  std::vector<VehicleId::value_type> free_slots_;
  // Vehicles with Loc::Lane or Loc::Junction, maintained incrementally.
  int in_network_count_ = 0;
  std::vector<RoadRt> roads_;
  std::vector<LinkRt> links_;
  std::vector<net::PhaseIndex> displayed_;
  // Vehicles currently inside a junction box, unordered.
  std::vector<VehicleId> in_junction_;
  // Control-step memo tables: queued counts per road (both detector
  // thresholds) and per link (approach threshold). Rebuilt during the lane
  // sweep of the tick preceding each control step (memo_pending_), where the
  // vehicles are already in cache, so observe() is pure table reads.
  std::vector<int> road_queued_approach_;
  std::vector<int> road_queued_congestion_;
  std::vector<int> link_queued_approach_;
  bool memo_pending_ = false;
  // Per-entry-road admission scratch, sized to the widest road once.
  std::vector<char> lane_blocked_;
  // Reused by observe() so the per-decision link array is allocated once.
  core::IntersectionObservation obs_scratch_;

  std::vector<Watch> watches_;
  stats::RunResult result_;
  bool finished_ = false;
};

}  // namespace abp::microsim
