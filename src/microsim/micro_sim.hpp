// Microscopic traffic simulator: the repository's SUMO substitute.
//
// Space-continuous, time-discrete simulation of individual vehicles:
//   * by default every non-exit road carries one *dedicated turning lane* per
//     feasible movement at its downstream junction (the paper's lane
//     assumption, which rules out head-of-line blocking); vehicles pick their
//     lane on entry from the next turn of their route and never change lanes.
//     MicroSimConfig::dedicated_turn_lanes = false switches to a single mixed
//     lane per road, where HOL blocking becomes possible (Section IV Q4);
//   * longitudinal dynamics follow the Krauss car-following model
//     (src/microsim/krauss.hpp) against the lane leader or the stop line;
//   * a green movement serves the head vehicle inside its stop-line service
//     zone at most at the saturation rate (one grant per 1/mu seconds by
//     default); a served vehicle traverses the junction box for a fixed
//     crossing time and is released onto the matching lane of the downstream
//     road, whose capacity W it reserves at grant time so the road can never
//     exceed W;
//   * the transition (amber) phase grants nothing; vehicles already in the
//     box finish crossing — precisely the role of the paper's c0;
//   * demand arrives via traffic::DemandGenerator; vehicles whose entry road
//     is full or whose entry point is blocked wait outside the network.
//
// Controllers are invoked every control interval (the paper's mini-slot) with
// the same observation structure the queueing simulator produces. Queue
// readings come from speed-threshold detectors (optionally degraded by
// MicroSimConfig::sensor); the capacity test of Eq. (8) uses physical
// occupancy. See DESIGN.md §5 for the sensing rationale.
//
// --- Parallel tick architecture (see docs/PERFORMANCE.md) ---
// Each tick is split into a short sequential junction phase (admission,
// junction-box releases, stop-line service grants — everything that touches
// cross-road state) and a data-parallel sweep phase: the Krauss update of
// every lane, partitioned by road across a fixed ThreadPool. During the sweep
// a road's work unit reads and writes only state owned by that road (its
// lanes, its vehicles' kinematic arrays, its memo-table rows) and draws
// dawdling noise from the road's own counter-based StreamRng, so fixed-seed
// results are bit-identical at every MicroSimConfig::threads value. Exit-road
// completions are staged per road during the sweep and applied sequentially
// afterwards in exit-road order, keeping the floating-point metric
// accumulation order thread-count independent.
//
// Vehicle state is stored SoA, split hot from cold. The kinematic state the
// sweep touches on every vehicle-step — position and speed — lives in per-lane
// parallel arrays kept in lockstep with the lane's vehicle-id queue, so the
// inner Krauss loop streams over contiguous doubles in follow order instead
// of gathering through vehicle ids (the AoS layout paid one-plus cache lines
// per vehicle-step for exactly this). Waiting time and the resolved next
// movement are global arrays indexed by VehicleId (touched only for slow or
// head vehicles), and the cold metadata (route, timestamps, junction
// bookkeeping) sits in a VehMeta array that only the junction phase reads.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/controller.hpp"
#include "src/microsim/lane_kernel.hpp"
#include "src/microsim/params.hpp"
#include "src/net/network.hpp"
#include "src/shard/sim_hooks.hpp"
#include "src/stats/run_result.hpp"
#include "src/traffic/demand.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vec_queue.hpp"

namespace abp::microsim {

class MicroSim {
 public:
  // `network` and `demand` must outlive the simulator; `controllers` holds
  // one controller per intersection, indexed by IntersectionId::index().
  MicroSim(const net::Network& network, MicroSimConfig config,
           std::vector<core::ControllerPtr> controllers, traffic::DemandGenerator& demand,
           std::uint64_t seed);

  // Registers a queue-length watch: samples the number of vehicles on the
  // incoming road `road` (all dedicated lanes, the paper's q_i).
  void watch_road(RoadId road, std::string series_name);

  // Advances the simulation to `until_s`; may be called repeatedly.
  stats::RunResult& run_until(double until_s);

  // Runs to `duration_s`, closes per-vehicle records, returns the result.
  stats::RunResult finish(double duration_s);

  [[nodiscard]] double now() const noexcept { return now_; }

  // Capacity-override hook for incident injection (sim adapter): caps the
  // number of vehicles *admitted* onto the road from now on. Vehicles already
  // on the road drain normally; occupancy above the new value just blocks
  // admission until it has drained, so occupancy never exceeds the design W.
  // Observations keep reporting the design capacity — controllers know the
  // road geometry, not the incident. Called only between ticks, from the
  // sequential phase.
  void set_road_capacity(RoadId road, int capacity);
  [[nodiscard]] int road_capacity(RoadId road) const {
    return road_capacity_[road.index()];
  }

  // --- Introspection hooks used by tests ---
  // Vehicles on the dedicated lane feeding `link`.
  [[nodiscard]] int lane_count(LinkId link) const;
  // Vehicles on the road (all lanes) plus inbound junction reservations.
  [[nodiscard]] int road_occupancy(RoadId road) const;
  // Stop-line queue total of a road: lane_count over all its movements (the
  // microscopic q_i of Eq. 1; same contract as QueueSim::queued_on_road).
  [[nodiscard]] int queued_on_road(RoadId road) const;
  [[nodiscard]] net::PhaseIndex displayed_phase(IntersectionId node) const;
  [[nodiscard]] int vehicles_in_network() const;
  // Positions (road-start-relative) of vehicles on a lane, head first.
  [[nodiscard]] std::vector<double> lane_positions(LinkId link) const;
  // True when no two vehicles on any lane overlap (collision check).
  [[nodiscard]] bool no_overlaps() const;

  // --- Sharding surface (src/shard; docs/SHARDING.md) ---
  // Installs the ownership masks and per-tick event staging. Must be called
  // before the first step; null (the default) is the monolithic path. While
  // hooks are installed the junction phase, admission, sweep and finish are
  // masked to owned roads/junctions, grants onto remote roads extract the
  // vehicle into hooks->micro_outbox, and step() decomposes into the three
  // phases below so the worker can exchange boundary state between them.
  void set_shard_hooks(shard::SimShardHooks* hooks) { shard_ = hooks; }
  // Phase split of one tick: begin = control/sample/admission/box releases,
  // service = stop-line grants, finish = lane sweep + completions + time
  // advance. step() is exactly begin; service; finish.
  void step_begin();
  void step_service();
  void step_finish();
  // Materializes a vehicle the neighbor granted onto an owned boundary road.
  // `from_lower_band` selects the in_junction_ insertion point that
  // reproduces the monolithic grant order (lower band = lower node indices,
  // so its grants precede this worker's own; the upper band's follow).
  void ingest_transfer(const shard::MicroTransfer& t, bool from_lower_band);
  // Mirror-state injection for remote boundary roads (grantor side).
  void set_remote_occupancy(RoadId road, int occupancy);
  void set_remote_congestion(RoadId road, int congestion);
  void set_remote_lane_rears(RoadId road, const std::vector<shard::LaneRear>& rears);
  // Mirror-state export for owned boundary roads (owner side).
  void collect_lane_rears(RoadId road, std::vector<shard::LaneRear>& out) const;
  [[nodiscard]] int congestion_memo(RoadId road) const {
    return road_queued_congestion_[road.index()];
  }

 private:
  enum class Loc { Outside, Lane, Junction, Done };

  // Cold per-vehicle metadata. The hot kinematic state (position, speed,
  // in-lane waiting time) lives in the per-lane SoA queues (Lane::pos/speed/
  // waiting); the per-vehicle veh_waiting_ / veh_next_link_ arrays (indexed
  // by VehicleId::index()) hold the carried waiting total and the resolved
  // next movement.
  struct VehMeta {
    traffic::Route route;
    // Global spawn ordinal. Slot recycling permutes vehicle indices, so
    // order-sensitive end-of-run bookkeeping sorts by this instead.
    std::uint64_t spawn_seq = 0;
    std::size_t next_turn = 0;
    Loc loc = Loc::Outside;
    RoadId road;      // current road (Loc::Lane) or target road (Loc::Junction)
    int lane = 0;     // lane index on `road`
    double junction_exit = 0.0;  // time the junction box releases the vehicle
    double entry_time = 0.0;
  };

  struct Lane {
    // Movement this lane feeds; empty for the single lane of an exit road.
    std::optional<LinkId> link;
    // SoA lane state, index-aligned and ordered head (largest pos) first:
    // vehicles[i] / pos[i] / speed[i] / waiting[i] describe the same vehicle.
    // All four queues see the identical push/pop sequence, and VecQueue's
    // layout is a pure function of that sequence, so the alignment holds by
    // construction (mutate only through push_vehicle/pop_head). Keeping the
    // kinematics in the lane makes the sweep's hot loop a contiguous
    // streaming pass. `waiting` is the vehicle's accumulated waiting time
    // carried into the lane on push and written back to the global
    // veh_waiting_ array on pop — a scattered access once per road traversal
    // instead of once per queued vehicle-step.
    VecQueue<VehicleId> vehicles;
    VecQueue<double> pos;
    VecQueue<double> speed;
    VecQueue<double> waiting;
    // Tick timestamp of the last service grant from this lane. A stop line
    // is one physical server: on a mixed lane several green links share the
    // lane, and without this stamp a second link could serve the new head in
    // the same tick, doubling the lane's discharge rate.
    double serviced_at = -1.0;

    void push_vehicle(VehicleId vid, double p, double s, double w) {
      vehicles.push_back(vid);
      pos.push_back(p);
      speed.push_back(s);
      waiting.push_back(w);
    }
    void pop_head() {
      vehicles.pop_front();
      pos.pop_front();
      speed.pop_front();
      waiting.pop_front();
    }
  };

  struct RoadRt {
    std::vector<Lane> lanes;
    // Vehicles on lanes + junction-box reservations headed here.
    int occupancy = 0;
    // Exit-road completion staged by this tick's parallel sweep; applied (and
    // cleared) sequentially by apply_completions(). At most one per tick:
    // exit roads have a single lane and only its head can cross the far end.
    VehicleId completed;
    // Spawns waiting outside the network for space, FIFO.
    std::deque<VehicleId> buffer;
  };

  struct LinkRt {
    RoadId from_road;
    int lane_index = 0;
    // Earliest time the next service grant may be issued (rate mu).
    double next_grant = 0.0;
  };

  struct Watch {
    RoadId road;
    std::size_t series_index;
  };

  void build_runtime();
  void step();
  void control_step();
  // Allocates a vehicle slot, reusing a completed vehicle's slot when one is
  // free so storage stays O(peak active + waiting), not O(history).
  [[nodiscard]] VehicleId alloc_vehicle();
  void admit_spawns();
  void release_junction_vehicles();
  // Sequential junction phase: stop-line service for the head vehicle of
  // every green lane. Grants mutate cross-road state (downstream occupancy,
  // the junction box), so this runs single-threaded before the sweep.
  void service_junctions();
  // Data-parallel phase: Krauss update of every lane, partitioned by road.
  void sweep_roads();
  // One lane's update: the vectorized kernel passes of lane_kernel.hpp over
  // the lane's SoA arrays, then the (branchy, per-vehicle) accounting tail —
  // completion staging, waiting-time accumulation, queued-count memos.
  void sweep_lane(const net::Road& road, RoadRt& rt, Lane& lane, StreamRng& rng,
                  LaneKernelScratch& scratch);
  // Applies the completions staged by sweep_roads(), in exit-road order.
  void apply_completions();
  // Zeroes one road's memo rows (road counters + its movements' link rows).
  void zero_memo_rows(std::size_t road_index);
  // Grants a crossing to `vid` (head of a green lane) if rate, capacity and
  // downstream insertion allow; returns true when granted.
  bool try_grant(VehicleId vid, LinkId link);
  void complete_vehicle(VehicleId vid);
  void sample_watches();
  // Fills and returns the reusable observation buffer (valid until the next
  // observe() call); avoids re-allocating the link array per decision.
  [[nodiscard]] const core::IntersectionObservation& observe(const net::Intersection& node);
  [[nodiscard]] int lane_index_for_turn(RoadId road, net::Turn turn) const;
  [[nodiscard]] int road_vehicle_count(RoadId road) const;
  // Queue-length detector: vehicles on the lane moving slower than the given
  // speed threshold.
  [[nodiscard]] int lane_queued_count(const Lane& lane, double threshold_mps) const;
  // Queue detector for one movement: on a dedicated lane, its lane's slow
  // vehicles; on a mixed lane, the slow vehicles routed through the movement.
  [[nodiscard]] int link_queued_count(LinkId link, double threshold_mps) const;
  // Sum of lane_queued_count over all lanes of the road (q_i of Eq. 1).
  [[nodiscard]] int road_queued_count(RoadId road, double threshold_mps) const;
  // The movement the vehicle will take at the end of `road`, if feasible.
  [[nodiscard]] std::optional<LinkId> movement_of(const VehMeta& m, RoadId road) const;
  // True when a vehicle can be released at the start of the lane.
  [[nodiscard]] bool entry_clear(const RoadRt& rt, int lane_index) const;
  // Shard masks: true when hooks are installed and the entity is remote.
  [[nodiscard]] bool masked_road(std::size_t r) const {
    return shard_ != nullptr && !shard_->own_road[r];
  }
  [[nodiscard]] bool masked_junction(std::size_t j) const {
    return shard_ != nullptr && !shard_->own_junction[j];
  }

  const net::Network& net_;
  MicroSimConfig config_;
  std::vector<core::ControllerPtr> controllers_;
  traffic::DemandGenerator& demand_;
  // Sequential-phase stream: sensor noise on controller observations. The
  // sweep's dawdling draws come from road_streams_ instead, so the two never
  // contend and thread count cannot shift either stream.
  Rng rng_;
  std::uint64_t seed_ = 0;
  // One counter-based dawdling stream per road (stream id = road index).
  std::vector<StreamRng> road_streams_;
  // Effective admission capacity per road: the design W from the network,
  // overridden by set_road_capacity() during incidents. Admission and grant
  // checks read this; observations read the design capacity from net_.
  std::vector<int> road_capacity_;
  // Sweep-phase worker pool, sized config_.threads (inline when 1).
  std::unique_ptr<ThreadPool> pool_;
  // One lane-kernel scratch per sweep work unit (= pool participant): the
  // kernel's materialized gap/leader/draw arrays, reused across lanes and
  // ticks. Indexed by chunk id, so no two threads ever share one.
  std::vector<LaneKernelScratch> sweep_scratch_;

  double now_ = 0.0;
  double next_control_ = 0.0;
  double next_sample_ = 0.0;

  // --- Vehicle storage (SoA; position/speed live in the lanes) ---
  std::vector<VehMeta> veh_meta_;
  std::vector<double> veh_waiting_;
  // Resolved movement the vehicle takes at the end of its current road;
  // invalid on exit roads or when the route commands a missing movement.
  // Kept in sync with (road, next_turn) so mixed-lane queue counting never
  // re-resolves the movement per query.
  std::vector<LinkId> veh_next_link_;
  // Slots of completed vehicles available for reuse.
  std::vector<VehicleId::value_type> free_slots_;
  // Vehicles with Loc::Lane or Loc::Junction, maintained incrementally.
  int in_network_count_ = 0;

  std::vector<RoadRt> roads_;
  std::vector<LinkRt> links_;
  // Precomputed green-link index (CSR): for intersection n displaying phase
  // p, the movements with right-of-way are
  //   phase_links_[phase_link_offsets_[s] .. phase_link_offsets_[s + 1])
  // with s = phase_slot_base_[n] + p. Built once in build_runtime() from the
  // finalized phase plans; the transition phase's slot is empty, so the
  // junction phase needs no special case and control_step() maintains no
  // green set at all.
  std::vector<LinkId> phase_links_;
  std::vector<std::uint32_t> phase_link_offsets_;
  std::vector<std::uint32_t> phase_slot_base_;
  std::vector<net::PhaseIndex> displayed_;
  // Vehicles currently inside a junction box, unordered.
  std::vector<VehicleId> in_junction_;
  // Control-step memo tables: queued counts per road (both detector
  // thresholds) and per link (approach threshold). Rebuilt during the lane
  // sweep of the tick preceding each control step (memo_pending_), where the
  // vehicles are already in cache, so observe() is pure table reads. Each
  // row is written only by the work unit of the road that owns it (a link's
  // row belongs to its from_road), so the parallel sweep stays race-free.
  std::vector<int> road_queued_approach_;
  std::vector<int> road_queued_congestion_;
  std::vector<int> link_queued_approach_;
  // Per-road memo dirty bit: set when a rebuild wrote nonzero-capable rows
  // for an occupied road, cleared once an empty road's rows are re-zeroed.
  // Lets the rebuild skip empty-and-clean roads instead of re-zeroing every
  // row globally (see sweep_roads); flat char vector so the sweep's owning
  // work unit writes its own byte without atomics.
  std::vector<char> memo_dirty_;
  bool memo_pending_ = false;
  // Per-entry-road admission scratch, sized to the widest road once.
  std::vector<char> lane_blocked_;
  // Reused per-tick spawn buffer filled by DemandGenerator::poll_into.
  std::vector<traffic::SpawnRequest> spawn_buffer_;
  // Reused by observe() so the per-decision link array is allocated once.
  core::IntersectionObservation obs_scratch_;

  std::vector<Watch> watches_;
  stats::RunResult result_;
  bool finished_ = false;
  // Sharding masks + event staging; null in a monolithic run (every shard
  // branch is `shard_ != nullptr && ...`, dead in the common case).
  shard::SimShardHooks* shard_ = nullptr;
  // in_junction_ size right after this tick's release pass: the insertion
  // point for next tick's lower-band transfers (see ingest_transfer).
  std::size_t junction_mark_ = 0;
};

}  // namespace abp::microsim
