// Vectorized Krauss lane kernel: the micro-sim sweep's per-lane update as
// multi-pass, branchless, auto-vectorizable array passes over the lane's SoA
// state (Lane::pos/speed), plus the scalar reference implementation the
// equality tests and the kernel microbench compare against.
//
// The synchronous Krauss (1998) update makes every per-vehicle computation
// within a lane depend only on *previous-step* leader kinematics, so the
// expensive per-vehicle work — the safe-speed radical and the dawdle draw —
// is element-wise over the lane once the gaps are materialized. The kernel
// exploits that in four passes:
//
//   1. lane_gaps         gap/leader-speed stencil from pos[i-1], pos[i]
//   2. lane_speeds       branchless safe-speed/min/max chain + dawdle; the
//                        data-dependent branches of next_speed() become
//                        element-wise selects, so gcc/clang vectorize the
//                        pass at -O3 (sqrt included; see -fno-math-errno in
//                        CMakeLists.txt)
//   3. lane_integrate    position integration + stop-line head clamp, and an
//                        OR-reduction flagging whether any follower violates
//                        the overlap guard
//   4. lane_clamp        the (rare) sequential overlap-guard fallback
//
// Every pass performs the same arithmetic in the same element order as the
// scalar loop it replaces, so results are bit-identical — pinned lane-level
// by tests/microsim_krauss_test.cpp and end-to-end by the golden determinism
// and thread-invariance suites. Dawdle draws come from StreamRng's bulk fill
// (counter-based, so a batch of n draws is indistinguishable from n scalar
// calls, including the final counter).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/microsim/krauss.hpp"
#include "src/util/rng.hpp"

namespace abp::microsim {

// Gap value that behaves as "no obstacle ahead".
inline constexpr double kFreeGap = 1e9;

// Reusable per-work-unit scratch for the kernel's materialized arrays. One
// instance per sweep work unit (not per lane): capacity grows to the widest
// lane the unit ever sees and is reused across lanes and ticks.
struct LaneKernelScratch {
  std::vector<double> gap;
  std::vector<double> lead_v;
  std::vector<double> draws;

  void ensure(std::size_t n) {
    if (gap.size() < n) {
      gap.resize(n);
      lead_v.resize(n);
      draws.resize(n);
    }
  }
};

// Pass 1 — gap/leader stencil, head-first order (slot 0 = lane head).
// gap[i] and lead_v[i] are follower i's view of its leader's previous-step
// kinematics; the head's obstacle (stop line or free run-out) is a
// caller-computed scalar since it is not a stencil of the arrays.
inline void lane_gaps(const double* __restrict pos, const double* __restrict speed,
                      std::size_t n, double head_gap, double vehicle_length,
                      double min_gap, double* __restrict gap, double* __restrict lead_v) {
  for (std::size_t i = 1; i < n; ++i) {
    gap[i] = pos[i - 1] - vehicle_length - pos[i] - min_gap;
    lead_v[i] = speed[i - 1];
  }
  gap[0] = head_gap;
  lead_v[0] = 0.0;
}

// Pass 2 — branchless synchronous Krauss speed update, in place. Element i
// performs exactly next_speed(speed[i], gap[i], lead_v[i], ...) of
// krauss.hpp, with its two data-dependent branches (gap <= 0, the max(0, ..)
// clips) rewritten as selects: identical arithmetic on identical operands in
// array order, so the result is bit-identical (the sqrt is computed
// unconditionally on max(0, radicand) — a vectorized sqrt lane costs what
// the scalar fast path saved, which is how next_speed_fast's sqrt-eliding
// branch generalizes to a per-element mask that never needs materializing).
// `draws` must hold vehicle-ordered dawdle draws (draws[i] belongs to slot i,
// filled tail-first via StreamRng::fill_u01_tailfirst); nullptr disables
// dawdling exactly like passing rand01 = 0 per element.
inline void lane_speeds(double* __restrict speed, const double* __restrict gap,
                        const double* __restrict lead_v, const double* __restrict draws,
                        std::size_t n, double speed_limit, const VehicleParams& p,
                        double dt) {
  const double a_dt = p.accel_mps2 * dt;
  const double bt = p.decel_mps2 * p.tau_s;
  const double bt2 = bt * bt;
  const double two_b = 2.0 * p.decel_mps2;
  const double dawdle_scale = p.sigma * p.accel_mps2 * dt;
  // The gap <= 0 select is written as a conditional overwrite rather than a
  // ternary: gcc 12's if-conversion turns this form into a blend but leaves
  // the equivalent ternary as control flow, which blocks vectorizing the
  // whole pass.
  if (draws != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const double cap = std::min(speed_limit, speed[i] + a_dt);
      const double g = gap[i];
      const double l = lead_v[i];
      const double radicand = bt2 + l * l + two_b * g;
      const double root = std::sqrt(std::max(0.0, radicand));
      double v_safe = std::max(0.0, -bt + root);
      if (g <= 0.0) v_safe = 0.0;
      const double v_des = std::min(cap, v_safe);
      speed[i] = std::max(0.0, v_des - dawdle_scale * draws[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double cap = std::min(speed_limit, speed[i] + a_dt);
      const double g = gap[i];
      const double l = lead_v[i];
      const double radicand = bt2 + l * l + two_b * g;
      const double root = std::sqrt(std::max(0.0, radicand));
      double v_safe = std::max(0.0, -bt + root);
      if (g <= 0.0) v_safe = 0.0;
      // rand01 = 0 makes the dawdle term (+-)0.0; v_des is never -0.0 (both
      // min operands are max(0, ..) results or positive), so subtracting it
      // is the identity and the reference's max(0, v_des - 0.0) is v_des.
      speed[i] = std::max(0.0, std::min(cap, v_safe));
    }
  }
}

// Pass 3 — integrate positions in place from the already-updated speeds,
// clamp the head at the stop line (non-exit roads), and report whether any
// follower trips the overlap guard against its leader's *tentative* new
// position. A false of the report is exact: a follower can only need
// clamping against a *final* leader position if that leader itself moved
// under a clamp, which this pass already flagged. The head clamp is applied
// here (scalar, O(1)) rather than flagged because a red-light head hits it
// every tick while it creeps against the stop line — flagging it would send
// every queued lane down the sequential fallback.
[[nodiscard]] inline bool lane_integrate(double* __restrict pos,
                                         double* __restrict speed, std::size_t n,
                                         double dt, double vehicle_length, bool is_exit,
                                         double road_length) {
  for (std::size_t i = 0; i < n; ++i) pos[i] += speed[i] * dt;
  if (!is_exit && pos[0] > road_length - 0.2) {
    pos[0] = road_length - 0.2;  // hold at the stop line
    speed[0] = 0.0;
  }
  int clamp_needed = 0;
  for (std::size_t i = 1; i < n; ++i) {
    clamp_needed |= pos[i] > pos[i - 1] - vehicle_length - 0.1 ? 1 : 0;
  }
  return clamp_needed != 0;
}

// Pass 4 (rare) — the sequential overlap-guard fallback, run only when
// lane_integrate flagged a potential violation: the scalar reference's guard
// verbatim, clamping each follower against its leader's *final* position and
// speed so a clamp can cascade tail-ward exactly as in the reference.
inline void lane_clamp(double* pos, double* speed, std::size_t n, double vehicle_length) {
  for (std::size_t i = 1; i < n; ++i) {
    const double limit = pos[i - 1] - vehicle_length - 0.1;
    if (pos[i] > limit) {
      pos[i] = std::max(0.0, limit);
      speed[i] = std::min(speed[i], speed[i - 1]);
    }
  }
}

// The full kinematic lane update (speeds + positions; accounting stays with
// the caller): bulk dawdle fill, then passes 1-4. `rng` nullptr disables
// dawdling (and consumes no draws), matching the scalar reference.
inline void lane_update_vectorized(double* pos, double* speed, std::size_t n,
                                   double speed_limit, double road_length, bool is_exit,
                                   const VehicleParams& p, double dt, StreamRng* rng,
                                   LaneKernelScratch& scratch) {
  if (n == 0) [[unlikely]] return;  // no head to read; the reference is a no-op too
  scratch.ensure(n);
  const double* draws = nullptr;
  if (rng != nullptr) {
    rng->fill_u01_tailfirst(scratch.draws.data(), n);
    draws = scratch.draws.data();
  }
  const double head_gap = is_exit ? kFreeGap : road_length - pos[0];
  lane_gaps(pos, speed, n, head_gap, p.length_m, p.min_gap_m, scratch.gap.data(),
            scratch.lead_v.data());
  lane_speeds(speed, scratch.gap.data(), scratch.lead_v.data(), draws, n, speed_limit, p,
              dt);
  if (lane_integrate(pos, speed, n, dt, p.length_m, is_exit, road_length)) {
    lane_clamp(pos, speed, n, p.length_m);
  }
}

// Scalar reference: the pre-vectorization per-vehicle loop, kept as the
// semantic baseline, the short-lane fast path of lane_update(), the target
// of the lane-level bit-equality pin, and one side of bench_krauss_kernel's
// comparison. Consumes rng draws tail-first (slot n-1 first), exactly as the
// historical sweep did — fill_u01_tailfirst reproduces precisely this
// consumption order, which is why the two implementations share one stream
// position.
inline void lane_update_reference(double* pos, double* speed, std::size_t n,
                                  double speed_limit, double road_length, bool is_exit,
                                  const VehicleParams& p, double dt, StreamRng* rng) {
  // Pass 1 — synchronous Krauss speeds, tail-first so the new speed can
  // overwrite speed[i] in place after follower i+1 consumed the old value.
  for (std::size_t i = n; i-- > 0;) {
    const double position = pos[i];
    const double current = speed[i];
    double gap;
    double lead_v;
    if (i > 0) {
      gap = pos[i - 1] - p.length_m - position - p.min_gap_m;
      lead_v = speed[i - 1];
    } else if (is_exit) {
      gap = kFreeGap;  // drives off the far end
      lead_v = 0.0;
    } else {
      gap = road_length - position;
      lead_v = 0.0;
    }
    const double dawdle = rng != nullptr ? rng->uniform01() : 0.0;
    speed[i] = next_speed_fast(current, gap, lead_v, speed_limit, p, dt, dawdle);
  }
  // Pass 2 — positions and overlap guards, head-first against the leader's
  // *new* position.
  double leader_pos = 0.0;
  double leader_speed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double v = speed[i];
    double position = pos[i] + v * dt;
    if (i > 0) {
      const double limit = leader_pos - p.length_m - 0.1;
      if (position > limit) {
        position = std::max(0.0, limit);
        v = std::min(v, leader_speed);
        speed[i] = v;
      }
    } else if (!is_exit && position > road_length - 0.2) {
      position = road_length - 0.2;  // hold at the stop line
      v = 0.0;
      speed[i] = v;
    }
    pos[i] = position;
    leader_pos = position;
    leader_speed = v;
  }
}

// Note on occupancy cutoffs: bench_krauss_kernel shows the scalar loop ahead
// of the kernel below ~8 vehicles *in isolation* — but that advantage is a
// microbench artifact (a single lane in steady state trains the branch
// predictor perfectly, hiding the scalar loop's data-dependent branches). In
// the real sweep, where lane states vary from tick to tick, dispatching
// short lanes to the scalar loop measured ~15% *slower* end-to-end than
// running the branchless kernel everywhere, so the sweep always uses the
// kernel (see docs/PERFORMANCE.md "Vectorized lane kernel").

}  // namespace abp::microsim
