#include "src/detect/junction_monitor.hpp"

#include <algorithm>

namespace abp::detect {

JunctionMonitor::JunctionMonitor(const DetectorConfig& config, int num_links, int row,
                                 int col)
    : config_(config), row_(row), col_(col) {
  CusumConfig stream;
  stream.warmup_samples = config.warmup_samples;
  stream.drift = config.drift;
  stream.threshold = config.threshold;
  stream.min_sigma = config.min_sigma;
  detectors_.assign(static_cast<std::size_t>(num_links), CusumDetector(stream));
  window_sum_.assign(static_cast<std::size_t>(num_links), 0.0);
}

const stats::DetectionEvent* JunctionMonitor::update(
    const core::IntersectionObservation& obs) {
  ++samples_;
  const double now = obs.time;

  // Age out pending alarms that fell off the fusion window.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const PendingAlarm& a) {
                                  return now - a.time_s > config_.fuse_window_s;
                                }),
                 pending_.end());

  // Accumulate this decision's queue readings into the aggregation window.
  // Raw per-decision readings rise and fall with the signal cycle — feeding
  // them straight to a CUSUM floods it with autocorrelated excursions — so
  // the detectors see per-link *means over window_samples decisions*, which
  // average the cycle out. Readings arrive in the intersection's canonical
  // link order, so the alarm sequence — and with it the fused event stream —
  // is deterministic.
  const std::size_t n =
      obs.links.size() < detectors_.size() ? obs.links.size() : detectors_.size();
  for (std::size_t i = 0; i < n; ++i) {
    window_sum_[i] += static_cast<double>(obs.links[i].queue);
  }
  if (++window_count_ < config_.window_samples) {
    return cooldown_and_fuse(now);
  }
  const double inv = 1.0 / static_cast<double>(window_count_);
  window_count_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = window_sum_[i] * inv;
    window_sum_[i] = 0.0;
    const int direction = detectors_[i].update(mean);
    if (direction == 0) continue;
    const int link = static_cast<int>(i);
    // One pending slot per link: a re-alarm refreshes it (latest wins).
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [link](const PendingAlarm& a) { return a.link == link; });
    if (it == pending_.end()) {
      pending_.push_back({link, direction, now, detectors_[i].statistic()});
    } else {
      *it = {link, direction, now, detectors_[i].statistic()};
    }
  }
  return cooldown_and_fuse(now);
}

const stats::DetectionEvent* JunctionMonitor::cooldown_and_fuse(double now) {

  if (now < cooldown_until_) return nullptr;
  if (pending_.size() < static_cast<std::size_t>(config_.min_links)) return nullptr;

  // Fuse: the pending set becomes the event's implicated link set. Direction
  // is the sign of the strongest stream; the statistic is its value.
  stats::DetectionEvent event;
  event.time_s = now;
  event.row = row_;
  event.col = col_;
  const PendingAlarm* strongest = &pending_.front();
  for (const PendingAlarm& a : pending_) {
    if (a.statistic > strongest->statistic) strongest = &a;
    event.links.push_back(a.link);
  }
  std::sort(event.links.begin(), event.links.end());
  event.direction = strongest->direction;
  event.statistic = strongest->statistic;
  pending_.clear();
  cooldown_until_ = now + config_.cooldown_s;
  events_.push_back(std::move(event));
  return &events_.back();
}

void JunctionMonitor::reset() {
  for (CusumDetector& d : detectors_) d.reset();
  std::fill(window_sum_.begin(), window_sum_.end(), 0.0);
  window_count_ = 0;
  pending_.clear();
  events_.clear();
  cooldown_until_ = 0.0;
  samples_ = 0;
}

}  // namespace abp::detect
