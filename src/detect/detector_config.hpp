// Scenario-level configuration of the online changepoint detector — the
// `detector` section of the scenario schema (docs/SCENARIOS.md; model and
// tuning guidance in docs/CHANGEPOINT.md). A pure value object like
// scenario::GuardConfig, kept in its own header so ScenarioConfig can carry
// it without pulling in the detection machinery.
#pragma once

namespace abp::detect {

struct DetectorConfig {
  // Master switch: when false no monitor is built and a run is bit-identical
  // to one without a detector section.
  bool enabled = false;
  // Control decisions aggregated into one detector sample: each link's queue
  // readings are averaged over this many observations and the CUSUM sees the
  // window means. Raw per-decision readings oscillate with the signal cycle
  // (strongly autocorrelated), which floods any CUSUM with false alarms;
  // windows of several cycles restore the near-independent samples the
  // detector's statistics assume. At the micro backend's 1 s control
  // interval the default is a one-minute window.
  int window_samples = 60;
  // Per-stream CUSUM parameters (see cusum.hpp), in units of *window*
  // samples: the default warmup is 4 windows (4 min at the defaults). The
  // drift/threshold defaults were tuned empirically (docs/CHANGEPOINT.md):
  // zero junction events across the full-hour baseline_3x3 run, detection
  // within 2-3 windows of the incident_lane_closure center closure.
  int warmup_samples = 4;
  double drift = 1.5;
  double threshold = 10.0;
  double min_sigma = 1.0;
  // Distinct links of one junction that must alarm within fuse_window_s for
  // a junction-level event. 1 = any single stream suffices; the default 2
  // filters the lone-stream excursions normal traffic produces.
  int min_links = 2;
  // How long a link alarm stays pending for fusion, in seconds.
  double fuse_window_s = 120.0;
  // Junction-level refractory period after an event, in seconds.
  double cooldown_s = 300.0;
  // When true the core::AdaptiveController acts on events (re-tunes its
  // wrapped controller); false = monitor and report only.
  bool adapt = false;
};

}  // namespace abp::detect
