// Streaming two-sided CUSUM changepoint detector for one sensor stream.
//
// The sensor-derived queue readings the controllers consume (observe() in
// both backends) are exactly the per-stream shape of the retrieved
// changepoint literature: CUSUM-based detection of mean shifts
// (Horvath & Trapani, arXiv:2104.13440) over many parallel streams with a
// multi-stream fusion step for root cause (Hore & Ramdas,
// arXiv:2605.21627). This header is the single-stream half; the
// per-junction fusion lives in junction_monitor.hpp.
//
// Model: readings arrive once per control step. The detector first spends
// `warmup_samples` readings estimating the stream's baseline mean and
// standard deviation (Welford, single pass), then accumulates the classic
// two-sided CUSUM statistics on standardized residuals z = (x - mean)/sigma:
//
//   g+ <- max(0, g+ + z - drift)      upward shift (demand surge, incident
//                                     spillback growing the queue)
//   g- <- max(0, g- - z - drift)      downward shift (recovery, dead
//                                     detectors reading zero)
//
// A shift is flagged when either statistic exceeds `threshold`. After a
// detection the detector re-enters warmup, re-estimating the baseline of the
// *new* regime — that windowed re-estimation is what lets one detector flag
// the incident onset and later the restoration, instead of alarming forever
// against a stale baseline.
//
// Determinism: update() is a pure function of the reading sequence — no RNG,
// no clocks, no allocation after construction. Both backends feed it from
// the sequential control phase, so every determinism guarantee of the
// repository (thread invariance, batch-vs-serial bit-equality) extends to
// detection verbatim (docs/CHANGEPOINT.md).
#pragma once

namespace abp::detect {

struct CusumConfig {
  // Readings used to estimate the baseline mean/sigma before monitoring
  // starts (and again after every detection).
  int warmup_samples = 120;
  // Slack k of the CUSUM recursion, in baseline-sigma units: drift smaller
  // than this is absorbed, so occasional cycle-to-cycle wobble does not
  // accumulate. Typical 0.25-1.0.
  double drift = 0.5;
  // Decision threshold h on g+/g-, in baseline-sigma units. Larger = fewer
  // false alarms, longer detection delay.
  double threshold = 12.0;
  // Floor on the estimated sigma. Queue readings are small integers and an
  // idle approach has a dead-flat warmup window; without a floor its sigma
  // would be ~0 and the first vehicle would standardize to infinity.
  double min_sigma = 1.0;
};

class CusumDetector {
 public:
  CusumDetector() = default;
  explicit CusumDetector(const CusumConfig& config) : config_(config) {}

  // Feeds one reading. Returns +1 when an upward mean shift is flagged on
  // this sample, -1 for a downward shift, 0 otherwise. On a detection the
  // statistics clear and the detector re-enters warmup on the new regime.
  int update(double x) {
    if (seen_ < config_.warmup_samples) {
      // Welford running mean/M2 over the warmup window.
      ++seen_;
      const double delta = x - mean_;
      mean_ += delta / seen_;
      m2_ += delta * (x - mean_);
      if (seen_ == config_.warmup_samples) {
        sigma_ = variance_to_sigma(m2_ / seen_);
      }
      return 0;
    }
    const double z = (x - mean_) / sigma_;
    g_pos_ = g_pos_ + z - config_.drift;
    if (g_pos_ < 0.0) g_pos_ = 0.0;
    g_neg_ = g_neg_ - z - config_.drift;
    if (g_neg_ < 0.0) g_neg_ = 0.0;
    if (g_pos_ > config_.threshold || g_neg_ > config_.threshold) {
      const int direction = g_pos_ >= g_neg_ ? +1 : -1;
      last_statistic_ = g_pos_ >= g_neg_ ? g_pos_ : g_neg_;
      rearm();
      return direction;
    }
    return 0;
  }

  // Restores the initial state (fresh warmup, statistics cleared).
  void reset() {
    seen_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    sigma_ = config_.min_sigma;
    g_pos_ = 0.0;
    g_neg_ = 0.0;
    last_statistic_ = 0.0;
  }

  // True once the baseline estimate is in place and monitoring is active.
  [[nodiscard]] bool warmed_up() const noexcept {
    return seen_ >= config_.warmup_samples;
  }

  // Current decision statistic max(g+, g-); after a detection, the value
  // that crossed the threshold (the statistics themselves have re-armed).
  [[nodiscard]] double statistic() const noexcept {
    const double g = g_pos_ >= g_neg_ ? g_pos_ : g_neg_;
    return g > last_statistic_ ? g : last_statistic_;
  }

  // Baseline estimates of the current regime (valid once warmed_up()).
  [[nodiscard]] double baseline_mean() const noexcept { return mean_; }
  [[nodiscard]] double baseline_sigma() const noexcept { return sigma_; }

  [[nodiscard]] const CusumConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double variance_to_sigma(double variance) const noexcept {
    // sqrt via Newton is overkill; __builtin_sqrt keeps <cmath> out of this
    // header's hot include path while staying correctly rounded (IEEE sqrt).
    const double sigma = __builtin_sqrt(variance < 0.0 ? 0.0 : variance);
    return sigma < config_.min_sigma ? config_.min_sigma : sigma;
  }

  // Clears the statistics and re-enters warmup (post-detection re-baseline).
  void rearm() {
    seen_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    sigma_ = config_.min_sigma;
    g_pos_ = 0.0;
    g_neg_ = 0.0;
  }

  CusumConfig config_;
  int seen_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sigma_ = config_.min_sigma;
  double g_pos_ = 0.0;
  double g_neg_ = 0.0;
  double last_statistic_ = 0.0;
};

}  // namespace abp::detect
