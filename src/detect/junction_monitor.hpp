// Per-junction multi-stream changepoint monitor: link-level CUSUM alarms
// fused into junction-level regime-shift events with the implicated links.
//
// Every movement (link) of a junction carries its own CusumDetector over the
// sensor-derived queue reading the controller sees for it. Link alarms are
// individually noisy — one movement's queue can drift for reasons that are
// not a regime change — so the monitor fuses them the way the multi-stream
// root-cause-analysis literature does (Hore & Ramdas, arXiv:2605.21627):
// alarms stay pending for a fusion window, and only when at least
// `min_links` distinct links have alarmed inside that window does the
// junction raise a DetectionEvent naming exactly those links as the
// implicated set (the root-cause shape: which approaches shifted, not just
// that something did). A cooldown then suppresses re-detections of the same
// episode while the per-link detectors re-baseline onto the new regime.
//
// update() is called once per control decision from the sequential phase of
// the tick (see core::AdaptiveController), so the event stream is a pure
// function of the observation stream — bit-identical at every thread and
// batch jobs count, like everything else in this repository.
#pragma once

#include <vector>

#include "src/core/observation.hpp"
#include "src/detect/cusum.hpp"
#include "src/detect/detector_config.hpp"
#include "src/stats/run_result.hpp"

namespace abp::detect {

class JunctionMonitor {
 public:
  // `row`/`col` are the junction's grid coordinates, stamped into events.
  JunctionMonitor(const DetectorConfig& config, int num_links, int row, int col);

  // Feeds one observation (one control decision's worth of link readings).
  // Returns a pointer to the newly raised junction event, or nullptr. The
  // pointer stays valid until the next update()/reset() (it points into
  // events()).
  const stats::DetectionEvent* update(const core::IntersectionObservation& obs);

  // All junction events so far, in time order.
  [[nodiscard]] const std::vector<stats::DetectionEvent>& events() const noexcept {
    return events_;
  }

  // Observations consumed so far (detector-health metric for reports).
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }

  // Restores the initial state for a fresh run.
  void reset();

 private:
  // Cooldown check + multi-link fusion over the pending set; returns the new
  // junction event (pointer into events()) or nullptr.
  const stats::DetectionEvent* cooldown_and_fuse(double now);
  // One link alarm pending fusion.
  struct PendingAlarm {
    int link = 0;
    int direction = 0;
    double time_s = 0.0;
    double statistic = 0.0;
  };

  DetectorConfig config_;
  int row_ = 0;
  int col_ = 0;
  std::vector<CusumDetector> detectors_;  // one per link, canonical order
  // Per-link queue sums over the current aggregation window; the detectors
  // are fed the window means every window_samples observations.
  std::vector<double> window_sum_;
  int window_count_ = 0;
  std::vector<PendingAlarm> pending_;
  std::vector<stats::DetectionEvent> events_;
  double cooldown_until_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace abp::detect
