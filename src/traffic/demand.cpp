#include "src/traffic/demand.hpp"

#include <algorithm>
#include <limits>

namespace abp::traffic {

DemandGenerator::DemandGenerator(const net::Network& network, DemandConfig config,
                                 std::uint64_t seed)
    : network_(network), config_(config), seed_(seed) {
  seed_processes();
}

void DemandGenerator::seed_processes() {
  processes_.clear();
  total_ = 0;
  next_due_ = std::numeric_limits<double>::infinity();
  Rng master(seed_);
  for (RoadId road : network_.entry_roads()) {
    EntryProcess p{.road = road,
                   .side = network_.road(road).arrival_side,
                   .next_arrival = 0.0,
                   .rng = master.split()};
    // First arrival: one full inter-arrival gap from time zero, so an empty
    // network warms up the same way in both simulators.
    p.next_arrival = p.rng.exponential(mean_at(p.side, 0.0));
    next_due_ = std::min(next_due_, p.next_arrival);
    processes_.push_back(std::move(p));
  }
}

void DemandGenerator::reset() { seed_processes(); }

double DemandGenerator::mean_at(net::Side side, double time_s) const {
  if (!config_.schedule.empty()) {
    return config_.schedule.mean_interarrival(side, time_s) * config_.interarrival_scale;
  }
  return mean_interarrival(config_.pattern, side, time_s, config_.interarrival_scale);
}

std::vector<SpawnRequest> DemandGenerator::poll(double from_time, double to_time) {
  std::vector<SpawnRequest> spawns;
  poll_into(from_time, to_time, spawns);
  return spawns;
}

void DemandGenerator::poll_into(double from_time, double to_time,
                                std::vector<SpawnRequest>& out) {
  out.clear();
  // Fast path: nothing anywhere is due before the window closes, so no
  // process state can change — skip the per-road scan.
  if (next_due_ >= to_time) return;
  double next_due = std::numeric_limits<double>::infinity();
  for (EntryProcess& p : processes_) {
    while (p.next_arrival < to_time) {
      if (p.next_arrival >= from_time) {
        SpawnRequest req;
        req.time = p.next_arrival;
        req.entry = p.road;
        req.route = sample_route(network_, p.road, config_.turning, p.rng);
        out.push_back(std::move(req));
        ++total_;
      }
      p.next_arrival += p.rng.exponential(mean_at(p.side, p.next_arrival));
    }
    next_due = std::min(next_due, p.next_arrival);
  }
  next_due_ = next_due;
  std::sort(out.begin(), out.end(),
            [](const SpawnRequest& a, const SpawnRequest& b) { return a.time < b.time; });
}

}  // namespace abp::traffic
