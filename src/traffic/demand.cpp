#include "src/traffic/demand.hpp"

#include <algorithm>

namespace abp::traffic {

DemandGenerator::DemandGenerator(const net::Network& network, DemandConfig config,
                                 std::uint64_t seed)
    : network_(network), config_(config), seed_(seed) {
  seed_processes();
}

void DemandGenerator::seed_processes() {
  processes_.clear();
  total_ = 0;
  Rng master(seed_);
  for (RoadId road : network_.entry_roads()) {
    EntryProcess p{.road = road,
                   .side = network_.road(road).arrival_side,
                   .next_arrival = 0.0,
                   .rng = master.split()};
    // First arrival: one full inter-arrival gap from time zero, so an empty
    // network warms up the same way in both simulators.
    p.next_arrival = p.rng.exponential(mean_at(p.side, 0.0));
    processes_.push_back(std::move(p));
  }
}

void DemandGenerator::reset() { seed_processes(); }

double DemandGenerator::mean_at(net::Side side, double time_s) const {
  if (!config_.schedule.empty()) {
    return config_.schedule.mean_interarrival(side, time_s) * config_.interarrival_scale;
  }
  return mean_interarrival(config_.pattern, side, time_s, config_.interarrival_scale);
}

std::vector<SpawnRequest> DemandGenerator::poll(double from_time, double to_time) {
  std::vector<SpawnRequest> spawns;
  for (EntryProcess& p : processes_) {
    while (p.next_arrival < to_time) {
      if (p.next_arrival >= from_time) {
        SpawnRequest req;
        req.time = p.next_arrival;
        req.entry = p.road;
        req.route = sample_route(network_, p.road, config_.turning, p.rng);
        spawns.push_back(std::move(req));
        ++total_;
      }
      p.next_arrival += p.rng.exponential(mean_at(p.side, p.next_arrival));
    }
  }
  std::sort(spawns.begin(), spawns.end(),
            [](const SpawnRequest& a, const SpawnRequest& b) { return a.time < b.time; });
  return spawns;
}

}  // namespace abp::traffic
