// Demand generation: exogenous Poisson arrival processes at the entry roads.
//
// Each entry road carries an independent Poisson process whose rate follows
// the active pattern (Table II; the Mixed pattern changes rate every hour).
// The generator pre-draws the arrival time of the next vehicle per road and
// releases SpawnRequests as simulation time passes them, each with a route
// sampled from the Table-I turning probabilities.
#pragma once

#include <vector>

#include "src/net/network.hpp"
#include "src/traffic/patterns.hpp"
#include "src/traffic/route.hpp"
#include "src/util/rng.hpp"

namespace abp::traffic {

struct DemandConfig {
  PatternKind pattern = PatternKind::II;
  TurningTable turning = TurningTable::paper();
  // Scales all mean inter-arrival times; >1 lightens traffic, <1 intensifies.
  double interarrival_scale = 1.0;
  // When non-empty, overrides `pattern`: arrival rates follow the piecewise
  // schedule (its per-segment scales compose with interarrival_scale).
  DemandSchedule schedule;
};

struct SpawnRequest {
  double time = 0.0;
  RoadId entry;
  Route route;
};

class DemandGenerator {
 public:
  // `network` must outlive the generator.
  DemandGenerator(const net::Network& network, DemandConfig config, std::uint64_t seed);

  // All vehicles arriving in [from_time, to_time), ordered by time.
  // Convenience wrapper over poll_into() that allocates a fresh vector.
  [[nodiscard]] std::vector<SpawnRequest> poll(double from_time, double to_time);

  // Batched polling: clears `out` and fills it with all vehicles arriving in
  // [from_time, to_time), ordered by time. The simulators call this once per
  // tick with a reused buffer, so steady-state demand generation allocates
  // nothing; an O(1) earliest-arrival check skips the per-road process scan
  // entirely on ticks in which no entry road has an arrival due — with the
  // paper's rates that is most ticks, so per-tick demand cost no longer
  // scales with the number of entry roads.
  void poll_into(double from_time, double to_time, std::vector<SpawnRequest>& out);

  // Restarts the arrival processes from time zero with the original seed.
  void reset();

  [[nodiscard]] const DemandConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t total_generated() const noexcept { return total_; }

 private:
  struct EntryProcess {
    RoadId road;
    net::Side side = net::Side::North;
    double next_arrival = 0.0;
    Rng rng;
  };

  void seed_processes();
  // Mean inter-arrival for a side at a time, honouring the schedule override.
  [[nodiscard]] double mean_at(net::Side side, double time_s) const;

  const net::Network& network_;
  DemandConfig config_;
  std::uint64_t seed_;
  std::vector<EntryProcess> processes_;
  std::size_t total_ = 0;
  // Earliest pending arrival over all entry processes; lets poll_into()
  // early-out without touching per-road state when the window holds nothing.
  double next_due_ = 0.0;
};

}  // namespace abp::traffic
