// Vehicle routing through the network.
//
// Per the paper's workload: a vehicle entering the network goes straight
// through every junction except at most one, where it turns left or right
// (Table I probabilities); the turning junction is chosen uniformly among the
// junctions on its straight-ahead path. After the turn it continues straight
// until it exits the network.
//
// A Route is the per-junction turn sequence; simulators consume one Turn per
// junction the vehicle crosses and follow the corresponding link.
#pragma once

#include <optional>
#include <vector>

#include "src/net/geometry.hpp"
#include "src/net/network.hpp"
#include "src/traffic/patterns.hpp"
#include "src/util/rng.hpp"

namespace abp::traffic {

struct Route {
  // Turn to take at the n-th junction encountered (0-based).
  std::vector<net::Turn> turns;
  // Road on which the vehicle enters the network.
  RoadId entry;

  [[nodiscard]] bool empty() const noexcept { return turns.empty(); }
  [[nodiscard]] std::size_t junction_count() const noexcept { return turns.size(); }
};

// Follows `route` from its entry road and returns the sequence of roads the
// vehicle traverses, ending with the exit road. Returns std::nullopt when the
// route commands a movement that does not exist.
[[nodiscard]] std::optional<std::vector<RoadId>> roads_of_route(const net::Network& network,
                                                                const Route& route);

// Number of junctions on the straight-ahead path from `entry` to the exit.
[[nodiscard]] int straight_path_junctions(const net::Network& network, RoadId entry);

// Builds the route that goes straight everywhere except a `turn` at the
// junction with 0-based index `turn_at` along the path. Pass
// turn = Turn::Straight for a pure through route (turn_at ignored).
// Throws std::invalid_argument when the resulting movement does not exist.
[[nodiscard]] Route make_route(const net::Network& network, RoadId entry, net::Turn turn,
                               int turn_at);

// Samples a route per the paper's workload model: draw the turn from the
// Table-I probabilities of the entry side, then the turning junction
// uniformly along the straight path.
[[nodiscard]] Route sample_route(const net::Network& network, RoadId entry,
                                 const TurningTable& table, Rng& rng);

}  // namespace abp::traffic
