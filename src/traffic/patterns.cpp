#include "src/traffic/patterns.hpp"

#include <cmath>
#include <stdexcept>

namespace abp::traffic {

TurningTable TurningTable::paper() {
  TurningTable t;
  // Table I, columns North / East / South / West.
  t.by_side[static_cast<std::size_t>(net::Side::North)] = {.right = 0.4, .left = 0.2};
  t.by_side[static_cast<std::size_t>(net::Side::East)] = {.right = 0.3, .left = 0.3};
  t.by_side[static_cast<std::size_t>(net::Side::South)] = {.right = 0.4, .left = 0.3};
  t.by_side[static_cast<std::size_t>(net::Side::West)] = {.right = 0.3, .left = 0.4};
  return t;
}

std::string pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::I:
      return "I (adjacent heavy)";
    case PatternKind::II:
      return "II (uniform)";
    case PatternKind::III:
      return "III (opposite heavy)";
    case PatternKind::IV:
      return "IV (single heavy)";
    case PatternKind::Mixed:
      return "Mixed";
  }
  return "?";
}

ArrivalRow arrival_row(PatternKind kind) {
  // Table II, mean inter-arrival in seconds from North / East / South / West.
  switch (kind) {
    case PatternKind::I:
      return ArrivalRow{{3.0, 5.0, 7.0, 9.0}};
    case PatternKind::II:
      return ArrivalRow{{6.0, 6.0, 6.0, 6.0}};
    case PatternKind::III:
      return ArrivalRow{{3.0, 7.0, 5.0, 9.0}};
    case PatternKind::IV:
      return ArrivalRow{{3.0, 9.0, 9.0, 9.0}};
    case PatternKind::Mixed:
      throw std::invalid_argument("Mixed has no single arrival row; use pattern_at");
  }
  throw std::invalid_argument("unknown pattern");
}

PatternKind pattern_at(PatternKind kind, double time_s) {
  if (kind != PatternKind::Mixed) return kind;
  const double segment = std::floor(time_s / kMixedSegmentDuration_s);
  switch (static_cast<long long>(segment) % 4) {
    case 0:
      return PatternKind::I;
    case 1:
      return PatternKind::II;
    case 2:
      return PatternKind::III;
    default:
      return PatternKind::IV;
  }
}

double mean_interarrival(PatternKind kind, net::Side s, double time_s, double scale) {
  return arrival_row(pattern_at(kind, time_s)).on(s) * scale;
}

double paper_duration_s(PatternKind kind) {
  return kind == PatternKind::Mixed ? 4.0 * 3600.0 : 3600.0;
}

DemandSchedule::DemandSchedule(std::vector<ScheduleSegment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("demand schedule needs at least one segment");
  }
  for (const ScheduleSegment& s : segments_) {
    if (s.duration_s <= 0.0) {
      throw std::invalid_argument("schedule segment durations must be positive");
    }
    if (s.interarrival_scale <= 0.0) {
      throw std::invalid_argument("schedule segment scales must be positive");
    }
    if (s.pattern == PatternKind::Mixed) {
      throw std::invalid_argument(
          "schedule segments must use concrete patterns, not Mixed (compose "
          "the segments instead)");
    }
    cycle_ += s.duration_s;
  }
}

const ScheduleSegment& DemandSchedule::at(double time_s) const {
  if (segments_.empty()) {
    throw std::logic_error("DemandSchedule::at on an empty schedule");
  }
  double offset = std::fmod(time_s, cycle_);
  if (offset < 0.0) offset += cycle_;
  for (const ScheduleSegment& s : segments_) {
    if (offset < s.duration_s) return s;
    offset -= s.duration_s;
  }
  return segments_.back();  // floating-point boundary
}

double DemandSchedule::mean_interarrival(net::Side s, double time_s) const {
  const ScheduleSegment& segment = at(time_s);
  return arrival_row(segment.pattern).on(s) * segment.interarrival_scale;
}

}  // namespace abp::traffic
