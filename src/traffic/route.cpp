#include "src/traffic/route.hpp"

#include <stdexcept>

namespace abp::traffic {

std::optional<std::vector<RoadId>> roads_of_route(const net::Network& network,
                                                  const Route& route) {
  std::vector<RoadId> roads;
  roads.push_back(route.entry);
  RoadId current = route.entry;
  for (net::Turn turn : route.turns) {
    const std::optional<LinkId> link = network.find_link(current, turn);
    if (!link) return std::nullopt;
    current = network.link(*link).to_road;
    roads.push_back(current);
  }
  if (!network.road(current).is_exit()) return std::nullopt;
  return roads;
}

int straight_path_junctions(const net::Network& network, RoadId entry) {
  int count = 0;
  RoadId current = entry;
  while (!network.road(current).is_exit()) {
    const std::optional<LinkId> link = network.find_link(current, net::Turn::Straight);
    if (!link) break;  // dead end without a straight movement: stop counting
    ++count;
    current = network.link(*link).to_road;
  }
  return count;
}

Route make_route(const net::Network& network, RoadId entry, net::Turn turn, int turn_at) {
  Route route;
  route.entry = entry;
  RoadId current = entry;
  int junction = 0;
  while (!network.road(current).is_exit()) {
    const net::Turn desired =
        (turn != net::Turn::Straight && junction == turn_at) ? turn : net::Turn::Straight;
    // Incomplete junctions (e.g. a T-junction on the straight-ahead path)
    // may not offer the desired movement; fall back to whatever exists,
    // preferring to continue straight. A vehicle is never stuck at a valid
    // junction unless its incoming road has no movements at all.
    std::optional<LinkId> link = network.find_link(current, desired);
    for (net::Turn fallback : {net::Turn::Straight, net::Turn::Left, net::Turn::Right}) {
      if (link) break;
      link = network.find_link(current, fallback);
    }
    if (!link) {
      throw std::invalid_argument("road " + network.road(current).name +
                                  " has no feasible movement to continue the route");
    }
    route.turns.push_back(network.link(*link).turn);
    current = network.link(*link).to_road;
    ++junction;
  }
  return route;
}

Route sample_route(const net::Network& network, RoadId entry, const TurningTable& table,
                   Rng& rng) {
  const net::Side entry_side = network.road(entry).arrival_side;
  const TurningTable::Probabilities& p = table.entering_from(entry_side);
  const double weights[3] = {p.left, p.straight(), p.right};
  const net::Turn turn = static_cast<net::Turn>(rng.discrete(weights));

  int turn_at = 0;
  if (turn != net::Turn::Straight) {
    const int junctions = straight_path_junctions(network, entry);
    turn_at = junctions > 0 ? static_cast<int>(rng.uniform_int(0, junctions - 1)) : 0;
  }
  return make_route(network, entry, turn, turn_at);
}

}  // namespace abp::traffic
