// The paper's demand specification: Table I turning probabilities and
// Table II arrival patterns.
//
// Vehicles enter the network at boundary entry roads as Poisson processes
// whose mean inter-arrival time depends on the boundary side (North/East/
// South/West) and the active pattern. Each vehicle turns at most once, with a
// side-dependent probability of turning right/left (Table I); the junction at
// which the turn happens is selected uniformly at random along its path.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/net/geometry.hpp"

namespace abp::traffic {

// Table I: probability that a vehicle entering from a given boundary side
// turns right / left (exactly once); remainder goes straight through.
struct TurningTable {
  struct Probabilities {
    double right = 0.0;
    double left = 0.0;
    [[nodiscard]] double straight() const noexcept { return 1.0 - right - left; }
  };

  // Indexed by net::Side.
  std::array<Probabilities, 4> by_side{};

  [[nodiscard]] const Probabilities& entering_from(net::Side s) const noexcept {
    return by_side[static_cast<std::size_t>(s)];
  }

  // The paper's Table I values.
  [[nodiscard]] static TurningTable paper();
};

// Table II patterns.
enum class PatternKind { I, II, III, IV, Mixed };

[[nodiscard]] std::string pattern_name(PatternKind kind);

// Mean inter-arrival times (seconds) per boundary side for one pattern row.
struct ArrivalRow {
  // Indexed by net::Side.
  std::array<double, 4> mean_interarrival_s{};

  [[nodiscard]] double on(net::Side s) const noexcept {
    return mean_interarrival_s[static_cast<std::size_t>(s)];
  }
};

// Table II row for a non-mixed pattern.
[[nodiscard]] ArrivalRow arrival_row(PatternKind kind);

// Duration of each segment of the mixed pattern: the paper concatenates the
// four patterns for one hour each (4 h total).
inline constexpr double kMixedSegmentDuration_s = 3600.0;

// The pattern that governs arrivals at simulation time t. Non-mixed patterns
// are time-invariant; Mixed cycles I -> II -> III -> IV hourly.
[[nodiscard]] PatternKind pattern_at(PatternKind kind, double time_s);

// Mean inter-arrival time on side `s` at time `t` for pattern `kind`,
// optionally scaled (scale > 1 means lighter traffic, i.e. longer gaps).
[[nodiscard]] double mean_interarrival(PatternKind kind, net::Side s, double time_s,
                                       double scale = 1.0);

// Nominal duration the paper simulates for the pattern (1 h; 4 h for Mixed).
[[nodiscard]] double paper_duration_s(PatternKind kind);

// A piecewise demand schedule: each segment runs one (pattern, intensity)
// combination for a duration. Generalizes the paper's Mixed pattern to
// arbitrary timelines (rush hours, surges, overnight lulls). The schedule
// repeats after its last segment.
struct ScheduleSegment {
  double duration_s = 3600.0;
  PatternKind pattern = PatternKind::II;
  // Multiplies the Table-II inter-arrival means; < 1 intensifies traffic.
  double interarrival_scale = 1.0;
};

class DemandSchedule {
 public:
  DemandSchedule() = default;
  // Throws std::invalid_argument on an empty list or non-positive durations.
  explicit DemandSchedule(std::vector<ScheduleSegment> segments);

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] const std::vector<ScheduleSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] double cycle_duration_s() const noexcept { return cycle_; }

  // Segment active at time t (schedule repeats past the last segment).
  [[nodiscard]] const ScheduleSegment& at(double time_s) const;

  // Mean inter-arrival on boundary side `s` at time t under this schedule.
  [[nodiscard]] double mean_interarrival(net::Side s, double time_s) const;

 private:
  std::vector<ScheduleSegment> segments_;
  double cycle_ = 0.0;
};

}  // namespace abp::traffic
