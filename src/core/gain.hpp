// Link-gain metrics: the decision quantities of back-pressure signal control.
//
// Implements, in one place tested against the paper's equations:
//   Eq. (4)  b = f(q), the pressure mapping (identity by default),
//   Eq. (5)  the original link gain  g_o = max(0, (b_i - b_{i'}) mu),
//   Eq. (6)  the modified link gain  g = (b_i^{i'} - b_{i'} + W*) mu,
//   Eq. (7)  W* = max_{i' in N_O} W_{i'},
//   Eq. (8)  the utilization-aware gain with the sentinels beta (full
//            outgoing road) and alpha (empty incoming lane),
//   Eq. (10) phase gain g(c_j,k) = sum of constituent link gains,
//   Eq. (11) gmax(c_j,k) = max of constituent link gains.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/core/observation.hpp"

namespace abp::core {

// Pressure mapping b = f(q). Identity when empty (the paper's choice, Eq. 4);
// any non-decreasing mapping may be supplied for experimentation.
using PressureFn = std::function<double(double)>;

// Parameters of the utilization-aware gain (Eq. 8/9).
struct GainParams {
  // Gain of a movement whose per-lane incoming queue is empty while the
  // outgoing road still has space: activating it serves only newly arriving
  // vehicles. Must be negative.
  double alpha = -1.0;
  // Gain of a movement whose outgoing road is full: activating it serves
  // nothing at all. The paper recommends beta < alpha < 0, but allows the
  // traffic authority to invert the order; we only require both negative.
  double beta = -2.0;
  // Pressure mapping; identity when not set.
  PressureFn pressure;
};

// Applies the pressure mapping (identity when fn is empty).
[[nodiscard]] double pressure(const PressureFn& fn, double queue);

// Eq. (7): the largest outgoing-road capacity observable at the junction.
[[nodiscard]] double wstar(const IntersectionObservation& obs);

// Eq. (5): original back-pressure gain; uses the *total* incoming queue.
[[nodiscard]] double link_gain_original(const LinkState& link, const PressureFn& fn = {});

// Eq. (6): modified gain; per-lane incoming queue, shifted by W* so that
// negative pressure differences still compete for service.
[[nodiscard]] double link_gain_modified(const LinkState& link, double wstar_value,
                                        const PressureFn& fn = {});

// Eq. (8): utilization-aware gain with the full/empty sentinels.
[[nodiscard]] double link_gain_util(const LinkState& link, double wstar_value,
                                    const GainParams& params);

// Gains of all links of an observation under Eq. (8), in link order.
[[nodiscard]] std::vector<double> all_link_gains_util(const IntersectionObservation& obs,
                                                      const GainParams& params);

// Eq. (10): total gain of a phase given per-link gains. Empty phase -> 0.
[[nodiscard]] double phase_gain(std::span<const int> phase_links,
                                std::span<const double> link_gains);

// Eq. (11): maximum link gain within a phase. Empty phase -> -infinity.
[[nodiscard]] double phase_gain_max(std::span<const int> phase_links,
                                    std::span<const double> link_gains);

// Index (into the observation) of the link attaining phase_gain_max;
// -1 for an empty phase. Ties resolve to the first link in phase order.
[[nodiscard]] int phase_argmax_link(std::span<const int> phase_links,
                                    std::span<const double> link_gains);

}  // namespace abp::core
