#include "src/core/factory.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/pressure_presets.hpp"

namespace abp::core {
namespace {

// The declarative layer selects pressure mappings by preset
// (pressure_kind); an explicitly supplied function always wins so the
// programmatic API keeps its historical meaning.
PressureFn resolve_pressure(const PressureFn& fn, PressureKind kind, double capacity) {
  if (fn || kind == PressureKind::Identity) return fn;
  return make_pressure(kind, capacity);
}

// Largest road capacity of the network: the W the Normalized preset scales
// by, mirroring Eq. (7)'s W* convention.
double max_capacity(const net::Network& network) {
  double cap = 0.0;
  for (const net::Road& road : network.roads()) {
    cap = std::max(cap, static_cast<double>(road.capacity));
  }
  return cap > 0.0 ? cap : 120.0;
}

}  // namespace

std::string controller_type_name(ControllerType type) {
  switch (type) {
    case ControllerType::UtilBp:
      return "UTIL-BP";
    case ControllerType::CapBp:
      return "CAP-BP";
    case ControllerType::OriginalBp:
      return "ORIG-BP";
    case ControllerType::FixedTime:
      return "FIXED-TIME";
  }
  return "unknown";
}

ControllerPtr make_controller(const ControllerSpec& spec, IntersectionPlan plan,
                              double pressure_capacity) {
  switch (spec.type) {
    case ControllerType::UtilBp: {
      UtilBpConfig cfg = spec.util;
      cfg.pressure = resolve_pressure(cfg.pressure, cfg.pressure_kind, pressure_capacity);
      return std::make_unique<UtilBpController>(std::move(plan), std::move(cfg));
    }
    case ControllerType::CapBp: {
      FixedSlotBpConfig cfg = spec.fixed_slot;
      cfg.rule = FixedSlotRule::CapacityAware;
      cfg.pressure = resolve_pressure(cfg.pressure, cfg.pressure_kind, pressure_capacity);
      return std::make_unique<FixedSlotBpController>(std::move(plan), std::move(cfg));
    }
    case ControllerType::OriginalBp: {
      FixedSlotBpConfig cfg = spec.fixed_slot;
      cfg.rule = FixedSlotRule::Original;
      cfg.pressure = resolve_pressure(cfg.pressure, cfg.pressure_kind, pressure_capacity);
      return std::make_unique<FixedSlotBpController>(std::move(plan), std::move(cfg));
    }
    case ControllerType::FixedTime:
      return std::make_unique<FixedTimeController>(std::move(plan), spec.fixed_time);
  }
  throw std::invalid_argument("unknown controller type");
}

std::vector<ControllerPtr> make_controllers(const ControllerSpec& spec,
                                            const net::Network& network) {
  std::vector<ControllerPtr> controllers;
  controllers.reserve(network.intersections().size());
  const double cap = max_capacity(network);
  for (const net::Intersection& node : network.intersections()) {
    controllers.push_back(make_controller(spec, make_plan(network, node), cap));
  }
  return controllers;
}

}  // namespace abp::core
