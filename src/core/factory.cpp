#include "src/core/factory.hpp"

#include <stdexcept>

namespace abp::core {

std::string controller_type_name(ControllerType type) {
  switch (type) {
    case ControllerType::UtilBp:
      return "UTIL-BP";
    case ControllerType::CapBp:
      return "CAP-BP";
    case ControllerType::OriginalBp:
      return "ORIG-BP";
    case ControllerType::FixedTime:
      return "FIXED-TIME";
  }
  return "unknown";
}

ControllerPtr make_controller(const ControllerSpec& spec, IntersectionPlan plan) {
  switch (spec.type) {
    case ControllerType::UtilBp:
      return std::make_unique<UtilBpController>(std::move(plan), spec.util);
    case ControllerType::CapBp: {
      FixedSlotBpConfig cfg = spec.fixed_slot;
      cfg.rule = FixedSlotRule::CapacityAware;
      return std::make_unique<FixedSlotBpController>(std::move(plan), cfg);
    }
    case ControllerType::OriginalBp: {
      FixedSlotBpConfig cfg = spec.fixed_slot;
      cfg.rule = FixedSlotRule::Original;
      return std::make_unique<FixedSlotBpController>(std::move(plan), cfg);
    }
    case ControllerType::FixedTime:
      return std::make_unique<FixedTimeController>(std::move(plan), spec.fixed_time);
  }
  throw std::invalid_argument("unknown controller type");
}

std::vector<ControllerPtr> make_controllers(const ControllerSpec& spec,
                                            const net::Network& network) {
  std::vector<ControllerPtr> controllers;
  controllers.reserve(network.intersections().size());
  for (const net::Intersection& node : network.intersections()) {
    controllers.push_back(make_controller(spec, make_plan(network, node)));
  }
  return controllers;
}

}  // namespace abp::core
