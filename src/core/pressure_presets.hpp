// Preset pressure mappings b = f(q) for Eq. (4).
//
// The paper uses the identity (f(q) = q) but states the framework only needs
// a non-decreasing mapping. These presets make the generality concrete and
// are swept by the ablation benches:
//   Identity   — the paper's choice; pressure equals queue length.
//   Sqrt       — concave: long queues saturate, short queues dominate
//                decisions (fairness-leaning).
//   Quadratic  — convex: long queues dominate strongly (starvation-averse).
//   Normalized — q / W: pressure as occupancy fraction, the scaling CAP-BP
//                uses internally.
#pragma once

#include <string>

#include "src/core/gain.hpp"

namespace abp::core {

enum class PressureKind { Identity, Sqrt, Quadratic, Normalized };

[[nodiscard]] std::string pressure_kind_name(PressureKind kind);

// Builds the mapping. `capacity` is only used by Normalized (must be > 0).
// Identity returns an empty function (the gain code's fast path).
[[nodiscard]] PressureFn make_pressure(PressureKind kind, double capacity = 120.0);

}  // namespace abp::core
