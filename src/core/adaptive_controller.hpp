// Changepoint-adaptive controller decorator: online regime-shift detection
// over the junction's sensor streams, with optional re-tuning on detection.
//
// Sits between the backend (or the fault decorator, which wraps it so the
// monitor sees exactly the possibly-faulted readings the policy sees) and
// the junction's control policy. Every decide() first feeds the observation
// to a detect::JunctionMonitor — per-link two-sided CUSUM detectors fused
// into junction-level regime-shift events (docs/CHANGEPOINT.md) — then
// delegates to the active controller.
//
// Adaptation (DetectorConfig::adapt) is two-mode: an upward regime shift
// (surge onset, incident spillback) switches control to a pre-built
// incident-tuned variant of the policy, freshly reset() so none of its
// hysteresis/slot state is stale from the old regime; a downward shift
// (recovery) switches back to the primary, also reset. When no tuned
// variant exists for the policy (classical fixed-time has nothing to
// re-tune), adaptation degrades to resetting the primary — dropping regime
// assumptions baked into its internal clocks. With adapt=false the monitor
// records events and control is untouched: the run is decision-for-decision
// identical to an unwrapped one.
//
// Determinism: the monitor is draw-free and runs inside the sequential
// control phase, so wrapping changes no RNG stream and every bit-invariance
// guarantee (threads, batch jobs) holds with a detector active — pinned by
// tests/changepoint_test.cpp.
#pragma once

#include <string>
#include <utility>

#include "src/core/controller.hpp"
#include "src/detect/junction_monitor.hpp"

namespace abp::core {

class AdaptiveController final : public SignalController {
 public:
  // `retuned` may be null: adaptation then falls back to resetting the
  // primary on each acted-on event.
  AdaptiveController(ControllerPtr primary, ControllerPtr retuned,
                     detect::JunctionMonitor monitor)
      : primary_(std::move(primary)),
        retuned_(std::move(retuned)),
        monitor_(std::move(monitor)) {}

  [[nodiscard]] net::PhaseIndex decide(const IntersectionObservation& obs) override {
    if (const stats::DetectionEvent* event = monitor_.update(obs);
        event != nullptr && monitor_.config().adapt) {
      apply(*event);
    }
    SignalController& active = retuned_active_ ? *retuned_ : *primary_;
    return active.decide(obs);
  }

  void reset() override {
    primary_->reset();
    if (retuned_) retuned_->reset();
    retuned_active_ = false;
    monitor_.reset();
  }

  // Reports the primary's name: detection is a property of the run, not of
  // the policy under test (same convention as FaultInjectedController).
  [[nodiscard]] std::string name() const override { return primary_->name(); }

  // The junction's event stream and sample count (read by the simulator
  // adapter when assembling RunResult::detections).
  [[nodiscard]] const detect::JunctionMonitor& monitor() const noexcept {
    return monitor_;
  }

  // True while the incident-tuned variant is in control (test hook).
  [[nodiscard]] bool retuned_active() const noexcept { return retuned_active_; }

 private:
  void apply(const stats::DetectionEvent& event) {
    if (event.direction > 0 && retuned_ && !retuned_active_) {
      retuned_active_ = true;
      retuned_->reset();
    } else if (event.direction < 0 && retuned_active_) {
      retuned_active_ = false;
      primary_->reset();
    } else {
      // No mode switch available (already in the right mode, or no tuned
      // variant): drop the active controller's stale regime state instead.
      (retuned_active_ ? retuned_ : primary_)->reset();
    }
  }

  ControllerPtr primary_;
  ControllerPtr retuned_;
  detect::JunctionMonitor monitor_;
  bool retuned_active_ = false;
};

}  // namespace abp::core
