// Fault-injected controller decorator: sensor faults and controller failure
// with graceful degradation, applied in the sequential control phase.
//
// Fault injection must not disturb the repository's determinism guarantees
// (fixed-seed runs bit-identical at every thread count, batch identical to
// serial — see docs/ROBUSTNESS.md). Both simulators invoke their controllers
// one junction at a time in the sequential phase of the tick, so a decorator
// wrapped around a junction's controller is automatically thread-invariant:
// it sees the same observation stream in the same order no matter how wide
// the parallel sweep is. That is why sensor and controller faults live here
// rather than inside the backends — one implementation covers both
// simulators, and the hot parallel sweep never learns faults exist.
//
// Sensor faults perturb only the sensor-derived readings of the observation
// (queue, upstream_total, downstream_queue); physical state — occupancies,
// capacities, service rates — is never forged, mirroring how the backends'
// own SensorModel treats Eq. (8)'s capacity test as ground truth. Noise
// draws come from a dedicated counter-based StreamRng per decorator, so the
// backends' existing RNG streams are untouched and golden pins with an empty
// fault schedule stay bit-identical.
//
// Controller failure delegates to a fallback FixedTimeController (classical
// pre-timed control needs no sensor input, which is exactly why real
// deployments degrade to it). On recovery the primary is reset() before it
// resumes: its internal clocks would otherwise be stale by the outage length.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "src/core/controller.hpp"
#include "src/util/rng.hpp"

namespace abp::core {

enum class SensorFaultKind {
  // All sensor readings report zero — dead detectors.
  Dropout,
  // Readings freeze at the last healthy values (zero if the fault is active
  // from the first decision on).
  StuckAt,
  // Readings are offset by `bias` plus a uniform integer in
  // [-noise_magnitude, +noise_magnitude], clamped at zero — miscalibrated or
  // electrically noisy detectors.
  Noise,
};

[[nodiscard]] std::string sensor_fault_kind_name(SensorFaultKind kind);

// A sensor fault active on [start_s, end_s) at one junction.
struct SensorFaultWindow {
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  SensorFaultKind kind = SensorFaultKind::Dropout;
  int bias = 0;             // Noise only
  int noise_magnitude = 0;  // Noise only
};

// The junction's controller is failed on [fail_s, recover_s); an infinite
// recover_s means it never comes back.
struct ControllerFaultWindow {
  double fail_s = 0.0;
  double recover_s = std::numeric_limits<double>::infinity();
};

// Decorates one junction's controller with its scheduled faults. decide()
// applies, in order: the active sensor fault (if any) to a scratch copy of
// the observation, then either the failed-over fallback or the primary.
// Consumes RNG only while a Noise window is active, and only from its own
// stream — a decorator-wrapped run with no active fault window is
// bit-identical to an unwrapped one.
class FaultInjectedController final : public SignalController {
 public:
  // `noise_seed`/`noise_stream` key the decorator's private StreamRng;
  // make_simulator derives them from (config.seed, junction index) so
  // distinct junctions draw independent noise.
  FaultInjectedController(ControllerPtr primary, ControllerPtr fallback,
                          std::vector<ControllerFaultWindow> failures,
                          std::vector<SensorFaultWindow> sensor_faults,
                          std::uint64_t noise_seed, std::uint64_t noise_stream);

  [[nodiscard]] net::PhaseIndex decide(const IntersectionObservation& obs) override;
  void reset() override;
  // Reports the primary's name: fault injection is a property of the run,
  // not of the policy under test.
  [[nodiscard]] std::string name() const override { return primary_->name(); }

  // True while the primary is failed over to the fallback (test hook).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

 private:
  [[nodiscard]] const SensorFaultWindow* active_sensor_fault(double time) const;
  [[nodiscard]] bool failure_active(double time) const;
  void perturb(IntersectionObservation& obs, const SensorFaultWindow& fault);
  [[nodiscard]] int noisy(int value, const SensorFaultWindow& fault);

  ControllerPtr primary_;
  ControllerPtr fallback_;
  std::vector<ControllerFaultWindow> failures_;
  std::vector<SensorFaultWindow> sensor_faults_;
  std::uint64_t noise_seed_ = 0;
  std::uint64_t noise_stream_ = 0;
  StreamRng noise_rng_;
  bool degraded_ = false;
  // Most recent healthy link readings, the StuckAt freeze frame. Maintained
  // only when a StuckAt window exists.
  bool has_stuck_window_ = false;
  std::vector<LinkState> last_healthy_;
  // Scratch for the perturbed observation, reused across decisions.
  IntersectionObservation scratch_;
};

}  // namespace abp::core
