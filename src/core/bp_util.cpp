#include "src/core/bp_util.hpp"

#include <limits>
#include <stdexcept>

namespace abp::core {

UtilBpController::UtilBpController(IntersectionPlan plan, UtilBpConfig config)
    : plan_(std::move(plan)), config_(config) {
  if (config_.alpha >= 0.0 || config_.beta >= 0.0) {
    throw std::invalid_argument("UTIL-BP requires negative alpha and beta sentinels");
  }
  if (config_.amber_duration_s < 0.0) {
    throw std::invalid_argument("amber duration must be non-negative");
  }
  if (plan_.num_control_phases() < 1) {
    throw std::invalid_argument("UTIL-BP needs at least one control phase");
  }
  gain_params_.alpha = config_.alpha;
  gain_params_.beta = config_.beta;
  gain_params_.pressure = config_.pressure;
}

void UtilBpController::reset() {
  current_ = net::kTransitionPhase;
  transition_until_ = -1.0;
}

double UtilBpController::gstar_for(const IntersectionObservation& obs,
                                   std::span<const double> gains) const {
  switch (config_.gstar_policy) {
    case GStarPolicy::Zero:
      return 0.0;
    case GStarPolicy::Constant:
      return config_.gstar_constant;
    case GStarPolicy::WStarMu: {
      // Eq. (12): W* times the service rate of the current phase's max-gain
      // link L_max(c(k-1), k).
      const auto& phase = plan_.phases[static_cast<std::size_t>(current_)];
      const int lmax = phase_argmax_link(phase, gains);
      if (lmax < 0) return 0.0;
      return wstar(obs) * obs.links[static_cast<std::size_t>(lmax)].service_rate;
    }
  }
  return 0.0;
}

net::PhaseIndex UtilBpController::select_phase(std::span<const double> gains) const {
  const int phases = plan_.num_control_phases();
  // Scenario 1 (Lines 6-8): some phase guarantees utilization in the next
  // mini-slot. Among those, maximize the *total* gain — the best effort
  // against instability.
  double best_gmax = -std::numeric_limits<double>::infinity();
  for (int j = 1; j <= phases; ++j) {
    best_gmax = std::max(
        best_gmax, phase_gain_max(plan_.phases[static_cast<std::size_t>(j)], gains));
  }
  if (best_gmax > config_.alpha) {
    net::PhaseIndex best = net::kTransitionPhase;
    double best_total = -std::numeric_limits<double>::infinity();
    for (int j = 1; j <= phases; ++j) {
      const auto& phase = plan_.phases[static_cast<std::size_t>(j)];
      if (phase_gain_max(phase, gains) <= config_.alpha) continue;
      const double total = phase_gain(phase, gains);
      // Strict improvement required, except that the incumbent phase wins
      // ties: switching on a tie would only buy an extra amber period.
      if (total > best_total || (total == best_total && j == current_)) {
        best_total = total;
        best = j;
      }
    }
    return best;
  }
  // Scenario 2 (Line 10): utilization will be poor regardless; fall back to
  // the phase with the single highest link gain.
  net::PhaseIndex best = 1;
  double best_g = -std::numeric_limits<double>::infinity();
  for (int j = 1; j <= phases; ++j) {
    const double g = phase_gain_max(plan_.phases[static_cast<std::size_t>(j)], gains);
    if (g > best_g || (g == best_g && j == current_)) {
      best_g = g;
      best = j;
    }
  }
  return best;
}

net::PhaseIndex UtilBpController::decide(const IntersectionObservation& obs) {
  if (static_cast<int>(obs.links.size()) != plan_.num_links) {
    throw std::invalid_argument("observation size does not match plan");
  }
  const std::vector<double> gains = all_link_gains_util(obs, gain_params_);

  // Case 1: transition phase still running (Lines 1-2).
  if (current_ == net::kTransitionPhase && obs.time < transition_until_) {
    return net::kTransitionPhase;
  }

  // Case 2: current control phase still offers good utilization (Lines 3-4).
  if (current_ != net::kTransitionPhase) {
    const auto& phase = plan_.phases[static_cast<std::size_t>(current_)];
    if (phase_gain_max(phase, gains) > gstar_for(obs, gains)) {
      return current_;
    }
  }

  // Case 3: select a (possibly new) control phase (Lines 5-18).
  const net::PhaseIndex chosen = select_phase(gains);
  if (chosen == current_ || current_ == net::kTransitionPhase) {
    current_ = chosen;
    return current_;
  }
  current_ = net::kTransitionPhase;
  transition_until_ = obs.time + config_.amber_duration_s;
  return net::kTransitionPhase;
}

}  // namespace abp::core
