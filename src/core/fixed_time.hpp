// Fixed-time (pre-timed) signal controller: cycles through the control phases
// in order, each with a fixed green duration separated by amber transitions.
// Classical baseline that uses no state feedback at all; included for the
// ablation benches and as the simplest reference policy.
#pragma once

#include <string>

#include "src/core/controller.hpp"

namespace abp::core {

struct FixedTimeConfig {
  // Green time per control phase.
  double green_duration_s = 15.0;
  // Amber between consecutive phases.
  double amber_duration_s = 4.0;
  // Shifts this junction's cycle start within the common cycle. Staggering
  // offsets junction-by-junction along a corridor (offset ≈ link travel
  // time) produces a classical green wave — see the arterial_corridor
  // scenario and docs/SCENARIOS.md. Must be finite and non-negative.
  double offset_s = 0.0;
};

class FixedTimeController final : public SignalController {
 public:
  FixedTimeController(IntersectionPlan plan, FixedTimeConfig config);

  [[nodiscard]] net::PhaseIndex decide(const IntersectionObservation& obs) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "FIXED-TIME"; }

 private:
  IntersectionPlan plan_;
  FixedTimeConfig config_;
  bool started_ = false;
  double cycle_origin_ = 0.0;
};

}  // namespace abp::core
