// Queue-detector imperfection model.
//
// The paper's controller is the cyber half of a CPS: it acts on *measured*
// queue lengths. Real roadside detectors miss vehicles, quantize counts and
// occasionally fail outright. This model perturbs the queue measurements the
// simulators hand to the controllers, so the robustness of each policy to
// sensing quality can be quantified (bench_sensor_noise). Occupancy counts
// and capacities are physical admission state, not sensor readings, and are
// never perturbed.
#pragma once

#include "src/util/rng.hpp"

namespace abp::core {

struct SensorModel {
  // Probability that an individual queued vehicle is detected (binomial
  // thinning of every queue count). 1.0 = perfect detection.
  double detection_probability = 1.0;
  // Counts are reported in multiples of this granularity (floor). 1 = exact.
  // Models coarse loop-detector occupancy bands.
  int quantization = 1;
  // Probability that a reading is dropped entirely (stuck-at-zero) for one
  // decision instant. Models intermittent detector/communication failure.
  double dropout_probability = 0.0;

  [[nodiscard]] bool perfect() const noexcept {
    return detection_probability >= 1.0 && quantization <= 1 && dropout_probability <= 0.0;
  }
};

// Imperfect-sensor path of measure_queue (thinning, dropout, quantization).
[[nodiscard]] int measure_queue_imperfect(int true_count, const SensorModel& model, Rng& rng);

// Applies the model to one queue count. Deterministic pass-through when the
// model is perfect (no RNG consumption, so enabling a perfect sensor does not
// change a run). Inline so the default perfect model costs a few compares per
// reading — observe() takes three readings per link per control step.
[[nodiscard]] inline int measure_queue(int true_count, const SensorModel& model, Rng& rng) {
  if (model.perfect()) return true_count;
  return measure_queue_imperfect(true_count, model, rng);
}

}  // namespace abp::core
