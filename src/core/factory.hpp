// Config-driven construction of signal controllers.
//
// Scenario code (examples, benches, tests) describes the policy for a run
// with a ControllerSpec and stamps one controller instance per intersection
// from it — each junction needs its own instance because controllers are
// stateful and decentralized.
#pragma once

#include <string>

#include "src/core/bp_fixed.hpp"
#include "src/core/bp_util.hpp"
#include "src/core/controller.hpp"
#include "src/core/fixed_time.hpp"
#include "src/net/network.hpp"

namespace abp::core {

enum class ControllerType { UtilBp, CapBp, OriginalBp, FixedTime };

[[nodiscard]] std::string controller_type_name(ControllerType type);

struct ControllerSpec {
  ControllerType type = ControllerType::UtilBp;
  UtilBpConfig util;
  FixedSlotBpConfig fixed_slot;
  FixedTimeConfig fixed_time;
};

// Builds a controller of the requested type for one junction plan. A
// non-identity UtilBpConfig/FixedSlotBpConfig::pressure_kind with no explicit
// pressure function is materialized here via make_pressure;
// `pressure_capacity` feeds the Normalized preset's q/W scaling (callers with
// a network pass its largest road capacity — make_controllers does).
[[nodiscard]] ControllerPtr make_controller(const ControllerSpec& spec, IntersectionPlan plan,
                                            double pressure_capacity = 120.0);

// Convenience: one controller per intersection of the network, indexed by
// IntersectionId::index().
[[nodiscard]] std::vector<ControllerPtr> make_controllers(const ControllerSpec& spec,
                                                          const net::Network& network);

}  // namespace abp::core
