// UTIL-BP: the paper's utilization-aware adaptive back-pressure controller
// (Algorithm 1).
//
// Invoked every mini-slot, which is what enables varying-length control
// phases. Three cases:
//   Case 1  — amber (transition) still running: keep c0.
//   Case 2  — current phase still has a link with gain above the hysteresis
//             threshold g*(k): keep it (limits the number of transitions).
//   Case 3  — re-select: among phases that guarantee some utilization
//             (gmax > alpha) pick the one with the largest total gain;
//             if none exists, pick the phase with the largest single link
//             gain. Switching to a different phase first runs the amber
//             transition of length Delta-k.
#pragma once

#include <string>
#include <vector>

#include "src/core/controller.hpp"
#include "src/core/gain.hpp"
#include "src/core/pressure_presets.hpp"

namespace abp::core {

// Choice of the hysteresis threshold g*(k) used in Case 2.
enum class GStarPolicy {
  // Eq. (12): g* = W* mu of the current max-gain link, i.e. keep the phase
  // while that link's pressure difference is still positive.
  WStarMu,
  // g* = 0: keep the phase while any constituent gain is positive (most
  // reluctant to change that still respects work conservation).
  Zero,
  // g* = constant supplied in UtilBpConfig::gstar_constant.
  Constant,
};

struct UtilBpConfig {
  // Sentinel gains of Eq. (8)/(9); the paper uses alpha=-1, beta=-2.
  double alpha = -1.0;
  double beta = -2.0;
  // Transition-phase (amber) duration Delta-k; the paper uses 4 s.
  double amber_duration_s = 4.0;
  GStarPolicy gstar_policy = GStarPolicy::WStarMu;
  double gstar_constant = 0.0;
  // Pressure mapping b = f(q), chosen by preset. The factory materializes
  // any non-identity kind into `pressure` at construction time; this field
  // (not the function) is what the declarative scenario layer serializes, so
  // scenario files round-trip (docs/SCENARIOS.md).
  PressureKind pressure_kind = PressureKind::Identity;
  // Optional non-identity pressure mapping b = f(q). When set it wins over
  // pressure_kind — programmatic API only: a config carrying a custom
  // function cannot be dumped to a scenario file.
  PressureFn pressure;
};

class UtilBpController final : public SignalController {
 public:
  UtilBpController(IntersectionPlan plan, UtilBpConfig config);

  [[nodiscard]] net::PhaseIndex decide(const IntersectionObservation& obs) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "UTIL-BP"; }

  [[nodiscard]] const UtilBpConfig& config() const noexcept { return config_; }
  // Currently displayed phase (0 while in transition). For tests/traces.
  [[nodiscard]] net::PhaseIndex current_phase() const noexcept { return current_; }

 private:
  [[nodiscard]] double gstar_for(const IntersectionObservation& obs,
                                 std::span<const double> gains) const;
  [[nodiscard]] net::PhaseIndex select_phase(std::span<const double> gains) const;

  IntersectionPlan plan_;
  UtilBpConfig config_;
  GainParams gain_params_;
  net::PhaseIndex current_ = net::kTransitionPhase;
  // t_Deltak of Algorithm 1: expiry time of the running transition phase.
  double transition_until_ = -1.0;
};

}  // namespace abp::core
