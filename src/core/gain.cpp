#include "src/core/gain.hpp"

#include <algorithm>
#include <limits>

namespace abp::core {

double pressure(const PressureFn& fn, double queue) {
  return fn ? fn(queue) : queue;
}

double wstar(const IntersectionObservation& obs) {
  double w = 0.0;
  for (const LinkState& l : obs.links) {
    w = std::max(w, static_cast<double>(l.downstream_capacity));
  }
  return w;
}

double link_gain_original(const LinkState& link, const PressureFn& fn) {
  const double diff = pressure(fn, link.upstream_total) - pressure(fn, link.downstream_queue);
  return std::max(0.0, diff * link.service_rate);
}

double link_gain_modified(const LinkState& link, double wstar_value, const PressureFn& fn) {
  const double diff = pressure(fn, link.queue) - pressure(fn, link.downstream_queue);
  return (diff + wstar_value) * link.service_rate;
}

double link_gain_util(const LinkState& link, double wstar_value, const GainParams& params) {
  if (link.downstream_total >= link.downstream_capacity) return params.beta;
  if (link.queue == 0) return params.alpha;
  return link_gain_modified(link, wstar_value, params.pressure);
}

std::vector<double> all_link_gains_util(const IntersectionObservation& obs,
                                        const GainParams& params) {
  const double w = wstar(obs);
  std::vector<double> gains;
  gains.reserve(obs.links.size());
  for (const LinkState& l : obs.links) {
    gains.push_back(link_gain_util(l, w, params));
  }
  return gains;
}

double phase_gain(std::span<const int> phase_links, std::span<const double> link_gains) {
  double total = 0.0;
  for (int idx : phase_links) {
    total += link_gains[static_cast<std::size_t>(idx)];
  }
  return total;
}

double phase_gain_max(std::span<const int> phase_links, std::span<const double> link_gains) {
  double best = -std::numeric_limits<double>::infinity();
  for (int idx : phase_links) {
    best = std::max(best, link_gains[static_cast<std::size_t>(idx)]);
  }
  return best;
}

int phase_argmax_link(std::span<const int> phase_links, std::span<const double> link_gains) {
  int best_index = -1;
  double best = -std::numeric_limits<double>::infinity();
  for (int idx : phase_links) {
    const double g = link_gains[static_cast<std::size_t>(idx)];
    if (g > best) {
      best = g;
      best_index = idx;
    }
  }
  return best_index;
}

}  // namespace abp::core
