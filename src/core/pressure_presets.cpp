#include "src/core/pressure_presets.hpp"

#include <cmath>
#include <stdexcept>

namespace abp::core {

std::string pressure_kind_name(PressureKind kind) {
  switch (kind) {
    case PressureKind::Identity:
      return "identity";
    case PressureKind::Sqrt:
      return "sqrt";
    case PressureKind::Quadratic:
      return "quadratic";
    case PressureKind::Normalized:
      return "normalized";
  }
  return "?";
}

PressureFn make_pressure(PressureKind kind, double capacity) {
  switch (kind) {
    case PressureKind::Identity:
      return {};
    case PressureKind::Sqrt:
      return [](double q) { return std::sqrt(std::max(0.0, q)); };
    case PressureKind::Quadratic:
      return [](double q) { return q * q; };
    case PressureKind::Normalized:
      if (capacity <= 0.0) {
        throw std::invalid_argument("normalized pressure needs a positive capacity");
      }
      return [capacity](double q) { return q / capacity; };
  }
  throw std::invalid_argument("unknown pressure kind");
}

}  // namespace abp::core
