// Controller inputs: the local state Q(k) of one intersection.
//
// Back-pressure control is decentralized (paper Section I): a controller sees
// only its own junction's queue lengths, downstream occupancies and
// capacities. Both simulators produce IntersectionObservation snapshots in the
// intersection's canonical link order, and controllers receive the static
// phase structure once, as an IntersectionPlan, at construction.
#pragma once

#include <vector>

#include "src/net/intersection.hpp"
#include "src/net/network.hpp"
#include "src/net/phase.hpp"

namespace abp::core {

// Per-movement state at time k.
//
// Two distinct sensors feed the controllers, mirroring a real deployment:
// queue-length detectors (vehicles actually queuing, the q of Eqs. 1-8) and
// occupancy counters (every vehicle physically on the road, which is what
// the finite capacity W bounds). Pressures are computed from the former;
// the full-road test q_{i'} = W_{i'} of Eq. (8) uses the latter.
struct LinkState {
  // q_i^{i'}(k): vehicles queuing on the dedicated turning lane feeding this
  // movement.
  int queue = 0;
  // q_i(k): vehicles queuing on the whole incoming road (Eq. 1). The
  // original back-pressure gain (Eq. 5) uses this; UTIL-BP deliberately
  // does not.
  int upstream_total = 0;
  // W_i: capacity of the incoming road.
  int upstream_capacity = 1;
  // q_{i'}(k): vehicles queuing on the outgoing road (its pressure).
  int downstream_queue = 0;
  // Occupancy of the outgoing road: every vehicle on it, queued or driving,
  // plus inbound junction-box reservations.
  int downstream_total = 0;
  // W_{i'}: capacity of the outgoing road.
  int downstream_capacity = 1;
  // mu_i^{i'}: saturation flow of the movement in veh/s.
  double service_rate = 1.0;
};

// Snapshot of one junction at decision time t_k. links are ordered exactly as
// net::Intersection::links / IntersectionPlan.
struct IntersectionObservation {
  double time = 0.0;
  std::vector<LinkState> links;
};

// Static controller-side view of a junction: which local link indices each
// phase activates. phases[0] is the transition phase (empty).
struct IntersectionPlan {
  int num_links = 0;
  std::vector<std::vector<int>> phases;

  [[nodiscard]] int num_control_phases() const noexcept {
    return static_cast<int>(phases.size()) - 1;
  }
};

// Builds the plan from a finalized network intersection, translating global
// LinkIds into local indices into the observation's link array.
[[nodiscard]] IntersectionPlan make_plan(const net::Network& network,
                                         const net::Intersection& node);

}  // namespace abp::core
