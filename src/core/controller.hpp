// The signal-controller interface shared by all policies and both simulators.
//
// A controller instance manages exactly one intersection (decentralized
// control). decide() is invoked once per mini-slot with the current local
// state and returns the phase that must be displayed *now* — including the
// transition phase (index 0), whose timing the policy manages itself.
#pragma once

#include <memory>
#include <string>

#include "src/core/observation.hpp"
#include "src/net/phase.hpp"

namespace abp::core {

class SignalController {
 public:
  virtual ~SignalController() = default;

  // Returns the phase to display at obs.time. Implementations must be
  // monotone in time: calls arrive with non-decreasing obs.time.
  [[nodiscard]] virtual net::PhaseIndex decide(const IntersectionObservation& obs) = 0;

  // Restores the initial state so the controller can be reused for a new run.
  virtual void reset() = 0;

  // Short policy name for reports ("UTIL-BP", "CAP-BP", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

using ControllerPtr = std::unique_ptr<SignalController>;

}  // namespace abp::core
