#include "src/core/sensor.hpp"

#include <algorithm>

namespace abp::core {

int measure_queue_imperfect(int true_count, const SensorModel& model, Rng& rng) {
  int measured = true_count;
  if (model.dropout_probability > 0.0 && rng.bernoulli(model.dropout_probability)) {
    return 0;
  }
  if (model.detection_probability < 1.0) {
    int detected = 0;
    for (int i = 0; i < true_count; ++i) {
      if (rng.bernoulli(model.detection_probability)) ++detected;
    }
    measured = detected;
  }
  if (model.quantization > 1) {
    measured = (measured / model.quantization) * model.quantization;
  }
  return std::max(0, measured);
}

}  // namespace abp::core
