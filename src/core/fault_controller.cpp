#include "src/core/fault_controller.hpp"

#include <algorithm>
#include <utility>

namespace abp::core {

std::string sensor_fault_kind_name(SensorFaultKind kind) {
  switch (kind) {
    case SensorFaultKind::Dropout:
      return "dropout";
    case SensorFaultKind::StuckAt:
      return "stuck";
    case SensorFaultKind::Noise:
      return "noise";
  }
  return "unknown";
}

FaultInjectedController::FaultInjectedController(ControllerPtr primary,
                                                 ControllerPtr fallback,
                                                 std::vector<ControllerFaultWindow> failures,
                                                 std::vector<SensorFaultWindow> sensor_faults,
                                                 std::uint64_t noise_seed,
                                                 std::uint64_t noise_stream)
    : primary_(std::move(primary)),
      fallback_(std::move(fallback)),
      failures_(std::move(failures)),
      sensor_faults_(std::move(sensor_faults)),
      noise_seed_(noise_seed),
      noise_stream_(noise_stream),
      noise_rng_(noise_seed, noise_stream) {
  has_stuck_window_ = std::any_of(
      sensor_faults_.begin(), sensor_faults_.end(),
      [](const SensorFaultWindow& w) { return w.kind == SensorFaultKind::StuckAt; });
}

const SensorFaultWindow* FaultInjectedController::active_sensor_fault(double time) const {
  // First matching window wins; schedule validation rejects overlapping
  // windows at the same junction, so ties cannot occur in validated configs.
  for (const SensorFaultWindow& w : sensor_faults_) {
    if (time >= w.start_s && time < w.end_s) return &w;
  }
  return nullptr;
}

bool FaultInjectedController::failure_active(double time) const {
  for (const ControllerFaultWindow& w : failures_) {
    if (time >= w.fail_s && time < w.recover_s) return true;
  }
  return false;
}

int FaultInjectedController::noisy(int value, const SensorFaultWindow& fault) {
  int offset = fault.bias;
  if (fault.noise_magnitude > 0) {
    // Unbiased draw from {-m, ..., +m}: `next() % span` would over-weight the
    // low offsets whenever span does not divide 2^64.
    const std::uint64_t span = 2ULL * static_cast<std::uint64_t>(fault.noise_magnitude) + 1;
    offset += static_cast<int>(noise_rng_.bounded(span)) - fault.noise_magnitude;
  }
  return std::max(0, value + offset);
}

void FaultInjectedController::perturb(IntersectionObservation& obs,
                                      const SensorFaultWindow& fault) {
  switch (fault.kind) {
    case SensorFaultKind::Dropout:
      for (LinkState& s : obs.links) {
        s.queue = 0;
        s.upstream_total = 0;
        s.downstream_queue = 0;
      }
      break;
    case SensorFaultKind::StuckAt:
      if (last_healthy_.size() == obs.links.size()) {
        for (std::size_t i = 0; i < obs.links.size(); ++i) {
          obs.links[i].queue = last_healthy_[i].queue;
          obs.links[i].upstream_total = last_healthy_[i].upstream_total;
          obs.links[i].downstream_queue = last_healthy_[i].downstream_queue;
        }
      } else {
        // Stuck from the first decision on: nothing healthy to freeze, so the
        // readings stick at zero (indistinguishable from dead detectors).
        for (LinkState& s : obs.links) {
          s.queue = 0;
          s.upstream_total = 0;
          s.downstream_queue = 0;
        }
      }
      break;
    case SensorFaultKind::Noise:
      for (LinkState& s : obs.links) {
        s.queue = noisy(s.queue, fault);
        s.upstream_total = noisy(s.upstream_total, fault);
        s.downstream_queue = noisy(s.downstream_queue, fault);
      }
      break;
  }
}

net::PhaseIndex FaultInjectedController::decide(const IntersectionObservation& obs) {
  const IntersectionObservation* view = &obs;
  if (const SensorFaultWindow* fault = active_sensor_fault(obs.time)) {
    // Perturb a scratch copy: the backend reuses its observation buffer, and
    // the perturbation must not leak into healthy readings elsewhere. Time is
    // kept truthful — controllers require monotone obs.time.
    scratch_ = obs;
    perturb(scratch_, *fault);
    view = &scratch_;
  } else if (has_stuck_window_) {
    last_healthy_ = obs.links;
  }

  if (failure_active(obs.time)) {
    degraded_ = true;
    return fallback_->decide(*view);
  }
  if (degraded_) {
    // Recovery: the primary's internal clocks (cycle origins, slot
    // boundaries) are stale by the outage length; reset before resuming.
    degraded_ = false;
    primary_->reset();
  }
  return primary_->decide(*view);
}

void FaultInjectedController::reset() {
  primary_->reset();
  fallback_->reset();
  degraded_ = false;
  last_healthy_.clear();
  noise_rng_ = StreamRng(noise_seed_, noise_stream_);
}

}  // namespace abp::core
