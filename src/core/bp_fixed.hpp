// Fixed-length-slot back-pressure controllers: CAP-BP and the original policy.
//
// Both policies re-evaluate once per fixed control period T (the paper's
// Fig. 2 sweeps T from 10 s to 80 s) instead of every mini-slot. A slot whose
// selected phase differs from the running one begins with the amber
// transition; the remainder of the slot is green.
//
//   CAP-BP  (Gregoire et al., IEEE TCNS 2015 [4]): capacity-aware weights
//           based on normalized occupancies q/W per movement; movements into
//           a full road get zero weight, so overflow is never commanded. A
//           work-conservation fallback serves *something* whenever any
//           movement has queued vehicles and downstream space, which is
//           exactly the (relaxed) work-conservation notion of [4].
//   ORIG-BP (Varaiya [3]): Eq. (5) weights from total incoming queues,
//           max(0, .); when every phase scores zero no phase is activated.
#pragma once

#include <string>
#include <vector>

#include "src/core/controller.hpp"
#include "src/core/gain.hpp"
#include "src/core/pressure_presets.hpp"

namespace abp::core {

// Which per-link weight the slot decision uses.
enum class FixedSlotRule {
  // Normalized pressure difference, zero into full roads (CAP-BP).
  CapacityAware,
  // Eq. (5) on raw totals (original back-pressure).
  Original,
};

struct FixedSlotBpConfig {
  // Control period T: one phase decision per T seconds.
  double period_s = 16.0;
  // Amber duration inserted at the start of a slot that changes phase.
  double amber_duration_s = 4.0;
  FixedSlotRule rule = FixedSlotRule::CapacityAware;
  // Gregoire-style fallback: when all weights are zero, activate the phase
  // able to serve the most vehicles rather than idling a whole slot.
  bool work_conserving = true;
  // Pressure preset, materialized into `pressure` by the factory; the
  // serializable form of the mapping (see UtilBpConfig::pressure_kind).
  PressureKind pressure_kind = PressureKind::Identity;
  // Optional non-identity pressure mapping; wins over pressure_kind when set
  // (programmatic API only — not serializable).
  PressureFn pressure;
};

class FixedSlotBpController final : public SignalController {
 public:
  FixedSlotBpController(IntersectionPlan plan, FixedSlotBpConfig config);

  [[nodiscard]] net::PhaseIndex decide(const IntersectionObservation& obs) override;
  void reset() override;
  [[nodiscard]] std::string name() const override {
    return config_.rule == FixedSlotRule::CapacityAware ? "CAP-BP" : "ORIG-BP";
  }

  [[nodiscard]] const FixedSlotBpConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::vector<double> link_weights(const IntersectionObservation& obs) const;
  [[nodiscard]] net::PhaseIndex select_phase(const IntersectionObservation& obs) const;
  // Vehicles the phase could serve this slot, for the work-conserving fallback.
  [[nodiscard]] double servable(const IntersectionObservation& obs,
                                net::PhaseIndex phase) const;

  IntersectionPlan plan_;
  FixedSlotBpConfig config_;
  // Time at which the next slot decision is due.
  double next_slot_ = 0.0;
  bool started_ = false;
  // Phase displayed now (0 during amber or an idle slot).
  net::PhaseIndex current_ = net::kTransitionPhase;
  // Phase the running slot will show once amber completes.
  net::PhaseIndex slot_phase_ = net::kTransitionPhase;
  // Green phase of the previous slot (to decide whether amber is needed).
  net::PhaseIndex last_green_ = net::kTransitionPhase;
  double amber_until_ = 0.0;
};

}  // namespace abp::core
