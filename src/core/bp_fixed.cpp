#include "src/core/bp_fixed.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace abp::core {

FixedSlotBpController::FixedSlotBpController(IntersectionPlan plan, FixedSlotBpConfig config)
    : plan_(std::move(plan)), config_(config) {
  if (config_.period_s <= 0.0) {
    throw std::invalid_argument("control period must be positive");
  }
  if (config_.amber_duration_s < 0.0 || config_.amber_duration_s >= config_.period_s) {
    throw std::invalid_argument("amber duration must be in [0, period)");
  }
  if (plan_.num_control_phases() < 1) {
    throw std::invalid_argument("fixed-slot BP needs at least one control phase");
  }
}

void FixedSlotBpController::reset() {
  next_slot_ = 0.0;
  started_ = false;
  current_ = net::kTransitionPhase;
  slot_phase_ = net::kTransitionPhase;
  last_green_ = net::kTransitionPhase;
  amber_until_ = 0.0;
}

std::vector<double> FixedSlotBpController::link_weights(
    const IntersectionObservation& obs) const {
  std::vector<double> weights;
  weights.reserve(obs.links.size());
  for (const LinkState& l : obs.links) {
    if (config_.rule == FixedSlotRule::Original) {
      weights.push_back(link_gain_original(l, config_.pressure));
      continue;
    }
    // CAP-BP: occupancy-normalized pressures; a full downstream road yields
    // zero weight so the policy never commands flow into it.
    if (l.downstream_total >= l.downstream_capacity) {
      weights.push_back(0.0);
      continue;
    }
    const double occupancy_in =
        static_cast<double>(l.queue) / static_cast<double>(std::max(l.upstream_capacity, 1));
    const double occupancy_out = static_cast<double>(l.downstream_queue) /
                                 static_cast<double>(std::max(l.downstream_capacity, 1));
    const double diff =
        pressure(config_.pressure, occupancy_in) - pressure(config_.pressure, occupancy_out);
    weights.push_back(std::max(0.0, diff * l.service_rate));
  }
  return weights;
}

double FixedSlotBpController::servable(const IntersectionObservation& obs,
                                       net::PhaseIndex phase) const {
  const double green = config_.period_s - config_.amber_duration_s;
  double total = 0.0;
  for (int idx : plan_.phases[static_cast<std::size_t>(phase)]) {
    const LinkState& l = obs.links[static_cast<std::size_t>(idx)];
    const double space =
        static_cast<double>(std::max(0, l.downstream_capacity - l.downstream_total));
    total += std::min({static_cast<double>(l.queue), l.service_rate * green, space});
  }
  return total;
}

net::PhaseIndex FixedSlotBpController::select_phase(const IntersectionObservation& obs) const {
  const std::vector<double> weights = link_weights(obs);
  net::PhaseIndex best = net::kTransitionPhase;
  double best_score = 0.0;
  for (int j = 1; j <= plan_.num_control_phases(); ++j) {
    const double score = phase_gain(plan_.phases[static_cast<std::size_t>(j)], weights);
    // Strictly-positive score required; the incumbent green wins ties to
    // avoid spending amber on an equivalent alternative.
    if (score > best_score || (score == best_score && score > 0.0 && j == last_green_)) {
      best_score = score;
      best = j;
    }
  }
  if (best != net::kTransitionPhase) return best;

  if (config_.work_conserving) {
    // All pressure weights are zero. Serve whatever can physically move, the
    // (relaxed) work conservation of [4].
    double best_served = 0.0;
    for (int j = 1; j <= plan_.num_control_phases(); ++j) {
      const double served = servable(obs, j);
      if (served > best_served || (served == best_served && served > 0.0 && j == last_green_)) {
        best_served = served;
        best = j;
      }
    }
  }
  return best;  // kTransitionPhase = no phase activated this slot
}

net::PhaseIndex FixedSlotBpController::decide(const IntersectionObservation& obs) {
  if (static_cast<int>(obs.links.size()) != plan_.num_links) {
    throw std::invalid_argument("observation size does not match plan");
  }
  if (!started_ || obs.time >= next_slot_) {
    if (!started_) {
      next_slot_ = obs.time;
      started_ = true;
    }
    // Catch up in case decide() is called less often than the period.
    while (obs.time >= next_slot_) next_slot_ += config_.period_s;

    const net::PhaseIndex chosen = select_phase(obs);
    slot_phase_ = chosen;
    if (chosen == net::kTransitionPhase) {
      // Idle slot: nothing worth serving. Display red; no amber bookkeeping.
      current_ = net::kTransitionPhase;
      last_green_ = net::kTransitionPhase;
    } else if (chosen == last_green_) {
      current_ = chosen;  // same green continues, no transition needed
    } else {
      current_ = net::kTransitionPhase;
      amber_until_ = obs.time + config_.amber_duration_s;
      last_green_ = chosen;
    }
    return current_;
  }

  if (current_ == net::kTransitionPhase && slot_phase_ != net::kTransitionPhase &&
      obs.time >= amber_until_) {
    current_ = slot_phase_;
  }
  return current_;
}

}  // namespace abp::core
