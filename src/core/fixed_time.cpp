#include "src/core/fixed_time.hpp"

#include <cmath>
#include <stdexcept>

namespace abp::core {

FixedTimeController::FixedTimeController(IntersectionPlan plan, FixedTimeConfig config)
    : plan_(std::move(plan)), config_(config) {
  if (config_.green_duration_s <= 0.0) {
    throw std::invalid_argument("green duration must be positive");
  }
  if (config_.amber_duration_s < 0.0) {
    throw std::invalid_argument("amber duration must be non-negative");
  }
  if (!(config_.offset_s >= 0.0) || !std::isfinite(config_.offset_s)) {
    throw std::invalid_argument("offset must be finite and non-negative");
  }
  if (plan_.num_control_phases() < 1) {
    throw std::invalid_argument("fixed-time control needs at least one control phase");
  }
}

void FixedTimeController::reset() {
  started_ = false;
  cycle_origin_ = 0.0;
}

net::PhaseIndex FixedTimeController::decide(const IntersectionObservation& obs) {
  if (!started_) {
    started_ = true;
    cycle_origin_ = obs.time;
  }
  const int phases = plan_.num_control_phases();
  const double slot = config_.green_duration_s + config_.amber_duration_s;
  const double cycle = slot * phases;
  // The configured offset shifts where in the common cycle this junction
  // starts: a junction with offset o displays at time t what an offset-0
  // junction displays at t + o, i.e. it reaches each phase boundary o seconds
  // *earlier*. A green wave for travel time tau per block therefore uses
  // offsets decreasing by tau along the travel direction (modularly:
  // offset_k = (cycle - k * tau) mod cycle).
  double offset = std::fmod(obs.time - cycle_origin_ + config_.offset_s, cycle);
  if (offset < 0.0) offset += cycle;
  const int slot_index = static_cast<int>(offset / slot);
  const double within = offset - slot_index * slot;
  // Amber leads each slot so the first green also starts after a transition,
  // matching how the adaptive policies account transitions.
  if (within < config_.amber_duration_s) return net::kTransitionPhase;
  return slot_index + 1;
}

}  // namespace abp::core
