#include "src/core/observation.hpp"

#include <stdexcept>
#include <unordered_map>

namespace abp::core {

IntersectionPlan make_plan(const net::Network& network, const net::Intersection& node) {
  (void)network;
  IntersectionPlan plan;
  plan.num_links = static_cast<int>(node.links.size());

  std::unordered_map<LinkId, int> local_index;
  local_index.reserve(node.links.size());
  for (int i = 0; i < plan.num_links; ++i) {
    local_index.emplace(node.links[static_cast<std::size_t>(i)], i);
  }

  plan.phases.reserve(node.phases.size());
  for (const net::Phase& phase : node.phases) {
    std::vector<int> indices;
    indices.reserve(phase.links.size());
    for (LinkId lid : phase.links) {
      const auto it = local_index.find(lid);
      if (it == local_index.end()) {
        throw std::logic_error("phase activates a link not owned by the intersection");
      }
      indices.push_back(it->second);
    }
    plan.phases.push_back(std::move(indices));
  }
  if (plan.phases.empty() || !plan.phases.front().empty()) {
    throw std::logic_error("plan requires phases[0] to be the empty transition phase");
  }
  return plan;
}

}  // namespace abp::core
