// Tests for CSV emission and ASCII chart rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

namespace abp {
namespace {

TEST(Csv, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("123.45"), "123.45");
}

TEST(Csv, SeparatorTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("a;b", ';'), "\"a;b\"");
  EXPECT_EQ(CsvWriter::escape("a;b", ','), "a;b");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesAreQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
}

TEST(Csv, RowJoinsWithSeparator) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, TypedRowFormatsNumbers) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.typed_row("period", 16, 90.55);
  EXPECT_EQ(out.str(), "period,16,90.55\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({});
  EXPECT_EQ(out.str(), "\n");
}

TEST(AsciiChart, ContainsMarkersAndLegend) {
  ChartSeries s;
  s.name = "queue";
  s.marker = 'o';
  s.x = {0.0, 1.0, 2.0, 3.0};
  s.y = {0.0, 2.0, 1.0, 4.0};
  ChartOptions opt;
  opt.title = "Queue over time";
  const std::string chart = render_chart({s}, opt);
  EXPECT_NE(chart.find("Queue over time"), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("o = queue"), std::string::npos);
}

TEST(AsciiChart, AxisLabelsShowBounds) {
  ChartSeries s;
  s.name = "v";
  s.x = {10.0, 80.0};
  s.y = {100.0, 600.0};
  const std::string chart = render_chart({s}, ChartOptions{});
  EXPECT_NE(chart.find("600"), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);
  EXPECT_NE(chart.find("10"), std::string::npos);
  EXPECT_NE(chart.find("80"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesDoesNotCrash) {
  ChartSeries s;
  s.name = "empty";
  const std::string chart = render_chart({s}, ChartOptions{});
  EXPECT_FALSE(chart.empty());
}

TEST(AsciiChart, MultipleSeriesOverlay) {
  ChartSeries a{.name = "a", .x = {0, 1}, .y = {0, 1}, .marker = '*'};
  ChartSeries b{.name = "b", .x = {0, 1}, .y = {1, 0}, .marker = '+'};
  const std::string chart = render_chart({a, b}, ChartOptions{});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(AsciiChart, StepChartShowsBands) {
  ChartSeries s;
  s.name = "phase";
  s.x = {0.0, 10.0, 20.0, 30.0};
  s.y = {1.0, 0.0, 3.0, 2.0};
  ChartOptions opt;
  opt.title = "Phases";
  const std::string chart = render_step_chart(s, opt, 0, 4);
  EXPECT_NE(chart.find("Phases"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // One labelled row per band 0..4.
  for (int band = 0; band <= 4; ++band) {
    EXPECT_NE(chart.find(std::to_string(band) + " |"), std::string::npos);
  }
}

}  // namespace
}  // namespace abp
