// Tests for metrics, phase traces, time series and report tables.
#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/metrics.hpp"
#include "src/stats/phase_trace.hpp"
#include "src/stats/report.hpp"
#include "src/stats/timeseries.hpp"

namespace abp::stats {
namespace {

TEST(PhaseTrace, CompressesRepeats) {
  PhaseTrace trace;
  trace.record(0.0, 1);
  trace.record(1.0, 1);
  trace.record(2.0, 1);
  trace.record(3.0, 0);
  trace.record(4.0, 2);
  trace.finish(10.0);
  ASSERT_EQ(trace.samples().size(), 3u);
  EXPECT_EQ(trace.samples()[0].phase, 1);
  EXPECT_EQ(trace.samples()[1].phase, 0);
  EXPECT_EQ(trace.samples()[2].phase, 2);
}

TEST(PhaseTrace, RejectsTimeTravel) {
  PhaseTrace trace;
  trace.record(5.0, 1);
  EXPECT_THROW(trace.record(4.0, 2), std::invalid_argument);
}

TEST(PhaseTrace, RejectsRecordAfterFinish) {
  PhaseTrace trace;
  trace.record(0.0, 1);
  trace.finish(1.0);
  EXPECT_THROW(trace.record(2.0, 2), std::logic_error);
}

TEST(PhaseTrace, TransitionCountIgnoresInitialAmber) {
  PhaseTrace trace;
  trace.record(0.0, 0);  // start-up amber: not a change
  trace.record(4.0, 1);
  trace.record(10.0, 0);
  trace.record(14.0, 2);
  trace.record(20.0, 0);
  trace.finish(24.0);
  EXPECT_EQ(trace.transition_count(), 2);
}

TEST(PhaseTrace, TimeInPhaseAndAmberFraction) {
  PhaseTrace trace;
  trace.record(0.0, 1);
  trace.record(6.0, 0);
  trace.record(10.0, 2);
  trace.finish(20.0);
  EXPECT_DOUBLE_EQ(trace.time_in_phase(1), 6.0);
  EXPECT_DOUBLE_EQ(trace.time_in_phase(0), 4.0);
  EXPECT_DOUBLE_EQ(trace.time_in_phase(2), 10.0);
  EXPECT_DOUBLE_EQ(trace.amber_fraction(), 4.0 / 20.0);
}

TEST(PhaseTrace, ControlPhaseDurations) {
  PhaseTrace trace;
  trace.record(0.0, 1);
  trace.record(30.0, 0);
  trace.record(34.0, 2);
  trace.record(54.0, 1);
  trace.finish(60.0);
  const auto durations = trace.control_phase_durations();
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_DOUBLE_EQ(durations[0], 30.0);
  EXPECT_DOUBLE_EQ(durations[1], 20.0);
  EXPECT_DOUBLE_EQ(durations[2], 6.0);
}

TEST(PhaseTrace, EmptyTraceIsSafe) {
  PhaseTrace trace;
  trace.finish(10.0);
  EXPECT_EQ(trace.transition_count(), 0);
  EXPECT_DOUBLE_EQ(trace.amber_fraction(), 0.0);
  EXPECT_TRUE(trace.control_phase_durations().empty());
}

TEST(TimeSeries, BasicAccessors) {
  TimeSeries ts("queue");
  EXPECT_TRUE(ts.empty());
  ts.push(0.0, 2.0);
  ts.push(10.0, 4.0);
  ts.push(20.0, 6.0);
  EXPECT_EQ(ts.name(), "queue");
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean(), 4.0);
  EXPECT_DOUBLE_EQ(ts.max(), 6.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  // Value 0 for 10 s, then 10 for 90 s: weighted mean = 9 over [0,100].
  ts.push(0.0, 0.0);
  ts.push(10.0, 10.0);
  ts.push(100.0, 10.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 9.0);
}

TEST(TimeSeries, TimeWeightedMeanFallsBackForShortSeries) {
  TimeSeries ts;
  ts.push(0.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 5.0);
}

TEST(NetworkMetrics, RatiosAndAverages) {
  NetworkMetrics m;
  m.generated = 10;
  m.entered = 8;
  m.completed = 6;
  m.queuing_time_s.add(10.0);
  m.queuing_time_s.add(20.0);
  m.travel_time_s.add(100.0);
  EXPECT_DOUBLE_EQ(m.average_queuing_time_s(), 15.0);
  EXPECT_DOUBLE_EQ(m.average_travel_time_s(), 100.0);
  EXPECT_DOUBLE_EQ(m.completion_ratio(), 0.75);
}

TEST(NetworkMetrics, EmptyIsZero) {
  NetworkMetrics m;
  EXPECT_DOUBLE_EQ(m.average_queuing_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.completion_ratio(), 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"Pattern", "Value"});
  t.add_row({"I", "102.87"});
  t.add_row({"Mixed", "95.56"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| Pattern | Value  |"), std::string::npos);
  EXPECT_NE(s.find("| I       | 102.87 |"), std::string::npos);
  EXPECT_NE(s.find("| Mixed   | 95.56  |"), std::string::npos);
}

TEST(TextTable, ShortRowsRenderEmptyCells) {
  TextTable t({"A", "B"});
  t.add_row({"x"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("| x |   |"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::num(100.0), "100.00");
}

}  // namespace
}  // namespace abp::stats
