// Student-t quantile pins: the CI machinery of run_replications must produce
// the textbook two-sided 95% critical values, not the normal 1.96.
#include "src/stats/student_t.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace abp::stats {
namespace {

TEST(StudentT, PinsKnownTwoSided95CriticalValues) {
  // t_{0.975, df} from standard tables (Abramowitz & Stegun Table 26.10).
  const struct {
    int df;
    double t;
  } pins[] = {
      {1, 12.7062}, {2, 4.3027},  {3, 3.1824},  {4, 2.7764},  {5, 2.5706},
      {10, 2.2281}, {20, 2.0860}, {30, 2.0423}, {120, 1.9799},
  };
  for (const auto& pin : pins) {
    EXPECT_NEAR(student_t_quantile(0.975, pin.df), pin.t, 1e-3) << "df=" << pin.df;
  }
  // Heavy tails at small df: the normal approximation is badly anti-
  // conservative exactly where replication counts live.
  EXPECT_GT(student_t_quantile(0.975, 4), 1.96);
  // Convergence to the normal quantile for large df.
  EXPECT_NEAR(student_t_quantile(0.975, 100000), 1.959964, 1e-3);
}

TEST(StudentT, QuantileIsSymmetricAndCentered) {
  for (int df : {1, 3, 7, 25}) {
    EXPECT_DOUBLE_EQ(student_t_quantile(0.5, df), 0.0) << df;
    EXPECT_NEAR(student_t_quantile(0.025, df), -student_t_quantile(0.975, df), 1e-9)
        << df;
  }
}

TEST(StudentT, CdfQuantileRoundTrip) {
  for (int df : {1, 2, 5, 17, 60}) {
    for (double p : {0.01, 0.2, 0.5, 0.9, 0.975, 0.999}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, df), df), p, 1e-9)
          << "df=" << df << " p=" << p;
    }
  }
  EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 9), 0.5);
  EXPECT_NEAR(student_t_cdf(-2.0, 9), 1.0 - student_t_cdf(2.0, 9), 1e-12);
}

TEST(StudentT, IncompleteBetaBasics) {
  // I_x(1, 1) is the identity on [0, 1].
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3.0, 2.0, 1.0), 1.0);
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_incomplete_beta(2.5, 4.0, 0.3),
              1.0 - regularized_incomplete_beta(4.0, 2.5, 0.7), 1e-12);
}

TEST(StudentT, RejectsInvalidArguments) {
  EXPECT_THROW((void)student_t_quantile(0.975, 0), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(0.0, 5), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)student_t_cdf(1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)regularized_incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace abp::stats
