// Tests for junction geometry: sides, turns, handedness, conflicts.
#include "src/net/geometry.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace abp::net {
namespace {

TEST(Geometry, OppositeIsInvolution) {
  for (Side s : kAllSides) {
    EXPECT_NE(opposite(s), s);
    EXPECT_EQ(opposite(opposite(s)), s);
  }
}

TEST(Geometry, ExitSideKnownCases) {
  // A vehicle from the North heads South: left exits East, right exits West.
  EXPECT_EQ(exit_side(Side::North, Turn::Straight), Side::South);
  EXPECT_EQ(exit_side(Side::North, Turn::Left), Side::East);
  EXPECT_EQ(exit_side(Side::North, Turn::Right), Side::West);
  // A vehicle from the East heads West: left exits South, right exits North.
  EXPECT_EQ(exit_side(Side::East, Turn::Straight), Side::West);
  EXPECT_EQ(exit_side(Side::East, Turn::Left), Side::South);
  EXPECT_EQ(exit_side(Side::East, Turn::Right), Side::North);
}

TEST(Geometry, ExitSideNeverReturnsEntrySide) {
  for (Side s : kAllSides) {
    for (Turn t : kAllTurns) {
      EXPECT_NE(exit_side(s, t), s);
    }
  }
}

class GeometryRoundTrip : public ::testing::TestWithParam<std::tuple<Side, Turn>> {};

TEST_P(GeometryRoundTrip, TurnBetweenInvertsExitSide) {
  const auto [from, turn] = GetParam();
  const Side to = exit_side(from, turn);
  EXPECT_EQ(turn_between(from, to), turn);
}

INSTANTIATE_TEST_SUITE_P(
    AllSideTurnPairs, GeometryRoundTrip,
    ::testing::Combine(::testing::ValuesIn(kAllSides), ::testing::ValuesIn(kAllTurns)));

TEST(Geometry, HandednessTurns) {
  EXPECT_EQ(easy_turn(Handedness::LeftHand), Turn::Left);
  EXPECT_EQ(crossing_turn(Handedness::LeftHand), Turn::Right);
  EXPECT_EQ(easy_turn(Handedness::RightHand), Turn::Right);
  EXPECT_EQ(crossing_turn(Handedness::RightHand), Turn::Left);
}

TEST(Geometry, Names) {
  EXPECT_EQ(side_name(Side::North), "N");
  EXPECT_EQ(side_name(Side::West), "W");
  EXPECT_EQ(turn_name(Turn::Straight), "straight");
}

TEST(Compatibility, SameApproachAlwaysCompatible) {
  for (Side s : kAllSides) {
    for (Turn a : kAllTurns) {
      for (Turn b : kAllTurns) {
        EXPECT_TRUE(movements_compatible(s, a, s, b, Handedness::LeftHand));
        EXPECT_TRUE(movements_compatible(s, a, s, b, Handedness::RightHand));
      }
    }
  }
}

TEST(Compatibility, PerpendicularAlwaysConflicts) {
  for (Turn a : kAllTurns) {
    for (Turn b : kAllTurns) {
      EXPECT_FALSE(movements_compatible(Side::North, a, Side::East, b, Handedness::LeftHand));
      EXPECT_FALSE(movements_compatible(Side::South, a, Side::West, b, Handedness::LeftHand));
    }
  }
}

TEST(Compatibility, OpposingStraightsCompatible) {
  EXPECT_TRUE(movements_compatible(Side::North, Turn::Straight, Side::South, Turn::Straight,
                                   Handedness::LeftHand));
  EXPECT_TRUE(movements_compatible(Side::East, Turn::Straight, Side::West, Turn::Straight,
                                   Handedness::RightHand));
}

TEST(Compatibility, OpposingEasyTurnsCompatible) {
  // Left-hand traffic: left is the kerb-hugging turn.
  EXPECT_TRUE(movements_compatible(Side::North, Turn::Left, Side::South, Turn::Left,
                                   Handedness::LeftHand));
  EXPECT_TRUE(movements_compatible(Side::North, Turn::Left, Side::South, Turn::Straight,
                                   Handedness::LeftHand));
}

TEST(Compatibility, CrossingTurnAgainstOpposingThroughConflicts) {
  // Left-hand traffic: the right turn crosses opposing straights.
  EXPECT_FALSE(movements_compatible(Side::North, Turn::Right, Side::South, Turn::Straight,
                                    Handedness::LeftHand));
  EXPECT_FALSE(movements_compatible(Side::South, Turn::Straight, Side::North, Turn::Right,
                                    Handedness::LeftHand));
  EXPECT_FALSE(movements_compatible(Side::North, Turn::Right, Side::South, Turn::Left,
                                    Handedness::LeftHand));
  // Right-hand traffic mirrors this with the left turn.
  EXPECT_FALSE(movements_compatible(Side::North, Turn::Left, Side::South, Turn::Straight,
                                    Handedness::RightHand));
}

TEST(Compatibility, DualProtectedArrowsCompatible) {
  EXPECT_TRUE(movements_compatible(Side::North, Turn::Right, Side::South, Turn::Right,
                                   Handedness::LeftHand));
  EXPECT_TRUE(movements_compatible(Side::East, Turn::Left, Side::West, Turn::Left,
                                   Handedness::RightHand));
}

TEST(Compatibility, IsSymmetric) {
  for (Side sa : kAllSides) {
    for (Side sb : kAllSides) {
      for (Turn ta : kAllTurns) {
        for (Turn tb : kAllTurns) {
          for (Handedness h : {Handedness::LeftHand, Handedness::RightHand}) {
            EXPECT_EQ(movements_compatible(sa, ta, sb, tb, h),
                      movements_compatible(sb, tb, sa, ta, h))
                << side_name(sa) << turn_name(ta) << " vs " << side_name(sb) << turn_name(tb);
          }
        }
      }
    }
  }
}

TEST(Compatibility, PaperPhaseTableIsConflictFree) {
  // Fig. 1: c1 = {N-left, N-straight, S-straight, S-left},
  //         c2 = {N-right, S-right} in left-hand traffic.
  const Handedness h = Handedness::LeftHand;
  const std::pair<Side, Turn> c1[] = {{Side::North, Turn::Left},
                                      {Side::North, Turn::Straight},
                                      {Side::South, Turn::Straight},
                                      {Side::South, Turn::Left}};
  for (const auto& a : c1) {
    for (const auto& b : c1) {
      EXPECT_TRUE(movements_compatible(a.first, a.second, b.first, b.second, h));
    }
  }
  EXPECT_TRUE(
      movements_compatible(Side::North, Turn::Right, Side::South, Turn::Right, h));
}

}  // namespace
}  // namespace abp::net
