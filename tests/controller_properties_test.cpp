// Property tests: controller invariants under randomized observation
// sequences. These are the contracts the simulators rely on, checked over
// many seeds and thousands of mini-slots per policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/factory.hpp"
#include "src/net/grid.hpp"
#include "src/util/rng.hpp"

namespace abp::core {
namespace {

IntersectionPlan fig1_plan() {
  const net::Network net = net::build_grid({.rows = 1, .cols = 1});
  return make_plan(net, net.intersections().front());
}

// Random but *coherent* observation: queues within capacity, occupancy at
// least the queued count.
IntersectionObservation random_obs(Rng& rng, double time, int capacity = 120) {
  IntersectionObservation obs;
  obs.time = time;
  for (int i = 0; i < 12; ++i) {
    LinkState l;
    l.queue = static_cast<int>(rng.uniform_int(0, capacity));
    l.upstream_total = l.queue;
    l.upstream_capacity = capacity;
    l.downstream_queue = static_cast<int>(rng.uniform_int(0, capacity));
    l.downstream_total =
        std::min<int>(capacity, l.downstream_queue + static_cast<int>(rng.uniform_int(0, 20)));
    l.downstream_capacity = capacity;
    l.service_rate = 1.0;
    obs.links.push_back(l);
  }
  return obs;
}

struct PolicyCase {
  ControllerType type;
  double amber;
};

class ControllerFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ControllerFuzz, PhasesInRangeAndAmberSeparatesChanges) {
  const auto [type_index, seed] = GetParam();
  const PolicyCase cases[] = {
      {ControllerType::UtilBp, 4.0},
      {ControllerType::CapBp, 4.0},
      {ControllerType::OriginalBp, 4.0},
      {ControllerType::FixedTime, 4.0},
  };
  const PolicyCase& pc = cases[type_index];

  ControllerSpec spec;
  spec.type = pc.type;
  spec.util.amber_duration_s = pc.amber;
  spec.fixed_slot.amber_duration_s = pc.amber;
  spec.fixed_time.amber_duration_s = pc.amber;
  ControllerPtr controller = make_controller(spec, fig1_plan());

  Rng rng(seed);
  net::PhaseIndex prev = net::kTransitionPhase;
  double amber_started = -1.0;
  for (int k = 0; k < 5000; ++k) {
    const double time = static_cast<double>(k);
    const net::PhaseIndex phase = controller->decide(random_obs(rng, time));

    // Invariant 1: phase index always within [0, 4].
    ASSERT_GE(phase, 0);
    ASSERT_LE(phase, 4);

    // Invariant 2: a change between two *control* phases passes through the
    // transition phase (every policy here inserts amber between different
    // greens).
    if (prev != net::kTransitionPhase && phase != net::kTransitionPhase) {
      ASSERT_EQ(prev, phase) << "direct green-to-green change at t=" << time;
    }

    // Invariant 3: an amber, once started, lasts at least the configured
    // duration before a control phase reappears.
    if (phase == net::kTransitionPhase && prev != net::kTransitionPhase) {
      amber_started = time;
    }
    if (phase != net::kTransitionPhase && prev == net::kTransitionPhase &&
        amber_started >= 0.0) {
      ASSERT_GE(time - amber_started, pc.amber - 1e-9)
          << controller->name() << " cut amber short at t=" << time;
    }
    prev = phase;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBySeeds, ControllerFuzz,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Values(11u, 22u, 33u)));

TEST(ControllerProperties, UtilBpDecisionIsStateFreeGivenSameHistory) {
  // Replaying the identical observation sequence yields identical decisions
  // (controllers are deterministic state machines).
  ControllerSpec spec;
  spec.type = ControllerType::UtilBp;
  ControllerPtr a = make_controller(spec, fig1_plan());
  ControllerPtr b = make_controller(spec, fig1_plan());
  Rng rng_a(5);
  Rng rng_b(5);
  for (int k = 0; k < 2000; ++k) {
    const auto pa = a->decide(random_obs(rng_a, k));
    const auto pb = b->decide(random_obs(rng_b, k));
    ASSERT_EQ(pa, pb) << k;
  }
}

TEST(ControllerProperties, ResetEquivalentToFreshInstance) {
  ControllerSpec spec;
  spec.type = ControllerType::UtilBp;
  ControllerPtr used = make_controller(spec, fig1_plan());
  Rng warmup(9);
  for (int k = 0; k < 500; ++k) (void)used->decide(random_obs(warmup, k));
  used->reset();

  ControllerPtr fresh = make_controller(spec, fig1_plan());
  Rng rng_a(10);
  Rng rng_b(10);
  for (int k = 0; k < 500; ++k) {
    ASSERT_EQ(used->decide(random_obs(rng_a, 1000.0 + k)),
              fresh->decide(random_obs(rng_b, 1000.0 + k)))
        << k;
  }
}

TEST(ControllerProperties, UtilBpNeverPicksAllBetaPhaseOverAlternatives) {
  // If one phase discharges only into full roads (all beta) and another has
  // queued vehicles with space, the latter must be displayed (after amber).
  ControllerSpec spec;
  spec.type = ControllerType::UtilBp;
  const IntersectionPlan plan = fig1_plan();
  ControllerPtr controller = make_controller(spec, plan);

  // Every link of phase 1 blocked (full downstream); every link of phase 3
  // loaded with space; the rest empty.
  auto membership = [&](int link, int phase) {
    const auto& links = plan.phases[static_cast<std::size_t>(phase)];
    return std::find(links.begin(), links.end(), link) != links.end();
  };
  auto blocked_obs = [&](double time) {
    IntersectionObservation obs;
    obs.time = time;
    for (int i = 0; i < plan.num_links; ++i) {
      LinkState l;
      l.upstream_capacity = 120;
      l.downstream_capacity = 120;
      l.service_rate = 1.0;
      if (membership(i, 1)) {
        l.queue = 50;
        l.downstream_queue = 110;
        l.downstream_total = 120;  // full
      } else if (membership(i, 3)) {
        l.queue = 10;
        l.downstream_queue = 0;
        l.downstream_total = 5;
      } else {
        l.queue = 0;
        l.downstream_queue = 0;
        l.downstream_total = 0;
      }
      l.upstream_total = l.queue;
      obs.links.push_back(l);
    }
    return obs;
  };
  net::PhaseIndex last = net::kTransitionPhase;
  for (int k = 0; k < 20; ++k) {
    last = controller->decide(blocked_obs(k));
    if (last != net::kTransitionPhase) break;
  }
  EXPECT_EQ(last, 3);
}

TEST(ControllerProperties, FixedSlotHonoursPeriodUnderIrregularSampling) {
  // decide() may be called at irregular times; slot boundaries must still be
  // spaced by the period.
  ControllerSpec spec;
  spec.type = ControllerType::CapBp;
  spec.fixed_slot.period_s = 20.0;
  ControllerPtr controller = make_controller(spec, fig1_plan());
  Rng rng(17);
  double time = 0.0;
  std::vector<double> change_times;
  net::PhaseIndex prev = net::kTransitionPhase;
  for (int k = 0; k < 3000; ++k) {
    time += rng.uniform(0.2, 1.8);
    const auto phase = controller->decide(random_obs(rng, time));
    if (phase == net::kTransitionPhase && prev != net::kTransitionPhase) {
      change_times.push_back(time);
    }
    prev = phase;
  }
  ASSERT_GT(change_times.size(), 10u);
  for (std::size_t i = 1; i < change_times.size(); ++i) {
    // Ambers start at slot boundaries; with irregular sampling the observed
    // start may lag a boundary by one sample gap (< 2 s).
    EXPECT_GE(change_times[i] - change_times[i - 1], 20.0 - 2.0) << i;
  }
}

}  // namespace
}  // namespace abp::core
