// Memo-table rebuild elision pin (ROADMAP single-core frontier).
//
// The control-step memo tables (queued counts per road and per link) used to
// be rebuilt from a global zero of every row before each control boundary.
// The elided path instead zeroes rows per road, lazily: a road's rows are
// cleared only when the road is occupied this tick (about to be
// re-accumulated) or still dirty from an earlier rebuild; empty-and-clean
// roads — the common case on large grids — are skipped entirely. These tests
// pin the elided path bit-identical to the retained always-rebuild reference
// (MicroSimConfig::memo_always_rebuild) over full runs whose roads repeatedly
// drain and refill, so stale-row bugs cannot hide: a row left dirty after a
// road empties would feed a wrong queue reading to the next controller
// decision and shift every downstream phase choice.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/scenario/scenario.hpp"
#include "tests/result_compare.hpp"

namespace abp {
namespace {

scenario::ScenarioConfig elision_config(traffic::PatternKind pattern, std::uint64_t seed) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(pattern, core::ControllerType::UtilBp);
  cfg.grid.rows = 3;
  cfg.grid.cols = 3;
  cfg.seed = seed;
  cfg.simulator = scenario::SimulatorKind::Micro;
  // Long enough that light-demand roads drain to empty and refill many times
  // — each transition exercises the dirty-bit clear and re-set.
  cfg.duration_s = 900.0;
  return cfg;
}

void expect_paths_identical(scenario::ScenarioConfig cfg) {
  cfg.micro.memo_always_rebuild = false;
  const stats::RunResult elided = scenario::run_scenario(cfg);
  cfg.micro.memo_always_rebuild = true;
  const stats::RunResult rebuilt = scenario::run_scenario(cfg);
  testing::expect_results_identical(elided, rebuilt);
}

TEST(MemoElision, BitIdenticalToAlwaysRebuildLightDemand) {
  // Pattern I is light: most roads are empty at most control boundaries, so
  // nearly every rebuild takes the elision path.
  expect_paths_identical(elision_config(traffic::PatternKind::I, 11));
}

TEST(MemoElision, BitIdenticalToAlwaysRebuildHeavyDemand) {
  // Pattern III saturates the grid: rows churn between dirty and clean under
  // spillback, the adversarial case for stale rows.
  expect_paths_identical(elision_config(traffic::PatternKind::III, 12));
}

TEST(MemoElision, BitIdenticalWithImperfectSensorAndThreads) {
  // Imperfect detectors tie the sequential RNG stream to every queue reading:
  // any memo drift desynchronizes the sensor stream and cascades through the
  // rest of the run. Two sweep threads additionally pin that the per-road
  // dirty bits stay race-free under the partitioned sweep.
  scenario::ScenarioConfig cfg = elision_config(traffic::PatternKind::II, 13);
  cfg.micro.sensor.detection_probability = 0.95;
  cfg.micro.sensor.dropout_probability = 0.01;
  cfg.micro.threads = 2;
  expect_paths_identical(cfg);
}

}  // namespace
}  // namespace abp
