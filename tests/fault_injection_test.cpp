// Fault-injection determinism suite: incident scenarios must keep every
// determinism guarantee the fault-free runs have.
//
// The fault subsystem executes entirely in the sequential phase of the tick —
// capacity events applied between ticks by the simulator adapter, sensor and
// controller faults inside the control step via core::FaultInjectedController
// — so a fixed-seed run with a nonempty FaultSchedule must be bit-identical
// at every thread count and across serial-vs-batch execution, exactly like a
// fault-free run. This suite pins that, plus golden metric values for one
// incident scenario per backend (the fault analog of golden_determinism_test:
// any refactor that perturbs when or how faults apply shifts these numbers),
// plus the invariant story: conservation and capacity bounds hold *through*
// incidents, checked by the runtime guard in Record mode.
//
// To re-capture the golden pins after a deliberate behavior change, run with
// ABP_DUMP_GOLDEN=1 and copy the printed hex-float actuals.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/fault_controller.hpp"
#include "src/exp/experiment_runner.hpp"
#include "src/microsim/micro_sim.hpp"
#include "src/net/grid.hpp"
#include "src/queuesim/queue_sim.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"
#include "src/traffic/demand.hpp"

namespace abp {
namespace {

constexpr std::uint64_t kSeed = 7;

void expect_identical(const stats::NetworkMetrics& a, const stats::NetworkMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.entered, b.entered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.in_network_at_end, b.in_network_at_end);
  EXPECT_EQ(a.queuing_time_s.count(), b.queuing_time_s.count());
  EXPECT_EQ(a.travel_time_s.count(), b.travel_time_s.count());
  // Exact double equality on purpose: fault execution must be scheduling
  // independent bit for bit, not approximately.
  EXPECT_EQ(a.queuing_time_s.mean(), b.queuing_time_s.mean());
  EXPECT_EQ(a.travel_time_s.mean(), b.travel_time_s.mean());
  EXPECT_EQ(a.entry_blocked_time_s, b.entry_blocked_time_s);
}

// One incident of every fault class on a 2x2 grid: a lane closure with
// restoration, dead detectors, a noise burst, stuck detectors, and a
// controller outage with recovery. Micro runs use imperfect sensors so RNG
// stream consumption stays load-bearing, as in golden_determinism_test.
scenario::ScenarioConfig incident_config(scenario::SimulatorKind sim) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = 2;
  cfg.grid.cols = 2;
  cfg.seed = kSeed;
  cfg.simulator = sim;
  cfg.duration_s = 600.0;
  if (sim == scenario::SimulatorKind::Micro) {
    cfg.micro.sensor.detection_probability = 0.95;
    cfg.micro.sensor.dropout_probability = 0.01;
  }
  cfg.faults.capacity.push_back({{0, 0, net::Side::North}, 120.0, 300.0, 0.3});
  cfg.faults.sensors.push_back(
      {{0, 1}, 100.0, 200.0, core::SensorFaultKind::Dropout, 0, 0});
  cfg.faults.sensors.push_back(
      {{0, 1}, 300.0, 400.0, core::SensorFaultKind::Noise, 2, 3});
  cfg.faults.sensors.push_back(
      {{1, 0}, 150.0, 450.0, core::SensorFaultKind::StuckAt, 0, 0});
  cfg.faults.controllers.push_back({{1, 1}, 150.0, 350.0});
  return cfg;
}

void maybe_dump(const char* label, const stats::NetworkMetrics& m) {
  if (std::getenv("ABP_DUMP_GOLDEN") == nullptr) return;
  std::printf("%s: generated=%zu entered=%zu completed=%zu in_network_at_end=%zu\n",
              label, m.generated, m.entered, m.completed, m.in_network_at_end);
  std::printf("%s: queuing_mean=%a travel_mean=%a entry_blocked=%a\n", label,
              m.queuing_time_s.mean(), m.travel_time_s.mean(), m.entry_blocked_time_s);
}

TEST(FaultInjection, ScheduleValidationRejectsBadValues) {
  scenario::FaultSchedule s;
  s.capacity.push_back({{0, 0, net::Side::North}, 100.0, 50.0, 0.5});
  EXPECT_THROW(scenario::validate_or_throw(s), std::invalid_argument);
  s.capacity[0] = {{0, 0, net::Side::North}, 0.0, 100.0, 1.5};
  EXPECT_THROW(scenario::validate_or_throw(s), std::invalid_argument);
  s.capacity.clear();
  s.sensors.push_back({{0, 0}, 0.0, 100.0, core::SensorFaultKind::Dropout, 0, 0});
  s.sensors.push_back({{0, 0}, 50.0, 150.0, core::SensorFaultKind::Noise, 0, 1});
  EXPECT_THROW(scenario::validate_or_throw(s), std::invalid_argument);  // overlap
  s.sensors[1].start_s = 100.0;  // back-to-back windows are fine
  EXPECT_NO_THROW(scenario::validate_or_throw(s));
  s.controllers.push_back({{0, 0}, -1.0, 10.0});
  EXPECT_THROW(scenario::validate_or_throw(s), std::invalid_argument);
}

TEST(FaultInjection, UnresolvableFaultReferenceThrows) {
  scenario::ScenarioConfig cfg = incident_config(scenario::SimulatorKind::Queue);
  cfg.faults.capacity.push_back({{9, 9, net::Side::North}, 0.0, 10.0, 0.5});
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
  cfg = incident_config(scenario::SimulatorKind::Queue);
  cfg.faults.sensors.push_back(
      {{9, 9}, 0.0, 10.0, core::SensorFaultKind::Dropout, 0, 0});
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
}

TEST(FaultInjection, FaultsActuallyChangeTheRun) {
  for (const scenario::SimulatorKind kind :
       {scenario::SimulatorKind::Queue, scenario::SimulatorKind::Micro}) {
    SCOPED_TRACE(kind == scenario::SimulatorKind::Queue ? "queue" : "micro");
    scenario::ScenarioConfig faulted = incident_config(kind);
    scenario::ScenarioConfig clean = faulted;
    clean.faults = {};
    const auto a = scenario::run_scenario(faulted);
    const auto b = scenario::run_scenario(clean);
    // A 60%-capacity closure of an entry approach for 180 s must be visible
    // in the aggregate queuing behavior.
    EXPECT_NE(a.metrics.queuing_time_s.mean(), b.metrics.queuing_time_s.mean());
  }
}

TEST(FaultInjection, RunToRunDeterminismWithFaults) {
  for (const scenario::SimulatorKind kind :
       {scenario::SimulatorKind::Queue, scenario::SimulatorKind::Micro}) {
    SCOPED_TRACE(kind == scenario::SimulatorKind::Queue ? "queue" : "micro");
    const auto a = scenario::run_scenario(incident_config(kind));
    const auto b = scenario::run_scenario(incident_config(kind));
    expect_identical(a.metrics, b.metrics);
  }
}

// Golden values for the incident scenario (capacity events applied at tick
// boundaries by the adapter, sensor/controller faults in the control step,
// noise stream keyed (seed + 0xFA17, junction index), noise offsets drawn
// with the unbiased bounded draw). Any change to when or how faults apply
// shifts these numbers. Re-capture with ABP_DUMP_GOLDEN=1.
TEST(FaultInjection, MicroIncidentPinnedMetrics) {
  const auto r = scenario::run_scenario(incident_config(scenario::SimulatorKind::Micro));
  maybe_dump("micro", r.metrics);
  EXPECT_EQ(r.metrics.generated, 830u);
  EXPECT_EQ(r.metrics.entered, 830u);
  EXPECT_EQ(r.metrics.completed, 665u);
  EXPECT_EQ(r.metrics.in_network_at_end, 165u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.82b7d395e6177p+5);  // 48.33975904
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.a96fa72bcc2eep+6);   // 106.35903614
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x1.7cp+5);              // 47.5
}

TEST(FaultInjection, QueueIncidentPinnedMetrics) {
  const auto r = scenario::run_scenario(incident_config(scenario::SimulatorKind::Queue));
  maybe_dump("queue", r.metrics);
  EXPECT_EQ(r.metrics.generated, 830u);
  EXPECT_EQ(r.metrics.entered, 830u);
  EXPECT_EQ(r.metrics.completed, 716u);
  EXPECT_EQ(r.metrics.in_network_at_end, 114u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.c1482c6a19e89p+5);  // 56.16024096
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.8b5482c6a19e9p+6);   // 98.83253012
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x0p+0);                 // 0.0
}

// The headline guarantee: a nonempty fault schedule must not give the thread
// count any way to show up in the results. Faults execute in the sequential
// phase; the parallel sweeps never see them.
TEST(FaultInjection, ThreadInvarianceWithFaults) {
  for (const scenario::SimulatorKind kind :
       {scenario::SimulatorKind::Queue, scenario::SimulatorKind::Micro}) {
    SCOPED_TRACE(kind == scenario::SimulatorKind::Queue ? "queue" : "micro");
    scenario::ScenarioConfig base = incident_config(kind);
    const auto serial = scenario::run_scenario(base);
    for (int threads : {2, 8}) {
      scenario::ScenarioConfig cfg = base;
      cfg.micro.threads = threads;
      cfg.queue.threads = threads;
      const auto parallel = scenario::run_scenario(cfg);
      SCOPED_TRACE(threads);
      expect_identical(serial.metrics, parallel.metrics);
    }
  }
}

// Batch execution through the ExperimentRunner must match the serial loop
// bit for bit with faults in play, at every jobs count — fault state is
// per-run (owned by the run's own adapter and controllers), never shared.
TEST(FaultInjection, BatchMatchesSerialWithFaults) {
  std::vector<scenario::ScenarioConfig> configs = {
      incident_config(scenario::SimulatorKind::Queue),
      incident_config(scenario::SimulatorKind::Micro)};
  configs[0].duration_s = 300.0;
  configs[1].duration_s = 300.0;

  std::vector<stats::RunResult> serial;
  for (const auto& cfg : configs) serial.push_back(scenario::run_scenario(cfg));

  for (int jobs : {1, 2, 8}) {
    SCOPED_TRACE(jobs);
    exp::ExperimentRunner runner({.jobs = jobs, .allow_oversubscribe = true});
    const std::vector<stats::RunResult> batch = runner.run(configs);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(i);
      expect_identical(serial[i].metrics, batch[i].metrics);
    }
  }
}

// A schedule whose windows never fire inside the run, plus an enabled guard,
// must be bit-identical to the plain fault-free run: the adapter's sliced
// run_until stepping and the guard's read-only checks have no behavioral
// footprint. (This is the empty-schedule zero-cost claim, sharpened to
// zero *effect* for dormant machinery.)
TEST(FaultInjection, DormantScheduleAndGuardAreBehaviorNeutral) {
  for (const scenario::SimulatorKind kind :
       {scenario::SimulatorKind::Queue, scenario::SimulatorKind::Micro}) {
    SCOPED_TRACE(kind == scenario::SimulatorKind::Queue ? "queue" : "micro");
    scenario::ScenarioConfig plain = incident_config(kind);
    plain.faults = {};
    plain.duration_s = 300.0;
    scenario::ScenarioConfig dormant = plain;
    dormant.faults.capacity.push_back(
        {{0, 0, net::Side::North}, 5000.0, 6000.0, 0.3});  // after the horizon
    dormant.guard.enabled = true;
    dormant.guard.policy = scenario::GuardPolicy::Throw;
    const auto a = scenario::run_scenario(plain);
    const auto b = scenario::run_scenario(dormant);
    expect_identical(a.metrics, b.metrics);
    EXPECT_GT(b.guard.checks, 0u);
  }
}

// Conservation and capacity bounds hold *through* the incidents — including
// the controller outage, where the degraded junction runs fixed-time — on
// both backends, at several thread counts. GuardPolicy::Record turns every
// violating tick into a report entry, so this asserts zero violations over
// the whole run rather than sampling a few ticks.
TEST(FaultInjection, InvariantsHoldThroughIncidents) {
  for (const scenario::SimulatorKind kind :
       {scenario::SimulatorKind::Queue, scenario::SimulatorKind::Micro}) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(testing::Message()
                   << (kind == scenario::SimulatorKind::Queue ? "queue" : "micro")
                   << "/threads=" << threads);
      scenario::ScenarioConfig cfg = incident_config(kind);
      cfg.micro.threads = threads;
      cfg.queue.threads = threads;
      cfg.guard.enabled = true;
      cfg.guard.policy = scenario::GuardPolicy::Record;
      const auto r = scenario::run_scenario(cfg);
      EXPECT_GT(r.guard.checks, 0u);
      EXPECT_TRUE(r.guard.violations.empty())
          << r.guard.violations.front().message;
    }
  }
}

// Backend capacity hooks: a closed entry road admits nobody; restoring the
// capacity reopens it. Exercised directly on both backends.
TEST(FaultInjection, CapacityOverrideHookClosesAndReopensRoads) {
  net::GridConfig gcfg;
  gcfg.rows = 1;
  gcfg.cols = 1;
  const net::Network net = net::build_grid(gcfg);
  core::ControllerSpec spec;
  traffic::DemandConfig dcfg;
  dcfg.pattern = traffic::PatternKind::I;
  {
    SCOPED_TRACE("queue");
    traffic::DemandGenerator demand(net, dcfg, kSeed);
    queuesim::QueueSim sim(net, queuesim::QueueSimConfig{},
                           core::make_controllers(spec, net), demand);
    for (RoadId entry : net.entry_roads()) sim.set_road_capacity(entry, 0);
    EXPECT_EQ(sim.road_capacity(net.entry_roads().front()), 0);
    const stats::RunResult& r = sim.run_until(60.0);
    EXPECT_GT(r.metrics.generated, 0u);
    EXPECT_EQ(r.metrics.entered, 0u);
    for (RoadId entry : net.entry_roads()) {
      sim.set_road_capacity(entry, net.road(entry).capacity);
    }
    const stats::RunResult& r2 = sim.run_until(120.0);
    EXPECT_GT(r2.metrics.entered, 0u);
  }
  {
    SCOPED_TRACE("micro");
    traffic::DemandGenerator demand(net, dcfg, kSeed);
    microsim::MicroSim sim(net, microsim::MicroSimConfig{},
                           core::make_controllers(spec, net), demand, kSeed + 0x5157u);
    for (RoadId entry : net.entry_roads()) sim.set_road_capacity(entry, 0);
    const stats::RunResult& r = sim.run_until(60.0);
    EXPECT_GT(r.metrics.generated, 0u);
    EXPECT_EQ(r.metrics.entered, 0u);
    for (RoadId entry : net.entry_roads()) {
      sim.set_road_capacity(entry, net.road(entry).capacity);
    }
    const stats::RunResult& r2 = sim.run_until(120.0);
    EXPECT_GT(r2.metrics.entered, 0u);
  }
}

// --- FaultInjectedController unit coverage -----------------------------

// Probe controller: records the observations it is given and returns a
// fixed phase.
class ProbeController final : public core::SignalController {
 public:
  explicit ProbeController(net::PhaseIndex phase) : phase_(phase) {}
  net::PhaseIndex decide(const core::IntersectionObservation& obs) override {
    last_obs = obs;
    decisions += 1;
    return phase_;
  }
  void reset() override { resets += 1; }
  [[nodiscard]] std::string name() const override { return "PROBE"; }

  core::IntersectionObservation last_obs;
  int decisions = 0;
  int resets = 0;

 private:
  net::PhaseIndex phase_ = 0;
};

core::IntersectionObservation make_obs(double time, int queue) {
  core::IntersectionObservation obs;
  obs.time = time;
  core::LinkState s;
  s.queue = queue;
  s.upstream_total = queue + 1;
  s.downstream_queue = queue + 2;
  s.downstream_total = 42;  // physical; must never be perturbed
  obs.links.push_back(s);
  return obs;
}

TEST(FaultInjectedController, FailoverDelegatesAndRecoveryResetsPrimary) {
  auto primary = std::make_unique<ProbeController>(1);
  auto fallback = std::make_unique<ProbeController>(2);
  ProbeController* p = primary.get();
  ProbeController* f = fallback.get();
  core::FaultInjectedController ctrl(std::move(primary), std::move(fallback),
                                     {{10.0, 20.0}}, {}, kSeed, 0);
  EXPECT_EQ(ctrl.decide(make_obs(5.0, 3)), 1);
  EXPECT_FALSE(ctrl.degraded());
  EXPECT_EQ(ctrl.decide(make_obs(10.0, 3)), 2);
  EXPECT_TRUE(ctrl.degraded());
  EXPECT_EQ(ctrl.decide(make_obs(19.0, 3)), 2);
  EXPECT_EQ(p->decisions, 1);  // the primary sat out the outage
  EXPECT_EQ(p->resets, 0);
  EXPECT_EQ(ctrl.decide(make_obs(20.0, 3)), 1);  // recovered
  EXPECT_FALSE(ctrl.degraded());
  EXPECT_EQ(p->resets, 1);  // stale clocks cleared before resuming
  EXPECT_EQ(f->decisions, 2);
  EXPECT_EQ(ctrl.name(), "PROBE");
}

TEST(FaultInjectedController, DropoutZeroesSensorReadingsOnly) {
  auto primary = std::make_unique<ProbeController>(1);
  ProbeController* p = primary.get();
  core::FaultInjectedController ctrl(
      std::move(primary), std::make_unique<ProbeController>(2), {},
      {{10.0, 20.0, core::SensorFaultKind::Dropout, 0, 0}}, kSeed, 0);
  (void)ctrl.decide(make_obs(15.0, 7));
  EXPECT_EQ(p->last_obs.links[0].queue, 0);
  EXPECT_EQ(p->last_obs.links[0].upstream_total, 0);
  EXPECT_EQ(p->last_obs.links[0].downstream_queue, 0);
  EXPECT_EQ(p->last_obs.links[0].downstream_total, 42);  // physical, untouched
  EXPECT_EQ(p->last_obs.time, 15.0);                     // time stays truthful
  (void)ctrl.decide(make_obs(25.0, 7));
  EXPECT_EQ(p->last_obs.links[0].queue, 7);  // healthy after the window
}

TEST(FaultInjectedController, StuckAtFreezesLastHealthyReadings) {
  auto primary = std::make_unique<ProbeController>(1);
  ProbeController* p = primary.get();
  core::FaultInjectedController ctrl(
      std::move(primary), std::make_unique<ProbeController>(2), {},
      {{10.0, 20.0, core::SensorFaultKind::StuckAt, 0, 0}}, kSeed, 0);
  (void)ctrl.decide(make_obs(5.0, 4));   // healthy; becomes the freeze frame
  (void)ctrl.decide(make_obs(15.0, 9));  // stuck: reports the frozen 4
  EXPECT_EQ(p->last_obs.links[0].queue, 4);
  EXPECT_EQ(p->last_obs.time, 15.0);
  (void)ctrl.decide(make_obs(25.0, 9));
  EXPECT_EQ(p->last_obs.links[0].queue, 9);
}

TEST(FaultInjectedController, NoiseIsDeterministicPerSeedAndClampedAtZero) {
  auto run_once = [](std::uint64_t seed) {
    auto primary = std::make_unique<ProbeController>(1);
    ProbeController* p = primary.get();
    core::FaultInjectedController ctrl(
        std::move(primary), std::make_unique<ProbeController>(2), {},
        {{0.0, 100.0, core::SensorFaultKind::Noise, -2, 3}}, seed, 5);
    std::vector<int> readings;
    for (int t = 0; t < 10; ++t) {
      (void)ctrl.decide(make_obs(static_cast<double>(t), 1));
      readings.push_back(p->last_obs.links[0].queue);
      EXPECT_GE(readings.back(), 0);  // clamped: a detector can't go negative
    }
    return readings;
  };
  EXPECT_EQ(run_once(kSeed), run_once(kSeed));  // same seed, same burst
  EXPECT_NE(run_once(kSeed), run_once(kSeed + 1));
}

}  // namespace
}  // namespace abp
