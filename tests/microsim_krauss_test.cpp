// Tests for the Krauss car-following model: safety, stopping, speed keeping —
// and the lane-level pin of the vectorized kernel against the scalar
// reference.
#include "src/microsim/krauss.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/microsim/lane_kernel.hpp"
#include "src/util/rng.hpp"

namespace abp::microsim {
namespace {

VehicleParams params() { return VehicleParams{}; }

TEST(Krauss, ZeroGapMeansZeroSpeed) {
  EXPECT_DOUBLE_EQ(safe_speed(0.0, 10.0, params()), 0.0);
  EXPECT_DOUBLE_EQ(safe_speed(-5.0, 10.0, params()), 0.0);
}

TEST(Krauss, SafeSpeedGrowsWithGap) {
  const VehicleParams p = params();
  double prev = 0.0;
  for (double gap = 1.0; gap <= 200.0; gap += 1.0) {
    const double v = safe_speed(gap, 0.0, p);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Krauss, SafeSpeedGrowsWithLeaderSpeed) {
  const VehicleParams p = params();
  const double slow = safe_speed(10.0, 0.0, p);
  const double fast = safe_speed(10.0, 10.0, p);
  EXPECT_GT(fast, slow);
}

TEST(Krauss, NextSpeedRespectsSpeedLimit) {
  const VehicleParams p = params();
  double v = 0.0;
  for (int i = 0; i < 100; ++i) {
    v = next_speed(v, 1e9, 0.0, 13.9, p, 0.5, 0.0);
    EXPECT_LE(v, 13.9 + 1e-12);
  }
  EXPECT_NEAR(v, 13.9, 1e-9);
}

TEST(Krauss, AccelerationBounded) {
  const VehicleParams p = params();
  const double v0 = 5.0;
  const double v1 = next_speed(v0, 1e9, 0.0, 100.0, p, 0.5, 0.0);
  EXPECT_LE(v1 - v0, p.accel_mps2 * 0.5 + 1e-12);
}

TEST(Krauss, DawdlingReducesSpeed) {
  const VehicleParams p = params();
  const double crisp = next_speed(10.0, 1e9, 0.0, 13.9, p, 0.5, 0.0);
  const double dawdled = next_speed(10.0, 1e9, 0.0, 13.9, p, 0.5, 1.0);
  EXPECT_LT(dawdled, crisp);
  EXPECT_NEAR(crisp - dawdled, p.sigma * p.accel_mps2 * 0.5, 1e-12);
}

TEST(Krauss, StopsBeforeStandingObstacle) {
  // Integrate an approach to a stop line 100 m ahead: the vehicle must come
  // to rest without ever crossing it.
  const VehicleParams p = params();
  const double dt = 0.5;
  double pos = 0.0;
  double v = 13.9;
  for (int step = 0; step < 400; ++step) {
    const double gap = 100.0 - pos;
    v = next_speed(v, gap, 0.0, 13.9, p, dt, 0.0);
    pos += v * dt;
    ASSERT_LE(pos, 100.0 + 1e-9) << "crossed the obstacle at step " << step;
  }
  EXPECT_NEAR(pos, 100.0, 1.5);
  EXPECT_NEAR(v, 0.0, 0.1);
}

class KraussFollowing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KraussFollowing, NeverCollidesWithBrakingLeader) {
  // Leader performs an emergency stop; a dawdling follower must never hit it.
  const VehicleParams p = params();
  Rng rng(GetParam());
  const double dt = 0.5;
  double leader_pos = 30.0, leader_v = 13.9;
  double follower_pos = 0.0, follower_v = 13.9;
  for (int step = 0; step < 200; ++step) {
    // Leader brakes hard to zero.
    leader_v = std::max(0.0, leader_v - p.decel_mps2 * dt);
    leader_pos += leader_v * dt;
    const double gap = leader_pos - p.length_m - follower_pos - p.min_gap_m;
    follower_v = next_speed(follower_v, gap, leader_v, 13.9, p, dt, rng.uniform01());
    follower_pos += follower_v * dt;
    ASSERT_LT(follower_pos, leader_pos - p.length_m + 1e-9) << "collision at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KraussFollowing, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class KraussPlatoon : public ::testing::TestWithParam<int> {};

TEST_P(KraussPlatoon, QueueDischargeIsOrderlyAndCollisionFree) {
  // N stopped vehicles behind a line that opens at t=0: all accelerate, none
  // collide, ordering preserved.
  const int n = GetParam();
  const VehicleParams p = params();
  Rng rng(42);
  const double dt = 0.5;
  std::vector<double> pos(static_cast<std::size_t>(n));
  std::vector<double> vel(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(i)] = -static_cast<double>(i) * (p.length_m + p.min_gap_m);
  }
  for (int step = 0; step < 240; ++step) {
    for (int i = 0; i < n; ++i) {
      double gap = 1e9;
      double lv = 0.0;
      if (i > 0) {
        gap = pos[static_cast<std::size_t>(i - 1)] - p.length_m -
              pos[static_cast<std::size_t>(i)] - p.min_gap_m;
        lv = vel[static_cast<std::size_t>(i - 1)];
      }
      vel[static_cast<std::size_t>(i)] =
          next_speed(vel[static_cast<std::size_t>(i)], gap, lv, 13.9, p, dt, rng.uniform01());
      pos[static_cast<std::size_t>(i)] += vel[static_cast<std::size_t>(i)] * dt;
    }
    for (int i = 1; i < n; ++i) {
      ASSERT_LT(pos[static_cast<std::size_t>(i)],
                pos[static_cast<std::size_t>(i - 1)] - p.length_m + 1e-9)
          << "overlap at step " << step;
    }
  }
  // Everybody ends up moving.
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(vel[static_cast<std::size_t>(i)], 1.0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PlatoonSizes, KraussPlatoon, ::testing::Values(2, 5, 10, 20, 40));

// --- Lane-level pin: vectorized kernel == scalar reference, bit for bit ---

void expect_lanes_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                                const char* what, int tick) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "] diverged at tick " << tick << ": ref=" << a[i]
        << " vec=" << b[i];
  }
}

struct LaneScenario {
  const char* name;
  std::size_t n;
  bool is_exit;
  bool dawdling;
};

class LaneKernelEquality : public ::testing::TestWithParam<LaneScenario> {};

TEST_P(LaneKernelEquality, VectorizedMatchesScalarReferenceOverAFullApproach) {
  // Evolve the same lane through both implementations for 400 ticks and
  // demand bitwise equality (positions, speeds, RNG counters) after every
  // tick. The horizon walks each lane through every boundary regime the
  // branchless kernel rewrites: free flow (the sqrt-eliding fast-path mask),
  // the approach and capture of the stop line (head clamp every tick while
  // creeping), compression into a standing queue (zero and negative
  // effective gaps, overlap-guard clamps) and the crawl across the waiting/
  // queued speed thresholds in between.
  const LaneScenario sc = GetParam();
  const VehicleParams p = params();
  const double dt = 0.5;
  const double speed_limit = 13.9;
  const double road_length = 260.0;
  Rng init(0xabcdef ^ sc.n);
  std::vector<double> pos_ref(sc.n);
  std::vector<double> speed_ref(sc.n);
  double front = 250.0;
  for (std::size_t i = 0; i < sc.n; ++i) {
    pos_ref[i] = front;
    // Spacing sweeps from bumper-to-bumper (zero effective gap) to loose.
    front -= p.length_m + init.uniform(0.0, 3.0 * p.min_gap_m);
    speed_ref[i] = init.uniform(0.0, speed_limit);
  }
  std::vector<double> pos_vec = pos_ref;
  std::vector<double> speed_vec = speed_ref;
  StreamRng rng_ref(2020, 17);
  StreamRng rng_vec(2020, 17);
  LaneKernelScratch scratch;
  for (int tick = 0; tick < 400; ++tick) {
    lane_update_reference(pos_ref.data(), speed_ref.data(), sc.n, speed_limit,
                          road_length, sc.is_exit, p, dt,
                          sc.dawdling ? &rng_ref : nullptr);
    lane_update_vectorized(pos_vec.data(), speed_vec.data(), sc.n, speed_limit,
                           road_length, sc.is_exit, p, dt,
                           sc.dawdling ? &rng_vec : nullptr, scratch);
    expect_lanes_bitwise_equal(pos_ref, pos_vec, "pos", tick);
    expect_lanes_bitwise_equal(speed_ref, speed_vec, "speed", tick);
    ASSERT_EQ(rng_ref.counter(), rng_vec.counter()) << "tick " << tick;
  }
  if (!sc.is_exit) {
    // Sanity that the scenario actually exercised the stop-line regime.
    EXPECT_DOUBLE_EQ(pos_ref[0], road_length - 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lanes, LaneKernelEquality,
    ::testing::Values(LaneScenario{"head_only", 1, false, true},
                      LaneScenario{"pair", 2, false, true},
                      LaneScenario{"simd_width", 4, false, true},
                      LaneScenario{"odd_tail", 7, false, true},
                      LaneScenario{"platoon", 16, false, true},
                      LaneScenario{"column", 33, false, true},
                      LaneScenario{"crush", 64, false, true},
                      LaneScenario{"no_dawdle", 16, false, false},
                      LaneScenario{"exit_run_off", 8, true, true},
                      LaneScenario{"exit_no_dawdle", 5, true, false}),
    [](const ::testing::TestParamInfo<LaneScenario>& info) { return info.param.name; });

TEST(LaneKernelEquality, EmptyLaneIsANoOpInBothImplementations) {
  // n == 0 must touch nothing — no draws consumed, no scratch writes, no
  // reads through the (possibly null) array pointers.
  const VehicleParams p = params();
  StreamRng rng(1, 1);
  LaneKernelScratch scratch;
  lane_update_reference(nullptr, nullptr, 0, 13.9, 200.0, false, p, 0.5, &rng);
  lane_update_vectorized(nullptr, nullptr, 0, 13.9, 200.0, false, p, 0.5, &rng, scratch);
  EXPECT_EQ(rng.counter(), 0u);
  EXPECT_TRUE(scratch.gap.empty());
}

TEST(LaneKernelEquality, ParkedHeadAndOverlappedFollowersMatch) {
  // Hand-built boundary states: a head parked exactly at the stop line, a
  // follower with exactly zero gap, one physically overlapping its leader
  // (negative gap: the safe speed must pin to 0 and the overlap guard must
  // clamp identically), and a free-flow tail straddling the sqrt fast-path
  // boundary.
  const VehicleParams p = params();
  const double dt = 0.5;
  const double speed_limit = 13.9;
  const double road_length = 200.0;
  std::vector<double> pos_ref = {
      road_length - 0.2,                                   // parked at the line
      road_length - 0.2 - p.length_m - p.min_gap_m,        // exactly zero gap
      road_length - 0.2 - 2.0 * p.length_m - p.min_gap_m,  // negative gap (overlap)
      120.0, 60.0, 0.0};
  std::vector<double> speed_ref = {0.0, 0.3, 2.0, 13.9, 7.0, 0.0};
  std::vector<double> pos_vec = pos_ref;
  std::vector<double> speed_vec = speed_ref;
  StreamRng rng_ref(7, 3);
  StreamRng rng_vec(7, 3);
  LaneKernelScratch scratch;
  for (int tick = 0; tick < 100; ++tick) {
    lane_update_reference(pos_ref.data(), speed_ref.data(), pos_ref.size(), speed_limit,
                          road_length, false, p, dt, &rng_ref);
    lane_update_vectorized(pos_vec.data(), speed_vec.data(), pos_vec.size(), speed_limit,
                           road_length, false, p, dt, &rng_vec, scratch);
    expect_lanes_bitwise_equal(pos_ref, pos_vec, "pos", tick);
    expect_lanes_bitwise_equal(speed_ref, speed_vec, "speed", tick);
    ASSERT_EQ(rng_ref.counter(), rng_vec.counter()) << "tick " << tick;
  }
}

TEST(KraussFastPath, BitIdenticalToExactFormAcrossTheBoundary) {
  // next_speed_fast may skip the sqrt only where it provably cannot change
  // the result; sweep a dense grid of speeds, gaps and leader speeds —
  // including the free-flow region where the fast path fires and the
  // near-boundary region where it must fall through — and demand exact
  // equality. Dawdle draws exercise the subtraction path too.
  VehicleParams p;
  Rng rng(31);
  const double dt = 0.5;
  for (double speed = 0.0; speed <= 15.0; speed += 0.76) {
    for (double gap = -2.0; gap <= 60.0; gap += 0.93) {
      for (double lead = 0.0; lead <= 15.0; lead += 2.41) {
        const double r = rng.uniform01();
        const double exact = next_speed(speed, gap, lead, 13.9, p, dt, r);
        const double fast = next_speed_fast(speed, gap, lead, 13.9, p, dt, r);
        ASSERT_EQ(exact, fast) << "v=" << speed << " g=" << gap << " lv=" << lead;
      }
    }
  }
}

}  // namespace
}  // namespace abp::microsim
