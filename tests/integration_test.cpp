// Cross-module integration tests: the paper's qualitative claims on short
// (CI-friendly) runs of the full 3x3 scenario.
#include <gtest/gtest.h>

#include <cmath>

#include "src/scenario/scenario.hpp"

namespace abp {
namespace {

stats::RunResult run(traffic::PatternKind pattern, core::ControllerType type,
                     double duration, scenario::SimulatorKind sim,
                     double period = 16.0, std::uint64_t seed = 2020) {
  scenario::ScenarioConfig cfg = scenario::paper_scenario(pattern, type, period);
  cfg.duration_s = duration;
  cfg.seed = seed;
  cfg.simulator = sim;
  return scenario::run_scenario(cfg);
}

TEST(Integration, UtilBpBeatsFixedTimeOnUniformTraffic) {
  // Robust ordering claim: adaptive back-pressure must clearly beat a blind
  // fixed-time plan on the uniform pattern.
  const auto util = run(traffic::PatternKind::II, core::ControllerType::UtilBp, 1800.0,
                        scenario::SimulatorKind::Micro);
  const auto fixed = run(traffic::PatternKind::II, core::ControllerType::FixedTime, 1800.0,
                         scenario::SimulatorKind::Micro);
  EXPECT_LT(util.metrics.average_queuing_time_s(),
            0.7 * fixed.metrics.average_queuing_time_s());
}

TEST(Integration, UtilBpBeatsCapBpAtDefaultPeriod) {
  // The headline Table-III ordering at the default CAP-BP period, on a short
  // Pattern-I run. The margin vs the *optimal* period is established by the
  // full bench (bench_table3_patterns); here we lock in the ordering.
  const auto util = run(traffic::PatternKind::I, core::ControllerType::UtilBp, 1800.0,
                        scenario::SimulatorKind::Micro);
  const auto cap = run(traffic::PatternKind::I, core::ControllerType::CapBp, 1800.0,
                       scenario::SimulatorKind::Micro);
  EXPECT_LT(util.metrics.average_queuing_time_s(), cap.metrics.average_queuing_time_s());
}

TEST(Integration, OriginalBpCongestsUnderLoad) {
  // Section IV / [4]: the original policy is not work-conserving and jams.
  const auto orig = run(traffic::PatternKind::I, core::ControllerType::OriginalBp, 1800.0,
                        scenario::SimulatorKind::Micro);
  const auto cap = run(traffic::PatternKind::I, core::ControllerType::CapBp, 1800.0,
                       scenario::SimulatorKind::Micro);
  EXPECT_LT(cap.metrics.in_network_at_end, orig.metrics.in_network_at_end);
  EXPECT_GT(orig.metrics.average_queuing_time_s(),
            2.0 * cap.metrics.average_queuing_time_s());
}

TEST(Integration, QueueModelAgreesOnOrdering) {
  // The Section-II queueing model must reproduce the UTIL-BP < FIXED-TIME
  // ordering (model-level cross-check, bench A4).
  const auto util = run(traffic::PatternKind::II, core::ControllerType::UtilBp, 1800.0,
                        scenario::SimulatorKind::Queue);
  const auto fixed = run(traffic::PatternKind::II, core::ControllerType::FixedTime, 1800.0,
                         scenario::SimulatorKind::Queue);
  EXPECT_LT(util.metrics.average_queuing_time_s(), fixed.metrics.average_queuing_time_s());
}

TEST(Integration, UtilBpPhasesAreVaryingLength) {
  // Fig. 4's qualitative property: phase durations vary; a fixed-time plan's
  // do not. Compare coefficient of variation of control-phase durations.
  const auto util = run(traffic::PatternKind::I, core::ControllerType::UtilBp, 1800.0,
                        scenario::SimulatorKind::Micro);
  const auto durations = util.phase_traces[2].control_phase_durations();
  ASSERT_GT(durations.size(), 10u);
  double mean = 0.0;
  for (double d : durations) mean += d;
  mean /= static_cast<double>(durations.size());
  double var = 0.0;
  for (double d : durations) var += (d - mean) * (d - mean);
  var /= static_cast<double>(durations.size());
  EXPECT_GT(std::sqrt(var) / mean, 0.3);

  const auto fixed = run(traffic::PatternKind::I, core::ControllerType::FixedTime, 1800.0,
                         scenario::SimulatorKind::Micro);
  const auto fixed_durations = fixed.phase_traces[2].control_phase_durations();
  ASSERT_GT(fixed_durations.size(), 10u);
  // The run's end may truncate the last green; all others are identical.
  for (std::size_t i = 0; i + 1 < fixed_durations.size(); ++i) {
    EXPECT_NEAR(fixed_durations[i], fixed_durations.front(), 1.0);
  }
}

TEST(Integration, HeavierTrafficMeansLongerQueues) {
  // Sanity: scaling arrivals up must not reduce queuing time (UTIL-BP).
  const auto base = run(traffic::PatternKind::II, core::ControllerType::UtilBp, 1200.0,
                        scenario::SimulatorKind::Micro);
  scenario::ScenarioConfig heavy_cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  heavy_cfg.duration_s = 1200.0;
  heavy_cfg.seed = 2020;
  heavy_cfg.demand.interarrival_scale = 0.6;
  const auto heavy = scenario::run_scenario(heavy_cfg);
  EXPECT_GE(heavy.metrics.average_queuing_time_s(),
            base.metrics.average_queuing_time_s());
}

TEST(Integration, AmberFractionReflectsTransitionCount) {
  const auto util = run(traffic::PatternKind::I, core::ControllerType::UtilBp, 1200.0,
                        scenario::SimulatorKind::Micro);
  for (const auto& trace : util.phase_traces) {
    const double expected =
        4.0 * trace.transition_count() / (trace.end_time() - trace.samples().front().time);
    // Initial amber and quantization shift this slightly.
    EXPECT_NEAR(trace.amber_fraction(), expected, 0.02);
  }
}

TEST(Integration, CapBpPeriodMattersForPerformance) {
  // Fig. 2's premise: CAP-BP performance depends on the period choice.
  const auto p10 = run(traffic::PatternKind::I, core::ControllerType::CapBp, 1800.0,
                       scenario::SimulatorKind::Micro, 10.0);
  const auto p60 = run(traffic::PatternKind::I, core::ControllerType::CapBp, 1800.0,
                       scenario::SimulatorKind::Micro, 60.0);
  const double a = p10.metrics.average_queuing_time_s();
  const double b = p60.metrics.average_queuing_time_s();
  EXPECT_GT(std::abs(a - b) / std::max(a, b), 0.1);
}

}  // namespace
}  // namespace abp
