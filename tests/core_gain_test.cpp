// Tests for the gain metrics against the paper's equations (5)-(11).
#include "src/core/gain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace abp::core {
namespace {

LinkState make_link(int queue, int down_queue, int down_total, int down_cap, double mu = 1.0,
                    int up_total = -1, int up_cap = 120) {
  LinkState l;
  l.queue = queue;
  l.upstream_total = up_total < 0 ? queue : up_total;
  l.upstream_capacity = up_cap;
  l.downstream_queue = down_queue;
  l.downstream_total = down_total;
  l.downstream_capacity = down_cap;
  l.service_rate = mu;
  return l;
}

TEST(Pressure, IdentityByDefault) {
  EXPECT_DOUBLE_EQ(pressure({}, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(pressure({}, 0.0), 0.0);
}

TEST(Pressure, CustomFunctionApplies) {
  const PressureFn sq = [](double q) { return q * q; };
  EXPECT_DOUBLE_EQ(pressure(sq, 3.0), 9.0);
}

TEST(WStar, TakesMaxDownstreamCapacity) {
  IntersectionObservation obs;
  obs.links.push_back(make_link(0, 0, 0, 100));
  obs.links.push_back(make_link(0, 0, 0, 120));
  obs.links.push_back(make_link(0, 0, 0, 80));
  EXPECT_DOUBLE_EQ(wstar(obs), 120.0);  // Eq. (7)
}

TEST(WStar, EmptyObservationIsZero) {
  IntersectionObservation obs;
  EXPECT_DOUBLE_EQ(wstar(obs), 0.0);
}

TEST(OriginalGain, PositivePressureDifference) {
  // Eq. (5): g_o = max(0, (b_i - b_{i'}) mu) with the *total* incoming queue.
  const LinkState l = make_link(3, 4, 4, 120, 2.0, /*up_total=*/10);
  EXPECT_DOUBLE_EQ(link_gain_original(l), (10.0 - 4.0) * 2.0);
}

TEST(OriginalGain, NegativeDifferenceClampsToZero) {
  const LinkState l = make_link(2, 9, 9, 120, 1.0, /*up_total=*/2);
  EXPECT_DOUBLE_EQ(link_gain_original(l), 0.0);
}

TEST(OriginalGain, UsesTotalNotPerLaneQueue) {
  // Distinguishing property the paper criticizes: vehicles not using the
  // link still contribute to its original gain.
  const LinkState l = make_link(/*queue=*/0, 1, 1, 120, 1.0, /*up_total=*/50);
  EXPECT_DOUBLE_EQ(link_gain_original(l), 49.0);
}

TEST(ModifiedGain, ShiftsByWStar) {
  // Eq. (6): g = (b_i^{i'} - b_{i'} + W*) mu.
  const LinkState l = make_link(5, 9, 9, 120);
  EXPECT_DOUBLE_EQ(link_gain_modified(l, 120.0), (5.0 - 9.0 + 120.0) * 1.0);
}

TEST(ModifiedGain, UsesPerLaneQueue) {
  const LinkState l = make_link(/*queue=*/2, 0, 0, 120, 3.0, /*up_total=*/40);
  EXPECT_DOUBLE_EQ(link_gain_modified(l, 120.0), (2.0 + 120.0) * 3.0);
}

TEST(ModifiedGain, ServiceRateScales) {
  const LinkState a = make_link(10, 0, 0, 120, 1.0);
  const LinkState b = make_link(10, 0, 0, 120, 2.0);
  EXPECT_DOUBLE_EQ(link_gain_modified(b, 120.0), 2.0 * link_gain_modified(a, 120.0));
}

TEST(UtilGain, FullDownstreamYieldsBeta) {
  // Eq. (8), first row: q_{i'} = W_{i'} -> beta.
  GainParams params;
  const LinkState l = make_link(50, 100, /*down_total=*/120, /*down_cap=*/120);
  EXPECT_DOUBLE_EQ(link_gain_util(l, 120.0, params), params.beta);
}

TEST(UtilGain, OverfullDownstreamStillBeta) {
  GainParams params;
  const LinkState l = make_link(50, 100, 125, 120);
  EXPECT_DOUBLE_EQ(link_gain_util(l, 120.0, params), params.beta);
}

TEST(UtilGain, EmptyLaneYieldsAlpha) {
  // Eq. (8), second row: space downstream but q_i^{i'} = 0 -> alpha.
  GainParams params;
  const LinkState l = make_link(/*queue=*/0, 10, 10, 120);
  EXPECT_DOUBLE_EQ(link_gain_util(l, 120.0, params), params.alpha);
}

TEST(UtilGain, FullBeatsEmptyInPriority) {
  // beta < alpha < 0 (Eq. 9): the full-downstream case ranks below empty.
  GainParams params;
  const LinkState full = make_link(50, 100, 120, 120);
  const LinkState empty = make_link(0, 10, 10, 120);
  EXPECT_LT(link_gain_util(full, 120.0, params), link_gain_util(empty, 120.0, params));
  EXPECT_LT(link_gain_util(empty, 120.0, params), 0.0);
}

TEST(UtilGain, GeneralCaseMatchesModifiedGain) {
  GainParams params;
  const LinkState l = make_link(7, 3, 5, 120);
  EXPECT_DOUBLE_EQ(link_gain_util(l, 120.0, params), link_gain_modified(l, 120.0));
}

TEST(UtilGain, NegativeDifferenceStillPositiveGain) {
  // The W* shift keeps gains positive even with more downstream than
  // upstream queue — the paper's utilization argument.
  GainParams params;
  const LinkState l = make_link(1, 30, 30, 120);
  EXPECT_GT(link_gain_util(l, 120.0, params), 0.0);
}

TEST(UtilGain, FullCaseWinsOverGeneralEvenAtCapacityBoundary) {
  // One below capacity uses the formula; at capacity uses beta.
  GainParams params;
  const LinkState below = make_link(5, 100, 119, 120);
  const LinkState at = make_link(5, 100, 120, 120);
  EXPECT_GT(link_gain_util(below, 120.0, params), 0.0);
  EXPECT_DOUBLE_EQ(link_gain_util(at, 120.0, params), params.beta);
}

TEST(AllLinkGains, ComputesPerLinkWithSharedWStar) {
  GainParams params;
  IntersectionObservation obs;
  obs.links.push_back(make_link(5, 0, 0, 100));
  obs.links.push_back(make_link(0, 0, 0, 120));   // empty -> alpha
  obs.links.push_back(make_link(9, 0, 120, 120)); // full -> beta
  const auto gains = all_link_gains_util(obs, params);
  ASSERT_EQ(gains.size(), 3u);
  EXPECT_DOUBLE_EQ(gains[0], (5.0 + 120.0) * 1.0);  // W* = 120 shared
  EXPECT_DOUBLE_EQ(gains[1], params.alpha);
  EXPECT_DOUBLE_EQ(gains[2], params.beta);
}

TEST(PhaseAggregates, SumMaxAndArgmax) {
  const std::vector<double> gains = {1.0, -2.0, 5.0, 3.0};
  const std::vector<int> phase = {0, 2, 3};
  EXPECT_DOUBLE_EQ(phase_gain(phase, gains), 9.0);      // Eq. (10)
  EXPECT_DOUBLE_EQ(phase_gain_max(phase, gains), 5.0);  // Eq. (11)
  EXPECT_EQ(phase_argmax_link(phase, gains), 2);
}

TEST(PhaseAggregates, EmptyPhase) {
  const std::vector<double> gains = {1.0};
  const std::vector<int> empty;
  EXPECT_DOUBLE_EQ(phase_gain(empty, gains), 0.0);
  EXPECT_EQ(phase_gain_max(empty, gains), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(phase_argmax_link(empty, gains), -1);
}

TEST(PhaseAggregates, ArgmaxTiesResolveToFirst) {
  const std::vector<double> gains = {4.0, 4.0, 4.0};
  const std::vector<int> phase = {1, 0, 2};
  EXPECT_EQ(phase_argmax_link(phase, gains), 1);
}

class UtilGainSweep : public ::testing::TestWithParam<int> {};

TEST_P(UtilGainSweep, MonotoneInQueueLength) {
  // Property: with space downstream and a non-empty lane, the gain is
  // non-decreasing in the lane queue (identity pressure).
  GainParams params;
  const int down = GetParam();
  double prev = -std::numeric_limits<double>::infinity();
  for (int q = 1; q <= 120; ++q) {
    const LinkState l = make_link(q, down, down, 120);
    const double g = link_gain_util(l, 120.0, params);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

INSTANTIATE_TEST_SUITE_P(DownstreamLevels, UtilGainSweep,
                         ::testing::Values(0, 1, 10, 60, 119));

}  // namespace
}  // namespace abp::core
