// Tests for route construction and sampling on the grid.
#include "src/traffic/route.hpp"

#include <gtest/gtest.h>

#include <map>

#include "src/net/grid.hpp"

namespace abp::traffic {
namespace {

net::Network grid3() { return net::build_grid(net::GridConfig{}); }

TEST(Route, StraightPathCrossesGridDimension) {
  const net::Network net = grid3();
  // Entering from the North: the straight path crosses the 3 junctions of
  // its column; from the East: the 3 junctions of its row.
  for (RoadId entry : net.entry_roads_on(net::Side::North)) {
    EXPECT_EQ(straight_path_junctions(net, entry), 3);
  }
  for (RoadId entry : net.entry_roads_on(net::Side::East)) {
    EXPECT_EQ(straight_path_junctions(net, entry), 3);
  }
}

TEST(Route, PureStraightRouteEndsAtOppositeExit) {
  const net::Network net = grid3();
  const RoadId entry = net.entry_roads_on(net::Side::North).front();
  const Route route = make_route(net, entry, net::Turn::Straight, 0);
  EXPECT_EQ(route.junction_count(), 3u);
  const auto roads = roads_of_route(net, route);
  ASSERT_TRUE(roads.has_value());
  // entry + 2 internal + exit = 4 roads.
  ASSERT_EQ(roads->size(), 4u);
  const net::Road& last = net.road(roads->back());
  EXPECT_TRUE(last.is_exit());
  // Exiting southward: the exit road leaves a bottom-row junction's South side.
  EXPECT_EQ(last.departure_side, net::Side::South);
}

TEST(Route, TurnAtEachJunctionIsLegal) {
  const net::Network net = grid3();
  for (RoadId entry : net.entry_roads()) {
    const int junctions = straight_path_junctions(net, entry);
    for (net::Turn turn : {net::Turn::Left, net::Turn::Right}) {
      for (int at = 0; at < junctions; ++at) {
        const Route route = make_route(net, entry, turn, at);
        const auto roads = roads_of_route(net, route);
        ASSERT_TRUE(roads.has_value())
            << net.road(entry).name << " turn " << net::turn_name(turn) << " at " << at;
        EXPECT_TRUE(net.road(roads->back()).is_exit());
      }
    }
  }
}

TEST(Route, TurnSequenceHasExactlyOneTurn) {
  const net::Network net = grid3();
  const RoadId entry = net.entry_roads_on(net::Side::West).front();
  const Route route = make_route(net, entry, net::Turn::Left, 1);
  int turns = 0;
  for (net::Turn t : route.turns) {
    if (t != net::Turn::Straight) ++turns;
  }
  EXPECT_EQ(turns, 1);
  EXPECT_EQ(route.turns[1], net::Turn::Left);
}

TEST(Route, RoadsOfRouteRejectsIllegalCommand) {
  const net::Network net = grid3();
  Route bogus;
  bogus.entry = net.entry_roads().front();
  // Too few turns: the walk ends on a non-exit road.
  bogus.turns = {net::Turn::Straight};
  EXPECT_FALSE(roads_of_route(net, bogus).has_value());
}

TEST(Route, SampleRouteAlwaysLegal) {
  const net::Network net = grid3();
  const TurningTable table = TurningTable::paper();
  Rng rng(99);
  for (RoadId entry : net.entry_roads()) {
    for (int i = 0; i < 200; ++i) {
      const Route route = sample_route(net, entry, table, rng);
      EXPECT_EQ(route.entry, entry);
      EXPECT_TRUE(roads_of_route(net, route).has_value());
    }
  }
}

TEST(Route, SampleMatchesTableIProbabilities) {
  const net::Network net = grid3();
  const TurningTable table = TurningTable::paper();
  Rng rng(123);
  const RoadId entry = net.entry_roads_on(net::Side::North).front();
  int left = 0, right = 0, straight = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const Route route = sample_route(net, entry, table, rng);
    net::Turn taken = net::Turn::Straight;
    for (net::Turn t : route.turns) {
      if (t != net::Turn::Straight) taken = t;
    }
    (taken == net::Turn::Left ? left : taken == net::Turn::Right ? right : straight)++;
  }
  // North column of Table I: right 0.4, left 0.2, straight 0.4.
  EXPECT_NEAR(right / static_cast<double>(kN), 0.4, 0.02);
  EXPECT_NEAR(left / static_cast<double>(kN), 0.2, 0.02);
  EXPECT_NEAR(straight / static_cast<double>(kN), 0.4, 0.02);
}

TEST(Route, TurningJunctionUniformlyDistributed) {
  const net::Network net = grid3();
  const TurningTable table = TurningTable::paper();
  Rng rng(321);
  const RoadId entry = net.entry_roads_on(net::Side::South).front();
  std::map<std::size_t, int> turn_positions;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    const Route route = sample_route(net, entry, table, rng);
    for (std::size_t j = 0; j < route.turns.size(); ++j) {
      if (route.turns[j] != net::Turn::Straight) {
        turn_positions[j]++;
        break;
      }
    }
  }
  ASSERT_EQ(turn_positions.size(), 3u);
  int total = 0;
  for (const auto& [pos, count] : turn_positions) total += count;
  for (const auto& [pos, count] : turn_positions) {
    EXPECT_NEAR(count / static_cast<double>(total), 1.0 / 3.0, 0.02) << pos;
  }
}

TEST(Route, SingleJunctionGridStillRoutes) {
  net::GridConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  const net::Network net = net::build_grid(cfg);
  const TurningTable table = TurningTable::paper();
  Rng rng(5);
  for (RoadId entry : net.entry_roads()) {
    EXPECT_EQ(straight_path_junctions(net, entry), 1);
    for (int i = 0; i < 50; ++i) {
      const Route route = sample_route(net, entry, table, rng);
      EXPECT_TRUE(roads_of_route(net, route).has_value());
      EXPECT_EQ(route.junction_count(), 1u);
    }
  }
}

}  // namespace
}  // namespace abp::traffic
