// Tests for the discrete-time queueing-network simulator (the Section-II
// model): conservation, capacity safety, service rates and work conservation.
#include "src/queuesim/queue_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/factory.hpp"
#include "src/net/grid.hpp"

namespace abp::queuesim {
namespace {

// Controller that always displays one fixed phase (test instrument).
class ConstantController final : public core::SignalController {
 public:
  explicit ConstantController(net::PhaseIndex phase) : phase_(phase) {}
  net::PhaseIndex decide(const core::IntersectionObservation&) override { return phase_; }
  void reset() override {}
  std::string name() const override { return "CONST"; }

 private:
  net::PhaseIndex phase_;
};

// Controller that displays `before` for the first `switch_at` decisions and
// `after` from then on (test instrument for phase-change behavior).
class ScheduledController final : public core::SignalController {
 public:
  ScheduledController(net::PhaseIndex before, net::PhaseIndex after, int switch_at)
      : before_(before), after_(after), switch_at_(switch_at) {}
  net::PhaseIndex decide(const core::IntersectionObservation&) override {
    return decisions_++ < switch_at_ ? before_ : after_;
  }
  void reset() override { decisions_ = 0; }
  std::string name() const override { return "SCHED"; }

 private:
  net::PhaseIndex before_;
  net::PhaseIndex after_;
  int switch_at_;
  int decisions_ = 0;
};

net::Network grid(int n = 1) {
  net::GridConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  return net::build_grid(cfg);
}

std::vector<core::ControllerPtr> constant_controllers(const net::Network& net,
                                                      net::PhaseIndex phase) {
  std::vector<core::ControllerPtr> cs;
  for (std::size_t i = 0; i < net.intersections().size(); ++i) {
    cs.push_back(std::make_unique<ConstantController>(phase));
  }
  return cs;
}

core::ControllerSpec util_spec() {
  core::ControllerSpec spec;
  spec.type = core::ControllerType::UtilBp;
  return spec;
}

traffic::DemandConfig demand_cfg(traffic::PatternKind p = traffic::PatternKind::II) {
  traffic::DemandConfig cfg;
  cfg.pattern = p;
  return cfg;
}

TEST(QueueSim, VehicleConservation) {
  const net::Network net = grid(2);
  traffic::DemandGenerator demand(net, demand_cfg(), 5);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  const stats::RunResult r = sim.finish(1800.0);
  EXPECT_EQ(r.metrics.generated, demand.total_generated());
  EXPECT_EQ(r.metrics.completed + r.metrics.in_network_at_end, r.metrics.entered);
  EXPECT_LE(r.metrics.entered, r.metrics.generated);
  EXPECT_GT(r.metrics.completed, 0u);
}

TEST(QueueSim, AllRedServesNothing) {
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(), 5);
  QueueSim sim(net, QueueSimConfig{}, constant_controllers(net, net::kTransitionPhase),
               demand);
  const stats::RunResult r = sim.finish(600.0);
  EXPECT_EQ(r.metrics.completed, 0u);
  EXPECT_GT(r.metrics.entered, 0u);
  EXPECT_EQ(r.metrics.in_network_at_end, r.metrics.entered);
}

TEST(QueueSim, CapacityNeverExceeded) {
  // Heavy traffic into an all-red junction: entry roads must saturate at W
  // and never exceed it.
  net::GridConfig gcfg;
  gcfg.rows = 1;
  gcfg.cols = 1;
  gcfg.capacity = 25;
  const net::Network net = net::build_grid(gcfg);
  traffic::DemandConfig dcfg = demand_cfg(traffic::PatternKind::I);
  dcfg.interarrival_scale = 0.2;  // 5x heavier
  traffic::DemandGenerator demand(net, dcfg, 9);
  QueueSim sim(net, QueueSimConfig{}, constant_controllers(net, net::kTransitionPhase),
               demand);
  for (int t = 1; t <= 60; ++t) {
    sim.run_until(t * 10.0);
    for (const net::Road& road : net.roads()) {
      ASSERT_LE(sim.road_occupancy(road.id), road.capacity) << road.name;
    }
  }
  const stats::RunResult r = sim.finish(600.0);
  EXPECT_LT(r.metrics.entered, r.metrics.generated);  // some were blocked out
  EXPECT_GT(r.metrics.entry_blocked_time_s, 0.0);
}

TEST(QueueSim, ServiceRateBoundsThroughput) {
  // One junction held in the NS-through phase: each of its 4 links serves at
  // most mu = 1 veh/s, and only vehicles on those lanes move.
  const net::Network net = grid(1);
  traffic::DemandConfig dcfg = demand_cfg(traffic::PatternKind::I);
  dcfg.interarrival_scale = 0.5;
  traffic::DemandGenerator demand(net, dcfg, 3);
  QueueSim sim(net, QueueSimConfig{}, constant_controllers(net, 1), demand);
  const stats::RunResult r = sim.finish(600.0);
  // 4 links * 1 veh/s * 600 s = 2400 crossings max; every completion is one
  // junction crossing in a 1x1 grid.
  EXPECT_LE(r.metrics.completed, 2400u);
  EXPECT_GT(r.metrics.completed, 0u);
}

TEST(QueueSim, SingleVehicleTravelTimeMatchesFreeFlow) {
  // With a trickle of demand and a permanently green through phase, travel
  // time is about two free-flow traversals (entry road + exit road).
  net::GridConfig gcfg;
  gcfg.rows = 1;
  gcfg.cols = 1;
  const net::Network net = net::build_grid(gcfg);
  traffic::DemandConfig dcfg = demand_cfg(traffic::PatternKind::II);
  dcfg.interarrival_scale = 30.0;  // one vehicle per ~3 min per entry
  traffic::DemandGenerator demand(net, dcfg, 11);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  const stats::RunResult r = sim.finish(1800.0);
  ASSERT_GT(r.metrics.completed, 5u);
  const double free_flow = 2.0 * (220.0 / 13.9);
  EXPECT_NEAR(r.metrics.average_travel_time_s(), free_flow, free_flow * 0.5);
  // Essentially no queuing at an empty junction under UTIL-BP.
  EXPECT_LT(r.metrics.average_queuing_time_s(), 10.0);
}

TEST(QueueSim, UtilBpIsWorkConservingAtTheJunction) {
  // Property from Section IV Q2: whenever some movement has queued vehicles
  // and downstream space, UTIL-BP's junction must not sit in a control phase
  // that serves nothing (ambers excepted).
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(traffic::PatternKind::I), 17);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  const IntersectionId junction = net.intersections().front().id;
  int checks = 0;
  int last_violation_t = -10;
  int adjacent_violations = 0;
  for (int t = 1; t <= 900; ++t) {
    sim.run_until(static_cast<double>(t));
    const net::PhaseIndex phase = sim.displayed_phase(junction);
    if (phase == net::kTransitionPhase) continue;  // ambers are not idling
    bool any_queued_anywhere = false;
    for (const net::Link& l : net.links()) {
      if (sim.link_queue(l.id) > 0) any_queued_anywhere = true;
    }
    if (!any_queued_anywhere) continue;
    ++checks;
    bool serves_something = false;
    for (LinkId lid :
         net.intersections().front().phases[static_cast<std::size_t>(phase)].links) {
      if (sim.link_queue(lid) > 0) serves_something = true;
    }
    if (!serves_something) {
      // A single idle snapshot is the unavoidable boundary case: the phase's
      // last queued vehicle was served within the sampled mini-slot and the
      // controller reacts at the next decision instant (possibly via an
      // amber, which restarts the clock). *Sustained* idling — a control
      // phase serving nothing in two adjacent mini-slots while other
      // movements wait — would break work conservation (Section IV, Q2).
      if (t == last_violation_t + 1) ++adjacent_violations;
      last_violation_t = t;
    }
  }
  ASSERT_GT(checks, 100);
  EXPECT_EQ(adjacent_violations, 0);
}

TEST(QueueSim, ServiceCreditCapsAtOneBurstOnEmptyQueue) {
  // A movement held green over an empty queue must not bank service: without
  // the burst clamp, fifty green steps would accumulate fifty vehicles of
  // credit and discharge a later platoon far above mu. The cap is one burst,
  // max(1, mu * step): one vehicle per step at the paper's mu = 1, step = 1.
  const net::Network net = grid(1);
  traffic::DemandConfig dcfg = demand_cfg();
  dcfg.interarrival_scale = 1.0e9;  // effectively no arrivals this run
  traffic::DemandGenerator demand(net, dcfg, 5);
  QueueSim sim(net, QueueSimConfig{}, constant_controllers(net, 1), demand);
  sim.run_until(50.0);
  const net::Intersection& node = net.intersections().front();
  ASSERT_FALSE(node.phases[1].links.empty());
  for (LinkId lid : node.phases[1].links) {
    EXPECT_DOUBLE_EQ(sim.link_credit(lid), 1.0) << "link " << lid.index();
  }
  // Movements outside the displayed phase never replenish.
  for (const net::Link& l : net.links()) {
    const auto& phase_links = node.phases[1].links;
    if (std::find(phase_links.begin(), phase_links.end(), l.id) == phase_links.end()) {
      EXPECT_DOUBLE_EQ(sim.link_credit(l.id), 0.0) << "link " << l.id.index();
    }
  }
}

TEST(QueueSim, ServiceCreditBurstScalesWithStep) {
  // With a 2 s mini-slot the burst is mu * step = 2 vehicles, so an idle
  // green movement banks exactly one mini-slot's worth, never more.
  const net::Network net = grid(1);
  traffic::DemandConfig dcfg = demand_cfg();
  dcfg.interarrival_scale = 1.0e9;
  traffic::DemandGenerator demand(net, dcfg, 5);
  QueueSim sim(net, QueueSimConfig{.step_s = 2.0, .control_interval_s = 2.0},
               constant_controllers(net, 1), demand);
  sim.run_until(40.0);
  for (LinkId lid : net.intersections().front().phases[1].links) {
    EXPECT_DOUBLE_EQ(sim.link_credit(lid), 2.0) << "link " << lid.index();
  }
}

TEST(QueueSim, PhaseChangeCutsBankedCredit) {
  // Losing green forfeits banked service credit: after the controller swaps
  // phases, the links that lost green restart from zero credit while the
  // newly green links hold exactly one step's replenishment.
  const net::Network net = grid(1);
  traffic::DemandConfig dcfg = demand_cfg();
  dcfg.interarrival_scale = 1.0e9;
  traffic::DemandGenerator demand(net, dcfg, 5);
  std::vector<core::ControllerPtr> cs;
  // c1 (NS straight + easy turn) for ten decisions, then c3 (EW): the axes
  // are disjoint, so every c1 link loses green at the switch.
  cs.push_back(std::make_unique<ScheduledController>(1, 3, 10));
  QueueSim sim(net, QueueSimConfig{}, std::move(cs), demand);

  const net::Intersection& node = net.intersections().front();
  const auto& before_links = node.phases[1].links;
  const auto& after_links = node.phases[3].links;
  std::vector<LinkId> lost;  // green in c1, red in c3
  for (LinkId lid : before_links) {
    if (std::find(after_links.begin(), after_links.end(), lid) == after_links.end()) {
      lost.push_back(lid);
    }
  }
  ASSERT_FALSE(lost.empty());

  sim.run_until(10.0);  // decisions at t=0..9 all display c1
  for (LinkId lid : lost) ASSERT_DOUBLE_EQ(sim.link_credit(lid), 1.0);

  sim.run_until(11.0);  // decision at t=10 switches to c3
  ASSERT_EQ(sim.displayed_phase(node.id), 3);
  for (LinkId lid : lost) {
    EXPECT_DOUBLE_EQ(sim.link_credit(lid), 0.0) << "link " << lid.index();
  }
  // The newly green movements were cut too, then replenished once.
  for (LinkId lid : after_links) {
    EXPECT_DOUBLE_EQ(sim.link_credit(lid), 1.0) << "link " << lid.index();
  }
}

TEST(QueueSim, DeterministicReplay) {
  const net::Network net = grid(2);
  auto run_once = [&]() {
    traffic::DemandGenerator demand(net, demand_cfg(traffic::PatternKind::III), 23);
    QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
    return sim.finish(900.0);
  };
  const stats::RunResult a = run_once();
  const stats::RunResult b = run_once();
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_DOUBLE_EQ(a.metrics.average_queuing_time_s(), b.metrics.average_queuing_time_s());
  ASSERT_EQ(a.phase_traces.size(), b.phase_traces.size());
  for (std::size_t i = 0; i < a.phase_traces.size(); ++i) {
    ASSERT_EQ(a.phase_traces[i].samples().size(), b.phase_traces[i].samples().size());
  }
}

TEST(QueueSim, WatchesProduceSeries) {
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(), 29);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  const RoadId east_in = net.intersections().front().incoming_on(net::Side::East);
  sim.watch_road(east_in, "east");
  const stats::RunResult r = sim.finish(600.0);
  ASSERT_EQ(r.road_series.size(), 1u);
  EXPECT_EQ(r.road_series[0].name(), "east");
  // Default sampling every 10 s.
  EXPECT_NEAR(static_cast<double>(r.road_series[0].size()), 60.0, 2.0);
}

TEST(QueueSim, PhaseTracesCoverRun) {
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(), 31);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  const stats::RunResult r = sim.finish(600.0);
  ASSERT_EQ(r.phase_traces.size(), 1u);
  EXPECT_FALSE(r.phase_traces[0].empty());
  EXPECT_DOUBLE_EQ(r.phase_traces[0].end_time(), 600.0);
}

TEST(QueueSim, RejectsBadConstruction) {
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(), 1);
  EXPECT_THROW(QueueSim(net, QueueSimConfig{.step_s = 0.0},
                        core::make_controllers(util_spec(), net), demand),
               std::invalid_argument);
  EXPECT_THROW(QueueSim(net, QueueSimConfig{.step_s = 2.0, .control_interval_s = 1.0},
                        core::make_controllers(util_spec(), net), demand),
               std::invalid_argument);
  EXPECT_THROW(QueueSim(net, QueueSimConfig{}, {}, demand), std::invalid_argument);
  EXPECT_THROW(QueueSim(net, QueueSimConfig{.threads = 0},
                        core::make_controllers(util_spec(), net), demand),
               std::invalid_argument);
}

TEST(QueueSim, ParallelSweepMatchesSerialStateExactly) {
  // Beyond the golden metric pins: the full observable mid-run state (every
  // movement queue, every road occupancy, every banked credit, every phase)
  // must be identical between the serial and the threaded sweep at every
  // sampled instant.
  const net::Network net = grid(2);
  auto make_sim = [&](int threads, traffic::DemandGenerator& demand) {
    QueueSimConfig cfg;
    cfg.threads = threads;
    return QueueSim(net, cfg, core::make_controllers(util_spec(), net), demand);
  };
  traffic::DemandGenerator demand_a(net, demand_cfg(traffic::PatternKind::I), 41);
  traffic::DemandGenerator demand_b(net, demand_cfg(traffic::PatternKind::I), 41);
  QueueSim serial = make_sim(1, demand_a);
  QueueSim threaded = make_sim(3, demand_b);
  for (int t = 1; t <= 300; ++t) {
    serial.run_until(static_cast<double>(t));
    threaded.run_until(static_cast<double>(t));
    ASSERT_EQ(serial.vehicles_in_network(), threaded.vehicles_in_network()) << t;
    for (const net::Road& road : net.roads()) {
      ASSERT_EQ(serial.road_occupancy(road.id), threaded.road_occupancy(road.id))
          << road.name << " t=" << t;
      ASSERT_EQ(serial.queued_on_road(road.id), threaded.queued_on_road(road.id))
          << road.name << " t=" << t;
    }
    for (const net::Link& l : net.links()) {
      ASSERT_EQ(serial.link_queue(l.id), threaded.link_queue(l.id)) << t;
      ASSERT_EQ(serial.link_credit(l.id), threaded.link_credit(l.id)) << t;
    }
    for (const net::Intersection& node : net.intersections()) {
      ASSERT_EQ(serial.displayed_phase(node.id), threaded.displayed_phase(node.id)) << t;
    }
  }
}

TEST(QueueSim, FinishIsTerminal) {
  const net::Network net = grid(1);
  traffic::DemandGenerator demand(net, demand_cfg(), 1);
  QueueSim sim(net, QueueSimConfig{}, core::make_controllers(util_spec(), net), demand);
  sim.finish(60.0);
  EXPECT_THROW(sim.run_until(120.0), std::logic_error);
}

}  // namespace
}  // namespace abp::queuesim
