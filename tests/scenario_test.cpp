// Tests for scenario assembly and the paper-defaults factory.
#include "src/scenario/scenario.hpp"

#include <gtest/gtest.h>

namespace abp::scenario {
namespace {

TEST(Scenario, PaperDefaultsMatchEvaluationSection) {
  const ScenarioConfig cfg =
      paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp);
  EXPECT_EQ(cfg.grid.rows, 3);
  EXPECT_EQ(cfg.grid.cols, 3);
  EXPECT_EQ(cfg.grid.capacity, 120);
  EXPECT_DOUBLE_EQ(cfg.grid.service_rate, 1.0);
  EXPECT_DOUBLE_EQ(cfg.controller.util.alpha, -1.0);
  EXPECT_DOUBLE_EQ(cfg.controller.util.beta, -2.0);
  EXPECT_DOUBLE_EQ(cfg.controller.util.amber_duration_s, 4.0);
  EXPECT_EQ(cfg.controller.util.gstar_policy, core::GStarPolicy::WStarMu);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 3600.0);
  EXPECT_DOUBLE_EQ(paper_scenario(traffic::PatternKind::Mixed, core::ControllerType::CapBp)
                       .duration_s,
                   4.0 * 3600.0);
}

TEST(Scenario, FixedSlotPeriodPropagates) {
  const ScenarioConfig cfg =
      paper_scenario(traffic::PatternKind::II, core::ControllerType::CapBp, 22.0);
  EXPECT_DOUBLE_EQ(cfg.controller.fixed_slot.period_s, 22.0);
  EXPECT_DOUBLE_EQ(cfg.controller.fixed_slot.amber_duration_s, 4.0);
}

class ScenarioControllers : public ::testing::TestWithParam<core::ControllerType> {};

TEST_P(ScenarioControllers, MicroRunProducesTraffic) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::II, GetParam());
  cfg.duration_s = 300.0;
  cfg.seed = 3;
  const stats::RunResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.entered, 100u);
  EXPECT_GT(r.metrics.completed, 0u);
  EXPECT_EQ(r.phase_traces.size(), 9u);
  EXPECT_DOUBLE_EQ(r.duration_s, 300.0);
}

TEST_P(ScenarioControllers, QueueRunProducesTraffic) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::II, GetParam());
  cfg.simulator = SimulatorKind::Queue;
  cfg.duration_s = 300.0;
  cfg.seed = 3;
  const stats::RunResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.entered, 100u);
  EXPECT_GT(r.metrics.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ScenarioControllers,
                         ::testing::Values(core::ControllerType::UtilBp,
                                           core::ControllerType::CapBp,
                                           core::ControllerType::OriginalBp,
                                           core::ControllerType::FixedTime));

TEST(Scenario, WatchesResolveGridCoordinates) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp);
  cfg.duration_s = 120.0;
  cfg.watches.push_back({.row = 0, .col = 2, .side = net::Side::East, .name = "fig5"});
  const stats::RunResult r = run_scenario(cfg);
  ASSERT_EQ(r.road_series.size(), 1u);
  EXPECT_EQ(r.road_series[0].name(), "fig5");
  EXPECT_GT(r.road_series[0].size(), 5u);
}

TEST(Scenario, InvalidWatchThrows) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::I, core::ControllerType::UtilBp);
  cfg.watches.push_back({.row = 9, .col = 9, .side = net::Side::East, .name = "bad"});
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, SameSeedReproduces) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::III, core::ControllerType::UtilBp);
  cfg.duration_s = 300.0;
  cfg.seed = 77;
  const stats::RunResult a = run_scenario(cfg);
  const stats::RunResult b = run_scenario(cfg);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_DOUBLE_EQ(a.metrics.average_queuing_time_s(), b.metrics.average_queuing_time_s());
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig cfg = paper_scenario(traffic::PatternKind::III, core::ControllerType::UtilBp);
  cfg.duration_s = 300.0;
  cfg.seed = 1;
  const stats::RunResult a = run_scenario(cfg);
  cfg.seed = 2;
  const stats::RunResult b = run_scenario(cfg);
  EXPECT_NE(a.metrics.entered, b.metrics.entered);
}

}  // namespace
}  // namespace abp::scenario
