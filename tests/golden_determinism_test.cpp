// Golden determinism pins for the hot-path refactors.
//
// Perf work on the simulators (topology indexing, active-vehicle tracking,
// O(1) lane queues, observation memoization) must be *provably* behavior
// preserving: for a fixed seed, both simulators must produce bit-identical
// RunResult metrics before and after any such refactor. These tests pin the
// exact metric values of a 2x2-grid run for each simulator, plus run-to-run
// determinism.
//
// The microscopic run deliberately uses an imperfect sensor model: with
// detection_probability < 1, measure_queue() draws one Bernoulli per *truly
// queued vehicle* per reading, so the RNG stream consumption depends on every
// queue count the simulator produces. Any refactor that perturbs queue
// counting, observation order, or RNG call order shifts the sensor stream and
// changes these numbers. Dawdling noise comes from per-road counter-based
// streams (StreamRng), so the pins additionally assert that the parallel
// sweeps are bit-identical at every thread count — the ThreadInvariance
// tests run the same fixed seed at 1, 2 and 8 threads (both
// MicroSimConfig::threads and QueueSimConfig::threads) and demand equal
// metrics to the last bit.
//
// If a deliberate behavior change invalidates the pins, re-capture them with
// the printed actuals — but only after convincing yourself the change is
// intended (see docs/PERFORMANCE.md). The micro pins were last re-captured
// for PR 2, which moved dawdling off the sensor RNG stream onto per-road
// StreamRngs, reordered the tick into junction phase + parallel sweep, and
// switched the car-following update to the synchronous Krauss (1998) form
// (followers react to the leader's previous-step state).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/scenario/scenario.hpp"

namespace abp {
namespace {

constexpr std::uint64_t kSeed = 7;

scenario::ScenarioConfig golden_config(scenario::SimulatorKind sim) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = 2;
  cfg.grid.cols = 2;
  cfg.seed = kSeed;
  cfg.simulator = sim;
  cfg.duration_s = 900.0;
  if (sim == scenario::SimulatorKind::Micro) {
    // Imperfect detectors: ties the RNG stream to every queue reading.
    cfg.micro.sensor.detection_probability = 0.95;
    cfg.micro.sensor.dropout_probability = 0.01;
  }
  return cfg;
}

void expect_identical(const stats::NetworkMetrics& a, const stats::NetworkMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.entered, b.entered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.in_network_at_end, b.in_network_at_end);
  EXPECT_EQ(a.queuing_time_s.count(), b.queuing_time_s.count());
  EXPECT_EQ(a.travel_time_s.count(), b.travel_time_s.count());
  // Exact double equality on purpose: the refactors under test must preserve
  // the arithmetic bit for bit, not approximately.
  EXPECT_EQ(a.queuing_time_s.mean(), b.queuing_time_s.mean());
  EXPECT_EQ(a.travel_time_s.mean(), b.travel_time_s.mean());
  EXPECT_EQ(a.entry_blocked_time_s, b.entry_blocked_time_s);
}

TEST(GoldenDeterminism, MicroSimRunToRun) {
  const auto a = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  const auto b = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  expect_identical(a.metrics, b.metrics);
}

TEST(GoldenDeterminism, QueueSimRunToRun) {
  const auto a = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  const auto b = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  expect_identical(a.metrics, b.metrics);
}

// Golden values captured from the PR 2 parallel-tick implementation (per-road
// StreamRng dawdling, junction phase + SoA sweep), 2x2 grid, seed 7, 900 s.
TEST(GoldenDeterminism, MicroSimPinnedMetrics) {
  const auto r = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  EXPECT_EQ(r.metrics.generated, 1272u);
  EXPECT_EQ(r.metrics.entered, 1272u);
  EXPECT_EQ(r.metrics.completed, 1155u);
  EXPECT_EQ(r.metrics.in_network_at_end, 117u);
  EXPECT_EQ(r.metrics.queuing_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.travel_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.d6e7d95bc609bp+3);  // 14.71580189
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.26f1826a439f6p+6);   // 73.73584906
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x1.0ap+6);              // 66.5
}

// The parallel sweep must be invisible in the results: same seed, same
// metrics, bit for bit, at every thread count. Work is partitioned by road
// with per-road counter-based dawdle streams, completions are applied in
// exit-road order, and everything cross-road runs in the sequential junction
// phase — so the thread count may only change wall-clock time. Eight threads
// on a smaller machine exercises chunk counts above the core count.
TEST(GoldenDeterminism, MicroSimThreadInvariance) {
  scenario::ScenarioConfig base = golden_config(scenario::SimulatorKind::Micro);
  const auto serial = scenario::run_scenario(base);
  for (int threads : {2, 8}) {
    scenario::ScenarioConfig cfg = base;
    cfg.micro.threads = threads;
    const auto parallel = scenario::run_scenario(cfg);
    SCOPED_TRACE(threads);
    expect_identical(serial.metrics, parallel.metrics);
  }
}

// Same contract for the queue sim's road-partitioned service sweep (PR 3):
// service arbitration runs sequentially in the serial loop's order, the
// parallel passes touch only road-owned state, and completions are applied
// in exit-road order — so the thread count may only change wall-clock time.
// The sweep consumes no randomness at all (demand draws happen in the
// sequential admission phase), which is why these pins are identical to the
// serial values of the pre-parallel implementation, not re-captured.
TEST(GoldenDeterminism, QueueSimThreadInvariance) {
  scenario::ScenarioConfig base = golden_config(scenario::SimulatorKind::Queue);
  const auto serial = scenario::run_scenario(base);
  for (int threads : {2, 8}) {
    scenario::ScenarioConfig cfg = base;
    cfg.queue.threads = threads;
    const auto parallel = scenario::run_scenario(cfg);
    SCOPED_TRACE(threads);
    expect_identical(serial.metrics, parallel.metrics);
  }
}

TEST(GoldenDeterminism, QueueSimPinnedMetrics) {
  const auto r = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  EXPECT_EQ(r.metrics.generated, 1272u);
  EXPECT_EQ(r.metrics.entered, 1272u);
  EXPECT_EQ(r.metrics.completed, 1159u);
  EXPECT_EQ(r.metrics.in_network_at_end, 113u);
  EXPECT_EQ(r.metrics.queuing_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.travel_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.7639f656f1827p+4);  // 23.38915094
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.0b67d95bc609bp+6);   // 66.85141509
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x0p+0);
}

}  // namespace
}  // namespace abp
