// Golden determinism pins for the hot-path refactors.
//
// Perf work on the simulators (topology indexing, active-vehicle tracking,
// O(1) lane queues, observation memoization) must be *provably* behavior
// preserving: for a fixed seed, both simulators must produce bit-identical
// RunResult metrics before and after any such refactor. These tests pin the
// exact metric values of a 2x2-grid run for each simulator, plus run-to-run
// determinism.
//
// The microscopic run deliberately uses an imperfect sensor model: with
// detection_probability < 1, measure_queue() draws one Bernoulli per *truly
// queued vehicle* per reading, so the RNG stream consumption depends on every
// queue count the simulator produces. Any refactor that perturbs queue
// counting, observation order, or RNG call order shifts the dawdle stream and
// changes these numbers.
//
// If a deliberate behavior change invalidates the pins, re-capture them with
// the printed actuals — but only after convincing yourself the change is
// intended (see docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/scenario/scenario.hpp"

namespace abp {
namespace {

constexpr std::uint64_t kSeed = 7;

scenario::ScenarioConfig golden_config(scenario::SimulatorKind sim) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.grid.rows = 2;
  cfg.grid.cols = 2;
  cfg.seed = kSeed;
  cfg.simulator = sim;
  cfg.duration_s = 900.0;
  if (sim == scenario::SimulatorKind::Micro) {
    // Imperfect detectors: ties the RNG stream to every queue reading.
    cfg.micro.sensor.detection_probability = 0.95;
    cfg.micro.sensor.dropout_probability = 0.01;
  }
  return cfg;
}

void expect_identical(const stats::NetworkMetrics& a, const stats::NetworkMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.entered, b.entered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.in_network_at_end, b.in_network_at_end);
  EXPECT_EQ(a.queuing_time_s.count(), b.queuing_time_s.count());
  EXPECT_EQ(a.travel_time_s.count(), b.travel_time_s.count());
  // Exact double equality on purpose: the refactors under test must preserve
  // the arithmetic bit for bit, not approximately.
  EXPECT_EQ(a.queuing_time_s.mean(), b.queuing_time_s.mean());
  EXPECT_EQ(a.travel_time_s.mean(), b.travel_time_s.mean());
  EXPECT_EQ(a.entry_blocked_time_s, b.entry_blocked_time_s);
}

TEST(GoldenDeterminism, MicroSimRunToRun) {
  const auto a = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  const auto b = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  expect_identical(a.metrics, b.metrics);
}

TEST(GoldenDeterminism, QueueSimRunToRun) {
  const auto a = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  const auto b = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  expect_identical(a.metrics, b.metrics);
}

// Golden values captured from the pre-refactor seed implementation
// (commit eb487fb plus the build system), 2x2 grid, seed 7, 900 s.
TEST(GoldenDeterminism, MicroSimPinnedMetrics) {
  const auto r = scenario::run_scenario(golden_config(scenario::SimulatorKind::Micro));
  EXPECT_EQ(r.metrics.generated, 1272u);
  EXPECT_EQ(r.metrics.entered, 1272u);
  EXPECT_EQ(r.metrics.completed, 1153u);
  EXPECT_EQ(r.metrics.in_network_at_end, 119u);
  EXPECT_EQ(r.metrics.queuing_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.travel_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.bae168a772508p+3);  // 13.84001572
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.2017588daf7f3p+6);   // 72.02279874
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x1.0ap+6);              // 66.5
}

TEST(GoldenDeterminism, QueueSimPinnedMetrics) {
  const auto r = scenario::run_scenario(golden_config(scenario::SimulatorKind::Queue));
  EXPECT_EQ(r.metrics.generated, 1272u);
  EXPECT_EQ(r.metrics.entered, 1272u);
  EXPECT_EQ(r.metrics.completed, 1159u);
  EXPECT_EQ(r.metrics.in_network_at_end, 113u);
  EXPECT_EQ(r.metrics.queuing_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.travel_time_s.count(), 1272u);
  EXPECT_EQ(r.metrics.queuing_time_s.mean(), 0x1.7639f656f1827p+4);  // 23.38915094
  EXPECT_EQ(r.metrics.travel_time_s.mean(), 0x1.0b67d95bc609bp+6);   // 66.85141509
  EXPECT_EQ(r.metrics.entry_blocked_time_s, 0x0p+0);
}

}  // namespace
}  // namespace abp
