// End-to-end gate for the online changepoint subsystem: the detection-event
// stream of the library's incident scenario is pinned exactly, the clean
// baseline must stay alarm-free over a full hour, and the event stream must
// carry every determinism guarantee of the repository (thread invariance,
// batch-vs-serial bit-equality, monitor passivity). Regenerate the pin below
// from `abp_cli --scenario scenarios/incident_detection.json` when a change
// is supposed to move detection trajectories.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "src/scenario/scenario_io.hpp"
#include "src/stats/run_result.hpp"

namespace abp::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioConfig Load(const char* name) {
  return load_scenario_file((fs::path(ABP_SCENARIO_DIR) / name).string());
}

void ExpectSameEvents(const stats::DetectionReport& a, const stats::DetectionReport& b) {
  EXPECT_EQ(a.samples, b.samples);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].row, b.events[i].row);
    EXPECT_EQ(a.events[i].col, b.events[i].col);
    EXPECT_EQ(a.events[i].direction, b.events[i].direction);
    EXPECT_EQ(a.events[i].statistic, b.events[i].statistic);
    EXPECT_EQ(a.events[i].links, b.events[i].links);
  }
}

TEST(ChangepointTest, IncidentDetectionEventsArePinnedExactly) {
  // Golden pin of the fused event stream on the library incident scenario.
  // The center closure starts at t=600 s; the first fused event lands three
  // detection windows later — the bounded-delay acceptance bar.
  const stats::RunResult r = run_scenario(Load("incident_detection.json"));
  struct Expected {
    double time_s;
    int row, col, direction;
    std::vector<int> links;
  };
  const std::vector<Expected> expected = {
      {779.0, 1, 2, +1, {1, 4, 7}},
      {1079.0, 1, 2, +1, {6, 10}},
      {1379.0, 1, 2, +1, {1, 5}},
      {1559.0, 0, 2, +1, {7, 8}},
      {1679.0, 1, 1, +1, {4, 5}},
  };
  EXPECT_EQ(r.detections.samples, 16200u);
  ASSERT_EQ(r.detections.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(r.detections.events[i].time_s, expected[i].time_s);
    EXPECT_EQ(r.detections.events[i].row, expected[i].row);
    EXPECT_EQ(r.detections.events[i].col, expected[i].col);
    EXPECT_EQ(r.detections.events[i].direction, expected[i].direction);
    EXPECT_EQ(r.detections.events[i].links, expected[i].links);
    EXPECT_GT(r.detections.events[i].statistic, 10.0);  // the config threshold
  }
}

TEST(ChangepointTest, CleanBaselineRaisesNoAlarms) {
  // False-alarm gate: the stationary hour-long baseline with the detector at
  // its defaults must stay completely quiet.
  ScenarioConfig cfg = Load("baseline_3x3.json");
  cfg.detector.enabled = true;
  const stats::RunResult r = run_scenario(cfg);
  EXPECT_GT(r.detections.samples, 0u);
  EXPECT_TRUE(r.detections.events.empty());
}

TEST(ChangepointTest, MonitorOnlyDetectorIsPassive) {
  // With adapt off the monitor observes the same readings the controller
  // consumes and must not perturb the trajectory: metrics bit-identical to
  // the detector-free run.
  ScenarioConfig cfg = Load("incident_detection.json");
  cfg.detector.adapt = false;
  const stats::RunResult watched = run_scenario(cfg);
  cfg.detector.enabled = false;
  const stats::RunResult plain = run_scenario(cfg);
  EXPECT_EQ(watched.metrics.completed, plain.metrics.completed);
  EXPECT_EQ(watched.metrics.average_queuing_time_s(),
            plain.metrics.average_queuing_time_s());
  EXPECT_EQ(watched.metrics.average_travel_time_s(),
            plain.metrics.average_travel_time_s());
  EXPECT_FALSE(watched.detections.events.empty());
  EXPECT_TRUE(plain.detections.events.empty());
  EXPECT_EQ(plain.detections.samples, 0u);
}

TEST(ChangepointTest, DetectionIsThreadInvariant) {
  // The monitor runs in the sequential control phase, so the event stream —
  // and the adaptive trajectory it steers — must be bit-identical at every
  // tick-thread count.
  ScenarioConfig cfg = Load("incident_detection.json");
  const stats::RunResult base = run_scenario(cfg);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    cfg.micro.threads = threads;
    cfg.queue.threads = threads;
    const stats::RunResult r = run_scenario(cfg);
    EXPECT_EQ(r.metrics.completed, base.metrics.completed);
    EXPECT_EQ(r.metrics.average_queuing_time_s(),
              base.metrics.average_queuing_time_s());
    ExpectSameEvents(r.detections, base.detections);
  }
}

TEST(ChangepointTest, BatchReplicationsMatchSerialRunsWithActiveDetector) {
  ScenarioConfig cfg = Load("incident_detection.json");
  cfg.duration_s = 900.0;
  const std::vector<ScenarioConfig> configs = exp::replication_configs(cfg, 3);
  exp::ExperimentRunner runner({.jobs = 2, .allow_oversubscribe = true});
  const std::vector<stats::RunResult> batch = runner.run(configs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    const stats::RunResult serial = run_scenario(configs[i]);
    EXPECT_EQ(serial.metrics.completed, batch[i].metrics.completed);
    EXPECT_EQ(serial.metrics.average_queuing_time_s(),
              batch[i].metrics.average_queuing_time_s());
    ExpectSameEvents(serial.detections, batch[i].detections);
  }
}

TEST(ChangepointTest, AdaptationRecoversDelayOnTheIncident) {
  // The closed loop must beat the oblivious controller on the incident
  // workload — the re-tune targets exactly this capacity-loss regime.
  ScenarioConfig cfg = Load("incident_detection.json");
  ASSERT_TRUE(cfg.detector.adapt);
  const stats::RunResult adaptive = run_scenario(cfg);
  cfg.detector.adapt = false;
  const stats::RunResult oblivious = run_scenario(cfg);
  EXPECT_LT(adaptive.metrics.average_queuing_time_s(),
            oblivious.metrics.average_queuing_time_s());
}

TEST(ChangepointTest, QueueBackendDetectsTheSurge) {
  // Same subsystem on the other backend: the stadium burst at t=2700 s must
  // register within a few detection windows, and nothing may fire before it.
  const stats::RunResult r = run_scenario(Load("surge_detection.json"));
  ASSERT_FALSE(r.detections.events.empty());
  const stats::DetectionEvent& first = r.detections.events.front();
  EXPECT_GT(first.time_s, 2700.0);
  EXPECT_LE(first.time_s, 3000.0);
  EXPECT_EQ(first.direction, +1);
}

}  // namespace
}  // namespace abp::scenario
