// Deep bit-exact comparison of two RunResults, shared by the refactor pins
// (memo-table elision) and the shard-invariance suite. Exact double equality
// on purpose: the transformations under test must preserve the arithmetic
// bit for bit, not approximately.
#pragma once

#include <gtest/gtest.h>

#include "src/stats/run_result.hpp"

namespace abp::testing {

inline void expect_metrics_identical(const stats::NetworkMetrics& a,
                                     const stats::NetworkMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.entered, b.entered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.in_network_at_end, b.in_network_at_end);
  EXPECT_EQ(a.queuing_time_s.count(), b.queuing_time_s.count());
  EXPECT_EQ(a.travel_time_s.count(), b.travel_time_s.count());
  EXPECT_EQ(a.queuing_time_s.mean(), b.queuing_time_s.mean());
  EXPECT_EQ(a.travel_time_s.mean(), b.travel_time_s.mean());
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(a.queuing_time_s.quantile(q), b.queuing_time_s.quantile(q)) << "q=" << q;
    EXPECT_EQ(a.travel_time_s.quantile(q), b.travel_time_s.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.entry_blocked_time_s, b.entry_blocked_time_s);
}

inline void expect_series_identical(const stats::TimeSeries& a,
                                    const stats::TimeSeries& b) {
  ASSERT_EQ(a.times().size(), b.times().size());
  for (std::size_t i = 0; i < a.times().size(); ++i) {
    EXPECT_EQ(a.times()[i], b.times()[i]) << "sample " << i;
    EXPECT_EQ(a.values()[i], b.values()[i]) << "sample " << i;
  }
}

inline void expect_results_identical(const stats::RunResult& a,
                                     const stats::RunResult& b) {
  expect_metrics_identical(a.metrics, b.metrics);
  EXPECT_EQ(a.duration_s, b.duration_s);
  expect_series_identical(a.in_network_series, b.in_network_series);
  ASSERT_EQ(a.road_series.size(), b.road_series.size());
  for (std::size_t i = 0; i < a.road_series.size(); ++i) {
    SCOPED_TRACE("road series " + std::to_string(i));
    expect_series_identical(a.road_series[i], b.road_series[i]);
  }
  ASSERT_EQ(a.phase_traces.size(), b.phase_traces.size());
  for (std::size_t i = 0; i < a.phase_traces.size(); ++i) {
    const auto& ta = a.phase_traces[i].samples();
    const auto& tb = b.phase_traces[i].samples();
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << i;
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].time, tb[j].time) << "trace " << i << " sample " << j;
      EXPECT_EQ(ta[j].phase, tb[j].phase) << "trace " << i << " sample " << j;
    }
  }
  EXPECT_EQ(a.detections.samples, b.detections.samples);
  ASSERT_EQ(a.detections.events.size(), b.detections.events.size());
  for (std::size_t i = 0; i < a.detections.events.size(); ++i) {
    const stats::DetectionEvent& ea = a.detections.events[i];
    const stats::DetectionEvent& eb = b.detections.events[i];
    EXPECT_EQ(ea.time_s, eb.time_s) << "event " << i;
    EXPECT_EQ(ea.row, eb.row) << "event " << i;
    EXPECT_EQ(ea.col, eb.col) << "event " << i;
    EXPECT_EQ(ea.direction, eb.direction) << "event " << i;
    EXPECT_EQ(ea.statistic, eb.statistic) << "event " << i;
    EXPECT_EQ(ea.links, eb.links) << "event " << i;
  }
}

}  // namespace abp::testing
