// Unit tests for the streaming changepoint machinery: the single-stream
// two-sided CUSUM detector and the per-junction multi-stream monitor that
// fuses link alarms into junction events.
#include "src/detect/cusum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/observation.hpp"
#include "src/detect/junction_monitor.hpp"

namespace abp {
namespace {

detect::CusumConfig test_config() {
  detect::CusumConfig cfg;
  cfg.warmup_samples = 8;
  cfg.drift = 0.5;
  cfg.threshold = 12.0;
  cfg.min_sigma = 1.0;
  return cfg;
}

TEST(CusumDetector, WarmupIsSilent) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(d.warmed_up());
    EXPECT_EQ(d.update(10.0), 0);
  }
  EXPECT_TRUE(d.warmed_up());
}

TEST(CusumDetector, BaselineEstimatesMatchTheWarmupData) {
  detect::CusumDetector d(test_config());
  for (int i = 1; i <= 8; ++i) d.update(static_cast<double>(i));
  EXPECT_NEAR(d.baseline_mean(), 4.5, 1e-12);
  // Population variance of 1..8 is 5.25.
  EXPECT_NEAR(d.baseline_sigma(), std::sqrt(5.25), 1e-12);
}

TEST(CusumDetector, FlatWarmupSigmaIsFlooredAtMinSigma) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(5.0);
  EXPECT_EQ(d.baseline_sigma(), 1.0);
}

TEST(CusumDetector, UpwardStepIsFlaggedPlusOne) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(10.0);
  // Sigma floors at 1, so the step to 20 standardizes to z = 10 and g+
  // accumulates 9.5 per sample: below threshold after one, above after two.
  EXPECT_EQ(d.update(20.0), 0);
  EXPECT_EQ(d.update(20.0), +1);
  EXPECT_GT(d.statistic(), d.config().threshold);
}

TEST(CusumDetector, DownwardStepIsFlaggedMinusOne) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(10.0);
  EXPECT_EQ(d.update(0.0), 0);
  EXPECT_EQ(d.update(0.0), -1);
}

TEST(CusumDetector, WobbleBelowDriftNeverAccumulates) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(10.0);
  // |z| = 0.4 < drift = 0.5 on every sample: both statistics stay clamped
  // at zero no matter how long the wobble lasts.
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(d.update(i % 2 == 0 ? 10.4 : 9.6), 0);
  }
  EXPECT_EQ(d.statistic(), 0.0);
}

TEST(CusumDetector, DetectionReArmsIntoWarmupOnTheNewRegime) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(10.0);
  while (d.update(30.0) == 0) {
  }
  // Post-detection the detector re-baselines: warmup runs again, this time
  // over the shifted level.
  EXPECT_FALSE(d.warmed_up());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(d.update(30.0), 0);
  EXPECT_TRUE(d.warmed_up());
  EXPECT_NEAR(d.baseline_mean(), 30.0, 1e-12);
  // The new regime itself no longer alarms...
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(d.update(30.0), 0);
  // ...but its restoration registers as a downward shift.
  int flagged = 0;
  for (int i = 0; i < 10 && flagged == 0; ++i) flagged = d.update(10.0);
  EXPECT_EQ(flagged, -1);
}

TEST(CusumDetector, ResetRestoresTheInitialState) {
  detect::CusumDetector d(test_config());
  for (int i = 0; i < 8; ++i) d.update(10.0);
  d.update(25.0);
  d.reset();
  EXPECT_FALSE(d.warmed_up());
  EXPECT_EQ(d.statistic(), 0.0);
  // A reset detector replays the fresh-construction behavior bit for bit.
  detect::CusumDetector fresh(test_config());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(d.update(10.0), fresh.update(10.0));
  }
  EXPECT_EQ(d.baseline_mean(), fresh.baseline_mean());
  EXPECT_EQ(d.update(20.0), 0);
  EXPECT_EQ(d.update(20.0), +1);
}

// --- JunctionMonitor: window aggregation, fusion, cooldown ---

core::IntersectionObservation make_obs(double time, const std::vector<int>& queues) {
  core::IntersectionObservation obs;
  obs.time = time;
  obs.links.resize(queues.size());
  for (std::size_t i = 0; i < queues.size(); ++i) obs.links[i].queue = queues[i];
  return obs;
}

detect::DetectorConfig monitor_config() {
  detect::DetectorConfig cfg;
  cfg.enabled = true;
  cfg.window_samples = 1;  // every decision is its own window
  cfg.warmup_samples = 6;
  cfg.drift = 0.5;
  cfg.threshold = 10.0;
  cfg.min_sigma = 1.0;
  cfg.min_links = 2;
  cfg.fuse_window_s = 5.0;
  cfg.cooldown_s = 100.0;
  return cfg;
}

TEST(JunctionMonitor, SingleLinkAlarmIsNotAJunctionEvent) {
  detect::JunctionMonitor monitor(monitor_config(), 3, 1, 2);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) EXPECT_EQ(monitor.update(make_obs(t++, {5, 5, 5})), nullptr);
  // Only link 0 shifts: it alarms, stays pending, ages out — with
  // min_links = 2 the junction never fires.
  for (int i = 0; i < 40; ++i) EXPECT_EQ(monitor.update(make_obs(t++, {50, 5, 5})), nullptr);
  EXPECT_TRUE(monitor.events().empty());
  EXPECT_EQ(monitor.samples(), 46u);
}

TEST(JunctionMonitor, CoincidentLinkAlarmsFuseIntoOneEvent) {
  detect::JunctionMonitor monitor(monitor_config(), 3, 1, 2);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) monitor.update(make_obs(t++, {5, 5, 5}));
  const stats::DetectionEvent* event = nullptr;
  for (int i = 0; i < 10 && event == nullptr; ++i) {
    event = monitor.update(make_obs(t++, {50, 5, 50}));
  }
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->row, 1);
  EXPECT_EQ(event->col, 2);
  EXPECT_EQ(event->direction, +1);
  EXPECT_GT(event->statistic, monitor.config().threshold);
  // The implicated set names exactly the shifted links, ascending.
  ASSERT_EQ(event->links.size(), 2u);
  EXPECT_EQ(event->links[0], 0);
  EXPECT_EQ(event->links[1], 2);
  EXPECT_EQ(monitor.events().size(), 1u);
}

TEST(JunctionMonitor, CooldownSuppressesTheFollowUpAndThenExpires) {
  detect::DetectorConfig cfg = monitor_config();
  cfg.cooldown_s = 50.0;
  detect::JunctionMonitor monitor(cfg, 2, 0, 0);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) monitor.update(make_obs(t++, {5, 5}));
  // First shift: both links alarm and fuse.
  while (monitor.events().empty()) monitor.update(make_obs(t++, {50, 50}));
  const double first_time = monitor.events().front().time_s;
  // Let the detectors re-baseline onto the new level, then shift again while
  // still inside the cooldown: the alarms go pending but no event fuses.
  for (int i = 0; i < 8; ++i) monitor.update(make_obs(t++, {50, 50}));
  for (int i = 0; i < 10; ++i) monitor.update(make_obs(t++, {120, 120}));
  EXPECT_EQ(monitor.events().size(), 1u);
  // Past the cooldown a fresh shift fuses into a second event.
  while (t < first_time + cfg.cooldown_s + 10.0) monitor.update(make_obs(t++, {120, 120}));
  while (monitor.events().size() < 2u) monitor.update(make_obs(t++, {5, 5}));
  EXPECT_EQ(monitor.events().back().direction, -1);
  EXPECT_GE(monitor.events().back().time_s, first_time + cfg.cooldown_s);
}

TEST(JunctionMonitor, WindowMeansAreWhatTheDetectorsSee) {
  detect::DetectorConfig cfg = monitor_config();
  cfg.window_samples = 4;
  cfg.min_links = 1;
  detect::JunctionMonitor monitor(cfg, 1, 0, 0);
  double t = 0.0;
  // 6 windows x 4 samples of a cycle alternating 0/0/20/20: the per-window
  // mean is flat at 10, so the cycle never reaches the detector.
  for (int w = 0; w < 6; ++w) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(monitor.update(make_obs(t++, {s < 2 ? 0 : 20})), nullptr);
    }
  }
  // A level shift of the same cycle (+30 on every reading) moves the window
  // mean and is detected.
  const stats::DetectionEvent* event = nullptr;
  for (int w = 0; w < 8 && event == nullptr; ++w) {
    for (int s = 0; s < 4 && event == nullptr; ++s) {
      event = monitor.update(make_obs(t++, {(s < 2 ? 0 : 20) + 30}));
    }
  }
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->direction, +1);
}

TEST(JunctionMonitor, ResetRestoresAFreshMonitor) {
  detect::JunctionMonitor monitor(monitor_config(), 2, 0, 1);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) monitor.update(make_obs(t++, {5, 5}));
  while (monitor.events().empty()) monitor.update(make_obs(t++, {60, 60}));
  monitor.reset();
  EXPECT_TRUE(monitor.events().empty());
  EXPECT_EQ(monitor.samples(), 0u);
  // Replays the from-scratch behavior: warmup first, then the same shift
  // fires again even though it fired (and entered cooldown) before reset.
  t = 0.0;
  for (int i = 0; i < 6; ++i) EXPECT_EQ(monitor.update(make_obs(t++, {5, 5})), nullptr);
  while (monitor.events().empty()) monitor.update(make_obs(t++, {60, 60}));
  EXPECT_EQ(monitor.events().size(), 1u);
}

}  // namespace
}  // namespace abp
