// Tests for the streaming statistics accumulators.
#include "src/util/accumulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.hpp"

namespace abp {
namespace {

TEST(Accumulator, EmptyIsZeroed) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NumericallyStableForShiftedData) {
  // Welford must survive a large constant offset without catastrophic
  // cancellation.
  Accumulator acc;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(offset + x);
  EXPECT_NEAR(acc.mean() - offset, 3.0, 1e-6);
  EXPECT_NEAR(acc.variance(), 2.5, 1e-6);
}

TEST(Accumulator, MergeMatchesSingleStream) {
  Rng rng(5);
  Accumulator all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, EmptyIsZeroed) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(SampleSet, MeanAndQuantiles) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Interpolated quartiles of {1,3,5,7,9}.
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSet, QuantileClampsArgument) {
  SampleSet s;
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 4.0);
}

TEST(SampleSet, InsertAfterQueryResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

class AccumulatorRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccumulatorRandomized, AgreesWithDirectComputation) {
  Rng rng(GetParam());
  Accumulator acc;
  std::vector<double> xs;
  const int n = 100 + static_cast<int>(rng.uniform_int(0, 400));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    acc.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(acc.mean(), mean, 1e-9);
  EXPECT_NEAR(acc.variance(), var, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccumulatorRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace abp
