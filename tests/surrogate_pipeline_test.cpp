// The surrogate pipeline's determinism and serialization contract
// (src/surrogate/): the CalibrationProfile JSON round trip is byte-stable
// with scenario_io's strictness (unknown keys and bad scales rejected by
// dotted path), calibration and the full sweep report are bit-identical
// across jobs counts, the spot-check selection is a pure function of
// (ranking, options, seed), and sim::effective_grid applies a profile's
// scales only to enabled queue-backend configs — the guarantee that keeps
// every existing micro golden pin untouched by this subsystem.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/scenario/scenario.hpp"
#include "src/sim/run_setup.hpp"
#include "src/surrogate/calibration_profile.hpp"
#include "src/surrogate/calibrator.hpp"
#include "src/surrogate/sweep.hpp"

namespace abp::surrogate {
namespace {

scenario::ScenarioConfig small_family() {
  scenario::ScenarioConfig cfg = scenario::paper_scenario(
      traffic::PatternKind::II, core::ControllerType::UtilBp);
  cfg.name = "surrogate-family";
  cfg.grid.rows = 2;
  cfg.grid.cols = 2;
  cfg.duration_s = 150.0;
  cfg.seed = 11;
  return cfg;
}

CalibrationOptions quick_calibration(int jobs) {
  CalibrationOptions opt;
  opt.replications = 2;
  opt.passes = 2;
  opt.jobs = jobs;
  // The dev container may be single-vCPU; jobs-invariance is exactly what
  // this test pins, so oversubscribing is the point, not a hazard.
  opt.allow_oversubscribe = true;
  opt.duration_s = 120.0;
  return opt;
}

TEST(SurrogateProfile, RoundTripIsByteStable) {
  CalibrationProfile p;
  p.name = "demo-fit";
  p.scenario = "surrogate-family";
  p.service_scale = 0.75;
  p.transit_scale = 1.5;
  p.capacity_scale = 1.0;
  p.objective = 0.015625;
  p.evaluations = 9;
  p.replications = 2;
  p.duration_s = 120.0;
  p.seed = 11;

  const std::string dumped = dump_profile(p);
  const CalibrationProfile reloaded = load_profile(dumped);
  EXPECT_EQ(dump_profile(reloaded), dumped);
  EXPECT_EQ(reloaded.name, p.name);
  EXPECT_EQ(reloaded.service_scale, p.service_scale);
  EXPECT_EQ(reloaded.transit_scale, p.transit_scale);
  EXPECT_EQ(reloaded.capacity_scale, p.capacity_scale);
  EXPECT_EQ(reloaded.seed, p.seed);
}

TEST(SurrogateProfile, RejectsUnknownKeysAndBadScales) {
  try {
    (void)load_profile(R"({"version": 1, "bogus": 3})");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "bogus: unknown key");
  }
  try {
    (void)load_profile(R"({"version": 1, "service_scale": 0})");
    FAIL() << "zero scale accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "service_scale: must be > 0");
  }
  try {
    (void)load_profile(R"({"version": 2})");
    FAIL() << "future version accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "version: unsupported profile version 2 (this build reads version 1)");
  }
}

TEST(SurrogateGrid, EffectiveGridAppliesOnlyToEnabledQueueConfigs) {
  scenario::ScenarioConfig cfg = small_family();
  cfg.surrogate.enabled = true;
  cfg.surrogate.service_scale = 0.5;
  cfg.surrogate.transit_scale = 2.0;
  cfg.surrogate.capacity_scale = 0.5;

  cfg.simulator = scenario::SimulatorKind::Micro;
  const net::GridConfig micro_grid = sim::effective_grid(cfg);
  EXPECT_EQ(micro_grid.service_rate, cfg.grid.service_rate);
  EXPECT_EQ(micro_grid.speed_limit_mps, cfg.grid.speed_limit_mps);
  EXPECT_EQ(micro_grid.capacity, cfg.grid.capacity);

  cfg.simulator = scenario::SimulatorKind::Queue;
  const net::GridConfig queue_grid = sim::effective_grid(cfg);
  EXPECT_EQ(queue_grid.service_rate, cfg.grid.service_rate * 0.5);
  EXPECT_EQ(queue_grid.speed_limit_mps, cfg.grid.speed_limit_mps / 2.0);
  EXPECT_EQ(queue_grid.capacity, cfg.grid.capacity / 2);

  // The floor: pathological downscales still build a drivable road.
  cfg.surrogate.capacity_scale = 1e-6;
  EXPECT_EQ(sim::effective_grid(cfg).capacity, 1);

  cfg.surrogate.enabled = false;
  EXPECT_EQ(sim::effective_grid(cfg).capacity, cfg.grid.capacity);
}

TEST(SurrogateCalibration, FitIsBitIdenticalAcrossJobsCounts) {
  const scenario::ScenarioConfig family = small_family();
  const CalibrationProfile serial = calibrate(family, quick_calibration(1));
  const CalibrationProfile parallel = calibrate(family, quick_calibration(2));
  // Byte-equality of the canonical dump covers every field at full precision.
  EXPECT_EQ(dump_profile(serial), dump_profile(parallel));
  EXPECT_GT(serial.evaluations, 0);
  EXPECT_EQ(serial.replications, 2);
  EXPECT_EQ(serial.seed, family.seed);
}

TEST(SurrogateSpotChecks, SelectionIsDeterministicStratifiedAndSorted) {
  std::vector<std::size_t> ranking(40);
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  // Shuffle-free permutation: reverse puts the "best" points at high indices
  // so head-of-ranking and low-index are distinguishable below.
  std::reverse(ranking.begin(), ranking.end());

  SweepOptions opt;
  opt.best_k = 3;
  opt.sample_fraction = 0.1;

  const std::vector<std::size_t> a = spot_check_selection(ranking, opt, 99);
  const std::vector<std::size_t> b = spot_check_selection(ranking, opt, 99);
  EXPECT_EQ(a, b);

  // best_k head: ranking[0..2] = {39, 38, 37} must all be chosen.
  for (const std::size_t want : {std::size_t{39}, std::size_t{38}, std::size_t{37}}) {
    EXPECT_NE(std::find(a.begin(), a.end(), want), a.end());
  }
  // 3 best + ceil(0.1 * 40) = 4 strata of the remaining tail.
  EXPECT_EQ(a.size(), 7u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (const std::size_t idx : a) EXPECT_LT(idx, ranking.size());

  // Selection reacts to the seed only through the stratified tail; the
  // best-k head never moves.
  const std::vector<std::size_t> c = spot_check_selection(ranking, opt, 100);
  for (const std::size_t want : {std::size_t{39}, std::size_t{38}, std::size_t{37}}) {
    EXPECT_NE(std::find(c.begin(), c.end(), want), c.end());
  }
  EXPECT_EQ(c.size(), 7u);
}

TEST(SurrogateSweep, ReportIsBitIdenticalAcrossJobsCounts) {
  const scenario::ScenarioConfig base = small_family();
  CalibrationProfile profile;
  profile.name = "unit-profile";
  profile.service_scale = 0.875;
  profile.transit_scale = 1.25;
  profile.capacity_scale = 1.0;

  SweepAxes axes;
  axes.controllers = {core::ControllerType::CapBp, core::ControllerType::FixedTime};
  axes.patterns = {traffic::PatternKind::I, traffic::PatternKind::II};
  axes.periods_s = {12.0, 16.0};
  ASSERT_EQ(axis_points(axes).size(), 8u);

  SweepOptions opt;
  opt.best_k = 2;
  opt.sample_fraction = 0.25;
  opt.spot_replications = 2;
  opt.allow_oversubscribe = true;

  opt.jobs = 1;
  const SweepReport serial = surrogate_sweep(base, profile, axes, opt);
  opt.jobs = 2;
  const SweepReport parallel = surrogate_sweep(base, profile, axes, opt);
  EXPECT_EQ(dump_report(serial), dump_report(parallel));

  EXPECT_EQ(serial.rows.size(), 8u);
  EXPECT_GT(serial.spot_checks, 0);
  for (const MetricErrorBar& bar : serial.error_bars) {
    EXPECT_EQ(bar.samples, serial.spot_checks);
    EXPECT_GE(bar.max_relative_error, bar.mean_relative_error);
  }
  // Every spot-checked row carries a finite CI (spot_replications = 2 gives
  // 1 df) and ranks form a permutation.
  std::vector<int> ranks;
  for (const SweepRow& row : serial.rows) {
    ranks.push_back(row.rank);
    if (row.spot_checked) {
      for (std::size_t i = 0; i < kMetricCount; ++i) {
        EXPECT_GE(row.spot.micro_ci95_halfwidth[i], 0.0);
      }
    }
  }
  std::sort(ranks.begin(), ranks.end());
  for (int r = 0; r < static_cast<int>(ranks.size()); ++r) EXPECT_EQ(ranks[r], r);
}

TEST(SurrogateSweep, UtilBpCollapsesThePeriodAxis) {
  SweepAxes axes;
  axes.controllers = {core::ControllerType::UtilBp, core::ControllerType::CapBp};
  axes.patterns = {traffic::PatternKind::I};
  axes.periods_s = {8.0, 12.0, 16.0};
  // UTIL-BP has no period knob: 1 point instead of 3, CAP-BP keeps all 3.
  EXPECT_EQ(axis_points(axes).size(), 4u);
}

}  // namespace
}  // namespace abp::surrogate
