// Tests for the paper's workload tables (Table I and Table II).
#include "src/traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace abp::traffic {
namespace {

TEST(TurningTable, MatchesPaperTableI) {
  const TurningTable t = TurningTable::paper();
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::North).right, 0.4);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::North).left, 0.2);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::East).right, 0.3);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::East).left, 0.3);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::South).right, 0.4);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::South).left, 0.3);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::West).right, 0.3);
  EXPECT_DOUBLE_EQ(t.entering_from(net::Side::West).left, 0.4);
}

TEST(TurningTable, StraightIsComplement) {
  const TurningTable t = TurningTable::paper();
  for (net::Side s : net::kAllSides) {
    const auto& p = t.entering_from(s);
    EXPECT_NEAR(p.right + p.left + p.straight(), 1.0, 1e-12);
    EXPECT_GT(p.straight(), 0.0);
  }
}

TEST(ArrivalRow, MatchesPaperTableII) {
  // Pattern I (adjacent heavy): N=3, E=5, S=7, W=9.
  const ArrivalRow i = arrival_row(PatternKind::I);
  EXPECT_DOUBLE_EQ(i.on(net::Side::North), 3.0);
  EXPECT_DOUBLE_EQ(i.on(net::Side::East), 5.0);
  EXPECT_DOUBLE_EQ(i.on(net::Side::South), 7.0);
  EXPECT_DOUBLE_EQ(i.on(net::Side::West), 9.0);
  // Pattern II (uniform): all 6 s.
  for (net::Side s : net::kAllSides) {
    EXPECT_DOUBLE_EQ(arrival_row(PatternKind::II).on(s), 6.0);
  }
  // Pattern III (opposite heavy): N=3, E=7, S=5, W=9.
  const ArrivalRow iii = arrival_row(PatternKind::III);
  EXPECT_DOUBLE_EQ(iii.on(net::Side::North), 3.0);
  EXPECT_DOUBLE_EQ(iii.on(net::Side::East), 7.0);
  EXPECT_DOUBLE_EQ(iii.on(net::Side::South), 5.0);
  EXPECT_DOUBLE_EQ(iii.on(net::Side::West), 9.0);
  // Pattern IV (single heavy): N=3, rest 9.
  const ArrivalRow iv = arrival_row(PatternKind::IV);
  EXPECT_DOUBLE_EQ(iv.on(net::Side::North), 3.0);
  EXPECT_DOUBLE_EQ(iv.on(net::Side::East), 9.0);
  EXPECT_DOUBLE_EQ(iv.on(net::Side::South), 9.0);
  EXPECT_DOUBLE_EQ(iv.on(net::Side::West), 9.0);
}

TEST(ArrivalRow, MixedHasNoSingleRow) {
  EXPECT_THROW(arrival_row(PatternKind::Mixed), std::invalid_argument);
}

TEST(PatternAt, NonMixedIsTimeInvariant) {
  for (PatternKind k : {PatternKind::I, PatternKind::II, PatternKind::III, PatternKind::IV}) {
    EXPECT_EQ(pattern_at(k, 0.0), k);
    EXPECT_EQ(pattern_at(k, 1e6), k);
  }
}

TEST(PatternAt, MixedCyclesHourly) {
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 0.0), PatternKind::I);
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 3599.9), PatternKind::I);
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 3600.0), PatternKind::II);
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 2.0 * 3600.0), PatternKind::III);
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 3.0 * 3600.0), PatternKind::IV);
  // Wraps after four hours.
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 4.0 * 3600.0), PatternKind::I);
  EXPECT_EQ(pattern_at(PatternKind::Mixed, 5.5 * 3600.0), PatternKind::II);
}

TEST(MeanInterarrival, AppliesScaleAndSchedule) {
  EXPECT_DOUBLE_EQ(mean_interarrival(PatternKind::I, net::Side::North, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(mean_interarrival(PatternKind::I, net::Side::North, 0.0, 2.0), 6.0);
  // Mixed pattern at hour 1 uses Pattern II's row.
  EXPECT_DOUBLE_EQ(mean_interarrival(PatternKind::Mixed, net::Side::North, 3600.0), 6.0);
  EXPECT_DOUBLE_EQ(mean_interarrival(PatternKind::Mixed, net::Side::West, 3.5 * 3600.0), 9.0);
}

TEST(PaperDuration, OneHourExceptMixed) {
  EXPECT_DOUBLE_EQ(paper_duration_s(PatternKind::I), 3600.0);
  EXPECT_DOUBLE_EQ(paper_duration_s(PatternKind::IV), 3600.0);
  EXPECT_DOUBLE_EQ(paper_duration_s(PatternKind::Mixed), 4.0 * 3600.0);
}

TEST(PatternName, AllDistinct) {
  std::set<std::string> names;
  for (PatternKind k : {PatternKind::I, PatternKind::II, PatternKind::III, PatternKind::IV,
                        PatternKind::Mixed}) {
    names.insert(pattern_name(k));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace abp::traffic
