// Tests for the Poisson demand generator.
#include "src/traffic/demand.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/grid.hpp"

namespace abp::traffic {
namespace {

net::Network grid3() { return net::build_grid(net::GridConfig{}); }

TEST(Demand, SpawnsAreTimeOrderedAndInWindow) {
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::II;
  DemandGenerator gen(net, cfg, 1);
  const auto spawns = gen.poll(0.0, 120.0);
  ASSERT_FALSE(spawns.empty());
  double prev = 0.0;
  for (const SpawnRequest& s : spawns) {
    EXPECT_GE(s.time, prev);
    EXPECT_LT(s.time, 120.0);
    EXPECT_TRUE(s.entry.valid());
    EXPECT_FALSE(s.route.turns.empty());
    prev = s.time;
  }
}

TEST(Demand, RateMatchesTableII) {
  // Pattern II: every entry road sees one vehicle per 6 s on average;
  // 12 entries over 2 h => about 14400 vehicles.
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::II;
  DemandGenerator gen(net, cfg, 7);
  const auto spawns = gen.poll(0.0, 7200.0);
  const double expected = 12.0 * 7200.0 / 6.0;
  EXPECT_NEAR(static_cast<double>(spawns.size()), expected, 0.05 * expected);
}

TEST(Demand, PatternIIsHeavierFromTheNorth) {
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::I;
  DemandGenerator gen(net, cfg, 13);
  std::array<int, 4> by_side{};
  for (const SpawnRequest& s : gen.poll(0.0, 7200.0)) {
    by_side[static_cast<std::size_t>(net.road(s.entry).arrival_side)]++;
  }
  const double north = by_side[0], east = by_side[1], south = by_side[2], west = by_side[3];
  // Ratios follow 1/3 : 1/5 : 1/7 : 1/9 per road.
  EXPECT_NEAR(north / east, 5.0 / 3.0, 0.25);
  EXPECT_NEAR(north / south, 7.0 / 3.0, 0.35);
  EXPECT_NEAR(north / west, 9.0 / 3.0, 0.45);
}

TEST(Demand, ScaleLightensTraffic) {
  const net::Network net = grid3();
  DemandConfig heavy;
  heavy.pattern = PatternKind::II;
  DemandConfig light = heavy;
  light.interarrival_scale = 2.0;
  DemandGenerator a(net, heavy, 3);
  DemandGenerator b(net, light, 3);
  const auto heavy_spawns = a.poll(0.0, 3600.0);
  const auto light_spawns = b.poll(0.0, 3600.0);
  EXPECT_NEAR(static_cast<double>(heavy_spawns.size()) / light_spawns.size(), 2.0, 0.2);
}

TEST(Demand, MixedPatternShiftsRateAcrossHours) {
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::Mixed;
  DemandGenerator gen(net, cfg, 11);
  // Hour 1 is Pattern I (per-road rates 1/3..1/9); hour 4 is Pattern IV
  // (north 1/3, the rest 1/9): hour 1 must carry more vehicles.
  const auto h1 = gen.poll(0.0, 3600.0);
  (void)gen.poll(3600.0, 3.0 * 3600.0);  // skip hours 2-3
  const auto h4 = gen.poll(3.0 * 3600.0, 4.0 * 3600.0);
  EXPECT_GT(h1.size(), h4.size() + 500);
}

TEST(Demand, ResetReproducesExactly) {
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::III;
  DemandGenerator gen(net, cfg, 77);
  const auto first = gen.poll(0.0, 600.0);
  gen.reset();
  const auto second = gen.poll(0.0, 600.0);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].time, second[i].time);
    EXPECT_EQ(first[i].entry, second[i].entry);
    EXPECT_EQ(first[i].route.turns, second[i].route.turns);
  }
}

TEST(Demand, DifferentSeedsDiffer) {
  const net::Network net = grid3();
  DemandConfig cfg;
  DemandGenerator a(net, cfg, 1);
  DemandGenerator b(net, cfg, 2);
  const auto sa = a.poll(0.0, 600.0);
  const auto sb = b.poll(0.0, 600.0);
  bool different = sa.size() != sb.size();
  for (std::size_t i = 0; !different && i < sa.size(); ++i) {
    different = sa[i].time != sb[i].time;
  }
  EXPECT_TRUE(different);
}

TEST(Demand, ConsecutivePollsDoNotDuplicate) {
  const net::Network net = grid3();
  DemandConfig cfg;
  DemandGenerator gen(net, cfg, 21);
  const auto a = gen.poll(0.0, 300.0);
  const auto b = gen.poll(300.0, 600.0);
  DemandGenerator whole(net, cfg, 21);
  const auto all = whole.poll(0.0, 600.0);
  EXPECT_EQ(a.size() + b.size(), all.size());
  EXPECT_EQ(gen.total_generated(), all.size());
}

TEST(Demand, ExponentialInterArrivalVariance) {
  // Poisson process: inter-arrival CV should be ~1 (not constant spacing).
  const net::Network net = grid3();
  DemandConfig cfg;
  cfg.pattern = PatternKind::II;
  DemandGenerator gen(net, cfg, 31);
  std::vector<double> per_road_times;
  const RoadId first_entry = net.entry_roads().front();
  for (const SpawnRequest& s : gen.poll(0.0, 36000.0)) {
    if (s.entry == first_entry) per_road_times.push_back(s.time);
  }
  ASSERT_GT(per_road_times.size(), 1000u);
  double mean = 0.0, var = 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < per_road_times.size(); ++i) {
    gaps.push_back(per_road_times[i] - per_road_times[i - 1]);
  }
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);
  EXPECT_NEAR(mean, 6.0, 0.4);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.1);
}

}  // namespace
}  // namespace abp::traffic
