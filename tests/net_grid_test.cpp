// Tests for the grid builder: the paper's 3x3 evaluation topology.
#include "src/net/grid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/net/validation.hpp"

namespace abp::net {
namespace {

GridConfig paper_grid() { return GridConfig{}; }

TEST(Grid, PaperGridCounts) {
  const Network net = build_grid(paper_grid());
  EXPECT_EQ(net.intersections().size(), 9u);
  // Internal: 12 adjacent junction pairs * 2 directions = 24.
  // Boundary: 12 approaches * (entry + exit) = 24.
  EXPECT_EQ(net.roads().size(), 48u);
  EXPECT_EQ(net.entry_roads().size(), 12u);
  EXPECT_EQ(net.exit_roads().size(), 12u);
  // Every junction has four approaches -> 12 movements each.
  EXPECT_EQ(net.links().size(), 9u * 12u);
}

TEST(Grid, PaperGridValidates) {
  const Network net = build_grid(paper_grid());
  const auto problems = validate(net);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Grid, EveryJunctionHasFigureOnePhases) {
  const Network net = build_grid(paper_grid());
  for (const Intersection& node : net.intersections()) {
    ASSERT_EQ(node.phases.size(), 5u) << node.name;
    EXPECT_TRUE(node.phases[0].is_transition());
    EXPECT_EQ(node.phases[1].links.size(), 4u);
    EXPECT_EQ(node.phases[2].links.size(), 2u);
    EXPECT_EQ(node.phases[3].links.size(), 4u);
    EXPECT_EQ(node.phases[4].links.size(), 2u);
    EXPECT_EQ(node.links.size(), 12u);
  }
}

TEST(Grid, ThreeEntriesPerBoundarySide) {
  const Network net = build_grid(paper_grid());
  for (Side s : kAllSides) {
    EXPECT_EQ(net.entry_roads_on(s).size(), 3u) << side_name(s);
  }
}

TEST(Grid, AtGridResolvesAllCoordinates) {
  const Network net = build_grid(paper_grid());
  std::set<IntersectionId> seen;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto id = net.at_grid(r, c);
      ASSERT_TRUE(id.has_value());
      seen.insert(*id);
      EXPECT_EQ(net.intersection(*id).grid_row, r);
      EXPECT_EQ(net.intersection(*id).grid_col, c);
    }
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_FALSE(net.at_grid(3, 0).has_value());
  EXPECT_FALSE(net.at_grid(-1, 0).has_value());
}

TEST(Grid, InternalRoadsConnectAdjacentJunctions) {
  const Network net = build_grid(paper_grid());
  const IntersectionId a = *net.at_grid(0, 0);
  const IntersectionId b = *net.at_grid(0, 1);
  // The eastward road out of (0,0) must arrive at (0,1) on its West side.
  const RoadId east = net.intersection(a).outgoing_on(Side::East);
  ASSERT_TRUE(east.valid());
  EXPECT_EQ(net.road(east).to, b);
  EXPECT_EQ(net.road(east).arrival_side, Side::West);
  // And symmetrically back.
  const RoadId west = net.intersection(b).outgoing_on(Side::West);
  ASSERT_TRUE(west.valid());
  EXPECT_EQ(net.road(west).to, a);
}

TEST(Grid, TopRightJunctionHasNorthAndEastEntries) {
  // The paper's Fig. 3-5 junction: row 0, col 2.
  const Network net = build_grid(paper_grid());
  const Intersection& j = net.intersection(*net.at_grid(0, 2));
  const Road& north_in = net.road(j.incoming_on(Side::North));
  const Road& east_in = net.road(j.incoming_on(Side::East));
  EXPECT_TRUE(north_in.is_entry());
  EXPECT_TRUE(east_in.is_entry());
  EXPECT_FALSE(net.road(j.incoming_on(Side::West)).is_entry());
  EXPECT_FALSE(net.road(j.incoming_on(Side::South)).is_entry());
}

TEST(Grid, ConfigPropagates) {
  GridConfig cfg;
  cfg.capacity = 60;
  cfg.road_length_m = 150.0;
  cfg.boundary_length_m = 300.0;
  cfg.service_rate = 0.5;
  const Network net = build_grid(cfg);
  for (const Road& r : net.roads()) {
    EXPECT_EQ(r.capacity, 60);
    if (r.is_entry() || r.is_exit()) {
      EXPECT_DOUBLE_EQ(r.length_m, 300.0);
    } else {
      EXPECT_DOUBLE_EQ(r.length_m, 150.0);
    }
  }
  for (const Link& l : net.links()) {
    EXPECT_DOUBLE_EQ(l.service_rate, 0.5);
  }
}

TEST(Grid, RejectsNonPositiveDimensions) {
  GridConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(build_grid(cfg), std::invalid_argument);
  cfg.rows = 3;
  cfg.cols = -1;
  EXPECT_THROW(build_grid(cfg), std::invalid_argument);
}

TEST(Grid, RightHandTrafficValidatesToo) {
  GridConfig cfg;
  cfg.handedness = Handedness::RightHand;
  const Network net = build_grid(cfg);
  const auto problems = validate(net);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

class GridSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GridSizes, CountsScaleWithDimensions) {
  const auto [rows, cols] = GetParam();
  GridConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  const Network net = build_grid(cfg);
  EXPECT_EQ(net.intersections().size(), static_cast<std::size_t>(rows * cols));
  const int internal_pairs = rows * (cols - 1) + cols * (rows - 1);
  const int boundary = 2 * rows + 2 * cols;
  EXPECT_EQ(net.roads().size(), static_cast<std::size_t>(2 * internal_pairs + 2 * boundary));
  EXPECT_EQ(net.entry_roads().size(), static_cast<std::size_t>(boundary));
  EXPECT_EQ(net.exit_roads().size(), static_cast<std::size_t>(boundary));
  EXPECT_TRUE(validate(net).empty());
}

INSTANTIATE_TEST_SUITE_P(Dimensions, GridSizes,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 3),
                                           std::make_tuple(2, 2), std::make_tuple(3, 3),
                                           std::make_tuple(4, 2), std::make_tuple(5, 5)));

}  // namespace
}  // namespace abp::net
