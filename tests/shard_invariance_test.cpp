// Shard-invariance pins (docs/SHARDING.md).
//
// The contract of the sharding layer is absolute: a K-shard run is
// bit-identical to the monolithic run — every metric double, every series
// sample, every phase-trace change point, every detection event. These tests
// pin that for K in {2, 4} on both backends, over scenarios that exercise
// every cross-band coupling at once: saturating demand (boundary roads fill,
// so downstream-capacity mirrors gate real decisions), capacity and sensor
// faults, the changepoint detector, and road watches on both interior and
// boundary approaches.
//
// Most cases run the in-process transport (the coordinator drives every
// worker's phases over deque channels): single-process and schedule-free, so
// a failure is a protocol bug, never flakiness — and the only mode usable
// under TSan. One case per backend repeats K=2 over the fork transport,
// pinning that real processes exchanging the same frames over shared-memory
// rings reproduce the same bits; a crash test pins that a dying worker
// surfaces as ExperimentRunner's Error outcome instead of a hang.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/exp/experiment_runner.hpp"
#include "src/scenario/scenario.hpp"
#include "tests/result_compare.hpp"

#if defined(__SANITIZE_THREAD__)
#define ABP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ABP_TSAN 1
#endif
#endif

namespace abp {
namespace {

scenario::ScenarioConfig shard_config(scenario::SimulatorKind kind,
                                      traffic::PatternKind pattern, std::uint64_t seed) {
  scenario::ScenarioConfig cfg =
      scenario::paper_scenario(pattern, core::ControllerType::UtilBp);
  cfg.simulator = kind;
  cfg.seed = seed;
  // Four junction rows so the same scenario splits into 2 and 4 row bands;
  // 3 columns keep the run cheap while every band still has interior roads.
  cfg.grid.rows = 4;
  cfg.grid.cols = 3;
  cfg.duration_s = 400.0;
  // Watches on a boundary approach (the road from the North into row 1 spans
  // the band seam at K=2 and K=4) and an interior one.
  cfg.watches.push_back({1, 1, net::Side::North, "seam_approach"});
  cfg.watches.push_back({0, 0, net::Side::East, "corner_approach"});
  return cfg;
}

// Adds the cross-band stress: a mid-run capacity incident on a boundary
// approach, a biased sensor at a seam junction, and the changepoint detector
// (whose merged event stream pins the detection replay).
void add_faults_and_detector(scenario::ScenarioConfig& cfg) {
  scenario::CapacityFault capacity;
  capacity.road = {1, 1, net::Side::North};
  capacity.start_s = 120.0;
  capacity.end_s = 260.0;
  capacity.capacity_factor = 0.3;
  cfg.faults.capacity.push_back(capacity);
  scenario::SensorFault sensor;
  sensor.node = {2, 1};
  sensor.start_s = 80.0;
  sensor.end_s = 300.0;
  sensor.kind = core::SensorFaultKind::Noise;
  sensor.bias = 3;
  sensor.noise_magnitude = 2;
  cfg.faults.sensors.push_back(sensor);
  cfg.detector.enabled = true;
}

stats::RunResult run_sharded(scenario::ScenarioConfig cfg, int count, bool in_process) {
  cfg.shard.count = count;
  cfg.shard.in_process = in_process;
  // Correctness is schedule-free; these tests run on single-core CI boxes.
  cfg.shard.allow_oversubscribe = true;
  return scenario::run_scenario(cfg);
}

void expect_shards_invariant(const scenario::ScenarioConfig& cfg) {
  const stats::RunResult mono = scenario::run_scenario(cfg);
  for (int count : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(count));
    testing::expect_results_identical(mono, run_sharded(cfg, count, /*in_process=*/true));
  }
}

TEST(ShardInvariance, MicroBitIdenticalHeavyDemand) {
  // Pattern III saturates the grid: boundary roads spill back, so the
  // grantor-side occupancy and congestion mirrors gate real admissions.
  expect_shards_invariant(
      shard_config(scenario::SimulatorKind::Micro, traffic::PatternKind::III, 21));
}

TEST(ShardInvariance, MicroBitIdenticalWithFaultsAndDetector) {
  scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Micro, traffic::PatternKind::II, 22);
  add_faults_and_detector(cfg);
  expect_shards_invariant(cfg);
}

TEST(ShardInvariance, QueueBitIdenticalHeavyDemand) {
  expect_shards_invariant(
      shard_config(scenario::SimulatorKind::Queue, traffic::PatternKind::III, 23));
}

TEST(ShardInvariance, QueueBitIdenticalWithFaultsAndDetector) {
  scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Queue, traffic::PatternKind::II, 24);
  add_faults_and_detector(cfg);
  expect_shards_invariant(cfg);
}

TEST(ShardInvariance, ForkTransportMatchesMonolithicMicro) {
#ifdef ABP_TSAN
  GTEST_SKIP() << "fork-based workers are not TSan-instrumentable";
#endif
  const scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Micro, traffic::PatternKind::III, 25);
  const stats::RunResult mono = scenario::run_scenario(cfg);
  testing::expect_results_identical(mono, run_sharded(cfg, 2, /*in_process=*/false));
}

TEST(ShardInvariance, ForkTransportMatchesMonolithicQueue) {
#ifdef ABP_TSAN
  GTEST_SKIP() << "fork-based workers are not TSan-instrumentable";
#endif
  const scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Queue, traffic::PatternKind::III, 26);
  const stats::RunResult mono = scenario::run_scenario(cfg);
  testing::expect_results_identical(mono, run_sharded(cfg, 2, /*in_process=*/false));
}

TEST(ShardInvariance, RejectsGuardAndBadCounts) {
  scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Queue, traffic::PatternKind::I, 27);
  cfg.shard.count = 2;
  cfg.shard.allow_oversubscribe = true;
  cfg.guard.enabled = true;
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
  cfg.guard.enabled = false;
  cfg.shard.count = 5;  // more shards than junction rows
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
  cfg.shard.count = 0;
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
}

TEST(ShardInvariance, RejectsImperfectMicroSensor) {
  scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Micro, traffic::PatternKind::I, 28);
  cfg.shard.count = 2;
  cfg.shard.allow_oversubscribe = true;
  cfg.micro.sensor.detection_probability = 0.9;
  EXPECT_THROW((void)scenario::run_scenario(cfg), std::invalid_argument);
}

// A worker process dying mid-run must surface as a failed run — the
// coordinator's liveness poll converts the death into an exception, which
// ExperimentRunner captures as Outcome::Error with the batch intact.
TEST(ShardInvariance, WorkerCrashReportsErrorWithoutHanging) {
#ifdef ABP_TSAN
  GTEST_SKIP() << "fork-based workers are not TSan-instrumentable";
#endif
  scenario::ScenarioConfig cfg =
      shard_config(scenario::SimulatorKind::Queue, traffic::PatternKind::I, 29);
  cfg.duration_s = 200.0;
  cfg.shard.count = 2;
  cfg.shard.allow_oversubscribe = true;
  cfg.shard.crash_worker = 1;
  cfg.shard.crash_at_s = 60.0;
  exp::ExperimentRunner runner;
  const std::vector<exp::RunStatus> statuses = runner.run_statuses({cfg});
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].outcome, exp::RunStatus::Outcome::Error);
  EXPECT_NE(statuses[0].error.find("shard worker"), std::string::npos);
}

}  // namespace
}  // namespace abp
