// Tests for the deterministic RNG and its distributions.
#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace abp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, AdjacentSeedsDecorrelated) {
  // SplitMix64 seeding must break the similarity of nearby seeds.
  Rng a(1000);
  Rng b(1001);
  int equal_bits = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = a.next() ^ b.next();
    equal_bits += 64 - static_cast<int>(__builtin_popcountll(x));
  }
  // ~50% of 64*64 bits should match; allow generous slack.
  EXPECT_GT(equal_bits, 1500);
  EXPECT_LT(equal_bits, 2600);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 9);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(6.0);
  EXPECT_NEAR(sum / kN, 6.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(3.0), 0.0);
  }
}

TEST(Rng, ExponentialVarianceMatches) {
  // Var of Exp(mean m) is m^2.
  Rng rng(31);
  constexpr int kN = 200000;
  constexpr double kMean = 4.0;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(kMean);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(var, kMean * kMean, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
  }
}

class RngPoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonMean, MeanAndVarianceMatch) {
  // Poisson(lambda) has mean = variance = lambda, in both the Knuth and the
  // normal-approximation regimes.
  const double lambda = GetParam();
  Rng rng(41);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int x = rng.poisson(lambda);
    ASSERT_GE(x, 0);
    sum += x;
    sum2 += static_cast<double>(x) * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05 * lambda + 0.05);
  EXPECT_NEAR(var, lambda, 0.1 * lambda + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonMean,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 25.0, 40.0, 80.0));

TEST(Rng, BernoulliEdges) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, DiscreteMatchesWeights) {
  Rng rng(53);
  const std::array<double, 3> weights = {0.2, 0.5, 0.3};
  std::array<int, 3> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    counts[rng.discrete(weights)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, DiscreteIgnoresNegativeWeights) {
  Rng rng(59);
  const std::array<double, 3> weights = {-5.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.discrete(weights), 1u);
  }
}

TEST(Rng, DiscreteAllZeroReturnsFirst) {
  Rng rng(61);
  const std::array<double, 4> weights = {0.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(rng.discrete(weights), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(71);
  Rng b(71);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ca.next(), cb.next());
  }
}

// --- StreamRng: the counter-based stream behind the parallel lane sweep ---

TEST(StreamRng, SameSeedAndStreamReproduce) {
  StreamRng a(2020, 17);
  StreamRng b(2020, 17);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(StreamRng, DistinctStreamsAreUnrelated) {
  StreamRng a(2020, 0);
  StreamRng b(2020, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(StreamRng, DistinctSeedsAreUnrelated) {
  StreamRng a(1, 5);
  StreamRng b(2, 5);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(StreamRng, DrawIsAPureFunctionOfTheCounter) {
  // The property the parallel sweep's determinism rests on: draw k of a
  // stream has one value, no matter when or on which thread it is taken.
  StreamRng a(99, 3);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 50; ++i) first.push_back(a.next());
  EXPECT_EQ(a.counter(), 50u);
  a.set_counter(0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
  a.set_counter(10);
  EXPECT_EQ(a.next(), first[10]);
}

TEST(StreamRng, Uniform01InRangeWithSaneMean) {
  StreamRng rng(7, 42);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

class StreamRngBulkFill : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamRngBulkFill, MatchesSequentialDrawsAndCounter) {
  // The property the vectorized lane sweep rests on: one bulk fill of n
  // draws is indistinguishable from n sequential uniform01() calls — same
  // values bit for bit, same final counter. Start mid-stream so the batch
  // boundary is not counter 0.
  const std::size_t n = GetParam();
  StreamRng bulk(2020, 5);
  StreamRng seq(2020, 5);
  for (int i = 0; i < 7; ++i) {
    bulk.uniform01();
    seq.uniform01();
  }
  std::vector<double> dst(n + 1, -1.0);  // +1 sentinel guards against overrun
  bulk.fill_u01(dst.data(), n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(dst[j], seq.uniform01()) << "draw " << j << " of " << n;
  }
  EXPECT_EQ(dst[n], -1.0);
  EXPECT_EQ(bulk.counter(), seq.counter());
  // The streams stay in lockstep after the batch.
  EXPECT_EQ(bulk.next(), seq.next());
}

TEST_P(StreamRngBulkFill, TailFirstFillIsTheReversedBulkFill) {
  // fill_u01_tailfirst serves a head-first kernel replaying a tail-first
  // scalar consumer: dst[i] must hold draw (n-1-i), and the counter must
  // advance exactly as fill_u01 does.
  const std::size_t n = GetParam();
  StreamRng a(99, 3);
  StreamRng b(99, 3);
  std::vector<double> fwd(n), rev(n);
  a.fill_u01(fwd.data(), n);
  b.fill_u01_tailfirst(rev.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rev[i], fwd[n - 1 - i]) << "slot " << i << " of " << n;
  }
  EXPECT_EQ(a.counter(), b.counter());
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, StreamRngBulkFill,
                         ::testing::Values(0u, 1u, 3u, 4u, 17u));

TEST(StreamRng, BoundedStaysInRange) {
  StreamRng rng(7, 1);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 33}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.bounded(bound), bound) << "bound " << bound;
    }
  }
}

TEST(StreamRng, BoundedOneIsAlwaysZero) {
  StreamRng rng(11, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(StreamRng, BoundedIsDeterministic) {
  StreamRng a(2020, 17);
  StreamRng b(2020, 17);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.bounded(97), b.bounded(97));
}

TEST(StreamRng, BoundedIsUnbiased) {
  // The draw this replaced (`next() % span`) over-represents the low
  // residues whenever span does not divide 2^64. Rejection sampling must
  // not: every residue's count stays within chi-square-style slack of the
  // expectation, including spans adjacent to a power of two where modulo
  // bias is at its relative worst.
  for (const std::uint64_t bound : {3ull, 7ull, 10ull, (1ull << 4) + 1}) {
    StreamRng rng(123, bound);
    constexpr int kDraws = 200000;
    std::vector<int> counts(static_cast<std::size_t>(bound), 0);
    for (int i = 0; i < kDraws; ++i) {
      ++counts[static_cast<std::size_t>(rng.bounded(bound))];
    }
    const double expected = static_cast<double>(kDraws) / static_cast<double>(bound);
    for (std::uint64_t r = 0; r < bound; ++r) {
      EXPECT_NEAR(counts[static_cast<std::size_t>(r)], expected, 5.0 * std::sqrt(expected))
          << "residue " << r << " of bound " << bound;
    }
  }
}

TEST(StreamRng, BitMixSpreadsAcrossWords) {
  // Crude avalanche check: consecutive counters should flip about half the
  // output bits on average — a Weyl-style weak mix would fail this wildly.
  StreamRng rng(123, 9);
  std::uint64_t prev = rng.next();
  double flips = 0.0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t cur = rng.next();
    flips += static_cast<double>(__builtin_popcountll(prev ^ cur));
    prev = cur;
  }
  EXPECT_NEAR(flips / kDraws, 32.0, 2.0);
}

}  // namespace
}  // namespace abp
