// Tests for the batched demand interface (DemandGenerator::poll_into): the
// per-tick buffer-reuse path the simulators drive must yield exactly the
// same spawn sequence — time, entry road, route — as legacy one-shot
// polling for a fixed seed, no matter how the horizon is sliced into
// windows, and the earliest-arrival early-out must never skip a spawn.
#include "src/traffic/demand.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/grid.hpp"

namespace abp::traffic {
namespace {

net::Network grid3() { return net::build_grid(net::GridConfig{}); }

DemandConfig config(PatternKind p = PatternKind::II) {
  DemandConfig cfg;
  cfg.pattern = p;
  return cfg;
}

// Drives the batched interface the way the simulators do: one poll_into per
// tick into a reused buffer, concatenating the windows.
std::vector<SpawnRequest> poll_windowed(DemandGenerator& gen, double horizon_s,
                                        double window_s) {
  std::vector<SpawnRequest> all;
  std::vector<SpawnRequest> buffer;
  for (double t = 0.0; t < horizon_s; t += window_s) {
    gen.poll_into(t, std::min(t + window_s, horizon_s), buffer);
    all.insert(all.end(), buffer.begin(), buffer.end());
  }
  return all;
}

void expect_same_sequence(const std::vector<SpawnRequest>& a,
                          const std::vector<SpawnRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact double equality on purpose: the batched path must consume the
    // identical RNG stream, not an approximately similar one.
    EXPECT_EQ(a[i].time, b[i].time) << "spawn " << i;
    EXPECT_EQ(a[i].entry, b[i].entry) << "spawn " << i;
    EXPECT_EQ(a[i].route.turns, b[i].route.turns) << "spawn " << i;
  }
}

TEST(DemandBatch, PerTickWindowsMatchOneShotPoll) {
  const net::Network net = grid3();
  DemandGenerator windowed(net, config(), 7);
  DemandGenerator oneshot(net, config(), 7);
  const auto a = poll_windowed(windowed, 1200.0, 1.0);
  const auto b = oneshot.poll(0.0, 1200.0);
  expect_same_sequence(a, b);
  EXPECT_EQ(windowed.total_generated(), oneshot.total_generated());
}

TEST(DemandBatch, EarlyOutWindowsSkipNothing) {
  // Quarter-second windows under Pattern II demand leave most windows empty,
  // exercising the earliest-arrival early-out on nearly every call.
  const net::Network net = grid3();
  DemandGenerator windowed(net, config(), 13);
  DemandGenerator oneshot(net, config(), 13);
  expect_same_sequence(poll_windowed(windowed, 300.0, 0.25),
                       oneshot.poll(0.0, 300.0));
}

TEST(DemandBatch, MixedWindowSizesMatch) {
  // Slicing the same horizon differently must not shift the stream: the
  // schedule-driven Mixed pattern re-evaluates rates per arrival, which
  // would expose any window-boundary dependence.
  const net::Network net = grid3();
  DemandGenerator coarse(net, config(PatternKind::Mixed), 29);
  DemandGenerator fine(net, config(PatternKind::Mixed), 29);
  expect_same_sequence(poll_windowed(coarse, 900.0, 10.0),
                       poll_windowed(fine, 900.0, 0.5));
}

TEST(DemandBatch, BufferIsClearedEveryPoll) {
  const net::Network net = grid3();
  DemandGenerator gen(net, config(), 3);
  std::vector<SpawnRequest> buffer(17);  // stale garbage from a "previous tick"
  gen.poll_into(0.0, 60.0, buffer);
  DemandGenerator reference(net, config(), 3);
  expect_same_sequence(buffer, reference.poll(0.0, 60.0));
  // An empty window clears the buffer too, including on the early-out path.
  DemandGenerator idle(net, config(), 3);
  std::vector<SpawnRequest> junk(5);
  idle.poll_into(0.0, 1.0e-9, junk);
  EXPECT_TRUE(junk.empty());
}

TEST(DemandBatch, ResetReplaysBatchedSequence) {
  const net::Network net = grid3();
  DemandGenerator gen(net, config(PatternKind::III), 77);
  const auto first = poll_windowed(gen, 600.0, 1.0);
  gen.reset();
  const auto second = poll_windowed(gen, 600.0, 1.0);
  expect_same_sequence(first, second);
}

}  // namespace
}  // namespace abp::traffic
