// Tests for network construction and wiring.
#include "src/net/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace abp::net {
namespace {

// One junction with an entry road from the North and an exit road to the
// South: the smallest network with a single straight movement.
Network single_link_network() {
  Network net;
  const IntersectionId j = net.add_intersection("J");
  Road in;
  in.to = j;
  in.arrival_side = Side::North;
  in.name = "in";
  net.add_road(in);
  Road out;
  out.from = j;
  out.departure_side = Side::South;
  out.name = "out";
  net.add_road(out);
  net.finalize(Handedness::LeftHand);
  return net;
}

TEST(Network, SingleLinkWiring) {
  const Network net = single_link_network();
  ASSERT_EQ(net.intersections().size(), 1u);
  ASSERT_EQ(net.roads().size(), 2u);
  ASSERT_EQ(net.links().size(), 1u);

  const Intersection& j = net.intersections().front();
  EXPECT_TRUE(j.incoming_on(Side::North).valid());
  EXPECT_TRUE(j.outgoing_on(Side::South).valid());
  EXPECT_FALSE(j.incoming_on(Side::East).valid());

  const Link& l = net.links().front();
  EXPECT_EQ(l.turn, Turn::Straight);
  EXPECT_EQ(l.from_side, Side::North);
  EXPECT_EQ(l.owner, j.id);
}

TEST(Network, SingleLinkPhases) {
  const Network net = single_link_network();
  const Intersection& j = net.intersections().front();
  // Transition phase plus exactly one non-empty control phase (NS-through).
  ASSERT_EQ(j.phases.size(), 2u);
  EXPECT_TRUE(j.phases[0].is_transition());
  EXPECT_EQ(j.phases[1].links.size(), 1u);
  EXPECT_EQ(j.num_control_phases(), 1);
}

TEST(Network, EntryAndExitClassification) {
  const Network net = single_link_network();
  const auto entries = net.entry_roads();
  const auto exits = net.exit_roads();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(net.road(entries[0]).name, "in");
  EXPECT_EQ(net.road(exits[0]).name, "out");
  EXPECT_TRUE(net.road(entries[0]).is_entry());
  EXPECT_TRUE(net.road(exits[0]).is_exit());
}

TEST(Network, FindLink) {
  const Network net = single_link_network();
  const RoadId in = net.entry_roads().front();
  EXPECT_TRUE(net.find_link(in, Turn::Straight).has_value());
  EXPECT_FALSE(net.find_link(in, Turn::Left).has_value());
  EXPECT_EQ(net.links_from(in).size(), 1u);
}

TEST(Network, RejectsRoadTouchingNoJunction) {
  Network net;
  Road floating;
  floating.name = "floating";
  EXPECT_THROW(net.add_road(floating), std::invalid_argument);
}

TEST(Network, RejectsNonPositiveGeometry) {
  Network net;
  const IntersectionId j = net.add_intersection("J");
  Road r;
  r.to = j;
  r.length_m = -1.0;
  EXPECT_THROW(net.add_road(r), std::invalid_argument);
  r.length_m = 100.0;
  r.capacity = 0;
  EXPECT_THROW(net.add_road(r), std::invalid_argument);
  r.capacity = 10;
  r.speed_limit_mps = 0.0;
  EXPECT_THROW(net.add_road(r), std::invalid_argument);
}

TEST(Network, RejectsDuplicateApproach) {
  Network net;
  const IntersectionId j = net.add_intersection("J");
  Road a;
  a.to = j;
  a.arrival_side = Side::North;
  net.add_road(a);
  Road b;
  b.to = j;
  b.arrival_side = Side::North;
  net.add_road(b);
  EXPECT_THROW(net.finalize(Handedness::LeftHand), std::logic_error);
}

TEST(Network, RejectsDoubleFinalize) {
  Network net = single_link_network();
  EXPECT_THROW(net.finalize(Handedness::LeftHand), std::logic_error);
}

TEST(Network, RejectsMutationAfterFinalize) {
  Network net = single_link_network();
  EXPECT_THROW(net.add_intersection("late"), std::logic_error);
  Road r;
  r.to = IntersectionId(0);
  EXPECT_THROW(net.add_road(r), std::logic_error);
}

TEST(Network, RejectsNonPositiveServiceRate) {
  Network net;
  net.add_intersection("J");
  EXPECT_THROW(net.finalize(Handedness::LeftHand, 0.0), std::invalid_argument);
}

TEST(Network, FourApproachJunctionHasTwelveLinks) {
  Network net;
  const IntersectionId j = net.add_intersection("J");
  for (Side s : kAllSides) {
    Road in;
    in.to = j;
    in.arrival_side = s;
    net.add_road(in);
    Road out;
    out.from = j;
    out.departure_side = s;
    net.add_road(out);
  }
  net.finalize(Handedness::LeftHand);
  EXPECT_EQ(net.links().size(), 12u);
  const Intersection& node = net.intersections().front();
  // Fig. 1: four control phases plus the transition phase.
  ASSERT_EQ(node.phases.size(), 5u);
  EXPECT_EQ(node.phases[1].links.size(), 4u);  // NS straight + easy
  EXPECT_EQ(node.phases[2].links.size(), 2u);  // NS protected
  EXPECT_EQ(node.phases[3].links.size(), 4u);  // EW straight + easy
  EXPECT_EQ(node.phases[4].links.size(), 2u);  // EW protected
}

TEST(Network, TJunctionSkipsEmptyPhases) {
  // T-junction: approaches from North, South and East only, no West arm.
  Network net;
  const IntersectionId j = net.add_intersection("T");
  for (Side s : {Side::North, Side::South, Side::East}) {
    Road in;
    in.to = j;
    in.arrival_side = s;
    net.add_road(in);
    Road out;
    out.from = j;
    out.departure_side = s;
    net.add_road(out);
  }
  net.finalize(Handedness::LeftHand);
  const Intersection& node = net.intersections().front();
  for (std::size_t p = 1; p < node.phases.size(); ++p) {
    EXPECT_FALSE(node.phases[p].links.empty());
  }
  // N->W, S->W, E->W movements do not exist; link count is 12 - 3 = ...
  // each approach loses the movement toward the missing West arm, and the
  // West approach's own three movements are gone too.
  EXPECT_EQ(net.links().size(), 6u);
}

TEST(Network, ServiceRateAppliedToAllLinks) {
  Network net;
  const IntersectionId j = net.add_intersection("J");
  Road in;
  in.to = j;
  in.arrival_side = Side::North;
  net.add_road(in);
  Road out;
  out.from = j;
  out.departure_side = Side::South;
  net.add_road(out);
  net.finalize(Handedness::LeftHand, 0.25);
  EXPECT_DOUBLE_EQ(net.links().front().service_rate, 0.25);
}

}  // namespace
}  // namespace abp::net
